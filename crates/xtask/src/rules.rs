//! The eight RUSH lint rules (RUSH-L001 … RUSH-L008), plus the supporting
//! machinery: `#[cfg(test)]` region detection, pragma comments, the
//! grandfathered-site allowlist and shim API surface extraction.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Lexed, TokKind, Token};
use crate::manifest::Manifest;
use crate::report::{Finding, Report, Rule};

/// Names of the vendored shim crates checked by RUSH-L005.
pub const SHIM_NAMES: &[&str] = &["rand", "proptest", "criterion"];

/// Identifiers RUSH-L006 reserves to the planner kernel.
const PLANNER_INTERNAL_IDENTS: &[&str] = &["compute_plan_cached", "PlanCache"];

/// Crates allowed to reference [`PLANNER_INTERNAL_IDENTS`]: the kernel
/// itself and the crate that defines the CA pipeline.
const PLANNER_OWNER_CRATES: &[&str] = &["rush-planner", "rush-core"];

/// Identifiers RUSH-L007 reserves to the full-rebuild path: the batch CA
/// entry points that recompute the plan from scratch. The delta path
/// (`compute_plan_incremental` / `peel_incremental` /
/// `map_continuous_incremental` — distinct identifiers, never flagged) is
/// the only planner-facing entry.
const FULL_REBUILD_IDENTS: &[&str] = &["compute_plan", "peel", "map_continuous"];

/// Crates allowed to reference [`FULL_REBUILD_IDENTS`]: rush-core owns the
/// full pipeline and the naive oracle the delta path is verified against.
const FULL_REBUILD_OWNER_CRATES: &[&str] = &["rush-core"];

/// Identifiers RUSH-L008 reserves to the sharded wrapper: the per-shard
/// escape hatch. Adapters read merged state and route events through the
/// `ShardedPlanner` API instead of holding raw shard handles.
const SHARD_INTERNAL_IDENTS: &[&str] = &["shard_core"];

/// Crates allowed to reference [`SHARD_INTERNAL_IDENTS`]: the crate that
/// defines `ShardedPlanner` and its invariants.
const SHARD_OWNER_CRATES: &[&str] = &["rush-planner"];

/// Upstream API the shims deliberately do NOT implement. These fire even when
/// the shim crate itself is outside the scanned tree (pure-name matching,
/// gated on the file actually referencing the shim crate).
const SHIM_DENYLIST: &[(&str, &[&str])] = &[
    (
        "rand",
        &[
            "thread_rng", "StdRng", "OsRng", "ThreadRng", "from_entropy", "from_rng",
            "gen_ratio", "shuffle", "choose", "choose_multiple", "choose_weighted",
            "sample_iter", "SliceRandom", "IteratorRandom", "try_fill",
        ],
    ),
    ("proptest", &["prop_compose", "prop_assert_ne", "prop_recursive", "TestRunner"]),
    ("criterion", &["Throughput", "PlotConfiguration", "SamplingMode", "async_executor"]),
];

/// Identifier keywords that rule out "expression followed by `[`" indexing.
const EXPR_BREAK_KEYWORDS: &[&str] = &[
    "return", "break", "continue", "in", "else", "match", "let", "mut", "ref", "move", "as",
];

/// One entry of the grandfathered-site allowlist.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule code (`RUSH-L003`).
    pub code: String,
    /// Path suffix the finding's file must end with.
    pub path_suffix: String,
    /// Substring the offending source line must contain.
    pub line_substr: String,
    /// One-line justification (informational).
    pub justification: String,
}

/// Parsed `xtask-lint.allow` file.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse the pipe-separated allowlist format:
    /// `CODE|path-suffix|line-substring|justification`. `#` starts a comment.
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.splitn(4, '|').collect();
            if parts.len() >= 3 {
                entries.push(AllowEntry {
                    code: parts[0].trim().to_ascii_uppercase(),
                    path_suffix: parts[1].trim().to_string(),
                    line_substr: parts[2].trim().to_string(),
                    justification: parts.get(3).map(|s| s.trim().to_string()).unwrap_or_default(),
                });
            }
        }
        Allowlist { entries }
    }

    /// Does any entry cover this (code, file, source-line) triple?
    pub fn covers(&self, code: &str, file: &str, line_text: &str) -> bool {
        self.entries.iter().any(|e| {
            e.code == code && file.ends_with(&e.path_suffix) && line_text.contains(&e.line_substr)
        })
    }
}

/// Implemented API surface of one vendored shim crate, lexed from its source.
#[derive(Debug)]
pub struct ShimApi {
    /// Crate name (`rand`, ...).
    pub name: String,
    /// Every identifier the shim defines (items, trait methods, macros,
    /// re-exports). A superset is fine: false negatives only.
    pub idents: BTreeSet<String>,
}

/// Collect the defined-name surface of a shim from its lexed sources.
/// Picks up `fn`/`struct`/`enum`/`trait`/`mod`/`type`/`const`/`static` names,
/// `macro_rules!` names and every identifier inside `pub use` trees.
pub fn collect_api(lexed: &Lexed, out: &mut BTreeSet<String>) {
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "fn" | "struct" | "enum" | "trait" | "mod" | "type" | "const" | "static" => {
                    if let Some(next) = toks.get(i + 1) {
                        if next.kind == TokKind::Ident {
                            out.insert(next.text.clone());
                        }
                    }
                }
                "macro_rules" => {
                    // macro_rules ! name
                    if let (Some(bang), Some(name)) = (toks.get(i + 1), toks.get(i + 2)) {
                        if bang.is_punct("!") && name.kind == TokKind::Ident {
                            out.insert(name.text.clone());
                        }
                    }
                }
                "use" => {
                    // Only harvest re-exports (`pub use ...`): everything in the
                    // tree becomes part of the public path surface.
                    let public = i > 0 && toks[i - 1].is_ident("pub");
                    let mut j = i + 1;
                    while j < toks.len() && !toks[j].is_punct(";") {
                        if public && toks[j].kind == TokKind::Ident {
                            out.insert(toks[j].text.clone());
                        }
                        j += 1;
                    }
                    i = j;
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// Find the matching close delimiter for the open delimiter at `open_idx`.
fn match_delim(toks: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Is this attribute body (`tokens between [ and ]`) test-gating?
fn is_test_attr(inner: &[Token]) -> bool {
    if inner.len() == 1 && inner[0].is_ident("test") {
        return true; // #[test]
    }
    if inner.first().map(|t| t.is_ident("cfg") || t.is_ident("cfg_attr")) != Some(true) {
        return false;
    }
    for (j, t) in inner.iter().enumerate() {
        if t.is_ident("test") {
            // Negated occurrence: `not ( test`.
            let negated = j >= 2 && inner[j - 1].is_punct("(") && inner[j - 2].is_ident("not");
            if !negated {
                return true;
            }
        }
    }
    false
}

/// Per-token mask: true when the token lives inside test-gated code
/// (`#[cfg(test)]` items/modules or `#[test]` functions).
pub fn test_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct("#") && toks.get(i + 1).map(|t| t.is_punct("[")) == Some(true) {
            if let Some(close) = match_delim(toks, i + 1, "[", "]") {
                if is_test_attr(&toks[i + 2..close]) {
                    // Skip trailing attributes on the same item.
                    let mut j = close + 1;
                    while toks.get(j).map(|t| t.is_punct("#")) == Some(true)
                        && toks.get(j + 1).map(|t| t.is_punct("[")) == Some(true)
                    {
                        match match_delim(toks, j + 1, "[", "]") {
                            Some(c) => j = c + 1,
                            None => break,
                        }
                    }
                    // The gated item ends at its matching `}` or at `;`.
                    let mut k = j;
                    let mut end = None;
                    while k < toks.len() {
                        if toks[k].is_punct("{") {
                            end = match_delim(toks, k, "{", "}");
                            break;
                        }
                        if toks[k].is_punct(";") {
                            end = Some(k);
                            break;
                        }
                        k += 1;
                    }
                    if let Some(e) = end {
                        for m in mask.iter_mut().take(e.min(toks.len() - 1) + 1).skip(i) {
                            *m = true;
                        }
                    }
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// One source file handed to the rule engine.
pub struct FileInput<'a> {
    /// Path relative to the scan root (`/` separators).
    pub rel_path: String,
    /// Path relative to the owning crate directory.
    pub crate_rel: String,
    /// The owning crate's parsed manifest.
    pub manifest: &'a Manifest,
    /// Raw source (for allowlist line matching).
    pub src: &'a str,
    /// Lexed source.
    pub lexed: &'a Lexed,
}

impl FileInput<'_> {
    /// Lives under `tests/`, `benches/` or `examples/` — never library code.
    pub(crate) fn is_test_tree(&self) -> bool {
        self.crate_rel.starts_with("tests/")
            || self.crate_rel.starts_with("benches/")
            || self.crate_rel.starts_with("examples/")
    }

    /// Library code: inside `src/` but not a binary target.
    pub(crate) fn is_library(&self) -> bool {
        self.crate_rel.starts_with("src/")
            && !self.crate_rel.starts_with("src/bin/")
            && self.crate_rel != "src/main.rs"
    }
}

/// The rule engine. Holds cross-file state (shim API sets, allowlist).
pub struct Engine<'a> {
    /// API surfaces of shims found in the scanned tree.
    pub shims: &'a [ShimApi],
    /// Grandfathered-site allowlist.
    pub allow: &'a Allowlist,
}

impl Engine<'_> {
    /// Run every applicable rule over one file, appending to `report`.
    pub fn check_file(&self, f: &FileInput<'_>, report: &mut Report) {
        let toks = &f.lexed.tokens;
        let mask = test_mask(toks);
        let pragmas = pragma_lines(f);
        let bound_lines = bound_comment_lines(f);
        let lines: Vec<&str> = f.src.lines().collect();

        let mut pending: Vec<Finding> = Vec::new();
        let mut emit = |rule: Rule, line: u32, message: String| {
            pending.push(Finding { rule, file: f.rel_path.clone(), line, message });
        };

        let is_shim_crate = SHIM_NAMES.contains(&f.manifest.name.as_str());
        let in_test = |i: usize| mask.get(i).copied().unwrap_or(false);

        // ---- RUSH-L001: determinism ------------------------------------
        if f.manifest.deterministic && f.is_library() {
            for (i, t) in toks.iter().enumerate() {
                if in_test(i) || t.kind != TokKind::Ident {
                    continue;
                }
                match t.text.as_str() {
                    "HashMap" | "HashSet" => emit(
                        Rule::Determinism,
                        t.line,
                        format!("`{}` has nondeterministic iteration order; use BTreeMap/BTreeSet or an index-keyed structure", t.text),
                    ),
                    "hash_map" | "hash_set" => emit(
                        Rule::Determinism,
                        t.line,
                        format!("import of `std::collections::{}` in a determinism-critical crate", t.text),
                    ),
                    _ => {}
                }
            }
        }

        // ---- RUSH-L002: float hygiene ----------------------------------
        if !is_shim_crate {
            for i in 0..toks.len() {
                if in_test(i) || f.is_test_tree() {
                    continue;
                }
                let t = &toks[i];
                if t.is_punct("==") || t.is_punct("!=") {
                    // Right operand may carry a unary minus: `x == -1.0`.
                    let right = if toks.get(i + 1).map(|n| n.is_punct("-")) == Some(true) {
                        toks.get(i + 2)
                    } else {
                        toks.get(i + 1)
                    };
                    let float_neighbor = (i > 0 && toks[i - 1].kind == TokKind::Float)
                        || right.map(|n| n.kind == TokKind::Float) == Some(true);
                    if float_neighbor {
                        emit(
                            Rule::FloatHygiene,
                            t.line,
                            format!("exact `{}` against a float literal; compare with a tolerance", t.text),
                        );
                    }
                }
                if t.is_ident("partial_cmp") {
                    if let Some(open) = toks.get(i + 1).filter(|n| n.is_punct("(")).map(|_| i + 1) {
                        if let Some(close) = match_delim(toks, open, "(", ")") {
                            let dot = toks.get(close + 1).map(|n| n.is_punct(".")) == Some(true);
                            let method = toks.get(close + 2);
                            if dot {
                                if let Some(m) = method {
                                    if m.is_ident("unwrap") || m.is_ident("expect") {
                                        emit(
                                            Rule::FloatHygiene,
                                            t.line,
                                            format!(
                                                "`partial_cmp(..).{}()` panics on NaN; use `f64::total_cmp`",
                                                m.text
                                            ),
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        // ---- RUSH-L003: panic hygiene ----------------------------------
        if f.manifest.library_hygiene && f.is_library() {
            for i in 0..toks.len() {
                if in_test(i) {
                    continue;
                }
                let t = &toks[i];
                if t.kind != TokKind::Ident && !t.is_punct("[") {
                    continue;
                }
                match t.text.as_str() {
                    "unwrap" | "expect" => {
                        let is_method = i > 0 && toks[i - 1].is_punct(".");
                        let called = toks.get(i + 1).map(|n| n.is_punct("(")) == Some(true);
                        if is_method && called {
                            emit(
                                Rule::PanicHygiene,
                                t.line,
                                format!("`.{}()` in library code; return Result/Option or justify via pragma/allowlist", t.text),
                            );
                        }
                    }
                    "panic" | "unreachable" | "todo" | "unimplemented"
                        if t.kind == TokKind::Ident
                            && toks.get(i + 1).map(|n| n.is_punct("!")) == Some(true) =>
                    {
                        emit(
                            Rule::PanicHygiene,
                            t.line,
                            format!("`{}!` in library code; return an error or justify via pragma/allowlist", t.text),
                        );
                    }
                    "[" => {
                        // `expr[<int literal>]` without a bound comment.
                        let prev_ok = i > 0
                            && (toks[i - 1].is_punct("]")
                                || toks[i - 1].is_punct(")")
                                || (toks[i - 1].kind == TokKind::Ident
                                    && !EXPR_BREAK_KEYWORDS.contains(&toks[i - 1].text.as_str())));
                        let lit = toks.get(i + 1).filter(|n| n.kind == TokKind::Int);
                        let closed = toks.get(i + 2).map(|n| n.is_punct("]")) == Some(true);
                        if prev_ok && lit.is_some() && closed {
                            let l = t.line;
                            if !bound_lines.contains(&l) && !bound_lines.contains(&l.saturating_sub(1)) {
                                emit(
                                    Rule::PanicHygiene,
                                    l,
                                    format!(
                                        "literal index `[{}]` without a bound comment; document why it is in range",
                                        lit.map(|n| n.text.as_str()).unwrap_or("?")
                                    ),
                                );
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        // ---- RUSH-L004: feature-gate hygiene ---------------------------
        if !f.manifest.name.is_empty() {
            let mut i = 0usize;
            while i < toks.len() {
                let t = &toks[i];
                if t.kind == TokKind::Ident && (t.text == "cfg" || t.text == "cfg_attr") {
                    // cfg( ... )  or  cfg!( ... )
                    let mut open = i + 1;
                    if toks.get(open).map(|n| n.is_punct("!")) == Some(true) {
                        open += 1;
                    }
                    if toks.get(open).map(|n| n.is_punct("(")) == Some(true) {
                        if let Some(close) = match_delim(toks, open, "(", ")") {
                            let mut j = open + 1;
                            while j + 2 < close + 1 && j + 2 <= close {
                                if toks[j].is_ident("feature")
                                    && toks[j + 1].is_punct("=")
                                    && toks[j + 2].kind == TokKind::Str
                                {
                                    let raw = toks[j + 2].text.trim_matches('"');
                                    if !f.manifest.features.contains(raw) {
                                        emit(
                                            Rule::FeatureGate,
                                            toks[j + 2].line,
                                            format!(
                                                "feature `{}` is not declared in [features] of crate `{}`",
                                                raw, f.manifest.name
                                            ),
                                        );
                                    }
                                }
                                j += 1;
                            }
                            i = close + 1;
                            continue;
                        }
                    }
                }
                i += 1;
            }
        }

        // ---- RUSH-L005: shim drift -------------------------------------
        if !is_shim_crate {
            let mentions: BTreeSet<&str> = SHIM_NAMES
                .iter()
                .copied()
                .filter(|name| toks.iter().any(|t| t.is_ident(name)))
                .collect();
            // Path checks against the lexed shim API (when the shim is in-tree).
            for api in self.shims {
                if !mentions.contains(api.name.as_str()) {
                    continue;
                }
                let mut i = 0usize;
                while i < toks.len() {
                    let root_here = toks[i].is_ident(&api.name)
                        && (i == 0 || !(toks[i - 1].is_punct("::") || toks[i - 1].is_punct(".")))
                        && toks.get(i + 1).map(|n| n.is_punct("::")) == Some(true);
                    if root_here {
                        let (idents, consumed) = walk_path_tree(toks, i + 2);
                        for (ident, line) in idents {
                            if !api.idents.contains(&ident) {
                                emit(
                                    Rule::ShimDrift,
                                    line,
                                    format!(
                                        "`{}::...::{}` is not implemented by the vendored `{}` shim",
                                        api.name, ident, api.name
                                    ),
                                );
                            }
                        }
                        i = consumed;
                        continue;
                    }
                    i += 1;
                }
            }
            // Curated denylist of well-known upstream API the shims omit.
            for (shim, denied) in SHIM_DENYLIST {
                if !mentions.contains(shim) {
                    continue;
                }
                for (i, t) in toks.iter().enumerate() {
                    if t.kind != TokKind::Ident || !denied.contains(&t.text.as_str()) {
                        continue;
                    }
                    let type_like = t.text.chars().next().map(|c| c.is_uppercase()) == Some(true);
                    let method_or_call = (i > 0 && toks[i - 1].is_punct("."))
                        || toks.get(i + 1).map(|n| n.is_punct("(")) == Some(true);
                    if type_like || method_or_call {
                        emit(
                            Rule::ShimDrift,
                            t.line,
                            format!("`{}` is upstream `{}` API the vendored shim does not implement", t.text, shim),
                        );
                    }
                }
            }
        }

        // ---- RUSH-L006: planner layering -------------------------------
        if !PLANNER_OWNER_CRATES.contains(&f.manifest.name.as_str()) && f.is_library() {
            for (i, t) in toks.iter().enumerate() {
                if in_test(i) || t.kind != TokKind::Ident {
                    continue;
                }
                if PLANNER_INTERNAL_IDENTS.contains(&t.text.as_str()) {
                    emit(
                        Rule::PlannerLayering,
                        t.line,
                        format!(
                            "`{}` is planner-kernel internal API; drive planning through `rush_planner::PlannerCore`",
                            t.text
                        ),
                    );
                }
            }
        }

        // ---- RUSH-L007: full-rebuild entry points ----------------------
        if !FULL_REBUILD_OWNER_CRATES.contains(&f.manifest.name.as_str()) && f.is_library() {
            for (i, t) in toks.iter().enumerate() {
                if in_test(i) || t.kind != TokKind::Ident {
                    continue;
                }
                if FULL_REBUILD_IDENTS.contains(&t.text.as_str()) {
                    emit(
                        Rule::FullRebuild,
                        t.line,
                        format!(
                            "`{}` rebuilds the plan from scratch; steady-state callers take the delta path (`compute_plan_incremental` via `rush_planner::PlannerCore`)",
                            t.text
                        ),
                    );
                }
            }
        }

        // ---- RUSH-L008: shard isolation --------------------------------
        if !SHARD_OWNER_CRATES.contains(&f.manifest.name.as_str()) && f.is_library() {
            for (i, t) in toks.iter().enumerate() {
                if in_test(i) || t.kind != TokKind::Ident {
                    continue;
                }
                if SHARD_INTERNAL_IDENTS.contains(&t.text.as_str()) {
                    emit(
                        Rule::ShardIsolation,
                        t.line,
                        format!(
                            "`{}` hands out a raw per-shard planner; read merged state and route events through the `ShardedPlanner` API",
                            t.text
                        ),
                    );
                }
            }
        }

        // ---- suppression: pragmas and allowlist ------------------------
        for finding in pending {
            let code = finding.rule.code();
            let pragma_hit = [finding.line, finding.line.saturating_sub(1)]
                .iter()
                .any(|l| pragmas.get(l).map(|codes| codes.contains(code)) == Some(true));
            let line_text = lines
                .get(finding.line.saturating_sub(1) as usize)
                .copied()
                .unwrap_or("");
            if pragma_hit || self.allow.covers(code, &finding.file, line_text) {
                report.suppressed += 1;
            } else {
                report.findings.push(finding);
            }
        }
    }
}

/// Walk a `::`-path (optionally with a use-tree `{a, b::c}`) starting at
/// `start` (the token after the leading `name::`). Returns the identifiers to
/// validate (with their lines) and the index to resume scanning from.
fn walk_path_tree(toks: &[Token], start: usize) -> (Vec<(String, u32)>, usize) {
    let mut idents = Vec::new();
    let mut i = start;
    let mut depth = 0usize;
    let mut after_as = false;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "as" => after_as = true,
                "self" | "super" | "crate" | "_" => after_as = false,
                _ => {
                    if !after_as {
                        idents.push((t.text.clone(), t.line));
                    }
                    after_as = false;
                }
            }
            i += 1;
            continue;
        }
        if t.is_punct("::") || t.is_punct(",") || t.is_punct("*") {
            i += 1;
            continue;
        }
        if t.is_punct("{") {
            // Only a use-tree group directly after `::` belongs to the path.
            if i > start && toks[i - 1].is_punct("::") {
                depth += 1;
                i += 1;
                continue;
            }
            break;
        }
        if t.is_punct("}") {
            if depth == 0 {
                break;
            }
            depth -= 1;
            i += 1;
            continue;
        }
        break;
    }
    (idents, i)
}

/// Map of line → rule codes allowed by `// rush-lint: allow(CODE, ...)`
/// pragmas. A pragma covers its own line and the line after it.
pub(crate) fn pragma_lines(f: &FileInput<'_>) -> BTreeMap<u32, BTreeSet<&'static str>> {
    let mut map: BTreeMap<u32, BTreeSet<&'static str>> = BTreeMap::new();
    for c in &f.lexed.comments {
        let Some(pos) = c.text.find("rush-lint:") else { continue };
        let rest = &c.text[pos + "rush-lint:".len()..];
        let Some(open) = rest.find("allow(") else { continue };
        let after = &rest[open + "allow(".len()..];
        let Some(close) = after.find(')') else { continue };
        for code in after[..close].split(',') {
            if let Some(rule) = Rule::from_code(code.trim()) {
                map.entry(c.line).or_default().insert(rule.code());
            }
        }
    }
    map
}

/// Lines carrying a comment that documents a bound (for the literal-index
/// rule): any comment containing "bound" (case-insensitive).
pub(crate) fn bound_comment_lines(f: &FileInput<'_>) -> BTreeSet<u32> {
    f.lexed
        .comments
        .iter()
        .filter(|c| c.text.to_ascii_lowercase().contains("bound"))
        .map(|c| c.line)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn det_manifest() -> Manifest {
        crate::manifest::parse_str(
            "[package]\nname = \"rush-core\"\n[features]\nserde = []\n\
             [package.metadata.rush-lint]\ndeterministic = true\nlibrary-hygiene = true\n",
        )
    }

    fn run(src: &str, manifest: &Manifest, crate_rel: &str) -> Report {
        let lexed = lex(src);
        let allow = Allowlist::default();
        let engine = Engine { shims: &[], allow: &allow };
        let mut report = Report::default();
        engine.check_file(
            &FileInput {
                rel_path: format!("crates/x/{crate_rel}"),
                crate_rel: crate_rel.to_string(),
                manifest,
                src,
                lexed: &lexed,
            },
            &mut report,
        );
        report.finalize();
        report
    }

    #[test]
    fn hashmap_flagged_outside_tests_only() {
        let m = det_manifest();
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\nmod tests { use std::collections::HashMap; fn f() { let _x: HashMap<u8, u8>; } }\n";
        let r = run(src, &m, "src/lib.rs");
        assert_eq!(r.findings.iter().filter(|f| f.rule == Rule::Determinism).count(), 1);
        assert_eq!(r.findings[0].line, 1);
    }

    #[test]
    fn float_eq_and_partial_cmp_flagged() {
        let m = det_manifest();
        let src = "fn f(x: f64) -> bool { x == 1.0 }\n\
                   fn g(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }\n\
                   fn h(a: f64, b: f64) { a.partial_cmp(&b).expect(\"cmp\"); }\n\
                   fn ok(a: f64, b: f64) { a.total_cmp(&b); }\n";
        let r = run(src, &m, "src/lib.rs");
        assert_eq!(r.findings.iter().filter(|f| f.rule == Rule::FloatHygiene).count(), 3);
    }

    #[test]
    fn pragma_suppresses() {
        let m = det_manifest();
        let src = "// rush-lint: allow(RUSH-L002): sentinel compare\nfn f(x: f64) -> bool { x == 1.0 }\n";
        let r = run(src, &m, "src/lib.rs");
        assert!(r.findings.is_empty());
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn panic_hygiene_scopes() {
        let m = det_manifest();
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g() { panic!(\"boom\"); }\n";
        let lib = run(src, &m, "src/lib.rs");
        assert_eq!(lib.findings.iter().filter(|f| f.rule == Rule::PanicHygiene).count(), 2);
        // Same source in a bench target: no findings.
        let bench = run(src, &m, "benches/b.rs");
        assert!(bench.findings.iter().all(|f| f.rule != Rule::PanicHygiene));
        // Binary target: no findings.
        let bin = run(src, &m, "src/bin/tool.rs");
        assert!(bin.findings.iter().all(|f| f.rule != Rule::PanicHygiene));
    }

    #[test]
    fn literal_index_needs_bound_comment() {
        let m = det_manifest();
        let flagged = run("fn f(xs: &[u8]) -> u8 { xs[0] }\n", &m, "src/lib.rs");
        assert_eq!(flagged.findings.iter().filter(|f| f.rule == Rule::PanicHygiene).count(), 1);
        let ok = run(
            "fn f(xs: &[u8]) -> u8 {\n    // bound: caller guarantees non-empty\n    xs[0]\n}\n",
            &m,
            "src/lib.rs",
        );
        assert!(ok.findings.iter().all(|f| f.rule != Rule::PanicHygiene));
        // Array literals are not indexing.
        let arr = run("fn f() -> [u8; 1] { [0] }\n", &m, "src/lib.rs");
        assert!(arr.findings.iter().all(|f| f.rule != Rule::PanicHygiene));
    }

    #[test]
    fn undeclared_feature_flagged() {
        let m = det_manifest();
        let src = "#[cfg(feature = \"serde\")]\nfn a() {}\n#[cfg(feature = \"paralel\")]\nfn b() {}\n";
        let r = run(src, &m, "src/lib.rs");
        let fg: Vec<_> = r.findings.iter().filter(|f| f.rule == Rule::FeatureGate).collect();
        assert_eq!(fg.len(), 1);
        assert!(fg[0].message.contains("paralel"));
    }

    #[test]
    fn shim_path_and_denylist() {
        let m = det_manifest();
        let mut idents = BTreeSet::new();
        collect_api(&lex("pub mod rngs { pub struct SmallRng; }\npub trait Rng { fn gen_range(&mut self); }"), &mut idents);
        let shims = [ShimApi { name: "rand".into(), idents }];
        let allow = Allowlist::default();
        let engine = Engine { shims: &shims, allow: &allow };
        let src = "use rand::rngs::SmallRng;\nuse rand::rngs::StdRng;\nfn f(v: &mut Vec<u8>, rng: &mut SmallRng) { v.shuffle(rng); }\n";
        let lexed = lex(src);
        let mut report = Report::default();
        engine.check_file(
            &FileInput {
                rel_path: "crates/x/src/lib.rs".into(),
                crate_rel: "src/lib.rs".into(),
                manifest: &m,
                src,
                lexed: &lexed,
            },
            &mut report,
        );
        report.finalize();
        let drift: Vec<_> = report.findings.iter().filter(|f| f.rule == Rule::ShimDrift).collect();
        // StdRng via path check (x2: path walk + type-like denylist) and shuffle via denylist.
        assert!(drift.iter().any(|f| f.message.contains("StdRng")));
        assert!(drift.iter().any(|f| f.message.contains("shuffle")));
        assert!(drift.iter().all(|f| !f.message.contains("SmallRng")));
    }

    #[test]
    fn planner_internals_flagged_outside_owner_crates() {
        let outsider = crate::manifest::parse_str(
            "[package]\nname = \"rush-serve\"\n\
             [package.metadata.rush-lint]\ndeterministic = false\nlibrary-hygiene = false\n",
        );
        let src = "use rush_core::plan::{compute_plan_cached, PlanCache};\n\
                   pub struct S { cache: PlanCache }\n\
                   #[cfg(test)]\nmod tests { use rush_core::plan::PlanCache; }\n";
        let r = run(src, &outsider, "src/lib.rs");
        let hits: Vec<_> =
            r.findings.iter().filter(|f| f.rule == Rule::PlannerLayering).collect();
        assert_eq!(hits.len(), 3, "two idents on line 1 + field type on line 2: {hits:#?}");
        assert!(hits.iter().all(|f| f.line <= 2), "test-gated use is exempt");
        // The owning crates may reference the internals freely.
        for owner in super::PLANNER_OWNER_CRATES {
            let m = crate::manifest::parse_str(&format!(
                "[package]\nname = \"{owner}\"\n\
                 [package.metadata.rush-lint]\ndeterministic = true\nlibrary-hygiene = true\n"
            ));
            let r = run("pub fn f(c: &mut PlanCache) { compute_plan_cached(c); }\n", &m, "src/lib.rs");
            assert!(r.findings.iter().all(|f| f.rule != Rule::PlannerLayering), "{owner}");
        }
        // Bench/bin targets are not library code.
        let bench = run(src, &outsider, "benches/b.rs");
        assert!(bench.findings.iter().all(|f| f.rule != Rule::PlannerLayering));
        let bin = run(src, &outsider, "src/bin/tool.rs");
        assert!(bin.findings.iter().all(|f| f.rule != Rule::PlannerLayering));
    }

    #[test]
    fn full_rebuild_flagged_outside_core() {
        let outsider = crate::manifest::parse_str(
            "[package]\nname = \"rush-serve\"\n\
             [package.metadata.rush-lint]\ndeterministic = false\nlibrary-hygiene = false\n",
        );
        let src = "use rush_core::plan::compute_plan;\n\
                   use rush_core::onion::peel;\n\
                   use rush_core::mapping::map_continuous;\n\
                   pub fn hot(s: &mut S) { s.plan = compute_plan(&s.cfg, s.cap, &s.jobs); }\n\
                   #[cfg(test)]\nmod tests { use rush_core::plan::compute_plan; }\n";
        let r = run(src, &outsider, "src/lib.rs");
        let hits: Vec<_> = r.findings.iter().filter(|f| f.rule == Rule::FullRebuild).collect();
        assert_eq!(hits.len(), 4, "three use-sites + one call, test module exempt: {hits:#?}");
        // The delta-path identifiers are distinct tokens and never flagged.
        let delta = run(
            "use rush_core::plan::compute_plan_incremental;\n\
             use rush_core::onion::peel_incremental;\n\
             use rush_core::mapping::map_continuous_incremental;\n",
            &outsider,
            "src/lib.rs",
        );
        assert!(delta.findings.iter().all(|f| f.rule != Rule::FullRebuild));
        // rush-core (full pipeline + naive oracle) may reference them freely.
        let core = run(src, &det_manifest(), "src/lib.rs");
        assert!(core.findings.iter().all(|f| f.rule != Rule::FullRebuild));
        // Bench/bin targets are where the full rebuild belongs: exempt.
        let bench = run(src, &outsider, "benches/b.rs");
        assert!(bench.findings.iter().all(|f| f.rule != Rule::FullRebuild));
        let bin = run(src, &outsider, "src/bin/tool.rs");
        assert!(bin.findings.iter().all(|f| f.rule != Rule::FullRebuild));
    }

    #[test]
    fn shard_escape_hatch_flagged_outside_planner() {
        let outsider = crate::manifest::parse_str(
            "[package]\nname = \"rush-serve\"\n\
             [package.metadata.rush-lint]\ndeterministic = false\nlibrary-hygiene = false\n",
        );
        let src = "pub fn poke(p: &rush_planner::ShardedPlanner) -> u32 {\n\
                   p.shard_core(0).capacity()\n\
                   }\n\
                   #[cfg(test)]\nmod tests { fn t(p: &rush_planner::ShardedPlanner) { p.shard_core(0); } }\n";
        let r = run(src, &outsider, "src/lib.rs");
        let hits: Vec<_> = r.findings.iter().filter(|f| f.rule == Rule::ShardIsolation).collect();
        assert_eq!(hits.len(), 1, "library site flagged, test-gated site exempt: {hits:#?}");
        // The owning crate may hand out shard handles freely.
        let owner = crate::manifest::parse_str(
            "[package]\nname = \"rush-planner\"\n\
             [package.metadata.rush-lint]\ndeterministic = false\nlibrary-hygiene = true\n",
        );
        let r = run("pub fn shard_core(&self, i: usize) -> &PlannerCore { &self.shards[i] }\n", &owner, "src/sharded.rs");
        assert!(r.findings.iter().all(|f| f.rule != Rule::ShardIsolation));
        // Tests/benches/bins are where per-shard inspection belongs: exempt.
        let bench = run(src, &outsider, "benches/b.rs");
        assert!(bench.findings.iter().all(|f| f.rule != Rule::ShardIsolation));
        let bin = run(src, &outsider, "src/bin/tool.rs");
        assert!(bin.findings.iter().all(|f| f.rule != Rule::ShardIsolation));
    }

    #[test]
    fn allowlist_covers_by_suffix_and_substring() {
        let allow = Allowlist::parse(
            "# grandfathered\nRUSH-L003|src/lib.rs|x.unwrap()|seed code predates rule\n",
        );
        assert!(allow.covers("RUSH-L003", "crates/x/src/lib.rs", "let y = x.unwrap();"));
        assert!(!allow.covers("RUSH-L003", "crates/x/src/other.rs", "let y = x.unwrap();"));
        assert!(!allow.covers("RUSH-L002", "crates/x/src/lib.rs", "let y = x.unwrap();"));
    }
}

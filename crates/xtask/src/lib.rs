//! `xtask` — offline workspace automation for RUSH.
//!
//! Two subcommands: `lint`, a from-scratch, registry-free static-analysis
//! pass enforcing the workspace's RUSH-specific rules (determinism, float
//! hygiene, panic hygiene, feature-gate hygiene, shim drift, planner
//! layering, full-rebuild containment and shard isolation — see `cargo
//! xtask lint --explain RUSH-L001` … `RUSH-L008`), and `bench-gate`, the
//! fig5 steady-state regression gate CI runs against the checked-in
//! benchmark numbers, plus its `--sharded` scaling-floor mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_gate;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use manifest::Manifest;
use report::Report;
use rules::{Allowlist, Engine, FileInput, ShimApi, SHIM_NAMES};

/// Directory names never descended into during the scan.
const SKIP_DIRS: &[&str] = &["target", ".git", ".cargo", "fixtures", "node_modules"];

/// Name of the checked-in grandfathered-site allowlist at the scan root.
pub const ALLOWLIST_FILE: &str = "xtask-lint.allow";

/// Recursively collect files under `dir`, skipping [`SKIP_DIRS`].
fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(&p, out);
        } else {
            out.push(p);
        }
    }
}

/// One discovered crate: its directory and parsed manifest.
struct CrateInfo {
    dir: PathBuf,
    manifest: Manifest,
}

/// Run the full lint over the tree rooted at `root`.
pub fn lint(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    walk(root, &mut files);

    // Discover crates (any Cargo.toml with a [package] name).
    let mut crates: Vec<CrateInfo> = Vec::new();
    for f in &files {
        if f.file_name().and_then(|n| n.to_str()) == Some("Cargo.toml") {
            if let Some(m) = manifest::parse(f) {
                if !m.name.is_empty() {
                    crates.push(CrateInfo { dir: f.parent().unwrap_or(root).to_path_buf(), manifest: m });
                }
            }
        }
    }
    // Longest-prefix owner wins for nested crates.
    crates.sort_by_key(|c| std::cmp::Reverse(c.dir.components().count()));

    // Lex the shim crates found in-tree to build their API surfaces.
    let mut shims: Vec<ShimApi> = Vec::new();
    for c in &crates {
        if SHIM_NAMES.contains(&c.manifest.name.as_str()) {
            let mut idents = BTreeSet::new();
            for f in &files {
                if f.extension().and_then(|e| e.to_str()) == Some("rs") && f.starts_with(c.dir.join("src")) {
                    if let Ok(src) = std::fs::read_to_string(f) {
                        rules::collect_api(&lexer::lex(&src), &mut idents);
                    }
                }
            }
            shims.push(ShimApi { name: c.manifest.name.clone(), idents });
        }
    }

    let allow_text = std::fs::read_to_string(root.join(ALLOWLIST_FILE)).unwrap_or_default();
    let allow = Allowlist::parse(&allow_text);
    let engine = Engine { shims: &shims, allow: &allow };

    let mut report = Report { crates_scanned: crates.len(), ..Report::default() };

    for f in &files {
        if f.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let Some(owner) = crates.iter().find(|c| f.starts_with(&c.dir)) else { continue };
        let src = match std::fs::read_to_string(f) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let lexed = lexer::lex(&src);
        let rel_path = rel_str(f, root);
        let crate_rel = rel_str(f, &owner.dir);
        report.files_scanned += 1;
        engine.check_file(
            &FileInput { rel_path, crate_rel, manifest: &owner.manifest, src: &src, lexed: &lexed },
            &mut report,
        );
    }

    report.finalize();
    Ok(report)
}

/// `path` relative to `base`, with forward slashes.
fn rel_str(path: &Path, base: &Path) -> String {
    path.strip_prefix(base)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

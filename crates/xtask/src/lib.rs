//! `xtask` — offline workspace automation for RUSH.
//!
//! Two subcommands: `lint`, a from-scratch, registry-free static-analysis
//! pass enforcing the workspace's RUSH-specific rules — eight token-level
//! rules (determinism, float hygiene, panic hygiene, feature-gate hygiene,
//! shim drift, planner layering, full-rebuild containment, shard
//! isolation) plus, under `--deep`, five AST/call-graph rules proved on a
//! workspace model built by the from-scratch recursive-descent parser
//! (panic reachability, slot/capacity arithmetic hygiene, lock
//! discipline, protocol-match exhaustiveness, reactor discipline — see
//! `cargo xtask lint --explain RUSH-L001` … `RUSH-L013`) — and `bench-gate`, the fig5
//! steady-state regression gate CI runs against the checked-in benchmark
//! numbers, plus its `--sharded` scaling-floor mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod bench_gate;
pub mod deep;
pub mod lexer;
pub mod manifest;
pub mod model;
pub mod parser;
pub mod report;
pub mod rules;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::Instant;

use manifest::Manifest;
use model::WorkspaceModel;
use report::Report;
use rules::{Allowlist, Engine, FileInput, ShimApi, SHIM_NAMES};

/// Directory names never descended into during the scan.
const SKIP_DIRS: &[&str] = &["target", ".git", ".cargo", "fixtures", "node_modules"];

/// Name of the checked-in grandfathered-site allowlist at the scan root.
pub const ALLOWLIST_FILE: &str = "xtask-lint.allow";

/// Options for a lint run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintOptions {
    /// Also run the deep (AST + call-graph) rules RUSH-L009 … RUSH-L013.
    pub deep: bool,
}

/// Recursively collect files under `dir`, skipping [`SKIP_DIRS`].
fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(&p, out);
        } else {
            out.push(p);
        }
    }
}

/// One discovered crate: its directory and parsed manifest.
struct CrateInfo {
    dir: PathBuf,
    manifest: Manifest,
}

/// One loaded source file, ready for the engines.
struct LoadedFile {
    rel_path: String,
    crate_rel: String,
    owner: usize,
    src: String,
    lexed: lexer::Lexed,
}

/// Read + lex every `.rs` file that belongs to a crate. Under the
/// `parallel` feature the per-file work fans out across scoped threads
/// (files are independent); results come back in deterministic order
/// either way.
fn load_files(files: &[PathBuf], crates: &[CrateInfo], root: &Path) -> Vec<LoadedFile> {
    let jobs: Vec<(usize, &PathBuf)> = files
        .iter()
        .filter(|f| f.extension().and_then(|e| e.to_str()) == Some("rs"))
        .filter_map(|f| {
            crates
                .iter()
                .position(|c| f.starts_with(&c.dir))
                .map(|owner| (owner, f))
        })
        .collect();

    let load_one = |&(owner, path): &(usize, &PathBuf)| -> Option<LoadedFile> {
        let src = std::fs::read_to_string(path).ok()?;
        let lexed = lexer::lex(&src);
        Some(LoadedFile {
            rel_path: rel_str(path, root),
            crate_rel: rel_str(path, &crates[owner].dir),
            owner,
            src,
            lexed,
        })
    };

    #[cfg(feature = "parallel")]
    {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get()).min(16);
        if jobs.len() > 1 && workers > 1 {
            let chunk = jobs.len().div_ceil(workers);
            let mut slots: Vec<Vec<Option<LoadedFile>>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .chunks(chunk)
                    .map(|part| scope.spawn(move || part.iter().map(load_one).collect::<Vec<_>>()))
                    .collect();
                for h in handles {
                    slots.push(h.join().unwrap_or_default());
                }
            });
            return slots.into_iter().flatten().flatten().collect();
        }
    }
    jobs.iter().filter_map(load_one).collect()
}

/// Run the full lint over the tree rooted at `root` (shallow rules only).
pub fn lint(root: &Path) -> std::io::Result<Report> {
    lint_with(root, LintOptions::default())
}

/// Run the lint over the tree rooted at `root` with explicit options.
pub fn lint_with(root: &Path, opts: LintOptions) -> std::io::Result<Report> {
    let started = Instant::now();
    let mut files = Vec::new();
    walk(root, &mut files);

    // Discover crates (any Cargo.toml with a [package] name).
    let mut crates: Vec<CrateInfo> = Vec::new();
    for f in &files {
        if f.file_name().and_then(|n| n.to_str()) == Some("Cargo.toml") {
            if let Some(m) = manifest::load(f) {
                if !m.name.is_empty() {
                    crates.push(CrateInfo { dir: f.parent().unwrap_or(root).to_path_buf(), manifest: m });
                }
            }
        }
    }
    // Longest-prefix owner wins for nested crates.
    crates.sort_by_key(|c| std::cmp::Reverse(c.dir.components().count()));

    // Lex the shim crates found in-tree to build their API surfaces.
    let mut shims: Vec<ShimApi> = Vec::new();
    for c in &crates {
        if SHIM_NAMES.contains(&c.manifest.name.as_str()) {
            let mut idents = BTreeSet::new();
            for f in &files {
                if f.extension().and_then(|e| e.to_str()) == Some("rs") && f.starts_with(c.dir.join("src")) {
                    if let Ok(src) = std::fs::read_to_string(f) {
                        rules::collect_api(&lexer::lex(&src), &mut idents);
                    }
                }
            }
            shims.push(ShimApi { name: c.manifest.name.clone(), idents });
        }
    }

    let allow_text = std::fs::read_to_string(root.join(ALLOWLIST_FILE)).unwrap_or_default();
    let allow = Allowlist::parse(&allow_text);
    let engine = Engine { shims: &shims, allow: &allow };

    let mut report = Report { crates_scanned: crates.len(), deep: opts.deep, ..Report::default() };

    let loaded = load_files(&files, &crates, root);
    let inputs: Vec<FileInput<'_>> = loaded
        .iter()
        .map(|lf| FileInput {
            rel_path: lf.rel_path.clone(),
            crate_rel: lf.crate_rel.clone(),
            manifest: &crates[lf.owner].manifest,
            src: &lf.src,
            lexed: &lf.lexed,
        })
        .collect();

    for input in &inputs {
        report.files_scanned += 1;
        engine.check_file(input, &mut report);
    }

    if opts.deep {
        let model = WorkspaceModel::build(&inputs);
        deep::check(&model, &allow, &mut report);
    }

    report.finalize();
    report.wall_ms = started.elapsed().as_millis() as u64;
    Ok(report)
}

/// Parse every workspace `.rs` file with the deep-lint parser, returning
/// `(rel_path, structural_errors, recovered_tokens)` per file. The parser
/// self-test pins this to all-zeros over the real workspace.
pub fn parse_workspace(root: &Path) -> std::io::Result<Vec<(String, usize, usize)>> {
    let mut files = Vec::new();
    walk(root, &mut files);
    let mut out = Vec::new();
    for f in &files {
        if f.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let Ok(src) = std::fs::read_to_string(f) else { continue };
        let outcome = parser::parse_file(&lexer::lex(&src));
        out.push((rel_str(f, root), outcome.errors.len(), outcome.recovered.len()));
    }
    Ok(out)
}

/// `path` relative to `base`, with forward slashes.
fn rel_str(path: &Path, base: &Path) -> String {
    path.strip_prefix(base)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

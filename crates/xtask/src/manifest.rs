//! Minimal `Cargo.toml` reader — just enough TOML for the lint rules.
//!
//! We only need: the package name, the declared `[features]` keys (plus
//! implicit features from optional dependencies), and the boolean flags
//! under `[package.metadata.rush-lint]` that opt a crate into rule scopes.

use std::collections::BTreeSet;
use std::path::Path;

/// Parsed subset of a crate manifest.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// `package.name`, empty for a virtual (workspace-only) manifest.
    pub name: String,
    /// Keys of `[features]` plus implicit `optional = true` dependency features.
    pub features: BTreeSet<String>,
    /// `package.metadata.rush-lint.deterministic` — L1 applies.
    pub deterministic: bool,
    /// `package.metadata.rush-lint.library-hygiene` — L3 applies.
    pub library_hygiene: bool,
    /// `package.metadata.rush-lint.entry-points` — function names the
    /// deep lint uses as RUSH-L009 panic-reachability roots.
    pub entry_points: Vec<String>,
    /// `package.metadata.rush-lint.arith-hygiene` — L10 applies to
    /// slot/capacity arithmetic in this crate.
    pub arith_hygiene: bool,
    /// `package.metadata.rush-lint.protocol-enums` — enum names whose
    /// variants L12 requires each protocol surface to cover.
    pub protocol_enums: Vec<String>,
    /// `package.metadata.rush-lint.protocol-surfaces` — crate-relative
    /// source paths L12 checks for variant coverage.
    pub protocol_surfaces: Vec<String>,
    /// `package.metadata.rush-lint.reactor-loops` — event-loop functions
    /// (`Type::name` or bare names) the deep lint uses as RUSH-L013
    /// blocking-reachability roots.
    pub reactor_loops: Vec<String>,
    /// `package.metadata.rush-lint.panic-free` — crate-relative source
    /// paths whose non-test functions RUSH-L013 requires to be panic-free.
    pub panic_free: Vec<String>,
    /// `package.metadata.rush-lint.capacity-authority` — this crate owns a
    /// capacity seam (planner event path or sim engine), so RUSH-L014 does
    /// not fence its calls to the capacity mutators.
    pub capacity_authority: bool,
}

fn unquote(v: &str) -> String {
    let v = v.trim();
    v.trim_matches('"').to_string()
}

/// Parse a single-line TOML list value: `["a", "b"]` → `["a", "b"]`.
fn parse_list(value: &str) -> Vec<String> {
    let inner = value.trim().trim_start_matches('[').trim_end_matches(']');
    inner
        .split(',')
        .map(unquote)
        .filter(|s| !s.is_empty())
        .collect()
}

/// Read and parse a manifest file. Returns `None` when the file cannot be
/// read. (Named `load`, not `parse`, so the deep lint's name-based call
/// graph cannot confuse this offline file reader with the wire-codec
/// `parse` functions reachable from the serve event loops.)
pub fn load(path: &Path) -> Option<Manifest> {
    let text = std::fs::read_to_string(path).ok()?;
    Some(parse_str(&text))
}

/// Parse manifest text (line-oriented; ignores everything we don't need).
pub fn parse_str(text: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').trim().to_string();
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim().trim_matches('"');
        let value = line[eq + 1..].trim();
        match section.as_str() {
            "package" if key == "name" => {
                m.name = unquote(value);
            }
            "features" => {
                m.features.insert(key.to_string());
            }
            "package.metadata.rush-lint" => {
                let on = value == "true";
                match key {
                    "deterministic" => m.deterministic = on,
                    "library-hygiene" => m.library_hygiene = on,
                    "arith-hygiene" => m.arith_hygiene = on,
                    "entry-points" => m.entry_points = parse_list(value),
                    "protocol-enums" => m.protocol_enums = parse_list(value),
                    "protocol-surfaces" => m.protocol_surfaces = parse_list(value),
                    "reactor-loops" => m.reactor_loops = parse_list(value),
                    "panic-free" => m.panic_free = parse_list(value),
                    "capacity-authority" => m.capacity_authority = on,
                    _ => {}
                }
            }
            // Implicit feature from an optional dependency (inline table).
            s if (s == "dependencies"
                || s == "dev-dependencies"
                || s == "build-dependencies"
                || s.starts_with("dependencies.")
                || s.starts_with("target."))
                && value.contains("optional")
                && value.contains("true") =>
            {
                m.features.insert(key.to_string());
            }
            _ => {}
        }
        // `optional = true` inside a `[dependencies.foo]` table.
        if key == "optional" && value == "true" {
            if let Some(dep) = section.strip_prefix("dependencies.") {
                m.features.insert(dep.to_string());
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_name_features_and_metadata() {
        let m = parse_str(
            r#"
[package]
name = "rush-core"
version = "0.1.0"

[features]
serde = []
parallel = []

[dependencies]
rush-prob = { path = "../prob" }
maybe = { path = "../maybe", optional = true }

[package.metadata.rush-lint]
deterministic = true
library-hygiene = true
arith-hygiene = true
entry-points = ["connection_loop", "planner_loop"]
protocol-enums = ["Request", "Response"]
protocol-surfaces = ["src/protocol.rs", "src/server.rs"]
reactor-loops = ["Reactor::run", "Engine::drive"]
panic-free = ["src/binary.rs"]
capacity-authority = true
"#,
        );
        assert_eq!(m.name, "rush-core");
        assert!(m.features.contains("serde"));
        assert!(m.features.contains("parallel"));
        assert!(m.features.contains("maybe"));
        assert!(m.deterministic);
        assert!(m.library_hygiene);
        assert!(m.arith_hygiene);
        assert_eq!(m.entry_points, ["connection_loop", "planner_loop"]);
        assert_eq!(m.protocol_enums, ["Request", "Response"]);
        assert_eq!(m.protocol_surfaces, ["src/protocol.rs", "src/server.rs"]);
        assert_eq!(m.reactor_loops, ["Reactor::run", "Engine::drive"]);
        assert_eq!(m.panic_free, ["src/binary.rs"]);
        assert!(m.capacity_authority);
    }

    #[test]
    fn virtual_manifest_has_no_name() {
        let m = parse_str("[workspace]\nmembers = [\"crates/*\"]\n");
        assert!(m.name.is_empty());
        assert!(!m.deterministic);
    }
}

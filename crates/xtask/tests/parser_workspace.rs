//! Parser self-test: the deep-lint recursive-descent parser must accept
//! every `.rs` file in the real workspace with zero structural errors and
//! zero recovered tokens. Anything less means the workspace model (and so
//! RUSH-L009..L012) is built from an incomplete picture of the code.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

#[test]
fn every_workspace_file_parses_cleanly() {
    let results = xtask::parse_workspace(&workspace_root()).expect("workspace readable");
    assert!(
        results.len() >= 100,
        "expected the full workspace (>= 100 .rs files), scanned {}",
        results.len()
    );
    let dirty: Vec<_> = results
        .iter()
        .filter(|(_, errors, recovered)| *errors > 0 || *recovered > 0)
        .collect();
    assert!(
        dirty.is_empty(),
        "parser must accept 100% of workspace sources; failures (file, errors, recovered): {dirty:#?}"
    );
}

#[test]
fn fixture_corpora_parse_without_structural_errors() {
    // The seeded-violation corpus is still well-formed Rust: the parser
    // may not mistake a lint violation for a syntax problem.
    let fixtures = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let results = xtask::parse_workspace(&fixtures).expect("fixtures readable");
    assert!(!results.is_empty(), "fixture corpus missing");
    let dirty: Vec<_> = results
        .iter()
        .filter(|(_, errors, recovered)| *errors > 0 || *recovered > 0)
        .collect();
    assert!(dirty.is_empty(), "fixture sources must parse cleanly: {dirty:#?}");
}

//! Fixture-based self-tests: the seeded-violation corpus must trip every
//! rule family, the clean corpus must pass with zero findings.

use std::path::PathBuf;

use xtask::report::{Rule, ALL_RULES};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name)
}

fn deep_lint(name: &str) -> xtask::report::Report {
    xtask::lint_with(&fixture(name), xtask::LintOptions { deep: true })
        .expect("fixture tree readable")
}

#[test]
fn violations_corpus_trips_every_rule_family() {
    let report = deep_lint("violations");
    assert!(!report.findings.is_empty(), "seeded corpus must produce findings");
    for &rule in ALL_RULES {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "rule {} not demonstrated by the seeded corpus; findings: {:#?}",
            rule.code(),
            report.findings
        );
    }
}

#[test]
fn deep_corpus_flags_expected_sites() {
    let report = deep_lint("violations");
    let has = |rule: Rule, file_part: &str, msg_part: &str| {
        report
            .findings
            .iter()
            .any(|f| f.rule == rule && f.file.contains(file_part) && f.message.contains(msg_part))
    };
    // L009: each panic kind, with a call-graph witness path.
    assert!(has(Rule::PanicReachability, "panic_entry", "connection_loop -> handle"));
    assert!(has(Rule::PanicReachability, "panic_entry", "`panic!` in `deep_step`"));
    assert!(has(Rule::PanicReachability, "panic_entry", "`.unwrap()` in `handle`"));
    assert!(has(Rule::PanicReachability, "panic_entry", "`[]` indexing in `handle`"));
    // The function never called from the entry point stays silent, as
    // does the test module.
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.file.contains("panic_entry") && f.message.contains("unreached")),
        "{:#?}",
        report.findings
    );
    // L010: slot/capacity operands only; plain names are out of scope.
    assert!(has(Rule::ArithHygiene, "arith", "`-` on `used_slots`"));
    assert!(has(Rule::ArithHygiene, "arith", "`*` on `slot_count`"));
    assert!(has(Rule::ArithHygiene, "arith", "`+=` on `used_slots`"));
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == Rule::ArithHygiene && f.message.contains("plain_math")),
        "{:#?}",
        report.findings
    );
    // L011: the order cycle and the guard held across the socket write.
    assert!(has(Rule::LockDiscipline, "locks", "inconsistent lock order"));
    assert!(has(Rule::LockDiscipline, "locks", "held across blocking I/O `write_all`"));
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == Rule::LockDiscipline && f.message.contains("reply_after_drop")),
        "dropping the guard before the write must silence the rule: {:#?}",
        report.findings
    );
    // L012: the uncovered variant and the wildcard arm, both in codec.rs;
    // the fully-enumerated surface in lib.rs stays silent.
    assert!(has(Rule::ProtocolExhaustiveness, "codec.rs", "`Frame::Bye` is never handled"));
    assert!(has(Rule::ProtocolExhaustiveness, "codec.rs", "wildcard `_` arm"));
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == Rule::ProtocolExhaustiveness && f.file.ends_with("lib.rs")),
        "{:#?}",
        report.findings
    );
    // L013: blocking calls reachable from both root forms (`Type::name`
    // and bare), with witness paths, plus the panics in the declared
    // panic-free codec file. The unreached `join` stays silent.
    assert!(has(Rule::ReactorDiscipline, "reactor", "blocking `sleep`"));
    assert!(has(Rule::ReactorDiscipline, "reactor", "run -> tick -> backoff"));
    assert!(has(Rule::ReactorDiscipline, "reactor", "blocking `recv` in `tick`"));
    assert!(has(Rule::ReactorDiscipline, "reactor", "blocking `write_all` in `drive`"));
    assert!(has(Rule::ReactorDiscipline, "codec.rs", "`.unwrap()`"));
    assert!(has(Rule::ReactorDiscipline, "codec.rs", "`[]` indexing"));
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == Rule::ReactorDiscipline && f.message.contains("maintenance")),
        "blocking in unreached code must stay silent: {:#?}",
        report.findings
    );
    // L014: the direct resize and both free-pool mutators in the
    // non-authority adapter; the pragma-justified dispatch and the
    // test-gated probe stay silent.
    assert!(has(Rule::CapacityFence, "capacity", "`set_capacity` called in `shortcut_resize`"));
    assert!(has(Rule::CapacityFence, "capacity", "`revoke` called in `shortcut_resize`"));
    assert!(has(Rule::CapacityFence, "capacity", "`restore` called in `shortcut_resize`"));
    assert_eq!(
        report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::CapacityFence && f.file.contains("capacity"))
            .count(),
        3,
        "pragma site + test probe exempt: {:#?}",
        report.findings
    );
}

#[test]
fn violations_corpus_flags_expected_sites() {
    let report = xtask::lint(&fixture("violations")).expect("fixture tree readable");
    let has = |rule: Rule, file_part: &str, msg_part: &str| {
        report
            .findings
            .iter()
            .any(|f| f.rule == rule && f.file.contains(file_part) && f.message.contains(msg_part))
    };
    assert!(has(Rule::Determinism, "det_crate", "HashMap"));
    assert!(has(Rule::Determinism, "det_crate", "hash_map"));
    assert!(has(Rule::FloatHygiene, "det_crate", "`==`"));
    assert!(has(Rule::FloatHygiene, "det_crate", "`!=`"));
    assert!(has(Rule::FloatHygiene, "det_crate", "total_cmp"));
    assert!(has(Rule::PanicHygiene, "det_crate", "`.unwrap()`"));
    assert!(has(Rule::PanicHygiene, "det_crate", "`panic!`"));
    assert!(has(Rule::PanicHygiene, "det_crate", "literal index"));
    assert!(has(Rule::FeatureGate, "det_crate", "paralel"));
    assert!(has(Rule::ShimDrift, "consumer", "StdRng"));
    assert!(has(Rule::ShimDrift, "consumer", "from_entropy"));
    assert!(has(Rule::ShimDrift, "consumer", "shuffle"));
    assert!(has(Rule::ShimDrift, "consumer", "thread_rng"));
    assert!(has(Rule::PlannerLayering, "layering", "compute_plan_cached"));
    assert!(has(Rule::PlannerLayering, "layering", "PlanCache"));
    assert!(has(Rule::FullRebuild, "rebuild", "`compute_plan`"));
    assert!(has(Rule::FullRebuild, "rebuild", "`peel`"));
    assert!(has(Rule::FullRebuild, "rebuild", "`map_continuous`"));
    assert!(has(Rule::ShardIsolation, "sharding", "`shard_core`"));
    // The declared feature and the implemented shim path must NOT fire.
    assert!(!has(Rule::FeatureGate, "det_crate", "serde"));
    assert!(!has(Rule::ShimDrift, "consumer", "SmallRng"));
    // The layering fixture's test-gated use of the internals is exempt.
    assert_eq!(
        report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::PlannerLayering && f.file.contains("layering"))
            .count(),
        3,
        "two use-sites + the struct field, test module exempt"
    );
    // The rebuild fixture's test-gated use of the full path is exempt.
    assert_eq!(
        report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::FullRebuild && f.file.contains("rebuild"))
            .count(),
        3,
        "three use-sites, test module exempt"
    );
    // The sharding fixture's test-gated shard probe is exempt.
    assert_eq!(
        report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::ShardIsolation && f.file.contains("sharding"))
            .count(),
        2,
        "two library sites, test module exempt"
    );
    // Test-gated code in the corpus is exempt.
    assert!(report.findings.iter().all(|f| f.line < 44 || !f.file.contains("det_crate")));
}

#[test]
fn clean_corpus_passes_with_suppressions_exercised() {
    // Deep mode so the fixed shapes in `deep_clean` (saturating slot
    // math, consistent lock order, exhaustive protocol matches, panic-free
    // entry point) are checked by the rules they silence.
    let report = deep_lint("clean");
    assert!(
        report.findings.is_empty(),
        "clean corpus must produce no findings, got: {:#?}",
        report.findings
    );
    // The pragma and the allowlist entry are both exercised.
    assert!(report.suppressed >= 2, "expected pragma + allowlist suppressions");
}

#[test]
fn json_report_carries_codes_and_counts() {
    let mut report = xtask::lint(&fixture("violations")).expect("fixture tree readable");
    report.finalize();
    let json = report.render_json();
    for &rule in ALL_RULES {
        assert!(json.contains(rule.code()), "JSON must mention {}", rule.code());
    }
    assert!(json.contains("\"files_scanned\""));
    assert!(json.contains("\"total\""));
}

#[test]
fn explain_text_exists_for_every_rule() {
    for &rule in ALL_RULES {
        let text = rule.explain();
        assert!(text.contains(rule.code()), "explain for {} must cite its code", rule.code());
        assert!(text.len() > 200, "explain for {} should be substantive", rule.code());
    }
}

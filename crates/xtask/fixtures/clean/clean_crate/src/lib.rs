//! Clean corpus: idiomatic RUSH code. `cargo xtask lint` must report zero
//! findings here (pragma- and allowlist-suppressed sites are exercised on
//! purpose). This file is never compiled.

use std::collections::BTreeMap;

pub struct State {
    pub index: BTreeMap<u64, u64>,
}

pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

pub fn ordered(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn head(xs: &[u8]) -> u8 {
    // bound: caller guarantees a non-empty slice
    xs[0]
}

pub fn sentinel(x: f64) -> bool {
    // rush-lint: allow(RUSH-L002): exact sentinel comparison is intended
    x == -1.0
}

pub fn grandfathered(x: Option<u8>) -> u8 {
    x.expect("seed-era invariant")
}

#[cfg(feature = "parallel")]
pub fn fan_out() {}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        assert_eq!(Some(3u8).unwrap(), 3);
    }
}

//! Deep-rule clean fixture: the fixed shape of everything the violations
//! corpus trips, all four deep rules active in one crate.
//!
//! * L009: nothing reachable from `serve_loop` panics or indexes.
//! * L010: slot/capacity arithmetic is saturating.
//! * L011: every function takes `jobs` before `plans`; guards are
//!   dropped before socket writes.
//! * L012: this surface covers every `Frame` variant with no wildcard.
//! * L013: `serve_loop` doubles as a declared reactor loop (nothing it
//!   reaches blocks — `report` and its `write_all` are not called from
//!   it), and the whole file is declared panic-free.

use std::io::Write;
use std::sync::Mutex;

pub enum Frame {
    Hello,
    Data,
    Bye,
}

pub struct Shared {
    pub jobs: Mutex<u64>,
    pub plans: Mutex<u64>,
}

pub fn serve_loop(s: &Shared, frames: &[Frame]) -> u64 {
    let mut total: u64 = 0;
    for f in frames {
        total = total.saturating_add(u64::from(dispatch(f)));
    }
    total.saturating_add(tally(s))
}

pub fn dispatch(f: &Frame) -> u8 {
    match f {
        Frame::Hello => 0,
        Frame::Data => 1,
        Frame::Bye => 2,
    }
}

pub fn free_slots(capacity: u64, used_slots: u64) -> u64 {
    capacity.saturating_sub(used_slots)
}

fn tally(s: &Shared) -> u64 {
    let j = s.jobs.lock().unwrap_or_else(|e| e.into_inner());
    let p = s.plans.lock().unwrap_or_else(|e| e.into_inner());
    j.saturating_add(*p)
}

/// Same `jobs` → `plans` order as `tally`, and the guard is released
/// before the blocking write.
pub fn report(s: &Shared, stream: &mut std::net::TcpStream) {
    let j = s.jobs.lock().unwrap_or_else(|e| e.into_inner());
    let p = s.plans.lock().unwrap_or_else(|e| e.into_inner());
    let bytes = j.saturating_add(*p).to_le_bytes();
    drop(p);
    drop(j);
    stream.write_all(&bytes).ok();
}

//! Clean corpus: rush-core owns the full CA pipeline and the naive oracle —
//! RUSH-L007 exempts it, so the batch entry points may be named freely.
//! This file is never compiled.

pub fn replan_from_scratch(jobs: &[Job], capacity: u32) -> Plan {
    let layers = peel(jobs, capacity);
    let placements = map_continuous(&layers, capacity);
    compute_plan(layers, placements)
}

//! Clean corpus: the planner kernel itself may name `PlanCache` and
//! `compute_plan_cached` — RUSH-L006 exempts the owning crates. This file
//! is never compiled.

pub struct Kernel {
    pub cache: PlanCache,
}

pub fn replan(kernel: &mut Kernel) -> Result<(), ()> {
    compute_plan_cached(&mut kernel.cache)
}

/// RUSH-L014: a capacity-authority crate may drive the resize seam.
pub fn apply_capacity_change(kernel: &mut Kernel, capacity: u32) {
    kernel.set_capacity(capacity);
}

//! Clean corpus: the planner kernel itself may name `PlanCache` and
//! `compute_plan_cached` — RUSH-L006 exempts the owning crates. This file
//! is never compiled.

pub struct Kernel {
    pub cache: PlanCache,
}

pub fn replan(kernel: &mut Kernel) -> Result<(), ()> {
    compute_plan_cached(&mut kernel.cache)
}

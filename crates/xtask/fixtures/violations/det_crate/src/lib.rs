//! Seeded-violation corpus: every line below that names a rule code in a
//! comment must be flagged by that rule. This file is never compiled.

use std::collections::HashMap; // RUSH-L001
use std::collections::hash_map::Entry; // RUSH-L001 (hash_map import)

pub struct State {
    pub index: HashMap<u64, u64>, // RUSH-L001
}

pub fn float_eq(x: f64) -> bool {
    x == 1.0 // RUSH-L002
}

pub fn float_ne(x: f64) -> bool {
    0.5 != x // RUSH-L002
}

pub fn nan_unwrap(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap() // RUSH-L002
}

pub fn nan_expect(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).expect("finite") // RUSH-L002 (and RUSH-L003 expect)
}

pub fn take(x: Option<u8>) -> u8 {
    x.unwrap() // RUSH-L003
}

pub fn boom() {
    panic!("seeded"); // RUSH-L003
}

pub fn head(xs: &[u8]) -> u8 {
    xs[0] // RUSH-L003 (literal index, undocumented)
}

#[cfg(feature = "serde")]
pub fn gated_ok() {} // declared feature: not a finding

#[cfg(feature = "paralel")] // RUSH-L004 (typo, not declared)
pub fn gated_typo() {}

#[cfg(test)]
mod tests {
    // Test code is exempt from L1/L2/L3: none of these may be flagged.
    use std::collections::HashMap;

    #[test]
    fn exempt() {
        let m: HashMap<u8, u8> = HashMap::new();
        assert!(m.len() as f64 == 0.0);
        let _ = Some(1u8).unwrap();
    }
}

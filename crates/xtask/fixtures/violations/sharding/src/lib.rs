//! Seeded RUSH-L008 violations: an adapter reaching into individual planner
//! shards instead of going through the `ShardedPlanner` API. This file is
//! never compiled.

use rush_planner::ShardedPlanner;

pub fn first_shard_capacity(p: &ShardedPlanner) -> u32 {
    p.shard_core(0).capacity() // RUSH-L008 (raw per-shard handle)
}

pub struct ShardWatcher<'a> {
    planner: &'a ShardedPlanner,
}

impl ShardWatcher<'_> {
    pub fn job_count(&self) -> usize {
        // RUSH-L008: per-shard iteration bypasses the merged view.
        (0..self.planner.shard_count()).map(|i| self.planner.shard_core(i).job_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    // Invariant suites may inspect individual shards: not a finding.
    use rush_planner::ShardedPlanner;

    fn probe(p: &ShardedPlanner) -> u32 {
        p.shard_core(0).capacity()
    }
}

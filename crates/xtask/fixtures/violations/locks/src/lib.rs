//! RUSH-L011 fixture: the two classic hazards — an inconsistent global
//! acquisition order (`jobs` before `plans` in one function, the reverse
//! in another) and a guard held across blocking socket I/O.

use std::io::Write;
use std::sync::Mutex;

pub struct Shared {
    pub jobs: Mutex<u32>,
    pub plans: Mutex<u32>,
}

pub fn jobs_then_plans(s: &Shared) -> u32 {
    let j = s.jobs.lock().unwrap();
    let p = s.plans.lock().unwrap();
    *j + *p
}

pub fn plans_then_jobs(s: &Shared) -> u32 {
    let p = s.plans.lock().unwrap();
    let j = s.jobs.lock().unwrap();
    *p + *j
}

pub fn reply_under_lock(s: &Shared, stream: &mut std::net::TcpStream) {
    let j = s.jobs.lock().unwrap();
    stream.write_all(&j.to_le_bytes()).ok();
}

/// Dropping the guard before the write is the fixed shape: no finding.
pub fn reply_after_drop(s: &Shared, stream: &mut std::net::TcpStream) {
    let j = s.jobs.lock().unwrap();
    let bytes = j.to_le_bytes();
    drop(j);
    stream.write_all(&bytes).ok();
}

//! RUSH-L010 fixture: bare `+`/`-`/`*` on slot/capacity quantities in a
//! crate that opted into kernel arithmetic hygiene. The saturating forms
//! below must stay silent.

pub fn free_slots(capacity: u64, used_slots: u64) -> u64 {
    capacity - used_slots
}

pub fn doubled(slot_count: u64) -> u64 {
    slot_count * 2
}

pub fn admit(used_slots: &mut u64, eta: u64) {
    *used_slots += eta;
}

pub fn safe_free(capacity: u64, used_slots: u64) -> u64 {
    capacity.saturating_sub(used_slots)
}

/// Arithmetic on names that are not slot/capacity quantities is out of
/// scope for the rule.
pub fn plain_math(a: u64, b: u64) -> u64 {
    a + b
}

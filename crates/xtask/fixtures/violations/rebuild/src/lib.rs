//! Seeded RUSH-L007 violations: an adapter calling the batch (full-rebuild)
//! CA entry points where the delta path belongs. This file is never compiled.

use rush_core::mapping::map_continuous; // RUSH-L007 (full mapping rebuild)
use rush_core::onion::peel; // RUSH-L007 (full onion peel)
use rush_core::plan::compute_plan; // RUSH-L007 (full plan rebuild)

#[cfg(test)]
mod tests {
    // Differential suites may drive the full rebuild: not a finding.
    use rush_core::plan::compute_plan;
}

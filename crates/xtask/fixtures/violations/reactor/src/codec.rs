//! Declared `panic-free` in the manifest: the wire decoder runs on the
//! event loop against untrusted bytes, so every function here must return
//! errors. Both the bare index and the unwrap are findings; the test
//! module is exempt.

pub fn decode(payload: &[u8]) -> u64 {
    let tag = payload[0];
    u64::from(tag).checked_add(1).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_may_panic() {
        assert_eq!(super::decode(&[1]), 2);
    }
}

//! RUSH-L013 fixture: blocking primitives reachable from the declared
//! event loops. The deep lint must walk the call graph from
//! `EventLoop::run` (a `Type::name` entry) and `drive` (a bare-name
//! entry) and report each blocking call with a witness path;
//! `maintenance` is never reached and must stay silent.

mod codec;

pub struct EventLoop {
    pub queue: std::sync::mpsc::Receiver<u64>,
}

impl EventLoop {
    pub fn run(&mut self) {
        loop {
            self.tick();
        }
    }

    fn tick(&mut self) {
        backoff();
        let _ = self.queue.recv();
    }
}

/// A bare-name root: an open-loop client driver that writes synchronously.
pub fn drive(stream: &mut std::net::TcpStream) {
    use std::io::Write;
    stream.write_all(&[0]).ok();
}

fn backoff() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

/// Never reachable from a declared loop: blocking here is NOT a finding.
pub fn maintenance(handle: std::thread::JoinHandle<()>) {
    handle.join().ok();
}

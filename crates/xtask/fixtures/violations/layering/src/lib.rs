//! Seeded RUSH-L006 violations: an adapter crate holding the planner
//! kernel's internal cache machinery instead of driving `PlannerCore`.
//! This file is never compiled.

use rush_core::plan::compute_plan_cached; // RUSH-L006 (kernel-internal fn)
use rush_core::plan::PlanCache; // RUSH-L006 (kernel-internal type)

pub struct ShadowPlanner {
    cache: PlanCache, // RUSH-L006 (second cache outside the kernel)
}

#[cfg(test)]
mod tests {
    // Test code may poke the internals: not a finding.
    use rush_core::plan::PlanCache;
}

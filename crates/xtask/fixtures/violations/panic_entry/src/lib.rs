//! RUSH-L009 fixture: panic sites buried behind calls from the declared
//! `connection_loop` entry point. The deep lint must walk the call graph
//! and report each with a witness path; `unreached` must stay silent.

pub fn connection_loop(frames: &[u32]) {
    for f in frames {
        handle(*f, frames);
    }
}

fn handle(op: u32, frames: &[u32]) {
    let first = frames[op as usize];
    decode(first).unwrap();
    deep_step();
}

fn deep_step() {
    panic!("kernel invariant violated");
}

fn decode(v: u32) -> Option<u32> {
    if v < 16 {
        Some(v)
    } else {
        None
    }
}

/// Never called from the entry point: its panic is NOT a finding.
pub fn unreached() {
    todo!("offline maintenance path")
}

#[cfg(test)]
mod tests {
    /// Test code panics freely without tripping the rule.
    #[test]
    fn test_path_may_panic() {
        super::decode(99).expect("test-only expect");
    }
}

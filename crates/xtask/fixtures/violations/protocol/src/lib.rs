//! RUSH-L012 fixture, clean half: this surface covers every `Frame`
//! variant with no wildcard, so all the corpus findings must point at
//! `codec.rs`.

pub mod codec;

pub enum Frame {
    Hello,
    Data,
    Bye,
}

pub fn encode(f: &Frame) -> u8 {
    match f {
        Frame::Hello => 0,
        Frame::Data => 1,
        Frame::Bye => 2,
    }
}

//! RUSH-L012 fixture, violating half: `Frame::Bye` is never mentioned on
//! this declared surface, and the wildcard arm would silently swallow any
//! future variant.

use crate::Frame;

pub fn decode(f: Frame) -> u8 {
    match f {
        Frame::Hello => 0,
        Frame::Data => 1,
        _ => 255,
    }
}

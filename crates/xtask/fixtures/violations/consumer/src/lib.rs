//! Seeded RUSH-L005 violations: uses upstream `rand` API the shim does not
//! implement. This file is never compiled.

use rand::rngs::SmallRng; // implemented: not a finding
use rand::rngs::StdRng; // RUSH-L005 (path not in shim API)

pub fn entropy_seeded() -> SmallRng {
    SmallRng::from_entropy() // RUSH-L005 (denylist)
}

pub fn shuffled(v: &mut Vec<u8>, rng: &mut SmallRng) {
    v.shuffle(rng); // RUSH-L005 (denylist)
}

pub fn fresh() {
    let _rng = rand::thread_rng(); // RUSH-L005 (denylist)
}

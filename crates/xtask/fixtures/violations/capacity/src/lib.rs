//! RUSH-L014 fixture: an adapter crate mutating cluster capacity directly
//! instead of routing through `PlannerEvent::CapacityChange` or the sim
//! capacity-event queue. The deep lint must flag the planner resize and
//! both free-pool mutators in `shortcut_resize`; the pragma-justified wire
//! adapter and the test-gated probe must stay silent.

pub struct Kernel;
pub struct Pool;

/// Three findings: the direct resize and the revoke/restore pair.
pub fn shortcut_resize(kernel: &mut Kernel, pool: &mut Pool, capacity: u32) {
    kernel.set_capacity(capacity);
    pool.revoke(2);
    pool.restore(2);
}

/// A sanctioned adapter site: the pragma carries the justification.
pub fn dispatch(state: &mut Kernel, slice: u32) {
    // rush-lint: allow(RUSH-L014): lowers onto the planner event path
    state.set_capacity(slice);
}

#[cfg(test)]
mod tests {
    /// Test code may resize directly (fixtures, invariant probes).
    fn probe(k: &mut super::Kernel) {
        k.set_capacity(4);
    }
}

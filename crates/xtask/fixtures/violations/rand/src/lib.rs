//! Mini stand-in shim so the fixture tree exercises the RUSH-L005 path
//! check: the API below is everything the "shim" implements.

pub mod rngs {
    pub struct SmallRng;
}

pub trait Rng {
    fn gen_range(&mut self, n: u64) -> u64;
}

pub trait SeedableRng {
    fn seed_from_u64(seed: u64) -> Self;
}

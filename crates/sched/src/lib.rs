//! Baseline completion-time-aware schedulers, reimplemented on the
//! [`rush_sim`] scheduler SPI.
//!
//! The RUSH paper (ICDCS 2016, Sec. V-B) compares against three baselines:
//!
//! * [`Fifo`] — Hadoop's default: jobs run in arrival order; a later job
//!   receives containers only when every task of the earlier jobs has
//!   already been handed a container. This is the head-of-line blocking
//!   the paper's Fig. 4 blames for missed deadlines.
//! * [`Edf`] — earliest-deadline-first on the jobs' time budgets; optimal
//!   for preemptive single-machine deadline scheduling but blind to
//!   completion-time *sensitivity*.
//! * [`Rrh`] — the risk-reward heuristic of Irwin et al. (HPDC'04): each
//!   container goes to the job with the largest expected utility gain from
//!   one more container, weighed against the opportunity cost of taking it
//!   from the pool.
//!
//! [`Fair`] (equal instantaneous share, the YARN fair scheduler's job-level
//! behaviour) is included for the ablations even though the paper excludes
//! it from the time-aware comparison.
//!
//! # Example
//!
//! ```
//! use rush_sched::{Edf, Fifo};
//! use rush_sim::Scheduler;
//!
//! let fifo = Fifo::new();
//! let edf = Edf::new();
//! assert_eq!(fifo.name(), "FIFO");
//! assert_eq!(edf.name(), "EDF");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rush_sim::view::{ClusterView, JobView};
use rush_sim::{JobId, Scheduler};
use rush_utility::Utility;

/// Default per-task runtime guess (slots) before any sample exists —
/// matches the RUSH cold prior so baselines are not handicapped.
const DEFAULT_TASK_RUNTIME: f64 = 60.0;

/// Mean observed task runtime, or the default prior when cold.
fn est_task_runtime(job: &JobView) -> f64 {
    job.mean_sample().unwrap_or(DEFAULT_TASK_RUNTIME).max(1.0)
}

/// Job-level FIFO: strict arrival order.
///
/// All containers go to the earliest-arrived job that still has unstarted
/// tasks; later jobs wait. Equivalent to Hadoop's default scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl Fifo {
    /// Creates a FIFO scheduler.
    pub fn new() -> Self {
        Fifo
    }
}

impl Scheduler for Fifo {
    fn name(&self) -> &str {
        "FIFO"
    }

    fn assign(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
        view.jobs
            .iter()
            .filter(|j| j.runnable_tasks > 0)
            .min_by_key(|j| (j.arrival, j.id))
            .map(|j| j.id)
    }
}

/// Earliest-deadline-first on the jobs' absolute deadlines
/// (`arrival + time budget`).
///
/// Jobs without a declared budget (completion-time-insensitive) sort last.
/// EDF is deadline-optimal for preemptive uniprocessor scheduling but has
/// no notion of how much *utility* is lost when a deadline slips.
#[derive(Debug, Clone, Copy, Default)]
pub struct Edf;

impl Edf {
    /// Creates an EDF scheduler.
    pub fn new() -> Self {
        Edf
    }
}

impl Scheduler for Edf {
    fn name(&self) -> &str {
        "EDF"
    }

    fn assign(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
        view.jobs
            .iter()
            .filter(|j| j.runnable_tasks > 0)
            .min_by_key(|j| {
                let deadline = j.budget.map(|b| j.arrival + b).unwrap_or(u64::MAX);
                (deadline, j.arrival, j.id)
            })
            .map(|j| j.id)
    }
}

/// The risk-reward heuristic (Irwin et al., HPDC'04).
///
/// Each free container is auctioned: every job bids its *expected utility
/// gain* from running one more task now — the difference between its
/// utility at the completion time projected with one extra container and
/// without it — normalized by the container time consumed (the opportunity
/// cost). The steepest utility cliffs bid highest, which is why the paper
/// observes RRH "favors heavily the completion-time critical jobs".
#[derive(Debug, Clone, Copy, Default)]
pub struct Rrh;

impl Rrh {
    /// Creates an RRH scheduler.
    pub fn new() -> Self {
        Rrh
    }

    /// The bid of one job for one container.
    fn bid(job: &JobView, now: u64) -> f64 {
        let r = est_task_runtime(job);
        let work = job.remaining_tasks() as f64 * r;
        let age = job.age(now) as f64;
        let cur = job.running_tasks as f64;
        // Projected completion with and without one extra container.
        let t_with = age + work / (cur + 1.0);
        let t_without = age + work / cur.max(0.5);
        let gain = job.utility.utility(t_with) - job.utility.utility(t_without);
        // Opportunity cost: one container for one task runtime.
        gain.max(0.0) / r
    }
}

impl Scheduler for Rrh {
    fn name(&self) -> &str {
        "RRH"
    }

    fn assign(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
        view.jobs
            .iter()
            .filter(|j| j.runnable_tasks > 0)
            .map(|j| (j, Self::bid(j, view.now)))
            .max_by(|(a, ba), (b, bb)| {
                ba.total_cmp(bb)
                    .then_with(|| (b.arrival, b.id).cmp(&(a.arrival, a.id)))
            })
            .map(|(j, _)| j.id)
    }
}

/// Instantaneous fair share: each free container goes to the runnable job
/// currently holding the fewest containers (weighted by priority).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fair;

impl Fair {
    /// Creates a fair scheduler.
    pub fn new() -> Self {
        Fair
    }
}

impl Scheduler for Fair {
    fn name(&self) -> &str {
        "Fair"
    }

    fn assign(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
        view.jobs
            .iter()
            .filter(|j| j.runnable_tasks > 0)
            .min_by(|a, b| {
                let sa = a.running_tasks as f64 / a.priority.max(1) as f64;
                let sb = b.running_tasks as f64 / b.priority.max(1) as f64;
                sa.total_cmp(&sb).then((a.arrival, a.id).cmp(&(b.arrival, b.id)))
            })
            .map(|j| j.id)
    }
}

/// Hadoop-style **speculative execution** wrapper: delegates all scheduling
/// to the inner scheduler and, when containers would otherwise idle,
/// duplicates the longest-running attempt of the job whose straggler looks
/// worst (a LATE-flavoured heuristic — Zaharia et al., OSDI'08, the
/// uncertainty-mitigation approach the RUSH paper's related work contrasts
/// with robust provisioning).
///
/// A job is a speculation candidate when its oldest running attempt has
/// been running longer than `threshold ×` its mean observed task runtime.
#[derive(Debug, Clone, Copy)]
pub struct Speculative<S> {
    inner: S,
    threshold: f64,
}

impl<S: Scheduler> Speculative<S> {
    /// Wraps `inner` with straggler speculation at the given slowdown
    /// threshold (≥ 1; Hadoop's default progress heuristic is roughly 1.5).
    pub fn new(inner: S, threshold: f64) -> Self {
        Speculative { inner, threshold: threshold.max(1.0) }
    }

    /// The inner scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: Scheduler> Scheduler for Speculative<S> {
    fn name(&self) -> &str {
        "Speculative"
    }

    fn on_job_arrival(&mut self, view: &ClusterView<'_>, job: JobId) {
        self.inner.on_job_arrival(view, job);
    }

    fn on_task_complete(&mut self, view: &ClusterView<'_>, sample: rush_sim::view::TaskSample) {
        self.inner.on_task_complete(view, sample);
    }

    fn on_task_failed(&mut self, view: &ClusterView<'_>, sample: rush_sim::view::TaskSample) {
        self.inner.on_task_failed(view, sample);
    }

    fn assign(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
        self.inner.assign(view)
    }

    fn speculate(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
        view.jobs
            .iter()
            .filter(|j| j.running_tasks > 0 && !j.samples.is_empty())
            .filter_map(|j| {
                let start = j.oldest_running_start?;
                let elapsed = view.now.saturating_sub(start) as f64;
                let mean = j.mean_sample()?;
                let slowdown = elapsed / mean.max(1.0);
                (slowdown > self.threshold).then_some((j.id, slowdown))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_sim::Slot;
    use rush_utility::{Sensitivity, TimeUtility};

    fn jv(
        id: u32,
        arrival: Slot,
        runnable: usize,
        running: usize,
        budget: Option<Slot>,
        utility: TimeUtility,
        priority: u32,
    ) -> JobView {
        JobView {
            id: JobId(id),
            label: format!("j{id}"),
            arrival,
            utility,
            priority,
            sensitivity: Sensitivity::Sensitive,
            budget,
            total_tasks: runnable + running + 2,
            pending_tasks: runnable,
            runnable_tasks: runnable,
            running_tasks: running,
            completed_tasks: 2,
            failed_attempts: 0,
            oldest_running_start: None,
            samples: vec![30, 30],
        }
    }

    fn constant() -> TimeUtility {
        TimeUtility::constant(1.0).unwrap()
    }

    #[test]
    fn fifo_picks_earliest_arrival() {
        let jobs = vec![
            jv(0, 10, 3, 0, None, constant(), 1),
            jv(1, 5, 3, 0, None, constant(), 1),
        ];
        let view = ClusterView { now: 20, capacity: 4, free_containers: 4, jobs: &jobs };
        assert_eq!(Fifo::new().assign(&view), Some(JobId(1)));
    }

    #[test]
    fn fifo_moves_on_when_head_exhausted() {
        let jobs = vec![
            jv(0, 5, 0, 3, None, constant(), 1), // head: everything started
            jv(1, 10, 3, 0, None, constant(), 1),
        ];
        let view = ClusterView { now: 20, capacity: 4, free_containers: 1, jobs: &jobs };
        assert_eq!(Fifo::new().assign(&view), Some(JobId(1)));
    }

    #[test]
    fn edf_orders_by_absolute_deadline() {
        let jobs = vec![
            jv(0, 0, 2, 0, Some(500), constant(), 1),  // deadline 500
            jv(1, 100, 2, 0, Some(200), constant(), 1), // deadline 300
        ];
        let view = ClusterView { now: 150, capacity: 4, free_containers: 2, jobs: &jobs };
        assert_eq!(Edf::new().assign(&view), Some(JobId(1)));
    }

    #[test]
    fn edf_puts_budgetless_jobs_last() {
        let jobs = vec![
            jv(0, 0, 2, 0, None, constant(), 1),
            jv(1, 50, 2, 0, Some(1000), constant(), 1),
        ];
        let view = ClusterView { now: 60, capacity: 4, free_containers: 2, jobs: &jobs };
        assert_eq!(Edf::new().assign(&view), Some(JobId(1)));
    }

    #[test]
    fn rrh_prefers_the_steep_cliff() {
        let steep = TimeUtility::sigmoid(100.0, 5.0, 0.5).unwrap();
        let gentle = TimeUtility::sigmoid(100.0, 5.0, 0.01).unwrap();
        // 3 remaining tasks x 30 slots at age 40: one extra container moves
        // the projected finish from 130 (past the cliff at 100) to 85
        // (before it) — a huge gain for the steep job, marginal for the
        // gentle one.
        let jobs = vec![
            jv(0, 0, 2, 1, Some(100), gentle, 1),
            jv(1, 0, 2, 1, Some(100), steep, 1),
        ];
        let view = ClusterView { now: 40, capacity: 8, free_containers: 2, jobs: &jobs };
        assert_eq!(Rrh::new().assign(&view), Some(JobId(1)));
    }

    #[test]
    fn rrh_ignores_insensitive_jobs_when_a_sensitive_one_bids() {
        let jobs = vec![
            jv(0, 0, 4, 1, None, constant(), 1), // flat utility: zero gain
            jv(1, 0, 4, 1, Some(200), TimeUtility::sigmoid(200.0, 5.0, 0.1).unwrap(), 1),
        ];
        let view = ClusterView { now: 100, capacity: 8, free_containers: 1, jobs: &jobs };
        assert_eq!(Rrh::new().assign(&view), Some(JobId(1)));
    }

    #[test]
    fn fair_balances_running_counts() {
        let jobs = vec![
            jv(0, 0, 3, 4, None, constant(), 1),
            jv(1, 10, 3, 1, None, constant(), 1),
        ];
        let view = ClusterView { now: 20, capacity: 8, free_containers: 1, jobs: &jobs };
        assert_eq!(Fair::new().assign(&view), Some(JobId(1)));
    }

    #[test]
    fn fair_weights_by_priority() {
        // Equal running counts, but job 1 has 4x the priority: its weighted
        // share is smaller, so it gets the container.
        let jobs = vec![
            jv(0, 0, 3, 2, None, constant(), 1),
            jv(1, 10, 3, 2, None, constant(), 4),
        ];
        let view = ClusterView { now: 20, capacity: 8, free_containers: 1, jobs: &jobs };
        assert_eq!(Fair::new().assign(&view), Some(JobId(1)));
    }

    #[test]
    fn all_return_none_when_nothing_runnable() {
        let jobs = vec![jv(0, 0, 0, 2, Some(10), constant(), 1)];
        let view = ClusterView { now: 5, capacity: 4, free_containers: 2, jobs: &jobs };
        assert_eq!(Fifo::new().assign(&view), None);
        assert_eq!(Edf::new().assign(&view), None);
        assert_eq!(Rrh::new().assign(&view), None);
        assert_eq!(Fair::new().assign(&view), None);
    }

    #[test]
    fn names() {
        assert_eq!(Fifo::new().name(), "FIFO");
        assert_eq!(Edf::new().name(), "EDF");
        assert_eq!(Rrh::new().name(), "RRH");
        assert_eq!(Fair::new().name(), "Fair");
    }

    #[test]
    fn speculative_wrapper_detects_stragglers() {
        let mut jobs = vec![jv(0, 0, 0, 2, None, constant(), 1)];
        jobs[0].oldest_running_start = Some(0);
        jobs[0].samples = vec![10, 10];
        // At now=40, the oldest attempt has run 4x the mean: speculate.
        let view = ClusterView { now: 40, capacity: 4, free_containers: 1, jobs: &jobs };
        let mut s = Speculative::new(Fifo::new(), 1.5);
        assert_eq!(s.speculate(&view), Some(JobId(0)));
        // At now=12 the slowdown is only 1.2: no speculation.
        let view = ClusterView { now: 12, capacity: 4, free_containers: 1, jobs: &jobs };
        assert_eq!(s.speculate(&view), None);
        // Delegation still works.
        assert_eq!(Scheduler::name(&s), "Speculative");
        assert_eq!(s.inner().name(), "FIFO");
    }

    #[test]
    fn speculative_end_to_end_beats_plain_fifo_on_stragglers() {
        use rush_sim::engine::{SimConfig, Simulation};
        use rush_sim::job::{JobSpec, Phase, TaskSpec};
        use rush_sim::perturb::Interference;
        // Straggler-heavy cluster: 25% of attempts run 8x slower. With free
        // capacity, speculation re-runs the stragglers and the makespan
        // drops; determinism comes from the fixed seed.
        let job = JobSpec::builder("straggly")
            .tasks((0..16).map(|_| TaskSpec::new(10.0, Phase::Map)))
            .utility(constant())
            .build()
            .unwrap();
        let cfg = |seed| {
            SimConfig::homogeneous(2, 4)
                .with_interference(Interference::Straggler { p: 0.25, slowdown: 8.0 })
                .with_seed(seed)
        };
        let mut total_plain = 0u64;
        let mut total_spec = 0u64;
        let mut speculated = 0u64;
        for seed in 0..8 {
            let plain = Simulation::new(cfg(seed), vec![job.clone()])
                .unwrap()
                .run(&mut Fifo::new())
                .unwrap();
            let spec = Simulation::new(cfg(seed), vec![job.clone()])
                .unwrap()
                .run(&mut Speculative::new(Fifo::new(), 1.5))
                .unwrap();
            total_plain += plain.makespan;
            total_spec += spec.makespan;
            speculated += spec.speculative_attempts;
        }
        assert!(speculated > 0, "stragglers must trigger speculation");
        assert!(
            total_spec < total_plain,
            "speculation should cut straggler makespan: {total_spec} vs {total_plain}"
        );
    }

    #[test]
    fn end_to_end_fifo_blocks_head_of_line() {
        use rush_sim::engine::{SimConfig, Simulation};
        use rush_sim::job::{JobSpec, Phase, TaskSpec};
        // A long head job then a short urgent one: FIFO blocks the short
        // job until the head's tasks have all started.
        let long = JobSpec::builder("long")
            .arrival(0)
            .tasks((0..8).map(|_| TaskSpec::new(50.0, Phase::Map)))
            .utility(constant())
            .build()
            .unwrap();
        let short = JobSpec::builder("short")
            .arrival(1)
            .tasks((0..2).map(|_| TaskSpec::new(5.0, Phase::Map)))
            .utility(TimeUtility::sigmoid(20.0, 5.0, 0.5).unwrap())
            .budget(20)
            .build()
            .unwrap();
        let r = Simulation::new(SimConfig::homogeneous(1, 2), vec![long, short])
            .unwrap()
            .run(&mut Fifo::new())
            .unwrap();
        let short_o = r.outcomes.iter().find(|o| o.label == "short").unwrap();
        assert!(!short_o.met_budget(), "FIFO must miss the short job's budget");
    }

    #[test]
    fn end_to_end_edf_rescues_the_urgent_job() {
        use rush_sim::engine::{SimConfig, Simulation};
        use rush_sim::job::{JobSpec, Phase, TaskSpec};
        let long = JobSpec::builder("long")
            .arrival(0)
            .tasks((0..8).map(|_| TaskSpec::new(50.0, Phase::Map)))
            .utility(constant())
            .budget(100_000)
            .build()
            .unwrap();
        let short = JobSpec::builder("short")
            .arrival(1)
            .tasks((0..2).map(|_| TaskSpec::new(5.0, Phase::Map)))
            .utility(TimeUtility::sigmoid(60.0, 5.0, 0.5).unwrap())
            .budget(60)
            .build()
            .unwrap();
        let r = Simulation::new(SimConfig::homogeneous(1, 2), vec![long, short])
            .unwrap()
            .run(&mut Edf::new())
            .unwrap();
        let short_o = r.outcomes.iter().find(|o| o.label == "short").unwrap();
        // EDF prefers the tight deadline as soon as a container frees; the
        // head job's 50-slot tasks delay it by at most one task length.
        assert!(
            short_o.runtime <= 60,
            "EDF should meet the 60-slot budget, took {}",
            short_o.runtime
        );
    }
}

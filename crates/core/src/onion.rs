//! The onion-peeling algorithm — Algorithm 3, solving the Time-Aware
//! Scheduling (TAS) problem.
//!
//! With robust demands `η_i` fixed by WCDE, TAS becomes deterministic:
//! choose target completion times maximizing the **lexicographic max-min**
//! of the utility vector. The peeling loop maximizes the minimum utility by
//! bisection over the level `L` — a level is feasible iff every job can
//! finish by its induced deadline `U_i⁻¹(L)`, which Theorem 2 reduces to
//! the prefix-capacity condition
//!
//! ```text
//! Σ_{i∈N_k} η_i + G(U_k⁻¹(L)) ≤ C · U_k⁻¹(L)   for every prefix k
//! ```
//!
//! (jobs sorted by deadline; `G(t)` counts demand already committed to
//! previously peeled jobs with targets ≤ `t`). The bottleneck job of the
//! last infeasible level has reached its best achievable utility: it is
//! *peeled* — its target fixed, its demand added to `G` — and the loop
//! continues on the remaining jobs, one onion layer at a time.

use crate::CoreError;
use rush_utility::{LatestTime, Utility};

/// One job as seen by the peeling algorithm.
#[derive(Clone, Copy)]
pub struct OnionJob<'a> {
    /// Robust remaining demand `η` in container·slots (WCDE output).
    pub demand: u64,
    /// The job's completion-time utility (already shifted to "time from
    /// now" if the job has been running for a while).
    pub utility: &'a dyn Utility,
}

impl std::fmt::Debug for OnionJob<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnionJob")
            .field("demand", &self.demand)
            .field("sup", &self.utility.sup())
            .finish()
    }
}

/// A peeled job's target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Target {
    /// Index of the job in the input slice.
    pub job: usize,
    /// The utility level at which the job peeled (its max-min layer).
    pub level: f64,
    /// Target completion time `T_i` in slots from now.
    pub deadline: f64,
    /// Whether the job is *deadline-free* at its level (flat utility or
    /// nothing left to gain): the mapping packs such jobs into leftover
    /// capacity instead of reserving for `deadline`.
    pub lax: bool,
}

/// A [`Utility`] shifted by the job's age: if a job arrived `shift` slots
/// ago, completing `t` slots *from now* completes it at `shift + t` from
/// arrival.
///
/// This adapter is what lets the static TAS formulation re-run inside the
/// dynamic feedback cycle: every scheduling event re-poses the problem in
/// "time from now" coordinates.
#[derive(Clone, Copy)]
pub struct Shifted<'a> {
    base: &'a dyn Utility,
    shift: f64,
}

impl std::fmt::Debug for Shifted<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shifted").field("shift", &self.shift).finish()
    }
}

impl<'a> Shifted<'a> {
    /// Wraps `base`, measuring time from `shift` slots after the job's
    /// arrival.
    pub fn new(base: &'a dyn Utility, shift: f64) -> Self {
        Shifted { base, shift: shift.max(0.0) }
    }
}

impl Utility for Shifted<'_> {
    fn utility(&self, t: f64) -> f64 {
        self.base.utility(self.shift + t.max(0.0))
    }

    fn inf(&self) -> f64 {
        self.base.inf()
    }

    fn latest_time(&self, level: f64) -> LatestTime {
        match self.base.latest_time(level) {
            LatestTime::At(t) if t >= self.shift => LatestTime::At(t - self.shift),
            // The level was only achievable before now.
            LatestTime::At(_) => LatestTime::Never,
            other => other,
        }
    }
}

/// Outcome of one feasibility probe, annotated with the evidence the
/// delta-replay engine ([`peel_incremental`]) needs to re-verify the probe
/// after a demand change without re-running the sweep.
#[derive(Clone, Copy, Debug)]
enum Check {
    /// Every prefix-capacity boundary holds; `margin` is the minimum slack
    /// `C·t + ε − (cum + G(t))` over all boundaries the sweep checked
    /// (`+∞` when no boundary constrains the level).
    Feasible { margin: f64 },
    /// A boundary failed. `boundary` is the time at which the violation
    /// was detected; `prefix_margin` is the minimum slack over the
    /// boundaries checked *before* it (so a bounded demand increase
    /// provably cannot move the first violation earlier); `never` marks
    /// the pre-sweep case of a positive-demand job that cannot reach the
    /// level at all (no boundary involved).
    Infeasible { bottleneck: usize, boundary: f64, prefix_margin: f64, never: bool },
}

/// Sorted index over committed `(deadline, demand)` reservations with
/// prefix sums for cumulative-demand (`G(t)`) queries. Maintained
/// *incrementally*: peeling a job binary-inserts one reservation instead of
/// re-sorting the whole committed set every layer.
#[derive(Default)]
struct CommittedIndex {
    times: Vec<f64>,
    cums: Vec<u64>,
    /// Bumped on every mutation; lets a [`SweepCursor`] detect that the
    /// committed prefix it was captured against is unchanged.
    epoch: u64,
}

impl CommittedIndex {
    /// Adds a reservation, keeping `times` sorted (ties in commit order)
    /// and `cums` the running prefix demand.
    fn insert(&mut self, t: f64, demand: u64) {
        self.epoch += 1;
        // Tail append: reservations created by the deferred phase land at
        // or past the current maximum deadline (each packs after the load
        // that precedes it), so the O(len) shift-and-bump is skipped.
        if self.times.last().is_none_or(|&last| t >= last) {
            let before = self.cums.last().copied().unwrap_or(0);
            self.times.push(t);
            self.cums.push(before + demand);
            return;
        }
        let pos = self.times.partition_point(|&x| x <= t);
        self.times.insert(pos, t);
        let before = if pos == 0 { 0 } else { self.cums[pos - 1] };
        self.cums.insert(pos, before + demand);
        for c in &mut self.cums[pos + 1..] {
            *c += demand;
        }
    }

    /// Rebuilds the index from an unsorted committed list. A stable sort
    /// by time keeps ties in commit order — bitwise the same index an
    /// incremental insert sequence would have produced (inserts land
    /// *after* existing ties).
    fn rebuild(&mut self, committed: &[(f64, u64)]) {
        self.epoch += 1;
        let mut sorted: Vec<(f64, u64)> = committed.to_vec();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        self.times.clear();
        self.cums.clear();
        let mut cum = 0u64;
        for (t, e) in sorted {
            cum += e;
            self.times.push(t);
            self.cums.push(cum);
        }
    }

    /// `G(t)`: total committed demand with deadline ≤ `t`.
    fn g(&self, t: f64) -> u64 {
        let idx = self.times.partition_point(|&x| x <= t);
        if idx == 0 {
            0
        } else {
            self.cums[idx - 1]
        }
    }
}

/// Reusable probe state: the `(deadline, job)` buffer persists across
/// probes and layers, so a feasibility check allocates nothing, and because
/// neighboring levels barely change the deadline order, the stable sort's
/// run detection makes the per-probe re-sort nearly linear.
///
/// Entries mirror the active set exactly; jobs whose deadline is `Never`
/// at the probed level keep a sentinel (`∞` for demand-free jobs — they
/// never block) so they are not lost for later, lower-level probes.
#[derive(Default)]
struct ProbeScratch {
    deadlines: Vec<(f64, usize)>,
    /// Deadline memo: when `filled`, the entries hold the *sorted* deadlines
    /// of a previous probe at level `level_bits` over a superset of the
    /// current entries. Consecutive layers overwhelmingly probe the exact
    /// same level (`lo + tolerance` with an unchanged floor), so the memo
    /// skips both the per-job utility inversion (the transcendental hot
    /// spot) and the re-sort: `remove` preserves order and values.
    level_bits: u64,
    filled: bool,
    /// Live entries. Removal tombstones an entry in place (job index set
    /// to the [`DEAD`] sentinel) instead of compacting the vector, so a
    /// peel/defer cascade removes in O(1) per layer rather than O(n);
    /// sweeps skip tombstones, preserving the compact scan's order and
    /// values exactly.
    alive: usize,
    /// Job index → position in `deadlines`; rebuilt with each sort (memo
    /// refill), valid while `filled` — tombstoning never moves entries.
    pos_of: Vec<u32>,
    /// Resume point for the merged sweep (see [`SweepCursor`]).
    cursor: SweepCursor,
}

/// Tombstone marker for a removed `ProbeScratch` entry.
const DEAD: usize = usize::MAX;

/// Snapshot of the merged sweep's running state, captured just *before*
/// the entry whose prefix-capacity check failed. While the memoized
/// deadline order, every entry ahead of `pos`, and the committed index are
/// all unchanged, the next probe at the same level re-enters the sweep at
/// `pos` instead of position 0 — the skipped prefix would recompute
/// bit-identical sums, margins, and boundary checks, so resuming is
/// indistinguishable from a full sweep. A defer cascade (hundreds of
/// consecutive same-level probes, each tombstoning exactly the entry at
/// `pos` and committing nothing) therefore sweeps each entry O(1) times
/// overall instead of once per layer.
///
/// Invalidated by: a memo refill (re-sort moves entries), a removal at any
/// position other than `pos`, tombstone compaction (positions shift), and
/// any committed-index mutation (tracked via its epoch).
#[derive(Clone, Copy, Default)]
struct SweepCursor {
    valid: bool,
    /// Entry position the sweep resumes at.
    pos: u32,
    /// Committed-boundary pointer at the resume point.
    ci: u32,
    /// Active demand accumulated strictly before `pos` (the violating
    /// entry's own demand is *excluded* — it is re-added when the resumed
    /// sweep processes `pos`, or skipped if the entry was tombstoned).
    cum: u64,
    /// Minimum slack over all boundaries checked before the capture.
    margin: f64,
    /// Last live active entry before `pos` (`usize::MAX` = none).
    last_active: usize,
    /// [`CommittedIndex::epoch`] at capture time.
    committed_epoch: u64,
}

impl ProbeScratch {
    fn fill(&mut self, jobs: &[OnionJob<'_>]) {
        self.deadlines = (0..jobs.len()).map(|i| (0.0, i)).collect();
        self.alive = self.deadlines.len();
        self.filled = false;
        self.cursor.valid = false;
    }

    /// Fills from an explicit active set (delta-replay materialization).
    /// Entry order does not matter for probe results — `check_level`
    /// re-sorts by a total order — but ascending index matches what the
    /// from-scratch loop's removals would have left.
    fn fill_active(&mut self, active: &[usize]) {
        self.deadlines.clear();
        self.deadlines.extend(active.iter().filter(|&&i| i != DEAD).map(|&i| (0.0, i)));
        self.alive = self.deadlines.len();
        self.filled = false;
        self.cursor.valid = false;
    }

    fn remove(&mut self, job: usize) {
        if self.filled {
            // Sorted + position-indexed: tombstone in place.
            let pos = self.pos_of[job] as usize;
            debug_assert_eq!(self.deadlines[pos].1, job, "stale scratch position index");
            self.deadlines[pos].1 = DEAD;
            self.alive -= 1;
            // A removal at or past the cursor's entry keeps the resumable
            // prefix intact (the resumed sweep skips tombstones); one
            // *before* it changes the prefix sums, so drop the cursor.
            if self.cursor.valid && pos < self.cursor.pos as usize {
                self.cursor.valid = false;
            }
            // Amortized compaction: once tombstones outnumber live entries,
            // drop them — order-preserving, so the sorted memo stays valid —
            // and rebuild the position index. Keeps probe sweeps O(live)
            // while removal stays O(1) amortized.
            if self.deadlines.len() > 2 * self.alive + 16 {
                self.deadlines.retain(|&(_, i)| i != DEAD);
                for (pos, &(_, i)) in self.deadlines.iter().enumerate() {
                    self.pos_of[i] = pos as u32;
                }
                self.cursor.valid = false;
            }
        } else {
            self.deadlines.retain(|&(_, i)| i != job);
            self.alive -= 1;
            self.cursor.valid = false;
        }
    }
}

/// Tests whether level `L` is feasible for the active jobs (the entries of
/// `scratch`) given the committed reservations of already-peeled jobs.
fn check_level(
    jobs: &[OnionJob<'_>],
    scratch: &mut ProbeScratch,
    committed: &CommittedIndex,
    capacity: u32,
    horizon: f64,
    level: f64,
) -> Check {
    // Deadline per active job; a `Never` with positive demand is an
    // immediate bottleneck (it cannot reach the level no matter what).
    // The lowest-indexed such job is reported, matching a scan of the
    // active set in index order.
    //
    // Memo hit: a previous probe at these exact level bits already filled
    // and sorted the deadlines (over a superset of the current entries —
    // removals preserve both), and proved no entry is a never-bottleneck;
    // the inversion and sort are skipped wholesale.
    if !(scratch.filled && scratch.level_bits == level.to_bits()) {
        scratch.cursor.valid = false;
        let mut never: Option<usize> = None;
        for slot in &mut scratch.deadlines {
            let i = slot.1;
            if i == DEAD {
                // Tombstone: park past every finite deadline so the sort
                // keeps all live entries in front.
                slot.0 = f64::INFINITY;
                continue;
            }
            match jobs[i].utility.latest_time(level).deadline_within(horizon) {
                Some(d) => slot.0 = d,
                None => {
                    if jobs[i].demand > 0 {
                        never = Some(never.map_or(i, |b| b.min(i)));
                    }
                    // Demand-free jobs never block a layer: park them past
                    // every finite deadline.
                    slot.0 = f64::INFINITY;
                }
            }
        }
        if let Some(b) = never {
            scratch.filled = false;
            return Check::Infeasible {
                bottleneck: b,
                boundary: f64::NAN,
                prefix_margin: 0.0,
                never: true,
            };
        }
        scratch.deadlines.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        scratch.pos_of.resize(jobs.len(), 0);
        for (pos, &(_, i)) in scratch.deadlines.iter().enumerate() {
            if i != DEAD {
                scratch.pos_of[i] = pos as u32;
            }
        }
        scratch.level_bits = level.to_bits();
        scratch.filled = true;
    }
    // Merged sweep over active deadlines AND committed reservation times.
    // Verifying only the active prefixes is not enough: an active job whose
    // deadline lands just *before* a committed reservation adds its demand
    // to that reservation's prefix and can break it — feasibility is not
    // monotone in the level once reservations exist, so every boundary
    // must be re-checked.
    let c = capacity as f64;
    // Sweep resume: a valid cursor means every entry ahead of `pos`, the
    // memoized order, and the committed index are untouched since the last
    // same-level probe captured its state — re-sweeping that prefix would
    // recompute these exact values, so skip straight to `pos`.
    let resume = scratch.cursor;
    let (start, mut cum, mut ci, mut margin, mut last_active) =
        if resume.valid && resume.committed_epoch == committed.epoch {
            (
                resume.pos as usize,
                resume.cum,
                resume.ci as usize,
                resume.margin,
                (resume.last_active != DEAD).then_some(resume.last_active),
            )
        } else {
            (0, 0u64, 0usize, f64::INFINITY, None)
        };
    for pos in start..scratch.deadlines.len() {
        let (d, i) = scratch.deadlines[pos];
        if i == DEAD {
            continue;
        }
        if d.is_infinite() {
            // Demand-free sentinel: contributes nothing, checks nothing.
            break;
        }
        while ci < committed.times.len() && committed.times[ci] < d {
            let bound = c * committed.times[ci] + 1e-9;
            let load = (cum + committed.cums[ci]) as f64;
            if load > bound {
                // The blamed entry sits somewhere *before* this one — the
                // upcoming removal won't be at `pos`, so no resume point.
                scratch.cursor.valid = false;
                return Check::Infeasible {
                    bottleneck: last_active.unwrap_or(i),
                    boundary: committed.times[ci],
                    prefix_margin: margin,
                    never: false,
                };
            }
            margin = margin.min(bound - load);
            ci += 1;
        }
        cum += jobs[i].demand;
        // G(d): the sweep pointer already skipped times < d; peek past the
        // ties at exactly d without disturbing it.
        let mut cj = ci;
        while cj < committed.times.len() && committed.times[cj] <= d {
            cj += 1;
        }
        let g = if cj == 0 { 0 } else { committed.cums[cj - 1] };
        let bound = c * d + 1e-9;
        let load = (cum + g) as f64;
        if load > bound {
            // Capture the state just before this entry: if the caller
            // defers/peels this bottleneck (the common cascade), the next
            // probe at this level resumes here.
            scratch.cursor = SweepCursor {
                valid: true,
                pos: pos as u32,
                ci: ci as u32,
                cum: cum - jobs[i].demand,
                margin,
                last_active: last_active.unwrap_or(DEAD),
                committed_epoch: committed.epoch,
            };
            return Check::Infeasible {
                bottleneck: i,
                boundary: d,
                prefix_margin: margin,
                never: false,
            };
        }
        margin = margin.min(bound - load);
        last_active = Some(i);
    }
    while ci < committed.times.len() {
        let bound = c * committed.times[ci] + 1e-9;
        let load = (cum + committed.cums[ci]) as f64;
        if load > bound {
            if let Some(b) = last_active {
                // Blamed entry is not at a known single position ahead of
                // the sweep — no resume point.
                scratch.cursor.valid = false;
                return Check::Infeasible {
                    bottleneck: b,
                    boundary: committed.times[ci],
                    prefix_margin: margin,
                    never: false,
                };
            }
            // No active job to blame: the committed set alone is
            // infeasible (cannot arise from our own layering; guard for
            // caller-supplied states).
            break;
        }
        margin = margin.min(bound - load);
        ci += 1;
    }
    Check::Feasible { margin }
}

/// Utility levels at or below this are treated as "the job gains nothing".
const ZERO_LEVEL: f64 = 1e-9;

/// Earliest completion time for `demand` that leaves every committed
/// `(deadline, demand)` reservation intact: the smallest `d` such that
///
/// * `demand + G(d) ≤ C·d` (the job itself fits by `d`), and
/// * for every committed deadline `T_k ≥ d`,
///   `demand + cum(T_k) ≤ C·T_k` (inserting the job does not break the
///   prefix-capacity condition of any later reservation).
///
/// This is how a job that can no longer gain utility is squeezed into
/// leftover capacity without lowering anyone else's level — the
/// lexicographic tie-break the paper describes ("allocate resources to
/// other jobs because doing so can improve their utility without lowering
/// the utility of this job").
fn asap_deadline(demand: u64, index: &CommittedIndex, capacity: u32) -> f64 {
    let c = capacity as f64;
    // Barrier: the job must complete after any reservation it would break.
    // The index's `(times, cums)` pair is exactly the sorted prefix the
    // reference implementation rebuilds per call. When the *last*
    // reservation is already broken it is the maximal violated deadline —
    // the overloaded-steady-state common case — and the scan is skipped.
    let mut barrier = 0.0f64;
    match (index.times.last(), index.cums.last()) {
        (Some(&t_last), Some(&cum_last))
            if (demand + cum_last) as f64 > c * t_last + 1e-9 =>
        {
            barrier = t_last;
        }
        _ => {
            for (&t, &cum_t) in index.times.iter().zip(&index.cums) {
                if (demand + cum_t) as f64 > c * t + 1e-9 {
                    barrier = barrier.max(t);
                }
            }
        }
    }
    let mut d = ((demand as f64 / c).max(1.0)).max(barrier + 1e-9);
    // Fixed point over the step function G; terminates in ≤ |committed|+1
    // rounds because each bump crosses at least one reservation deadline.
    loop {
        let g = index.g(d);
        let next = (((demand + g) as f64 / c).max(1.0)).max(barrier + 1e-9);
        if next <= d + 1e-9 {
            return d;
        }
        d = next;
    }
}

/// The deadline a job should be given when peeling at `level`.
fn deadline_for(job: &OnionJob<'_>, level: f64, horizon: f64) -> f64 {
    // A job can never be asked to exceed its own supremum.
    let lvl = level.min(job.utility.sup());
    match job.utility.latest_time(lvl).deadline_within(horizon) {
        Some(d) => d.max(0.0),
        // Level above sup by floating-point noise: complete ASAP.
        None => 0.0,
    }
}

/// Runs the onion-peeling algorithm (Algorithm 3).
///
/// Returns one [`Target`] per job (in peel order). `tolerance` is the
/// bisection stopping width `Δ` on utility levels; `horizon` caps the
/// deadline of completion-time-insensitive jobs.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] if `capacity == 0`, `tolerance ≤ 0` or
/// `horizon ≤ 0`.
///
/// # Example
///
/// ```
/// use rush_core::onion::{peel, OnionJob};
/// use rush_utility::TimeUtility;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tight = TimeUtility::sigmoid(100.0, 5.0, 0.5)?;
/// let loose = TimeUtility::sigmoid(1000.0, 5.0, 0.01)?;
/// let jobs = [
///     OnionJob { demand: 300, utility: &tight },
///     OnionJob { demand: 300, utility: &loose },
/// ];
/// let targets = peel(&jobs, 8, 0.01, 1e6)?;
/// let t0 = targets.iter().find(|t| t.job == 0).unwrap();
/// let t1 = targets.iter().find(|t| t.job == 1).unwrap();
/// assert!(t0.deadline < t1.deadline); // the tight job gets the early slot
/// # Ok(())
/// # }
/// ```
pub fn peel(
    jobs: &[OnionJob<'_>],
    capacity: u32,
    tolerance: f64,
    horizon: f64,
) -> Result<Vec<Target>, CoreError> {
    validate_params(capacity, tolerance, horizon)?;
    let mut ctx = PeelCtx::fresh(jobs, capacity, tolerance, horizon);
    run_layers(&mut ctx);
    finish_deferred(&mut ctx);
    debug_check_theorem2(&ctx.committed, capacity, ctx.overloaded);
    Ok(ctx.targets)
}

fn validate_params(capacity: u32, tolerance: f64, horizon: f64) -> Result<(), CoreError> {
    if capacity == 0 {
        return Err(CoreError::InvalidConfig { reason: "capacity must be > 0" });
    }
    if !tolerance.is_finite() || tolerance <= 0.0 {
        return Err(CoreError::InvalidConfig { reason: "tolerance must be > 0" });
    }
    if !horizon.is_finite() || horizon <= 0.0 {
        return Err(CoreError::InvalidConfig { reason: "horizon must be > 0" });
    }
    Ok(())
}

/// One recorded feasibility probe: the exact level probed and the
/// annotated outcome. Replay verifies the outcome still holds after a
/// demand change; if every probe of every layer verifies, the whole
/// trajectory — and therefore the peel output — is unchanged bit for bit.
#[derive(Clone, Copy, Debug)]
struct ProbeRec {
    level: f64,
    outcome: Check,
}

/// The action that closed one layer.
#[derive(Clone, Copy, Debug)]
enum ActionRec {
    /// The bottleneck was deadline-free at its level: moved to the
    /// deferred list.
    Defer { job: usize, level: f64 },
    /// The bottleneck peeled: target fixed, demand committed.
    Peel { job: usize, level: f64, deadline: f64 },
    /// No bottleneck up to every active sup: all remaining jobs close at
    /// the converged level.
    FinishAll { lo: f64 },
}

/// Per-layer slice of the flat probe log plus the closing action.
#[derive(Clone, Copy, Debug)]
struct LayerRec {
    probe_start: u32,
    probe_len: u32,
    /// Whether the floor was (known or proven) feasible this layer — the
    /// `floor_feasible` value layers after this one inherit.
    floor_ok: bool,
    action: ActionRec,
}

/// Execution trace of one fast peel: every probe and every layer action,
/// in order, in flat reusable buffers.
#[derive(Default, Debug, Clone)]
struct PeelTrace {
    probes: Vec<ProbeRec>,
    layers: Vec<LayerRec>,
}

impl PeelTrace {
    fn clear(&mut self) {
        self.probes.clear();
        self.layers.clear();
    }

    /// Drops layer `at` and everything after it (delta-replay resume).
    fn truncate_layers(&mut self, at: usize) {
        if at < self.layers.len() {
            self.probes.truncate(self.layers[at].probe_start as usize);
            self.layers.truncate(at);
        }
    }
}

/// Mutable state of one peeling run — everything layer `ℓ+1` inherits from
/// layer `ℓ`. The delta-replay engine reconstructs exactly this state at
/// its resume point, which is what makes a resumed run bit-identical to a
/// from-scratch one.
struct PeelCtx<'j, 'u> {
    jobs: &'j [OnionJob<'u>],
    capacity: u32,
    tolerance: f64,
    horizon: f64,
    /// Active (unpeeled, undeferred) jobs in ascending index order. The
    /// vector is the full `0..n` fill and is never compacted: removing job
    /// `b` writes the [`DEAD`] sentinel at position `b` (the invariant
    /// `active[b] == b` holds for every live job), so a peel/defer cascade
    /// removes in O(1) per layer. Iteration skips sentinels.
    active: Vec<usize>,
    /// Live (non-sentinel) entries in `active`.
    active_count: usize,
    committed: Vec<(f64, u64)>,
    index: CommittedIndex,
    scratch: ProbeScratch,
    deferred: Vec<(usize, f64)>,
    targets: Vec<Target>,
    /// Global floor: the lowest utility any job can end up with.
    level_lo: f64,
    /// Whether `level_lo` is known feasible for the current
    /// active/committed state. Peeling a bottleneck at a proven-feasible
    /// level preserves feasibility of that level exactly (the job's demand
    /// moves from the active sweep to a reservation at the same deadline),
    /// so the floor only needs an explicit probe on the first layer and
    /// after an infeasible-floor peel.
    floor_feasible: bool,
    /// Overload marker: once a job peels off an infeasible floor (or a
    /// deferred job's ASAP slot is clamped by the horizon), the cluster
    /// cannot honor every target and Theorem 2's premise no longer holds.
    overloaded: bool,
    trace: PeelTrace,
}

impl<'j, 'u> PeelCtx<'j, 'u> {
    fn fresh(jobs: &'j [OnionJob<'u>], capacity: u32, tolerance: f64, horizon: f64) -> Self {
        let mut level_lo =
            jobs.iter().map(|j| j.utility.inf()).fold(f64::INFINITY, f64::min);
        if !level_lo.is_finite() {
            level_lo = 0.0;
        }
        let mut scratch = ProbeScratch::default();
        scratch.fill(jobs);
        PeelCtx {
            jobs,
            capacity,
            tolerance,
            horizon,
            active: (0..jobs.len()).collect(),
            active_count: jobs.len(),
            committed: Vec::new(),
            index: CommittedIndex::default(),
            scratch,
            deferred: Vec::new(),
            targets: Vec::with_capacity(jobs.len()),
            level_lo,
            floor_feasible: false,
            overloaded: false,
            trace: PeelTrace::default(),
        }
    }
}

/// The peeling loop (Algorithm 3's outer iteration), recording a
/// [`PeelTrace`] as it goes. May start from a mid-run context — the
/// delta-replay resume path — and behaves exactly as if a from-scratch run
/// had reached that state.
fn run_layers(ctx: &mut PeelCtx<'_, '_>) {
    let jobs = ctx.jobs;
    let (capacity, tolerance, horizon) = (ctx.capacity, ctx.tolerance, ctx.horizon);
    // Descending-sup order of the live active set. With a cursor that
    // skips jobs removed by earlier layers, the per-layer supremum is O(1)
    // amortized instead of an O(n) fold; the first live entry under the
    // descending total order is exactly the fold's maximum. Suprema are
    // evaluated once up front — `sup()` costs a transcendental for the
    // sigmoid class.
    let mut sups: Vec<(f64, usize)> = ctx
        .active
        .iter()
        .filter(|&&i| i != DEAD)
        .map(|&i| (jobs[i].utility.sup(), i))
        .collect();
    sups.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut sup_cursor = 0usize;
    while ctx.active_count > 0 {
        let probe_start = ctx.trace.probes.len() as u32;
        let mut lo = ctx.level_lo;
        let mut bottleneck: Option<usize> = None;
        // The floor itself may be infeasible in overload; the bottleneck of
        // the floor check then peels at the floor level.
        let floor_ok = ctx.floor_feasible || {
            let chk = check_level(jobs, &mut ctx.scratch, &ctx.index, capacity, horizon, lo);
            ctx.trace.probes.push(ProbeRec { level: lo, outcome: chk });
            match chk {
                Check::Feasible { .. } => true,
                Check::Infeasible { bottleneck: b, .. } => {
                    bottleneck = Some(b);
                    false
                }
            }
        };
        if floor_ok {
            while sup_cursor < sups.len() && ctx.active[sups[sup_cursor].1] == DEAD {
                sup_cursor += 1;
            }
            let level_hi = sups
                .get(sup_cursor)
                .map_or(f64::NEG_INFINITY, |&(s, _)| s)
                .max(ctx.level_lo);
            let hi_cap = (level_hi + tolerance).max(lo + tolerance);
            // Warm-started bisection: consecutive layers converge to
            // nearby levels, so instead of always bracketing against the
            // global sup, gallop upward from the floor with a geometrically
            // growing window until a probe turns infeasible (or the cap is
            // reached), then bisect the bracket down to `tolerance`. The
            // first probe sits one tolerance above the floor: with many
            // jobs the level gap between layers is usually smaller, and an
            // infeasible first probe converges the layer immediately.
            let mut width = tolerance;
            let mut hi = (lo + width).min(hi_cap);
            while hi < hi_cap {
                let chk =
                    check_level(jobs, &mut ctx.scratch, &ctx.index, capacity, horizon, hi);
                ctx.trace.probes.push(ProbeRec { level: hi, outcome: chk });
                match chk {
                    Check::Feasible { .. } => {
                        lo = hi;
                        width *= 4.0;
                        hi = (lo + width).min(hi_cap);
                    }
                    Check::Infeasible { bottleneck: b, .. } => {
                        bottleneck = Some(b);
                        break;
                    }
                }
            }
            if bottleneck.is_none() {
                hi = hi_cap;
            }
            while hi - lo > tolerance {
                let mid = 0.5 * (lo + hi);
                let chk =
                    check_level(jobs, &mut ctx.scratch, &ctx.index, capacity, horizon, mid);
                ctx.trace.probes.push(ProbeRec { level: mid, outcome: chk });
                match chk {
                    Check::Feasible { .. } => lo = mid,
                    Check::Infeasible { bottleneck: b, .. } => {
                        hi = mid;
                        bottleneck = Some(b);
                    }
                }
            }
        }

        let probe_len = ctx.trace.probes.len() as u32 - probe_start;
        match bottleneck {
            Some(b) => {
                let level_b = lo.min(jobs[b].utility.sup());
                if is_deadline_free(&jobs[b], level_b) {
                    // The job's utility no longer depends on when it runs —
                    // either it can gain nothing (level ~0) or its utility
                    // is flat at this level (time-insensitive). Defer it:
                    // it will be slotted into leftover capacity once every
                    // job that *does* care has been peeled.
                    ctx.deferred.push((b, level_b));
                    debug_assert_eq!(ctx.active[b], b, "active-slot invariant");
                    ctx.active[b] = DEAD;
                    ctx.active_count -= 1;
                    ctx.scratch.remove(b);
                    // Removing demand can only help: a floor proven
                    // feasible this layer stays feasible.
                    ctx.floor_feasible = floor_ok;
                    ctx.trace.layers.push(LayerRec {
                        probe_start,
                        probe_len,
                        floor_ok,
                        action: ActionRec::Defer { job: b, level: level_b },
                    });
                    continue;
                }
                if !floor_ok {
                    ctx.overloaded = true;
                }
                let deadline = deadline_for(&jobs[b], lo, horizon);
                ctx.targets.push(Target { job: b, level: lo, deadline, lax: false });
                ctx.committed.push((deadline, jobs[b].demand));
                ctx.index.insert(deadline, jobs[b].demand);
                debug_assert_eq!(ctx.active[b], b, "active-slot invariant");
                ctx.active[b] = DEAD;
                ctx.active_count -= 1;
                ctx.scratch.remove(b);
                // Later layers can only improve on this level; it stays
                // feasible only if it was proven so this layer (peeling
                // from an infeasible floor must re-probe).
                ctx.level_lo = lo;
                ctx.floor_feasible = floor_ok;
                ctx.trace.layers.push(LayerRec {
                    probe_start,
                    probe_len,
                    floor_ok,
                    action: ActionRec::Peel { job: b, level: lo, deadline },
                });
            }
            None => {
                // Everything feasible up to every job's supremum: peel all
                // remaining jobs at the converged level.
                for &i in &ctx.active {
                    if i == DEAD {
                        continue;
                    }
                    let level_i = lo.min(jobs[i].utility.sup());
                    if is_deadline_free(&jobs[i], level_i) {
                        ctx.deferred.push((i, level_i));
                        continue;
                    }
                    let deadline = deadline_for(&jobs[i], lo, horizon);
                    ctx.targets.push(Target { job: i, level: level_i, deadline, lax: false });
                    ctx.committed.push((deadline, jobs[i].demand));
                    ctx.index.insert(deadline, jobs[i].demand);
                }
                ctx.active.clear();
                ctx.active_count = 0;
                ctx.trace.layers.push(LayerRec {
                    probe_start,
                    probe_len,
                    floor_ok: true,
                    action: ActionRec::FinishAll { lo },
                });
            }
        }
    }
}

/// Places the deferred (zero-gain or time-insensitive) jobs: earliest
/// completion that leaves every committed reservation intact — they run in
/// the leftover capacity at full parallelism instead of being parked at
/// the horizon. Hopeless-but-time-sensitive jobs (level ~0) go before
/// genuinely flat ones — any residual utility tail still prefers earlier
/// completion — and smaller demands go first within each group.
fn finish_deferred(ctx: &mut PeelCtx<'_, '_>) {
    let jobs = ctx.jobs;
    ctx.deferred.sort_by(|a, b| {
        let flat_a = a.1 > ZERO_LEVEL;
        let flat_b = b.1 > ZERO_LEVEL;
        (flat_a, jobs[a.0].demand, a.0).cmp(&(flat_b, jobs[b.0].demand, b.0))
    });
    for &(i, level) in &ctx.deferred {
        let asap = asap_deadline(jobs[i].demand, &ctx.index, ctx.capacity);
        if asap > ctx.horizon {
            ctx.overloaded = true;
        }
        let deadline = asap.min(ctx.horizon);
        ctx.targets.push(Target { job: i, level, deadline, lax: true });
        ctx.committed.push((deadline, jobs[i].demand));
        ctx.index.insert(deadline, jobs[i].demand);
    }
}

/// Telemetry: how the last [`peel_incremental`] pass executed. Exposed so
/// benches and tests can assert the delta path actually replays instead of
/// silently re-peeling.
#[derive(Default, Clone, Copy, Debug, PartialEq)]
pub struct ReplayStats {
    /// Whether the pass took the delta-replay path at all (false: full
    /// re-peel, because the context changed or the state was invalid).
    pub delta: bool,
    /// Layers whose recorded trajectory was verified and applied.
    pub replayed_layers: usize,
    /// Layer index at which replay fell back to the real peeling loop
    /// (`None`: replay ran to completion).
    pub resumed_at: Option<usize>,
    /// Probes re-verified in O(1) arithmetic, without a sweep.
    pub verified_probes: usize,
    /// Probes re-executed for real against materialized sweep state.
    pub refreshed_probes: usize,
}

/// Cross-pass state for [`peel_incremental`]: the previous pass's
/// execution trace, demands and parameters.
///
/// The state is opaque; it only promises that feeding consecutive passes
/// through it yields plans bit-identical to from-scratch [`peel`] calls.
#[derive(Default, Debug, Clone)]
pub struct PeelState {
    trace: PeelTrace,
    demands: Vec<u64>,
    capacity: u32,
    tolerance: f64,
    horizon: f64,
    valid: bool,
    stats: ReplayStats,
}

impl PeelState {
    /// Creates an empty state; the first pass through it records a trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the recorded trace: the next pass re-peels from scratch.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// How the most recent pass executed.
    pub fn last_stats(&self) -> ReplayStats {
        self.stats
    }
}

/// Absolute slack (container·slots) a recorded margin must retain beyond
/// the demand delta before arithmetic re-verification is trusted; covers
/// accumulated f64 rounding from margin decay across events.
const REPLAY_GUARD: f64 = 1e-6;

/// [`peel`] with cross-pass memoization: when only demands (η) and/or the
/// capacity changed since the previous pass — `same_context` asserts the
/// job count, order, utilities and ages are unchanged; tolerance/horizon
/// are checked against the state — the recorded probe trajectory is
/// *replayed* instead of re-peeled.
///
/// Replay verifies each recorded feasibility probe in O(1) arithmetic
/// using the monotone structure of the Theorem-2 prefix-capacity test: a
/// feasible probe whose minimum slack exceeds the total demand increase
/// plus the capacity-loss term `ΔC·horizon` stays feasible; an infeasible
/// probe stays infeasible at the same boundary when the capacity did not
/// grow, every decreased demand lies strictly after the boundary, and the
/// increases (demand and `ΔC·boundary`) fit inside the pre-violation
/// slack. A capacity *revocation* therefore replays as a divergence-layer
/// event — probes whose slack absorbs the loss verify arithmetically, and
/// the first layer genuinely flipped by the shrink resumes the real loop —
/// rather than forcing a from-scratch re-peel. Probes that cannot be
/// verified arithmetically are re-executed against materialized sweep
/// state (under the *new* capacity); the first probe whose *outcome*
/// actually flips aborts the replay and resumes the real peeling loop from
/// that layer — on exactly the state a from-scratch run would have
/// reached, so the result is bitwise identical to [`peel`] in every case.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] under the same conditions as [`peel`].
pub fn peel_incremental(
    jobs: &[OnionJob<'_>],
    capacity: u32,
    tolerance: f64,
    horizon: f64,
    same_context: bool,
    state: &mut PeelState,
) -> Result<Vec<Target>, CoreError> {
    validate_params(capacity, tolerance, horizon)?;
    let eligible = same_context
        && state.valid
        && state.demands.len() == jobs.len()
        && state.tolerance.to_bits() == tolerance.to_bits()
        && state.horizon.to_bits() == horizon.to_bits()
        // A demand crossing zero flips the job's never-blocks/∞-sentinel
        // classification inside probes; replay does not model that.
        && jobs.iter().zip(&state.demands).all(|(j, &old)| (j.demand == 0) == (old == 0));
    if !eligible {
        let mut ctx = PeelCtx::fresh(jobs, capacity, tolerance, horizon);
        state.trace.clear();
        std::mem::swap(&mut ctx.trace, &mut state.trace);
        run_layers(&mut ctx);
        finish_deferred(&mut ctx);
        debug_check_theorem2(&ctx.committed, capacity, ctx.overloaded);
        std::mem::swap(&mut ctx.trace, &mut state.trace);
        state.demands.clear();
        state.demands.extend(jobs.iter().map(|j| j.demand));
        state.capacity = capacity;
        state.tolerance = tolerance;
        state.horizon = horizon;
        state.valid = true;
        state.stats = ReplayStats::default();
        return Ok(ctx.targets);
    }
    Ok(replay(jobs, capacity, tolerance, horizon, state))
}

/// Where a changed job's demand currently sits during replay.
#[derive(Clone, Copy, PartialEq)]
enum ChangedStatus {
    /// Still in the active sweep (deadline = U⁻¹ at the probed level).
    Active,
    /// Peeled: the demand is a committed reservation at the stored target.
    Committed(f64),
    /// Deferred: the demand influences nothing until the deferred phase,
    /// which replay always recomputes for real.
    Deferred,
}

/// One job whose demand differs from the recorded pass.
struct ChangedJob {
    idx: usize,
    /// `new − old`; exact in f64 for demands below 2⁵³.
    delta: f64,
    status: ChangedStatus,
    /// Memoized `latest_time(level).deadline_within(horizon)` keyed by the
    /// level's bits: cascade layers probe long runs of one level, and the
    /// utility inversion is the only transcendental in the verify path.
    inv: Option<(u64, Option<f64>)>,
}

/// How the capacity drifted since the recorded pass, with the constants
/// needed to bound the resulting slack drain per boundary.
#[derive(Clone, Copy)]
struct CapDrift {
    /// Containers revoked since the recorded pass (0 when capacity grew
    /// or held).
    dec: f64,
    /// Whether the capacity grew.
    inc: bool,
    /// `dec / C_old` — the relative shrink.
    scale: f64,
    /// Total demand of the recorded pass, an upper bound on the load at
    /// any swept boundary.
    demand_bound: f64,
}

impl CapDrift {
    /// Upper-bounds the slack a `dec`-container revocation drains at any
    /// boundary whose recorded slack was at least `margin`: the drain at
    /// boundary `d` is `dec·d`, and `d ≤ horizon` while
    /// `C_old·d = slack + load − ε ≤ slack + demand_bound` gives the
    /// usually far tighter `dec·d ≤ scale·(slack + demand_bound)`. The
    /// bound is increasing in slack, so evaluating it at the recorded
    /// minimum bounds the post-drift minimum from below.
    fn drain(&self, margin: f64, boundary_cap: f64) -> f64 {
        (self.dec * boundary_cap).min(self.scale * (margin + self.demand_bound))
    }
}

/// Re-verifies one recorded probe arithmetically. `pos` is the total
/// demand increase currently in play; `cap` the capacity drift since the
/// recorded pass. Returns the updated record (conservatively decayed
/// margins) or `None` when a real probe is needed.
fn verify_probe(
    jobs: &[OnionJob<'_>],
    horizon: f64,
    rec: ProbeRec,
    changed: &mut [ChangedJob],
    pos: f64,
    cap: CapDrift,
) -> Option<Check> {
    match rec.outcome {
        Check::Feasible { margin } => {
            // Decreases (and a capacity *increase*) only grow every
            // boundary's slack; demand increases shrink each by at most
            // `pos`, and a capacity loss drains at most
            // [`CapDrift::drain`] more. Under a pure capacity increase the
            // recorded margin is kept unchanged — an understatement of the
            // true slack, which is conservative (it can only force an
            // extra refresh, never verify a flipped probe).
            let decay = pos + cap.drain(margin, horizon);
            // rush-lint: allow(RUSH-L002): exact zero means no decaying deltas exist, not a rounded value
            if decay == 0.0 {
                Some(rec.outcome)
            } else if margin - decay >= REPLAY_GUARD {
                Some(Check::Feasible { margin: margin - decay })
            } else {
                None
            }
        }
        // The never-scan reads utilities and the demand>0 pattern only —
        // both unchanged under the delta-eligibility preconditions, and
        // independent of the capacity.
        Check::Infeasible { never: true, .. } => Some(rec.outcome),
        Check::Infeasible { bottleneck, boundary, prefix_margin, never: false } => {
            // A capacity increase could heal the violated boundary itself;
            // only a real probe can tell.
            if cap.inc {
                return None;
            }
            // A decreased demand at or before the violated boundary could
            // heal it; require every decrease to sit strictly after it.
            for c in changed.iter_mut() {
                if c.delta >= 0.0 || c.status == ChangedStatus::Deferred {
                    continue;
                }
                let eff = match c.status {
                    ChangedStatus::Committed(t) => Some(t),
                    ChangedStatus::Active => match c.inv {
                        Some((bits, d)) if bits == rec.level.to_bits() => d,
                        _ => {
                            let d = jobs[c.idx]
                                .utility
                                .latest_time(rec.level)
                                .deadline_within(horizon);
                            c.inv = Some((rec.level.to_bits(), d));
                            d
                        }
                    },
                    // rush-lint: allow(RUSH-L003): deferred jobs are skipped by the `continue` above
                    ChangedStatus::Deferred => unreachable!(),
                };
                match eff {
                    Some(e) if e > boundary => {}
                    _ => return None,
                }
            }
            // Increases (demand, or the capacity loss's slack drain at
            // every boundary `d ≤ boundary`) cannot heal the violation;
            // they could only move it *earlier*, which the pre-violation
            // slack rules out.
            let decay = pos + cap.drain(prefix_margin, boundary);
            if decay > prefix_margin - REPLAY_GUARD {
                return None;
            }
            Some(Check::Infeasible {
                bottleneck,
                boundary,
                prefix_margin: prefix_margin - decay,
                never: false,
            })
        }
    }
}

/// Whether a freshly executed probe confirms the recorded trajectory: the
/// layer's control flow depends on the outcome variant and (for the layer
/// action) the bottleneck identity.
fn same_trajectory(fresh: Check, rec: Check) -> bool {
    match (fresh, rec) {
        (Check::Feasible { .. }, Check::Feasible { .. }) => true,
        (Check::Infeasible { bottleneck: a, .. }, Check::Infeasible { bottleneck: b, .. }) => {
            a == b
        }
        _ => false,
    }
}

/// The delta-replay pass. See [`peel_incremental`] for the contract.
fn replay(
    jobs: &[OnionJob<'_>],
    capacity: u32,
    tolerance: f64,
    horizon: f64,
    state: &mut PeelState,
) -> Vec<Target> {
    let n = jobs.len();
    let mut changed: Vec<ChangedJob> = jobs
        .iter()
        .zip(&state.demands)
        .enumerate()
        .filter(|(_, (j, &old))| j.demand != old)
        .map(|(i, (j, &old))| ChangedJob {
            idx: i,
            delta: j.demand as f64 - old as f64,
            status: ChangedStatus::Active,
            inv: None,
        })
        .collect();
    let mut stats = ReplayStats { delta: true, ..Default::default() };
    // Capacity divergence: a revocation drains slack at every boundary
    // (see [`CapDrift::drain`]); a restock can only add slack (but may
    // heal recorded violations, forcing refreshes).
    let cap = CapDrift {
        dec: f64::from(state.capacity.saturating_sub(capacity)),
        inc: capacity > state.capacity,
        scale: f64::from(state.capacity.saturating_sub(capacity))
            / f64::from(state.capacity.max(1)),
        demand_bound: state.demands.iter().map(|&d| d as f64).sum(),
    };
    let cap_changed = capacity != state.capacity;

    let mut removed = vec![false; n];
    let mut committed: Vec<(f64, u64)> = Vec::new();
    let mut deferred: Vec<(usize, f64)> = Vec::new();
    let mut targets: Vec<Target> = Vec::with_capacity(n);
    let mut level_lo = jobs.iter().map(|j| j.utility.inf()).fold(f64::INFINITY, f64::min);
    if !level_lo.is_finite() {
        level_lo = 0.0;
    }
    let mut floor_feasible = false;
    let mut overloaded = false;
    let mut removed_count = 0usize;
    // Sweep state materialized at the first refresh probe, then kept in
    // sync lazily: layer actions only bump `removed`/`committed`, and the
    // next refresh catches up in one retain pass plus the few pending
    // reservation inserts — preserving the scratch's deadline memo, which
    // makes a dense run of refresh probes at one recorded level cost one
    // utility inversion total.
    let mut live: Option<(ProbeScratch, CommittedIndex)> = None;
    // Committed entries already present in the live index.
    let mut live_commits = 0usize;
    // Jobs removed by layer actions since the live scratch last caught up.
    let mut pending_removed: Vec<usize> = Vec::new();
    let mut resume_at: Option<usize> = None;

    'layers: for li in 0..state.trace.layers.len() {
        let layer = state.trace.layers[li];
        let pos: f64 = changed
            .iter()
            .filter(|c| c.status != ChangedStatus::Deferred)
            .map(|c| c.delta.max(0.0))
            .sum();
        let influenced =
            cap_changed || changed.iter().any(|c| c.status != ChangedStatus::Deferred);
        let pr = layer.probe_start as usize..(layer.probe_start + layer.probe_len) as usize;
        for p in pr {
            let rec = state.trace.probes[p];
            let verdict = if influenced {
                verify_probe(jobs, horizon, rec, &mut changed, pos, cap)
            } else {
                Some(rec.outcome)
            };
            match verdict {
                Some(updated) => {
                    stats.verified_probes += 1;
                    state.trace.probes[p].outcome = updated;
                }
                None => {
                    match live.as_mut() {
                        None => {
                            let active: Vec<usize> =
                                (0..n).filter(|&i| !removed[i]).collect();
                            let mut scratch = ProbeScratch::default();
                            scratch.fill_active(&active);
                            let mut index = CommittedIndex::default();
                            index.rebuild(&committed);
                            live = Some((scratch, index));
                        }
                        Some((scratch, index)) => {
                            // Catch up on actions applied since the last
                            // refresh: O(1) per removed job (tombstone via
                            // the scratch's position index), a few
                            // reservation inserts.
                            for &j in &pending_removed {
                                scratch.remove(j);
                            }
                            if committed.len() - live_commits > 32 {
                                index.rebuild(&committed);
                            } else {
                                for &(t, e) in &committed[live_commits..] {
                                    index.insert(t, e);
                                }
                            }
                        }
                    }
                    pending_removed.clear();
                    live_commits = committed.len();
                    // rush-lint: allow(RUSH-L003): populated by the refresh branch directly above
                    let (scratch, index) = live.as_mut().expect("just materialized");
                    let fresh = check_level(jobs, scratch, index, capacity, horizon, rec.level);
                    stats.refreshed_probes += 1;
                    if same_trajectory(fresh, rec.outcome) {
                        state.trace.probes[p].outcome = fresh;
                    } else {
                        // The trajectory genuinely diverged: resume the
                        // real loop from this layer's entry state.
                        resume_at = Some(li);
                        break 'layers;
                    }
                }
            }
        }
        match layer.action {
            ActionRec::Defer { job, level } => {
                removed[job] = true;
                removed_count += 1;
                pending_removed.push(job);
                deferred.push((job, level));
                floor_feasible = layer.floor_ok;
                if let Some(c) = changed.iter_mut().find(|c| c.idx == job) {
                    c.status = ChangedStatus::Deferred;
                }
            }
            ActionRec::Peel { job, level, deadline } => {
                targets.push(Target { job, level, deadline, lax: false });
                committed.push((deadline, jobs[job].demand));
                removed[job] = true;
                removed_count += 1;
                pending_removed.push(job);
                if !layer.floor_ok {
                    overloaded = true;
                }
                level_lo = level;
                floor_feasible = layer.floor_ok;
                if let Some(c) = changed.iter_mut().find(|c| c.idx == job) {
                    c.status = ChangedStatus::Committed(deadline);
                }
            }
            ActionRec::FinishAll { lo } => {
                for i in 0..n {
                    if removed[i] {
                        continue;
                    }
                    removed[i] = true;
                    removed_count += 1;
                    pending_removed.push(i);
                    let level_i = lo.min(jobs[i].utility.sup());
                    if is_deadline_free(&jobs[i], level_i) {
                        deferred.push((i, level_i));
                        continue;
                    }
                    let deadline = deadline_for(&jobs[i], lo, horizon);
                    targets.push(Target { job: i, level: level_i, deadline, lax: false });
                    committed.push((deadline, jobs[i].demand));
                }
            }
        }
        stats.replayed_layers += 1;
    }

    let mut ctx = PeelCtx {
        jobs,
        capacity,
        tolerance,
        horizon,
        active: Vec::new(),
        active_count: 0,
        committed,
        index: CommittedIndex::default(),
        scratch: ProbeScratch::default(),
        deferred,
        targets,
        level_lo,
        floor_feasible,
        overloaded,
        trace: std::mem::take(&mut state.trace),
    };
    if let Some(li) = resume_at {
        stats.resumed_at = Some(li);
        ctx.trace.truncate_layers(li);
        ctx.active = (0..n).map(|i| if removed[i] { DEAD } else { i }).collect();
        ctx.active_count = n - removed_count;
        // rush-lint: allow(RUSH-L003): divergence always refreshes `live` before breaking out
        let (scratch, index) = live.take().expect("resume always follows a refresh");
        ctx.scratch = scratch;
        ctx.index = index;
        run_layers(&mut ctx);
    } else {
        // Replay covered every layer; only the deferred phase (always
        // recomputed — its packing order keys on the live demands) needs
        // the committed index.
        ctx.index.rebuild(&ctx.committed);
    }
    finish_deferred(&mut ctx);
    debug_check_theorem2(&ctx.committed, capacity, ctx.overloaded);
    state.trace = ctx.trace;
    state.demands.clear();
    state.demands.extend(jobs.iter().map(|j| j.demand));
    state.capacity = capacity;
    state.stats = stats;
    ctx.targets
}

/// Contract (Theorem 2): in a non-overloaded instance, the committed
/// reservations satisfy the prefix-capacity condition
/// `Σ_{T_k ≤ d} η_k ≤ C · d` at every reservation deadline `d` — the
/// feasibility certificate the peeling loop maintained layer by layer.
#[cfg(feature = "strict-invariants")]
fn debug_check_theorem2(committed: &[(f64, u64)], capacity: u32, overloaded: bool) {
    if overloaded {
        return;
    }
    let mut sorted: Vec<(f64, u64)> = committed.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    if sorted.iter().any(|&(d, e)| e > 0 && d <= 0.0) {
        // Degenerate clamp: a level sitting above a job's supremum by
        // floating-point noise maps to an ASAP deadline of 0 — the same
        // "cannot satisfy" category as overload.
        return;
    }
    let c = capacity as f64;
    let mut cum = 0u64;
    for &(d, e) in &sorted {
        cum += e;
        debug_assert!(
            cum as f64 <= c * d + 1e-6,
            "Theorem 2 contract: committed demand {cum} exceeds C·d = {} at deadline {d}",
            c * d
        );
    }
}

#[cfg(not(feature = "strict-invariants"))]
#[inline(always)]
fn debug_check_theorem2(_committed: &[(f64, u64)], _capacity: u32, _overloaded: bool) {}

/// The Theorem-2 prefix-capacity feasibility test, exposed as a standalone
/// probe: given `(deadline, demand)` reservations (in any order), returns
/// whether `Σ_{T_k ≤ d} η_k ≤ C · d` holds at every reservation deadline
/// `d` — i.e. whether a schedule meeting every deadline exists on `capacity`
/// containers.
///
/// This is the test an *admission controller* runs at submission time: take
/// the current plan's committed `(target, η)` pairs, add the candidate
/// job's `(deadline, η)`, and probe. Infeasible means admitting the job
/// would overcommit the cluster — some deadline must slip.
///
/// Non-finite deadlines (a job with no deadline at all) never constrain
/// feasibility and are skipped; a non-positive deadline with positive
/// demand is immediately infeasible. `capacity == 0` is infeasible unless
/// there is no demand at all.
///
/// # Example
///
/// ```
/// use rush_core::onion::prefix_capacity_feasible;
///
/// // 2 containers: 100 container·slots by t=60 and 140 more by t=120.
/// assert!(prefix_capacity_feasible(&[(60.0, 100), (120.0, 140)], 2));
/// // Adding 80 more by t=60 breaks the first prefix (180 > 2·60).
/// assert!(!prefix_capacity_feasible(&[(60.0, 100), (120.0, 140), (60.0, 80)], 2));
/// ```
pub fn prefix_capacity_feasible(reservations: &[(f64, u64)], capacity: u32) -> bool {
    let mut sorted: Vec<(f64, u64)> = reservations
        .iter()
        .copied()
        .filter(|&(d, e)| e > 0 && d.is_finite())
        .collect();
    if sorted.is_empty() {
        return true;
    }
    if capacity == 0 {
        return false;
    }
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let c = capacity as f64;
    let mut cum = 0u64;
    for &(d, e) in &sorted {
        if d <= 0.0 {
            return false;
        }
        cum += e;
        if cum as f64 > c * d + 1e-9 {
            return false;
        }
    }
    true
}

/// The smallest integer capacity under which `reservations` still satisfy
/// the Theorem 2 prefix condition: `max_k ⌈(Σ_{T_i ≤ T_k} η_i) / T_k⌉`
/// over the deadline-sorted prefixes.
///
/// This is the *committed prefix demand* of a planner partition — the
/// floor below which its capacity slice cannot be cut without breaking a
/// deadline it has already promised. Together with the slice it yields the
/// shard's headroom (`slice − required`), the quantity the cross-shard
/// rebalancer migrates. Returns `0` when nothing is reserved, and
/// `u32::MAX` when some positive demand carries a non-positive deadline
/// (no finite capacity helps).
///
/// Consistent with [`prefix_capacity_feasible`] by construction:
/// `prefix_capacity_feasible(r, c)` holds iff
/// `c >= prefix_capacity_required(r)` (up to the probe's `1e-9` slack).
///
/// # Example
///
/// ```
/// use rush_core::onion::{prefix_capacity_feasible, prefix_capacity_required};
///
/// let r = [(60.0, 100), (120.0, 140), (60.0, 80)];
/// let need = prefix_capacity_required(&r);
/// assert_eq!(need, 3); // 180 container·slots by t=60
/// assert!(prefix_capacity_feasible(&r, need));
/// assert!(!prefix_capacity_feasible(&r, need - 1));
/// ```
pub fn prefix_capacity_required(reservations: &[(f64, u64)]) -> u32 {
    let mut sorted: Vec<(f64, u64)> = reservations
        .iter()
        .copied()
        .filter(|&(d, e)| e > 0 && d.is_finite())
        .collect();
    if sorted.is_empty() {
        return 0;
    }
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut cum = 0u64;
    let mut need = 0u32;
    for &(d, e) in &sorted {
        if d <= 0.0 {
            return u32::MAX;
        }
        cum += e;
        // Smallest integer c with cum ≤ c·d + 1e-9, i.e. ⌈(cum − ε)/d⌉.
        let exact = (cum as f64 - 1e-9) / d;
        let c = exact.ceil();
        if c >= u32::MAX as f64 {
            return u32::MAX;
        }
        need = need.max(c as u32);
    }
    need
}

/// Whether a job's utility is indifferent to *when* it completes at the
/// given level: either the level has collapsed to ~0 (nothing left to
/// gain) or the utility is flat at/above the level (time-insensitive).
fn is_deadline_free(job: &OnionJob<'_>, level: f64) -> bool {
    if level <= ZERO_LEVEL && job.utility.sup() > ZERO_LEVEL {
        return true;
    }
    matches!(job.utility.latest_time(level), LatestTime::Always)
}

/// Straightforward reference implementation of Algorithm 3.
///
/// This is the direct transcription of the paper: every feasibility probe
/// recomputes and re-sorts all active deadlines, the committed-demand index
/// is rebuilt once per layer, and each layer bisects the full
/// `[floor, sup]` level range. The optimized [`peel`] must produce the
/// same layering — property tests compare the two on random instances, and
/// the Fig. 5 benchmark uses this as the before-optimization baseline.
pub mod naive {
    use super::{deadline_for, is_deadline_free, OnionJob, Target, ZERO_LEVEL};
    use crate::CoreError;

    /// Frozen two-outcome probe verdict. The optimized peel's [`super::Check`]
    /// has since grown margin annotations for delta replay; the oracle keeps
    /// the original shape so its transcription of Algorithm 3 never drifts.
    enum Check {
        Feasible,
        Infeasible { bottleneck: usize },
    }

    /// Frozen copy of the original sort-per-call ASAP packing used by the
    /// deferred phase, kept verbatim as the optimized path migrated to the
    /// maintained committed index.
    fn asap_deadline(demand: u64, committed: &[(f64, u64)], capacity: u32) -> f64 {
        let c = capacity as f64;
        // Committed deadlines sorted with cumulative demand.
        let mut sorted: Vec<(f64, u64)> = committed.to_vec();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut cum = 0u64;
        let mut prefix: Vec<(f64, u64)> = Vec::with_capacity(sorted.len());
        for &(t, e) in &sorted {
            cum += e;
            prefix.push((t, cum));
        }
        // Barrier: the job must complete after any reservation it would break.
        let mut barrier = 0.0f64;
        for &(t, cum_t) in &prefix {
            if (demand + cum_t) as f64 > c * t + 1e-9 {
                barrier = barrier.max(t);
            }
        }
        let mut d = ((demand as f64 / c).max(1.0)).max(barrier + 1e-9);
        // Fixed point over the step function G; terminates in ≤ |committed|+1
        // rounds because each bump crosses at least one reservation deadline.
        loop {
            let g: u64 = prefix
                .iter()
                .take_while(|(t, _)| *t <= d)
                .last()
                .map_or(0, |&(_, cum_t)| cum_t);
            let next = (((demand + g) as f64 / c).max(1.0)).max(barrier + 1e-9);
            if next <= d + 1e-9 {
                return d;
            }
            d = next;
        }
    }

    /// Sorted index over committed `(deadline, demand)` reservations,
    /// rebuilt from scratch once per peel layer.
    struct CommittedIndex {
        times: Vec<f64>,
        cums: Vec<u64>,
    }

    impl CommittedIndex {
        fn new(committed: &[(f64, u64)]) -> Self {
            let mut sorted: Vec<(f64, u64)> = committed.to_vec();
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut times = Vec::with_capacity(sorted.len());
            let mut cums = Vec::with_capacity(sorted.len());
            let mut cum = 0u64;
            for (t, e) in sorted {
                cum += e;
                times.push(t);
                cums.push(cum);
            }
            CommittedIndex { times, cums }
        }

        /// `G(t)`: total committed demand with deadline ≤ `t`.
        fn g(&self, t: f64) -> u64 {
            let idx = self.times.partition_point(|&x| x <= t);
            if idx == 0 {
                0
            } else {
                self.cums[idx - 1]
            }
        }
    }

    /// Theorem 2 feasibility probe, allocating and sorting per call.
    fn check_level(
        jobs: &[OnionJob<'_>],
        active: &[usize],
        committed: &CommittedIndex,
        capacity: u32,
        horizon: f64,
        level: f64,
    ) -> Check {
        let mut deadlines: Vec<(f64, usize)> = Vec::with_capacity(active.len());
        for &i in active {
            match jobs[i].utility.latest_time(level).deadline_within(horizon) {
                Some(d) => deadlines.push((d, i)),
                None => {
                    if jobs[i].demand > 0 {
                        return Check::Infeasible { bottleneck: i };
                    }
                }
            }
        }
        deadlines.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let c = capacity as f64;
        let mut cum = 0u64;
        let mut ci = 0usize;
        let mut last_active: Option<usize> = None;
        for &(d, i) in &deadlines {
            while ci < committed.times.len() && committed.times[ci] < d {
                if (cum + committed.cums[ci]) as f64 > c * committed.times[ci] + 1e-9 {
                    return Check::Infeasible { bottleneck: last_active.unwrap_or(i) };
                }
                ci += 1;
            }
            cum += jobs[i].demand;
            if (cum + committed.g(d)) as f64 > c * d + 1e-9 {
                return Check::Infeasible { bottleneck: i };
            }
            last_active = Some(i);
        }
        while ci < committed.times.len() {
            if (cum + committed.cums[ci]) as f64 > c * committed.times[ci] + 1e-9 {
                if let Some(b) = last_active {
                    return Check::Infeasible { bottleneck: b };
                }
                break;
            }
            ci += 1;
        }
        Check::Feasible
    }

    /// Runs Algorithm 3 exactly as written — see the module docs. Same
    /// contract as [`super::peel`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] under the same conditions as
    /// [`super::peel`].
    pub fn peel(
        jobs: &[OnionJob<'_>],
        capacity: u32,
        tolerance: f64,
        horizon: f64,
    ) -> Result<Vec<Target>, CoreError> {
        if capacity == 0 {
            return Err(CoreError::InvalidConfig { reason: "capacity must be > 0" });
        }
        if !tolerance.is_finite() || tolerance <= 0.0 {
            return Err(CoreError::InvalidConfig { reason: "tolerance must be > 0" });
        }
        if !horizon.is_finite() || horizon <= 0.0 {
            return Err(CoreError::InvalidConfig { reason: "horizon must be > 0" });
        }
        let mut active: Vec<usize> = (0..jobs.len()).collect();
        let mut committed: Vec<(f64, u64)> = Vec::new();
        let mut deferred: Vec<(usize, f64)> = Vec::new();
        let mut targets: Vec<Target> = Vec::with_capacity(jobs.len());
        let mut level_lo = jobs.iter().map(|j| j.utility.inf()).fold(f64::INFINITY, f64::min);
        if !level_lo.is_finite() {
            level_lo = 0.0;
        }

        while !active.is_empty() {
            let level_hi = active
                .iter()
                .map(|&i| jobs[i].utility.sup())
                .fold(f64::NEG_INFINITY, f64::max)
                .max(level_lo);
            let mut lo = level_lo;
            let mut hi = (level_hi + tolerance).max(lo + tolerance);
            let mut bottleneck: Option<usize> = None;
            let index = CommittedIndex::new(&committed);
            if let Check::Infeasible { bottleneck: b } =
                check_level(jobs, &active, &index, capacity, horizon, lo)
            {
                bottleneck = Some(b);
            } else {
                while hi - lo > tolerance {
                    let mid = 0.5 * (lo + hi);
                    match check_level(jobs, &active, &index, capacity, horizon, mid) {
                        Check::Feasible => lo = mid,
                        Check::Infeasible { bottleneck: b } => {
                            hi = mid;
                            bottleneck = Some(b);
                        }
                    }
                }
            }

            match bottleneck {
                Some(b) => {
                    let level_b = lo.min(jobs[b].utility.sup());
                    if is_deadline_free(&jobs[b], level_b) {
                        deferred.push((b, level_b));
                        active.retain(|&i| i != b);
                        continue;
                    }
                    let deadline = deadline_for(&jobs[b], lo, horizon);
                    targets.push(Target { job: b, level: lo, deadline, lax: false });
                    committed.push((deadline, jobs[b].demand));
                    active.retain(|&i| i != b);
                    level_lo = lo;
                }
                None => {
                    for &i in &active {
                        let level_i = lo.min(jobs[i].utility.sup());
                        if is_deadline_free(&jobs[i], level_i) {
                            deferred.push((i, level_i));
                            continue;
                        }
                        let deadline = deadline_for(&jobs[i], lo, horizon);
                        targets.push(Target { job: i, level: level_i, deadline, lax: false });
                        committed.push((deadline, jobs[i].demand));
                    }
                    active.clear();
                }
            }
        }

        deferred.sort_by(|a, b| {
            let flat_a = a.1 > ZERO_LEVEL;
            let flat_b = b.1 > ZERO_LEVEL;
            (flat_a, jobs[a.0].demand, a.0).cmp(&(flat_b, jobs[b.0].demand, b.0))
        });
        for (i, level) in deferred {
            let deadline = asap_deadline(jobs[i].demand, &committed, capacity).min(horizon);
            targets.push(Target { job: i, level, deadline, lax: true });
            committed.push((deadline, jobs[i].demand));
        }
        Ok(targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_utility::TimeUtility;

    fn sigmoid(budget: f64, weight: f64, beta: f64) -> TimeUtility {
        TimeUtility::sigmoid(budget, weight, beta).unwrap()
    }

    #[test]
    fn single_job_peels_near_its_sup() {
        let u = sigmoid(100.0, 5.0, 0.1);
        let jobs = [OnionJob { demand: 200, utility: &u }];
        let t = peel(&jobs, 8, 0.001, 1e6).unwrap();
        assert_eq!(t.len(), 1);
        // Demand 200 on 8 containers needs ≥ 25 slots; deadline must be
        // at least that, and the level consistent with the deadline.
        assert!(t[0].deadline >= 25.0 - 1e-6, "deadline {}", t[0].deadline);
        let u_at = u.utility(t[0].deadline);
        assert!((u_at - t[0].level).abs() < 0.1, "level {} vs U(T) {}", t[0].level, u_at);
    }

    #[test]
    fn capacity_binds_the_deadline() {
        let u = sigmoid(10.0, 5.0, 0.5);
        // Demand 800 on 8 containers needs ≥ 100 slots >> budget 10.
        let jobs = [OnionJob { demand: 800, utility: &u }];
        let t = peel(&jobs, 8, 0.001, 1e6).unwrap();
        assert!(t[0].deadline >= 100.0 - 1e-6, "deadline {}", t[0].deadline);
        assert!(t[0].level < 0.01, "utility is gone at 10x the budget");
    }

    #[test]
    fn equal_jobs_share_equally() {
        let u = sigmoid(100.0, 5.0, 0.1);
        let jobs = [
            OnionJob { demand: 400, utility: &u },
            OnionJob { demand: 400, utility: &u },
        ];
        let t = peel(&jobs, 8, 0.001, 1e6).unwrap();
        assert_eq!(t.len(), 2);
        // Total 800 on 8 containers = 100 slots; both can't finish at 50,
        // one must wait for ~100. Levels differ because one binds earlier,
        // but both deadlines fit within capacity:
        let mut deadlines: Vec<f64> = t.iter().map(|x| x.deadline).collect();
        deadlines.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(deadlines[1] >= 100.0 - 1.0, "latest deadline {}", deadlines[1]);
    }

    #[test]
    fn urgent_job_peels_with_earlier_deadline() {
        let tight = sigmoid(50.0, 5.0, 0.2);
        let loose = sigmoid(5000.0, 5.0, 0.002);
        let jobs = [
            OnionJob { demand: 200, utility: &tight },
            OnionJob { demand: 200, utility: &loose },
        ];
        let t = peel(&jobs, 8, 0.001, 1e6).unwrap();
        let d_tight = t.iter().find(|x| x.job == 0).unwrap().deadline;
        let d_loose = t.iter().find(|x| x.job == 1).unwrap().deadline;
        assert!(d_tight < d_loose, "tight {d_tight} vs loose {d_loose}");
    }

    #[test]
    fn lexicographic_improves_beyond_min() {
        // One hopeless job (overdue) must not drag the other to zero.
        let hopeless = sigmoid(1.0, 5.0, 5.0); // effectively expired
        let healthy = sigmoid(500.0, 5.0, 0.05);
        let jobs = [
            OnionJob { demand: 1000, utility: &hopeless },
            OnionJob { demand: 200, utility: &healthy },
        ];
        let t = peel(&jobs, 8, 0.001, 1e6).unwrap();
        let lvl_healthy = t.iter().find(|x| x.job == 1).unwrap().level;
        assert!(lvl_healthy > 4.0, "healthy job should still achieve ~5, got {lvl_healthy}");
    }

    #[test]
    fn constant_utility_jobs_defer_into_leftover_capacity() {
        let c = TimeUtility::constant(3.0).unwrap();
        let s = sigmoid(100.0, 5.0, 0.1);
        let jobs = [
            OnionJob { demand: 400, utility: &c },
            OnionJob { demand: 400, utility: &s },
        ];
        let t = peel(&jobs, 8, 0.001, 10_000.0).unwrap();
        let tc = t.iter().find(|x| x.job == 0).unwrap();
        let ts = t.iter().find(|x| x.job == 1).unwrap();
        // The insensitive job is lax: ordered behind the sigmoid job but
        // with a work-conserving ASAP completion (800 demand / 8 = 100),
        // not parked at the horizon.
        assert!(tc.lax);
        assert!(!ts.lax);
        assert!(tc.deadline > ts.deadline, "insensitive defers: {tc:?} vs {ts:?}");
        assert!((tc.deadline - 100.0).abs() < 2.0, "ASAP behind reservations, got {tc:?}");
        assert!((tc.level - 3.0).abs() < 0.01, "flat job keeps ~its full level, got {}", tc.level);
    }

    #[test]
    fn zero_demand_jobs_never_block() {
        let low = sigmoid(10.0, 1.0, 0.5); // low sup
        let high = sigmoid(100.0, 5.0, 0.1);
        let jobs = [
            OnionJob { demand: 0, utility: &low },
            OnionJob { demand: 100, utility: &high },
        ];
        let t = peel(&jobs, 8, 0.001, 1e6).unwrap();
        assert_eq!(t.len(), 2);
        let lvl_high = t.iter().find(|x| x.job == 1).unwrap().level;
        assert!(lvl_high > 4.5, "zero-demand job must not cap the layer, got {lvl_high}");
    }

    #[test]
    fn overload_peels_everyone_without_panic() {
        let u = sigmoid(5.0, 5.0, 1.0);
        let jobs: Vec<OnionJob<'_>> =
            (0..10).map(|_| OnionJob { demand: 10_000, utility: &u }).collect();
        let t = peel(&jobs, 1, 0.01, 1e5).unwrap();
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn feasibility_condition_theorem2_holds_at_targets() {
        // After peeling, the prefix-capacity condition must hold for the
        // chosen deadlines: Σ_{T_i ≤ d} η_i ≤ C·d for every target d.
        let a = sigmoid(60.0, 5.0, 0.2);
        let b = sigmoid(120.0, 4.0, 0.1);
        let c = TimeUtility::constant(2.0).unwrap();
        let jobs = [
            OnionJob { demand: 300, utility: &a },
            OnionJob { demand: 500, utility: &b },
            OnionJob { demand: 400, utility: &c },
        ];
        let capacity = 8u32;
        let t = peel(&jobs, capacity, 0.001, 1e5).unwrap();
        let mut ds: Vec<(f64, u64)> =
            t.iter().map(|x| (x.deadline, jobs[x.job].demand)).collect();
        ds.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let mut cum = 0u64;
        for (d, e) in ds {
            cum += e;
            assert!(
                cum as f64 <= capacity as f64 * d + 1e-6,
                "prefix demand {cum} exceeds C*d = {}",
                capacity as f64 * d
            );
        }
    }

    #[test]
    fn validation_errors() {
        let u = sigmoid(10.0, 1.0, 0.1);
        let jobs = [OnionJob { demand: 1, utility: &u }];
        assert!(peel(&jobs, 0, 0.01, 1e6).is_err());
        assert!(peel(&jobs, 8, 0.0, 1e6).is_err());
        assert!(peel(&jobs, 8, 0.01, 0.0).is_err());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let t = peel(&[], 8, 0.01, 1e6).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn shifted_utility_behaves() {
        let u = sigmoid(100.0, 5.0, 0.1);
        let s = Shifted::new(&u, 40.0);
        assert_eq!(s.utility(10.0), u.utility(50.0));
        assert_eq!(s.inf(), u.inf());
        match (s.latest_time(2.5), u.latest_time(2.5)) {
            (LatestTime::At(a), LatestTime::At(b)) => assert!((a - (b - 40.0)).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
        // A level only achievable before "now" becomes Never.
        let s_late = Shifted::new(&u, 1000.0);
        assert_eq!(s_late.latest_time(4.9), LatestTime::Never);
    }

    #[test]
    fn shifted_negative_shift_clamps() {
        let u = sigmoid(100.0, 5.0, 0.1);
        let s = Shifted::new(&u, -5.0);
        assert_eq!(s.utility(10.0), u.utility(10.0));
    }

    #[test]
    fn max_min_delays_the_job_that_retains_more_utility() {
        // Same budget/demand, different weights. Capacity forces one job to
        // the late slot (~100); max-min on absolute utilities delays the
        // HEAVY job, because U_heavy(100) > U_light(100): the resulting
        // sorted utility vector dominates the swapped assignment.
        let heavy = sigmoid(50.0, 5.0, 0.1);
        let light = sigmoid(50.0, 1.0, 0.1);
        let jobs = [
            OnionJob { demand: 400, utility: &heavy },
            OnionJob { demand: 400, utility: &light },
        ];
        let t = peel(&jobs, 8, 0.001, 1e6).unwrap();
        let d_heavy = t.iter().find(|x| x.job == 0).unwrap().deadline;
        let d_light = t.iter().find(|x| x.job == 1).unwrap().deadline;
        assert!(d_heavy > d_light, "heavy {d_heavy} should take the late slot vs {d_light}");
        // The achieved min level beats the swapped assignment's min level
        // (light at deadline 100 would sit at U_light(100) ≈ 0.0067).
        let min_level =
            t.iter().map(|x| x.level).fold(f64::INFINITY, f64::min);
        assert!(min_level > 0.02, "min level {min_level} must beat the swapped order");
    }

    #[test]
    fn prefix_capacity_probe_accepts_and_rejects() {
        // Exactly at capacity is feasible (2 containers, 120 by t=60).
        assert!(prefix_capacity_feasible(&[(60.0, 120)], 2));
        // One over is not.
        assert!(!prefix_capacity_feasible(&[(60.0, 121)], 2));
        // Order of reservations does not matter.
        assert!(prefix_capacity_feasible(&[(120.0, 140), (60.0, 100)], 2));
        assert!(!prefix_capacity_feasible(&[(120.0, 140), (60.0, 180)], 2));
        // A later prefix can be the binding one.
        assert!(!prefix_capacity_feasible(&[(60.0, 50), (61.0, 200)], 2));
        // Empty and zero-demand sets are trivially feasible.
        assert!(prefix_capacity_feasible(&[], 4));
        assert!(prefix_capacity_feasible(&[(10.0, 0)], 0));
        // Zero capacity with demand is not.
        assert!(!prefix_capacity_feasible(&[(10.0, 1)], 0));
        // Non-finite deadlines never constrain; non-positive ones always do.
        assert!(prefix_capacity_feasible(&[(f64::INFINITY, 10_000)], 1));
        assert!(!prefix_capacity_feasible(&[(0.0, 5)], 8));
        assert!(!prefix_capacity_feasible(&[(-3.0, 5)], 8));
    }

    #[test]
    fn prefix_capacity_required_is_the_probe_threshold() {
        // required == the exact threshold at which the probe flips.
        for r in [
            vec![(60.0, 120)],
            vec![(60.0, 121)],
            vec![(120.0, 140), (60.0, 100)],
            vec![(60.0, 50), (61.0, 200)],
            vec![(1.0, 1), (2.0, 1), (3.0, 1)],
            vec![(0.5, 3)],
        ] {
            let need = prefix_capacity_required(&r);
            assert!(prefix_capacity_feasible(&r, need), "{r:?} at {need}");
            if need > 0 {
                assert!(!prefix_capacity_feasible(&r, need - 1), "{r:?} at {}", need - 1);
            }
        }
        // Nothing reserved → nothing required.
        assert_eq!(prefix_capacity_required(&[]), 0);
        assert_eq!(prefix_capacity_required(&[(10.0, 0)]), 0);
        // Unconstrained deadlines are skipped, hopeless ones saturate.
        assert_eq!(prefix_capacity_required(&[(f64::INFINITY, 10_000)]), 0);
        assert_eq!(prefix_capacity_required(&[(0.0, 5)]), u32::MAX);
        assert_eq!(prefix_capacity_required(&[(-3.0, 5)]), u32::MAX);
    }

    #[test]
    fn prefix_capacity_probe_agrees_with_peel_output() {
        // The reservations the peel commits in a non-overloaded instance
        // must pass the standalone probe (Theorem 2's certificate).
        let a = sigmoid(200.0, 5.0, 0.05);
        let b = sigmoid(400.0, 3.0, 0.02);
        let c = sigmoid(800.0, 1.0, 0.01);
        let jobs = [
            OnionJob { demand: 300, utility: &a },
            OnionJob { demand: 500, utility: &b },
            OnionJob { demand: 400, utility: &c },
        ];
        let targets = peel(&jobs, 4, 0.001, 1e6).unwrap();
        let reservations: Vec<(f64, u64)> =
            targets.iter().map(|t| (t.deadline, jobs[t.job].demand)).collect();
        assert!(prefix_capacity_feasible(&reservations, 4));
        // Squeezing the same demands onto 1 container breaks feasibility.
        assert!(!prefix_capacity_feasible(&reservations, 1));
    }

    fn assert_targets_bitwise(a: &[Target], b: &[Target], ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: length");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.job, y.job, "{ctx}: job order");
            assert_eq!(x.level.to_bits(), y.level.to_bits(), "{ctx}: level, job {}", x.job);
            assert_eq!(x.deadline.to_bits(), y.deadline.to_bits(), "{ctx}: deadline, job {}", x.job);
            assert_eq!(x.lax, y.lax, "{ctx}: lax, job {}", x.job);
        }
    }

    /// Delta replay must be bit-identical to a from-scratch peel across a
    /// deterministic sweep of single- and multi-job demand perturbations,
    /// including large swings that force trajectory resumes.
    #[test]
    fn incremental_peel_bitwise_matches_full_peel() {
        let utilities: Vec<TimeUtility> = (0..40)
            .map(|i| {
                let budget = 120.0 + 61.0 * i as f64;
                sigmoid(budget, 1.0 + (i % 5) as f64, 10.0 / budget)
            })
            .collect();
        let mut demands: Vec<u64> = (0..40).map(|i| 37 + 91 * i as u64 % 1800).collect();
        let mut state = PeelState::new();
        let (cap, tol, hor) = (16u32, 1e-4, 1e6);

        let jobs: Vec<OnionJob<'_>> = demands
            .iter()
            .zip(&utilities)
            .map(|(&d, u)| OnionJob { demand: d, utility: u })
            .collect();
        let full = peel(&jobs, cap, tol, hor).unwrap();
        let inc = peel_incremental(&jobs, cap, tol, hor, true, &mut state).unwrap();
        assert_targets_bitwise(&full, &inc, "cold");
        assert!(!state.last_stats().delta, "first pass records, not replays");

        let mut saw_replay = false;
        let mut saw_resume = false;
        for step in 0..60u64 {
            // Deterministic perturbation: small nudges, occasional large
            // swings, and a periodic burst touching several jobs at once.
            let k = (step as usize * 7) % demands.len();
            match step % 5 {
                0 => demands[k] = demands[k].saturating_add(3).max(1),
                1 => demands[k] = demands[k].saturating_sub(2).max(1),
                2 => demands[k] = (demands[k] * 3).max(1),
                3 => demands[k] = (demands[k] / 4).max(1),
                _ => {
                    for j in 0..4 {
                        let m = (k + j * 11) % demands.len();
                        demands[m] = (demands[m] + 17 * j as u64 + 1).max(1);
                    }
                }
            }
            let jobs: Vec<OnionJob<'_>> = demands
                .iter()
                .zip(&utilities)
                .map(|(&d, u)| OnionJob { demand: d, utility: u })
                .collect();
            let full = peel(&jobs, cap, tol, hor).unwrap();
            let inc = peel_incremental(&jobs, cap, tol, hor, true, &mut state).unwrap();
            assert_targets_bitwise(&full, &inc, &format!("step {step}"));
            let stats = state.last_stats();
            assert!(stats.delta, "step {step}: eligible pass must take delta path");
            saw_replay |= stats.resumed_at.is_none();
            saw_resume |= stats.resumed_at.is_some();
        }
        assert!(saw_replay, "sweep never exercised a full replay");
        assert!(saw_resume, "sweep never exercised a trajectory resume");
    }

    /// Capacity churn (revocations and restocks, with and without
    /// simultaneous demand drift) must stay on the delta path and remain
    /// bit-identical to a from-scratch peel — the planner-side contract
    /// behind spot-revocation replanning.
    #[test]
    fn incremental_peel_absorbs_capacity_churn() {
        let utilities: Vec<TimeUtility> = (0..24)
            .map(|i| {
                let budget = 150.0 + 73.0 * i as f64;
                sigmoid(budget, 1.0 + (i % 4) as f64, 12.0 / budget)
            })
            .collect();
        let mut demands: Vec<u64> = (0..24).map(|i| 53 + 67 * i as u64 % 900).collect();
        let mut state = PeelState::new();
        let (tol, hor) = (1e-4, 1e6);
        // Revocations, restocks, deep cuts, and recoveries around C=16.
        let capacities: [u32; 12] = [16, 14, 14, 9, 12, 3, 3, 16, 15, 2, 11, 16];

        {
            let jobs: Vec<OnionJob<'_>> = demands
                .iter()
                .zip(&utilities)
                .map(|(&d, u)| OnionJob { demand: d, utility: u })
                .collect();
            peel_incremental(&jobs, capacities[0], tol, hor, true, &mut state).unwrap();
        }
        let mut saw_resume = false;
        let mut max_verified = 0usize;
        for (step, &cap) in capacities.iter().enumerate().skip(1) {
            // Every other step also drifts one demand, exercising the
            // combined demand + capacity decay arithmetic.
            if step % 2 == 0 {
                let k = (step * 5) % demands.len();
                demands[k] = (demands[k] + 29).max(1);
            }
            let jobs: Vec<OnionJob<'_>> = demands
                .iter()
                .zip(&utilities)
                .map(|(&d, u)| OnionJob { demand: d, utility: u })
                .collect();
            let full = peel(&jobs, cap, tol, hor).unwrap();
            let inc = peel_incremental(&jobs, cap, tol, hor, true, &mut state).unwrap();
            assert_targets_bitwise(&full, &inc, &format!("capacity step {step} (C={cap})"));
            let stats = state.last_stats();
            assert!(stats.delta, "capacity step {step}: must take the delta path");
            saw_resume |= stats.resumed_at.is_some();
            max_verified = max_verified.max(stats.verified_probes);
        }
        // A capacity shift moves the max-min level itself, so most passes
        // divergence-resume partway — the point is that the drain bound
        // arithmetically verifies the dense probe prefix *before* the
        // divergence layer instead of refreshing (or re-peeling) the world.
        assert!(saw_resume, "churn never forced a divergence resume");
        assert!(max_verified >= 20, "drain bound never verified a dense probe prefix");
        // A pass with no change at all replays the whole trajectory.
        let jobs: Vec<OnionJob<'_>> = demands
            .iter()
            .zip(&utilities)
            .map(|(&d, u)| OnionJob { demand: d, utility: u })
            .collect();
        let cap = *capacities.last().unwrap();
        let full = peel(&jobs, cap, tol, hor).unwrap();
        let inc = peel_incremental(&jobs, cap, tol, hor, true, &mut state).unwrap();
        assert_targets_bitwise(&full, &inc, "quiescent replay");
        assert!(state.last_stats().resumed_at.is_none(), "quiescent pass must fully replay");
    }

    /// Context changes (job count, zero-crossings, caller flag) must force
    /// the safe full-record path; a capacity change alone does *not* — it
    /// replays as a divergence layer.
    #[test]
    fn incremental_peel_rejects_context_changes() {
        let u = sigmoid(300.0, 2.0, 0.03);
        let utilities = vec![u, u, u];
        fn jobs<'a>(d: &[u64], us: &'a [TimeUtility]) -> Vec<OnionJob<'a>> {
            d.iter().zip(us).map(|(&d, u)| OnionJob { demand: d, utility: u }).collect()
        }
        let mut state = PeelState::new();
        let j = jobs(&[100, 200, 300], &utilities);
        peel_incremental(&j, 8, 1e-4, 1e6, true, &mut state).unwrap();

        // Caller says context changed.
        peel_incremental(&j, 8, 1e-4, 1e6, false, &mut state).unwrap();
        assert!(!state.last_stats().delta);
        // Capacity change stays on the delta path, bit-identically.
        let full = peel(&j, 9, 1e-4, 1e6).unwrap();
        let inc = peel_incremental(&j, 9, 1e-4, 1e6, true, &mut state).unwrap();
        assert_targets_bitwise(&full, &inc, "capacity delta");
        assert!(state.last_stats().delta);
        // Job count changed.
        let j2 = jobs(&[100, 200], &utilities[..2]);
        peel_incremental(&j2, 9, 1e-4, 1e6, true, &mut state).unwrap();
        assert!(!state.last_stats().delta);
        // Demand zero-crossing.
        let j3 = jobs(&[100, 0], &utilities[..2]);
        peel_incremental(&j3, 9, 1e-4, 1e6, true, &mut state).unwrap();
        assert!(!state.last_stats().delta);
        // And back on the happy path: same context replays.
        let j4 = jobs(&[101, 0], &utilities[..2]);
        let full = peel(&j4, 9, 1e-4, 1e6).unwrap();
        let inc = peel_incremental(&j4, 9, 1e-4, 1e6, true, &mut state).unwrap();
        assert_targets_bitwise(&full, &inc, "post-reset delta");
        assert!(state.last_stats().delta);
    }
}
//! The onion-peeling algorithm — Algorithm 3, solving the Time-Aware
//! Scheduling (TAS) problem.
//!
//! With robust demands `η_i` fixed by WCDE, TAS becomes deterministic:
//! choose target completion times maximizing the **lexicographic max-min**
//! of the utility vector. The peeling loop maximizes the minimum utility by
//! bisection over the level `L` — a level is feasible iff every job can
//! finish by its induced deadline `U_i⁻¹(L)`, which Theorem 2 reduces to
//! the prefix-capacity condition
//!
//! ```text
//! Σ_{i∈N_k} η_i + G(U_k⁻¹(L)) ≤ C · U_k⁻¹(L)   for every prefix k
//! ```
//!
//! (jobs sorted by deadline; `G(t)` counts demand already committed to
//! previously peeled jobs with targets ≤ `t`). The bottleneck job of the
//! last infeasible level has reached its best achievable utility: it is
//! *peeled* — its target fixed, its demand added to `G` — and the loop
//! continues on the remaining jobs, one onion layer at a time.

use crate::CoreError;
use rush_utility::{LatestTime, Utility};

/// One job as seen by the peeling algorithm.
#[derive(Clone, Copy)]
pub struct OnionJob<'a> {
    /// Robust remaining demand `η` in container·slots (WCDE output).
    pub demand: u64,
    /// The job's completion-time utility (already shifted to "time from
    /// now" if the job has been running for a while).
    pub utility: &'a dyn Utility,
}

impl std::fmt::Debug for OnionJob<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnionJob")
            .field("demand", &self.demand)
            .field("sup", &self.utility.sup())
            .finish()
    }
}

/// A peeled job's target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Target {
    /// Index of the job in the input slice.
    pub job: usize,
    /// The utility level at which the job peeled (its max-min layer).
    pub level: f64,
    /// Target completion time `T_i` in slots from now.
    pub deadline: f64,
    /// Whether the job is *deadline-free* at its level (flat utility or
    /// nothing left to gain): the mapping packs such jobs into leftover
    /// capacity instead of reserving for `deadline`.
    pub lax: bool,
}

/// A [`Utility`] shifted by the job's age: if a job arrived `shift` slots
/// ago, completing `t` slots *from now* completes it at `shift + t` from
/// arrival.
///
/// This adapter is what lets the static TAS formulation re-run inside the
/// dynamic feedback cycle: every scheduling event re-poses the problem in
/// "time from now" coordinates.
#[derive(Clone, Copy)]
pub struct Shifted<'a> {
    base: &'a dyn Utility,
    shift: f64,
}

impl std::fmt::Debug for Shifted<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shifted").field("shift", &self.shift).finish()
    }
}

impl<'a> Shifted<'a> {
    /// Wraps `base`, measuring time from `shift` slots after the job's
    /// arrival.
    pub fn new(base: &'a dyn Utility, shift: f64) -> Self {
        Shifted { base, shift: shift.max(0.0) }
    }
}

impl Utility for Shifted<'_> {
    fn utility(&self, t: f64) -> f64 {
        self.base.utility(self.shift + t.max(0.0))
    }

    fn inf(&self) -> f64 {
        self.base.inf()
    }

    fn latest_time(&self, level: f64) -> LatestTime {
        match self.base.latest_time(level) {
            LatestTime::At(t) if t >= self.shift => LatestTime::At(t - self.shift),
            // The level was only achievable before now.
            LatestTime::At(_) => LatestTime::Never,
            other => other,
        }
    }
}

/// Outcome of one feasibility probe.
enum Check {
    Feasible,
    Infeasible { bottleneck: usize },
}

/// Sorted index over committed `(deadline, demand)` reservations with
/// prefix sums for cumulative-demand (`G(t)`) queries. Maintained
/// *incrementally*: peeling a job binary-inserts one reservation instead of
/// re-sorting the whole committed set every layer.
#[derive(Default)]
struct CommittedIndex {
    times: Vec<f64>,
    cums: Vec<u64>,
}

impl CommittedIndex {
    /// Adds a reservation, keeping `times` sorted (ties in commit order)
    /// and `cums` the running prefix demand.
    fn insert(&mut self, t: f64, demand: u64) {
        let pos = self.times.partition_point(|&x| x <= t);
        self.times.insert(pos, t);
        let before = if pos == 0 { 0 } else { self.cums[pos - 1] };
        self.cums.insert(pos, before + demand);
        for c in &mut self.cums[pos + 1..] {
            *c += demand;
        }
    }
}

/// Reusable probe state: the `(deadline, job)` buffer persists across
/// probes and layers, so a feasibility check allocates nothing, and because
/// neighboring levels barely change the deadline order, the stable sort's
/// run detection makes the per-probe re-sort nearly linear.
///
/// Entries mirror the active set exactly; jobs whose deadline is `Never`
/// at the probed level keep a sentinel (`∞` for demand-free jobs — they
/// never block) so they are not lost for later, lower-level probes.
#[derive(Default)]
struct ProbeScratch {
    deadlines: Vec<(f64, usize)>,
}

impl ProbeScratch {
    fn fill(&mut self, jobs: &[OnionJob<'_>]) {
        self.deadlines = (0..jobs.len()).map(|i| (0.0, i)).collect();
    }

    fn remove(&mut self, job: usize) {
        self.deadlines.retain(|&(_, i)| i != job);
    }
}

/// Tests whether level `L` is feasible for the active jobs (the entries of
/// `scratch`) given the committed reservations of already-peeled jobs.
fn check_level(
    jobs: &[OnionJob<'_>],
    scratch: &mut ProbeScratch,
    committed: &CommittedIndex,
    capacity: u32,
    horizon: f64,
    level: f64,
) -> Check {
    // Deadline per active job; a `Never` with positive demand is an
    // immediate bottleneck (it cannot reach the level no matter what).
    // The lowest-indexed such job is reported, matching a scan of the
    // active set in index order.
    let mut never: Option<usize> = None;
    for slot in &mut scratch.deadlines {
        let i = slot.1;
        match jobs[i].utility.latest_time(level).deadline_within(horizon) {
            Some(d) => slot.0 = d,
            None => {
                if jobs[i].demand > 0 {
                    never = Some(never.map_or(i, |b| b.min(i)));
                }
                // Demand-free jobs never block a layer: park them past
                // every finite deadline.
                slot.0 = f64::INFINITY;
            }
        }
    }
    if let Some(b) = never {
        return Check::Infeasible { bottleneck: b };
    }
    scratch.deadlines.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    // Merged sweep over active deadlines AND committed reservation times.
    // Verifying only the active prefixes is not enough: an active job whose
    // deadline lands just *before* a committed reservation adds its demand
    // to that reservation's prefix and can break it — feasibility is not
    // monotone in the level once reservations exist, so every boundary
    // must be re-checked.
    let c = capacity as f64;
    let mut cum = 0u64;
    let mut ci = 0usize;
    let mut last_active: Option<usize> = None;
    for &(d, i) in &scratch.deadlines {
        if d.is_infinite() {
            // Demand-free sentinel: contributes nothing, checks nothing.
            break;
        }
        while ci < committed.times.len() && committed.times[ci] < d {
            if (cum + committed.cums[ci]) as f64 > c * committed.times[ci] + 1e-9 {
                return Check::Infeasible { bottleneck: last_active.unwrap_or(i) };
            }
            ci += 1;
        }
        cum += jobs[i].demand;
        // G(d): the sweep pointer already skipped times < d; peek past the
        // ties at exactly d without disturbing it.
        let mut cj = ci;
        while cj < committed.times.len() && committed.times[cj] <= d {
            cj += 1;
        }
        let g = if cj == 0 { 0 } else { committed.cums[cj - 1] };
        if (cum + g) as f64 > c * d + 1e-9 {
            return Check::Infeasible { bottleneck: i };
        }
        last_active = Some(i);
    }
    while ci < committed.times.len() {
        if (cum + committed.cums[ci]) as f64 > c * committed.times[ci] + 1e-9 {
            if let Some(b) = last_active {
                return Check::Infeasible { bottleneck: b };
            }
            // No active job to blame: the committed set alone is
            // infeasible (cannot arise from our own layering; guard for
            // caller-supplied states).
            break;
        }
        ci += 1;
    }
    Check::Feasible
}

/// Utility levels at or below this are treated as "the job gains nothing".
const ZERO_LEVEL: f64 = 1e-9;

/// Earliest completion time for `demand` that leaves every committed
/// `(deadline, demand)` reservation intact: the smallest `d` such that
///
/// * `demand + G(d) ≤ C·d` (the job itself fits by `d`), and
/// * for every committed deadline `T_k ≥ d`,
///   `demand + cum(T_k) ≤ C·T_k` (inserting the job does not break the
///   prefix-capacity condition of any later reservation).
///
/// This is how a job that can no longer gain utility is squeezed into
/// leftover capacity without lowering anyone else's level — the
/// lexicographic tie-break the paper describes ("allocate resources to
/// other jobs because doing so can improve their utility without lowering
/// the utility of this job").
fn asap_deadline(demand: u64, committed: &[(f64, u64)], capacity: u32) -> f64 {
    let c = capacity as f64;
    // Committed deadlines sorted with cumulative demand.
    let mut sorted: Vec<(f64, u64)> = committed.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut cum = 0u64;
    let mut prefix: Vec<(f64, u64)> = Vec::with_capacity(sorted.len());
    for &(t, e) in &sorted {
        cum += e;
        prefix.push((t, cum));
    }
    // Barrier: the job must complete after any reservation it would break.
    let mut barrier = 0.0f64;
    for &(t, cum_t) in &prefix {
        if (demand + cum_t) as f64 > c * t + 1e-9 {
            barrier = barrier.max(t);
        }
    }
    let mut d = ((demand as f64 / c).max(1.0)).max(barrier + 1e-9);
    // Fixed point over the step function G; terminates in ≤ |committed|+1
    // rounds because each bump crosses at least one reservation deadline.
    loop {
        let g: u64 = prefix
            .iter()
            .take_while(|(t, _)| *t <= d)
            .last()
            .map_or(0, |&(_, cum_t)| cum_t);
        let next = (((demand + g) as f64 / c).max(1.0)).max(barrier + 1e-9);
        if next <= d + 1e-9 {
            return d;
        }
        d = next;
    }
}

/// The deadline a job should be given when peeling at `level`.
fn deadline_for(job: &OnionJob<'_>, level: f64, horizon: f64) -> f64 {
    // A job can never be asked to exceed its own supremum.
    let lvl = level.min(job.utility.sup());
    match job.utility.latest_time(lvl).deadline_within(horizon) {
        Some(d) => d.max(0.0),
        // Level above sup by floating-point noise: complete ASAP.
        None => 0.0,
    }
}

/// Runs the onion-peeling algorithm (Algorithm 3).
///
/// Returns one [`Target`] per job (in peel order). `tolerance` is the
/// bisection stopping width `Δ` on utility levels; `horizon` caps the
/// deadline of completion-time-insensitive jobs.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] if `capacity == 0`, `tolerance ≤ 0` or
/// `horizon ≤ 0`.
///
/// # Example
///
/// ```
/// use rush_core::onion::{peel, OnionJob};
/// use rush_utility::TimeUtility;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tight = TimeUtility::sigmoid(100.0, 5.0, 0.5)?;
/// let loose = TimeUtility::sigmoid(1000.0, 5.0, 0.01)?;
/// let jobs = [
///     OnionJob { demand: 300, utility: &tight },
///     OnionJob { demand: 300, utility: &loose },
/// ];
/// let targets = peel(&jobs, 8, 0.01, 1e6)?;
/// let t0 = targets.iter().find(|t| t.job == 0).unwrap();
/// let t1 = targets.iter().find(|t| t.job == 1).unwrap();
/// assert!(t0.deadline < t1.deadline); // the tight job gets the early slot
/// # Ok(())
/// # }
/// ```
pub fn peel(
    jobs: &[OnionJob<'_>],
    capacity: u32,
    tolerance: f64,
    horizon: f64,
) -> Result<Vec<Target>, CoreError> {
    if capacity == 0 {
        return Err(CoreError::InvalidConfig { reason: "capacity must be > 0" });
    }
    if !tolerance.is_finite() || tolerance <= 0.0 {
        return Err(CoreError::InvalidConfig { reason: "tolerance must be > 0" });
    }
    if !horizon.is_finite() || horizon <= 0.0 {
        return Err(CoreError::InvalidConfig { reason: "horizon must be > 0" });
    }
    let mut active: Vec<usize> = (0..jobs.len()).collect();
    let mut committed: Vec<(f64, u64)> = Vec::new();
    let mut index = CommittedIndex::default();
    let mut scratch = ProbeScratch::default();
    scratch.fill(jobs);
    let mut deferred: Vec<(usize, f64)> = Vec::new();
    let mut targets: Vec<Target> = Vec::with_capacity(jobs.len());
    // Global floor: the lowest utility any job can end up with.
    let mut level_lo = jobs.iter().map(|j| j.utility.inf()).fold(f64::INFINITY, f64::min);
    if !level_lo.is_finite() {
        level_lo = 0.0;
    }
    // Whether `level_lo` is known feasible for the current active/committed
    // state. Peeling a bottleneck at a proven-feasible level preserves
    // feasibility of that level exactly (the job's demand moves from the
    // active sweep to a reservation at the same deadline), so the floor
    // only needs an explicit probe on the first layer and after an
    // infeasible-floor peel.
    let mut floor_feasible = false;
    // Overload marker: once a job peels off an infeasible floor (or a
    // deferred job's ASAP slot is clamped by the horizon), the cluster
    // cannot honor every target and Theorem 2's premise no longer holds.
    let mut overloaded = false;

    while !active.is_empty() {
        let level_hi = active
            .iter()
            .map(|&i| jobs[i].utility.sup())
            .fold(f64::NEG_INFINITY, f64::max)
            .max(level_lo);
        let mut lo = level_lo;
        let hi_cap = (level_hi + tolerance).max(lo + tolerance);
        let mut bottleneck: Option<usize> = None;
        // The floor itself may be infeasible in overload; the bottleneck of
        // the floor check then peels at the floor level.
        let floor_ok = floor_feasible
            || match check_level(jobs, &mut scratch, &index, capacity, horizon, lo) {
                Check::Feasible => true,
                Check::Infeasible { bottleneck: b } => {
                    bottleneck = Some(b);
                    false
                }
            };
        if floor_ok {
            // Warm-started bisection: consecutive layers converge to
            // nearby levels, so instead of always bracketing against the
            // global sup, gallop upward from the floor with a geometrically
            // growing window until a probe turns infeasible (or the cap is
            // reached), then bisect the bracket down to `tolerance`. The
            // first probe sits one tolerance above the floor: with many
            // jobs the level gap between layers is usually smaller, and an
            // infeasible first probe converges the layer immediately.
            let mut width = tolerance;
            let mut hi = (lo + width).min(hi_cap);
            while hi < hi_cap {
                match check_level(jobs, &mut scratch, &index, capacity, horizon, hi) {
                    Check::Feasible => {
                        lo = hi;
                        width *= 4.0;
                        hi = (lo + width).min(hi_cap);
                    }
                    Check::Infeasible { bottleneck: b } => {
                        bottleneck = Some(b);
                        break;
                    }
                }
            }
            if bottleneck.is_none() {
                hi = hi_cap;
            }
            while hi - lo > tolerance {
                let mid = 0.5 * (lo + hi);
                match check_level(jobs, &mut scratch, &index, capacity, horizon, mid) {
                    Check::Feasible => lo = mid,
                    Check::Infeasible { bottleneck: b } => {
                        hi = mid;
                        bottleneck = Some(b);
                    }
                }
            }
        }

        match bottleneck {
            Some(b) => {
                let level_b = lo.min(jobs[b].utility.sup());
                if is_deadline_free(&jobs[b], level_b) {
                    // The job's utility no longer depends on when it runs —
                    // either it can gain nothing (level ~0) or its utility
                    // is flat at this level (time-insensitive). Defer it:
                    // it will be slotted into leftover capacity once every
                    // job that *does* care has been peeled.
                    deferred.push((b, level_b));
                    active.retain(|&i| i != b);
                    scratch.remove(b);
                    // Removing demand can only help: a floor proven
                    // feasible this layer stays feasible.
                    floor_feasible = floor_ok;
                    continue;
                }
                if !floor_ok {
                    overloaded = true;
                }
                let deadline = deadline_for(&jobs[b], lo, horizon);
                targets.push(Target { job: b, level: lo, deadline, lax: false });
                committed.push((deadline, jobs[b].demand));
                index.insert(deadline, jobs[b].demand);
                active.retain(|&i| i != b);
                scratch.remove(b);
                // Later layers can only improve on this level; it stays
                // feasible only if it was proven so this layer (peeling
                // from an infeasible floor must re-probe).
                level_lo = lo;
                floor_feasible = floor_ok;
            }
            None => {
                // Everything feasible up to every job's supremum: peel all
                // remaining jobs at the converged level.
                for &i in &active {
                    let level_i = lo.min(jobs[i].utility.sup());
                    if is_deadline_free(&jobs[i], level_i) {
                        deferred.push((i, level_i));
                        continue;
                    }
                    let deadline = deadline_for(&jobs[i], lo, horizon);
                    targets.push(Target { job: i, level: level_i, deadline, lax: false });
                    committed.push((deadline, jobs[i].demand));
                }
                active.clear();
            }
        }
    }

    // Deferred jobs (zero-gain or time-insensitive): earliest completion
    // that leaves every committed reservation intact — they run in the
    // leftover capacity at full parallelism instead of being parked at the
    // horizon. Hopeless-but-time-sensitive jobs (level ~0) go before
    // genuinely flat ones — any residual utility tail still prefers
    // earlier completion — and smaller demands go first within each group.
    deferred.sort_by(|a, b| {
        let flat_a = a.1 > ZERO_LEVEL;
        let flat_b = b.1 > ZERO_LEVEL;
        (flat_a, jobs[a.0].demand, a.0).cmp(&(flat_b, jobs[b.0].demand, b.0))
    });
    for (i, level) in deferred {
        let asap = asap_deadline(jobs[i].demand, &committed, capacity);
        if asap > horizon {
            overloaded = true;
        }
        let deadline = asap.min(horizon);
        targets.push(Target { job: i, level, deadline, lax: true });
        committed.push((deadline, jobs[i].demand));
    }
    debug_check_theorem2(&committed, capacity, overloaded);
    Ok(targets)
}

/// Contract (Theorem 2): in a non-overloaded instance, the committed
/// reservations satisfy the prefix-capacity condition
/// `Σ_{T_k ≤ d} η_k ≤ C · d` at every reservation deadline `d` — the
/// feasibility certificate the peeling loop maintained layer by layer.
#[cfg(feature = "strict-invariants")]
fn debug_check_theorem2(committed: &[(f64, u64)], capacity: u32, overloaded: bool) {
    if overloaded {
        return;
    }
    let mut sorted: Vec<(f64, u64)> = committed.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    if sorted.iter().any(|&(d, e)| e > 0 && d <= 0.0) {
        // Degenerate clamp: a level sitting above a job's supremum by
        // floating-point noise maps to an ASAP deadline of 0 — the same
        // "cannot satisfy" category as overload.
        return;
    }
    let c = capacity as f64;
    let mut cum = 0u64;
    for &(d, e) in &sorted {
        cum += e;
        debug_assert!(
            cum as f64 <= c * d + 1e-6,
            "Theorem 2 contract: committed demand {cum} exceeds C·d = {} at deadline {d}",
            c * d
        );
    }
}

#[cfg(not(feature = "strict-invariants"))]
#[inline(always)]
fn debug_check_theorem2(_committed: &[(f64, u64)], _capacity: u32, _overloaded: bool) {}

/// The Theorem-2 prefix-capacity feasibility test, exposed as a standalone
/// probe: given `(deadline, demand)` reservations (in any order), returns
/// whether `Σ_{T_k ≤ d} η_k ≤ C · d` holds at every reservation deadline
/// `d` — i.e. whether a schedule meeting every deadline exists on `capacity`
/// containers.
///
/// This is the test an *admission controller* runs at submission time: take
/// the current plan's committed `(target, η)` pairs, add the candidate
/// job's `(deadline, η)`, and probe. Infeasible means admitting the job
/// would overcommit the cluster — some deadline must slip.
///
/// Non-finite deadlines (a job with no deadline at all) never constrain
/// feasibility and are skipped; a non-positive deadline with positive
/// demand is immediately infeasible. `capacity == 0` is infeasible unless
/// there is no demand at all.
///
/// # Example
///
/// ```
/// use rush_core::onion::prefix_capacity_feasible;
///
/// // 2 containers: 100 container·slots by t=60 and 140 more by t=120.
/// assert!(prefix_capacity_feasible(&[(60.0, 100), (120.0, 140)], 2));
/// // Adding 80 more by t=60 breaks the first prefix (180 > 2·60).
/// assert!(!prefix_capacity_feasible(&[(60.0, 100), (120.0, 140), (60.0, 80)], 2));
/// ```
pub fn prefix_capacity_feasible(reservations: &[(f64, u64)], capacity: u32) -> bool {
    let mut sorted: Vec<(f64, u64)> = reservations
        .iter()
        .copied()
        .filter(|&(d, e)| e > 0 && d.is_finite())
        .collect();
    if sorted.is_empty() {
        return true;
    }
    if capacity == 0 {
        return false;
    }
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let c = capacity as f64;
    let mut cum = 0u64;
    for &(d, e) in &sorted {
        if d <= 0.0 {
            return false;
        }
        cum += e;
        if cum as f64 > c * d + 1e-9 {
            return false;
        }
    }
    true
}

/// Whether a job's utility is indifferent to *when* it completes at the
/// given level: either the level has collapsed to ~0 (nothing left to
/// gain) or the utility is flat at/above the level (time-insensitive).
fn is_deadline_free(job: &OnionJob<'_>, level: f64) -> bool {
    if level <= ZERO_LEVEL && job.utility.sup() > ZERO_LEVEL {
        return true;
    }
    matches!(job.utility.latest_time(level), LatestTime::Always)
}

/// Straightforward reference implementation of Algorithm 3.
///
/// This is the direct transcription of the paper: every feasibility probe
/// recomputes and re-sorts all active deadlines, the committed-demand index
/// is rebuilt once per layer, and each layer bisects the full
/// `[floor, sup]` level range. The optimized [`peel`] must produce the
/// same layering — property tests compare the two on random instances, and
/// the Fig. 5 benchmark uses this as the before-optimization baseline.
pub mod naive {
    use super::{
        asap_deadline, deadline_for, is_deadline_free, Check, OnionJob, Target, ZERO_LEVEL,
    };
    use crate::CoreError;

    /// Sorted index over committed `(deadline, demand)` reservations,
    /// rebuilt from scratch once per peel layer.
    struct CommittedIndex {
        times: Vec<f64>,
        cums: Vec<u64>,
    }

    impl CommittedIndex {
        fn new(committed: &[(f64, u64)]) -> Self {
            let mut sorted: Vec<(f64, u64)> = committed.to_vec();
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut times = Vec::with_capacity(sorted.len());
            let mut cums = Vec::with_capacity(sorted.len());
            let mut cum = 0u64;
            for (t, e) in sorted {
                cum += e;
                times.push(t);
                cums.push(cum);
            }
            CommittedIndex { times, cums }
        }

        /// `G(t)`: total committed demand with deadline ≤ `t`.
        fn g(&self, t: f64) -> u64 {
            let idx = self.times.partition_point(|&x| x <= t);
            if idx == 0 {
                0
            } else {
                self.cums[idx - 1]
            }
        }
    }

    /// Theorem 2 feasibility probe, allocating and sorting per call.
    fn check_level(
        jobs: &[OnionJob<'_>],
        active: &[usize],
        committed: &CommittedIndex,
        capacity: u32,
        horizon: f64,
        level: f64,
    ) -> Check {
        let mut deadlines: Vec<(f64, usize)> = Vec::with_capacity(active.len());
        for &i in active {
            match jobs[i].utility.latest_time(level).deadline_within(horizon) {
                Some(d) => deadlines.push((d, i)),
                None => {
                    if jobs[i].demand > 0 {
                        return Check::Infeasible { bottleneck: i };
                    }
                }
            }
        }
        deadlines.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let c = capacity as f64;
        let mut cum = 0u64;
        let mut ci = 0usize;
        let mut last_active: Option<usize> = None;
        for &(d, i) in &deadlines {
            while ci < committed.times.len() && committed.times[ci] < d {
                if (cum + committed.cums[ci]) as f64 > c * committed.times[ci] + 1e-9 {
                    return Check::Infeasible { bottleneck: last_active.unwrap_or(i) };
                }
                ci += 1;
            }
            cum += jobs[i].demand;
            if (cum + committed.g(d)) as f64 > c * d + 1e-9 {
                return Check::Infeasible { bottleneck: i };
            }
            last_active = Some(i);
        }
        while ci < committed.times.len() {
            if (cum + committed.cums[ci]) as f64 > c * committed.times[ci] + 1e-9 {
                if let Some(b) = last_active {
                    return Check::Infeasible { bottleneck: b };
                }
                break;
            }
            ci += 1;
        }
        Check::Feasible
    }

    /// Runs Algorithm 3 exactly as written — see the module docs. Same
    /// contract as [`super::peel`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] under the same conditions as
    /// [`super::peel`].
    pub fn peel(
        jobs: &[OnionJob<'_>],
        capacity: u32,
        tolerance: f64,
        horizon: f64,
    ) -> Result<Vec<Target>, CoreError> {
        if capacity == 0 {
            return Err(CoreError::InvalidConfig { reason: "capacity must be > 0" });
        }
        if !tolerance.is_finite() || tolerance <= 0.0 {
            return Err(CoreError::InvalidConfig { reason: "tolerance must be > 0" });
        }
        if !horizon.is_finite() || horizon <= 0.0 {
            return Err(CoreError::InvalidConfig { reason: "horizon must be > 0" });
        }
        let mut active: Vec<usize> = (0..jobs.len()).collect();
        let mut committed: Vec<(f64, u64)> = Vec::new();
        let mut deferred: Vec<(usize, f64)> = Vec::new();
        let mut targets: Vec<Target> = Vec::with_capacity(jobs.len());
        let mut level_lo = jobs.iter().map(|j| j.utility.inf()).fold(f64::INFINITY, f64::min);
        if !level_lo.is_finite() {
            level_lo = 0.0;
        }

        while !active.is_empty() {
            let level_hi = active
                .iter()
                .map(|&i| jobs[i].utility.sup())
                .fold(f64::NEG_INFINITY, f64::max)
                .max(level_lo);
            let mut lo = level_lo;
            let mut hi = (level_hi + tolerance).max(lo + tolerance);
            let mut bottleneck: Option<usize> = None;
            let index = CommittedIndex::new(&committed);
            if let Check::Infeasible { bottleneck: b } =
                check_level(jobs, &active, &index, capacity, horizon, lo)
            {
                bottleneck = Some(b);
            } else {
                while hi - lo > tolerance {
                    let mid = 0.5 * (lo + hi);
                    match check_level(jobs, &active, &index, capacity, horizon, mid) {
                        Check::Feasible => lo = mid,
                        Check::Infeasible { bottleneck: b } => {
                            hi = mid;
                            bottleneck = Some(b);
                        }
                    }
                }
            }

            match bottleneck {
                Some(b) => {
                    let level_b = lo.min(jobs[b].utility.sup());
                    if is_deadline_free(&jobs[b], level_b) {
                        deferred.push((b, level_b));
                        active.retain(|&i| i != b);
                        continue;
                    }
                    let deadline = deadline_for(&jobs[b], lo, horizon);
                    targets.push(Target { job: b, level: lo, deadline, lax: false });
                    committed.push((deadline, jobs[b].demand));
                    active.retain(|&i| i != b);
                    level_lo = lo;
                }
                None => {
                    for &i in &active {
                        let level_i = lo.min(jobs[i].utility.sup());
                        if is_deadline_free(&jobs[i], level_i) {
                            deferred.push((i, level_i));
                            continue;
                        }
                        let deadline = deadline_for(&jobs[i], lo, horizon);
                        targets.push(Target { job: i, level: level_i, deadline, lax: false });
                        committed.push((deadline, jobs[i].demand));
                    }
                    active.clear();
                }
            }
        }

        deferred.sort_by(|a, b| {
            let flat_a = a.1 > ZERO_LEVEL;
            let flat_b = b.1 > ZERO_LEVEL;
            (flat_a, jobs[a.0].demand, a.0).cmp(&(flat_b, jobs[b.0].demand, b.0))
        });
        for (i, level) in deferred {
            let deadline = asap_deadline(jobs[i].demand, &committed, capacity).min(horizon);
            targets.push(Target { job: i, level, deadline, lax: true });
            committed.push((deadline, jobs[i].demand));
        }
        Ok(targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_utility::TimeUtility;

    fn sigmoid(budget: f64, weight: f64, beta: f64) -> TimeUtility {
        TimeUtility::sigmoid(budget, weight, beta).unwrap()
    }

    #[test]
    fn single_job_peels_near_its_sup() {
        let u = sigmoid(100.0, 5.0, 0.1);
        let jobs = [OnionJob { demand: 200, utility: &u }];
        let t = peel(&jobs, 8, 0.001, 1e6).unwrap();
        assert_eq!(t.len(), 1);
        // Demand 200 on 8 containers needs ≥ 25 slots; deadline must be
        // at least that, and the level consistent with the deadline.
        assert!(t[0].deadline >= 25.0 - 1e-6, "deadline {}", t[0].deadline);
        let u_at = u.utility(t[0].deadline);
        assert!((u_at - t[0].level).abs() < 0.1, "level {} vs U(T) {}", t[0].level, u_at);
    }

    #[test]
    fn capacity_binds_the_deadline() {
        let u = sigmoid(10.0, 5.0, 0.5);
        // Demand 800 on 8 containers needs ≥ 100 slots >> budget 10.
        let jobs = [OnionJob { demand: 800, utility: &u }];
        let t = peel(&jobs, 8, 0.001, 1e6).unwrap();
        assert!(t[0].deadline >= 100.0 - 1e-6, "deadline {}", t[0].deadline);
        assert!(t[0].level < 0.01, "utility is gone at 10x the budget");
    }

    #[test]
    fn equal_jobs_share_equally() {
        let u = sigmoid(100.0, 5.0, 0.1);
        let jobs = [
            OnionJob { demand: 400, utility: &u },
            OnionJob { demand: 400, utility: &u },
        ];
        let t = peel(&jobs, 8, 0.001, 1e6).unwrap();
        assert_eq!(t.len(), 2);
        // Total 800 on 8 containers = 100 slots; both can't finish at 50,
        // one must wait for ~100. Levels differ because one binds earlier,
        // but both deadlines fit within capacity:
        let mut deadlines: Vec<f64> = t.iter().map(|x| x.deadline).collect();
        deadlines.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(deadlines[1] >= 100.0 - 1.0, "latest deadline {}", deadlines[1]);
    }

    #[test]
    fn urgent_job_peels_with_earlier_deadline() {
        let tight = sigmoid(50.0, 5.0, 0.2);
        let loose = sigmoid(5000.0, 5.0, 0.002);
        let jobs = [
            OnionJob { demand: 200, utility: &tight },
            OnionJob { demand: 200, utility: &loose },
        ];
        let t = peel(&jobs, 8, 0.001, 1e6).unwrap();
        let d_tight = t.iter().find(|x| x.job == 0).unwrap().deadline;
        let d_loose = t.iter().find(|x| x.job == 1).unwrap().deadline;
        assert!(d_tight < d_loose, "tight {d_tight} vs loose {d_loose}");
    }

    #[test]
    fn lexicographic_improves_beyond_min() {
        // One hopeless job (overdue) must not drag the other to zero.
        let hopeless = sigmoid(1.0, 5.0, 5.0); // effectively expired
        let healthy = sigmoid(500.0, 5.0, 0.05);
        let jobs = [
            OnionJob { demand: 1000, utility: &hopeless },
            OnionJob { demand: 200, utility: &healthy },
        ];
        let t = peel(&jobs, 8, 0.001, 1e6).unwrap();
        let lvl_healthy = t.iter().find(|x| x.job == 1).unwrap().level;
        assert!(lvl_healthy > 4.0, "healthy job should still achieve ~5, got {lvl_healthy}");
    }

    #[test]
    fn constant_utility_jobs_defer_into_leftover_capacity() {
        let c = TimeUtility::constant(3.0).unwrap();
        let s = sigmoid(100.0, 5.0, 0.1);
        let jobs = [
            OnionJob { demand: 400, utility: &c },
            OnionJob { demand: 400, utility: &s },
        ];
        let t = peel(&jobs, 8, 0.001, 10_000.0).unwrap();
        let tc = t.iter().find(|x| x.job == 0).unwrap();
        let ts = t.iter().find(|x| x.job == 1).unwrap();
        // The insensitive job is lax: ordered behind the sigmoid job but
        // with a work-conserving ASAP completion (800 demand / 8 = 100),
        // not parked at the horizon.
        assert!(tc.lax);
        assert!(!ts.lax);
        assert!(tc.deadline > ts.deadline, "insensitive defers: {tc:?} vs {ts:?}");
        assert!((tc.deadline - 100.0).abs() < 2.0, "ASAP behind reservations, got {tc:?}");
        assert!((tc.level - 3.0).abs() < 0.01, "flat job keeps ~its full level, got {}", tc.level);
    }

    #[test]
    fn zero_demand_jobs_never_block() {
        let low = sigmoid(10.0, 1.0, 0.5); // low sup
        let high = sigmoid(100.0, 5.0, 0.1);
        let jobs = [
            OnionJob { demand: 0, utility: &low },
            OnionJob { demand: 100, utility: &high },
        ];
        let t = peel(&jobs, 8, 0.001, 1e6).unwrap();
        assert_eq!(t.len(), 2);
        let lvl_high = t.iter().find(|x| x.job == 1).unwrap().level;
        assert!(lvl_high > 4.5, "zero-demand job must not cap the layer, got {lvl_high}");
    }

    #[test]
    fn overload_peels_everyone_without_panic() {
        let u = sigmoid(5.0, 5.0, 1.0);
        let jobs: Vec<OnionJob<'_>> =
            (0..10).map(|_| OnionJob { demand: 10_000, utility: &u }).collect();
        let t = peel(&jobs, 1, 0.01, 1e5).unwrap();
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn feasibility_condition_theorem2_holds_at_targets() {
        // After peeling, the prefix-capacity condition must hold for the
        // chosen deadlines: Σ_{T_i ≤ d} η_i ≤ C·d for every target d.
        let a = sigmoid(60.0, 5.0, 0.2);
        let b = sigmoid(120.0, 4.0, 0.1);
        let c = TimeUtility::constant(2.0).unwrap();
        let jobs = [
            OnionJob { demand: 300, utility: &a },
            OnionJob { demand: 500, utility: &b },
            OnionJob { demand: 400, utility: &c },
        ];
        let capacity = 8u32;
        let t = peel(&jobs, capacity, 0.001, 1e5).unwrap();
        let mut ds: Vec<(f64, u64)> =
            t.iter().map(|x| (x.deadline, jobs[x.job].demand)).collect();
        ds.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let mut cum = 0u64;
        for (d, e) in ds {
            cum += e;
            assert!(
                cum as f64 <= capacity as f64 * d + 1e-6,
                "prefix demand {cum} exceeds C*d = {}",
                capacity as f64 * d
            );
        }
    }

    #[test]
    fn validation_errors() {
        let u = sigmoid(10.0, 1.0, 0.1);
        let jobs = [OnionJob { demand: 1, utility: &u }];
        assert!(peel(&jobs, 0, 0.01, 1e6).is_err());
        assert!(peel(&jobs, 8, 0.0, 1e6).is_err());
        assert!(peel(&jobs, 8, 0.01, 0.0).is_err());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let t = peel(&[], 8, 0.01, 1e6).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn shifted_utility_behaves() {
        let u = sigmoid(100.0, 5.0, 0.1);
        let s = Shifted::new(&u, 40.0);
        assert_eq!(s.utility(10.0), u.utility(50.0));
        assert_eq!(s.inf(), u.inf());
        match (s.latest_time(2.5), u.latest_time(2.5)) {
            (LatestTime::At(a), LatestTime::At(b)) => assert!((a - (b - 40.0)).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
        // A level only achievable before "now" becomes Never.
        let s_late = Shifted::new(&u, 1000.0);
        assert_eq!(s_late.latest_time(4.9), LatestTime::Never);
    }

    #[test]
    fn shifted_negative_shift_clamps() {
        let u = sigmoid(100.0, 5.0, 0.1);
        let s = Shifted::new(&u, -5.0);
        assert_eq!(s.utility(10.0), u.utility(10.0));
    }

    #[test]
    fn max_min_delays_the_job_that_retains_more_utility() {
        // Same budget/demand, different weights. Capacity forces one job to
        // the late slot (~100); max-min on absolute utilities delays the
        // HEAVY job, because U_heavy(100) > U_light(100): the resulting
        // sorted utility vector dominates the swapped assignment.
        let heavy = sigmoid(50.0, 5.0, 0.1);
        let light = sigmoid(50.0, 1.0, 0.1);
        let jobs = [
            OnionJob { demand: 400, utility: &heavy },
            OnionJob { demand: 400, utility: &light },
        ];
        let t = peel(&jobs, 8, 0.001, 1e6).unwrap();
        let d_heavy = t.iter().find(|x| x.job == 0).unwrap().deadline;
        let d_light = t.iter().find(|x| x.job == 1).unwrap().deadline;
        assert!(d_heavy > d_light, "heavy {d_heavy} should take the late slot vs {d_light}");
        // The achieved min level beats the swapped assignment's min level
        // (light at deadline 100 would sit at U_light(100) ≈ 0.0067).
        let min_level =
            t.iter().map(|x| x.level).fold(f64::INFINITY, f64::min);
        assert!(min_level > 0.02, "min level {min_level} must beat the swapped order");
    }

    #[test]
    fn prefix_capacity_probe_accepts_and_rejects() {
        // Exactly at capacity is feasible (2 containers, 120 by t=60).
        assert!(prefix_capacity_feasible(&[(60.0, 120)], 2));
        // One over is not.
        assert!(!prefix_capacity_feasible(&[(60.0, 121)], 2));
        // Order of reservations does not matter.
        assert!(prefix_capacity_feasible(&[(120.0, 140), (60.0, 100)], 2));
        assert!(!prefix_capacity_feasible(&[(120.0, 140), (60.0, 180)], 2));
        // A later prefix can be the binding one.
        assert!(!prefix_capacity_feasible(&[(60.0, 50), (61.0, 200)], 2));
        // Empty and zero-demand sets are trivially feasible.
        assert!(prefix_capacity_feasible(&[], 4));
        assert!(prefix_capacity_feasible(&[(10.0, 0)], 0));
        // Zero capacity with demand is not.
        assert!(!prefix_capacity_feasible(&[(10.0, 1)], 0));
        // Non-finite deadlines never constrain; non-positive ones always do.
        assert!(prefix_capacity_feasible(&[(f64::INFINITY, 10_000)], 1));
        assert!(!prefix_capacity_feasible(&[(0.0, 5)], 8));
        assert!(!prefix_capacity_feasible(&[(-3.0, 5)], 8));
    }

    #[test]
    fn prefix_capacity_probe_agrees_with_peel_output() {
        // The reservations the peel commits in a non-overloaded instance
        // must pass the standalone probe (Theorem 2's certificate).
        let a = sigmoid(200.0, 5.0, 0.05);
        let b = sigmoid(400.0, 3.0, 0.02);
        let c = sigmoid(800.0, 1.0, 0.01);
        let jobs = [
            OnionJob { demand: 300, utility: &a },
            OnionJob { demand: 500, utility: &b },
            OnionJob { demand: 400, utility: &c },
        ];
        let targets = peel(&jobs, 4, 0.001, 1e6).unwrap();
        let reservations: Vec<(f64, u64)> =
            targets.iter().map(|t| (t.deadline, jobs[t.job].demand)).collect();
        assert!(prefix_capacity_feasible(&reservations, 4));
        // Squeezing the same demands onto 1 container breaks feasibility.
        assert!(!prefix_capacity_feasible(&reservations, 1));
    }
}

//! The Relative-Entropy-Minimization oracle — Algorithm 1 of the paper.
//!
//! Given a reference PMF `φ`, a target bin `L` and a percentile `θ`, REM
//! asks: what is the *smallest* KL divergence `D(p‖φ)` over distributions
//! `p` whose head mass satisfies `Σ_{l≤L} p_l ≤ θ`? If that minimum is
//! within the ambiguity radius `δ`, some distribution in the KL ball puts
//! its θ-quantile above `L` — the feasibility test inside the WCDE
//! bisection.
//!
//! The KKT conditions split the optimum into two groups (eq. 11): bins
//! `0..=L` carry a rescaled copy of `φ`'s head normalized to mass `θ`, and
//! bins `L+1..` carry a rescaled copy of the tail normalized to `1 − θ` —
//! unless the head constraint is already slack, in which case `p = φ`
//! (KL = 0). Theorem 1: this closed form is optimal.

use crate::CoreError;
use rush_prob::Pmf;

/// The outcome of one REM solve.
#[derive(Debug, Clone, PartialEq)]
pub enum RemSolution {
    /// The reference itself satisfies the head constraint: `p = φ`, KL 0.
    Reference,
    /// The two-group reweighting of eq. (11), with its KL divergence from
    /// the reference.
    Reweighted {
        /// The optimal distribution `p*`.
        pmf: Pmf,
        /// `D(p* ‖ φ)` in nats.
        kl: f64,
    },
    /// No feasible distribution exists: the reference has (numerically) no
    /// mass beyond bin `L`, so the tail cannot absorb `1 − θ` without
    /// infinite divergence.
    Infeasible,
}

impl RemSolution {
    /// The minimal KL divergence (`0`, finite, or `+∞`).
    pub fn kl(&self) -> f64 {
        match self {
            RemSolution::Reference => 0.0,
            RemSolution::Reweighted { kl, .. } => *kl,
            RemSolution::Infeasible => f64::INFINITY,
        }
    }

    /// The optimal distribution, if one exists. `Reference` returns `None`
    /// because the caller already holds `φ`.
    pub fn pmf(&self) -> Option<&Pmf> {
        match self {
            RemSolution::Reweighted { pmf, .. } => Some(pmf),
            _ => None,
        }
    }
}

/// Solves REM in closed form (Algorithm 1, Theorem 1).
///
/// `l_bin` is the last head bin `L`; `theta` the percentile constraint on
/// the head mass.
///
/// # Errors
///
/// [`CoreError::InvalidTheta`] unless `θ ∈ (0, 1)`.
pub fn solve(phi: &Pmf, l_bin: usize, theta: f64) -> Result<RemSolution, CoreError> {
    let (head, tail) = match split_masses(phi, l_bin, theta)? {
        Split::Reference => return Ok(RemSolution::Reference),
        Split::Infeasible => return Ok(RemSolution::Infeasible),
        Split::Tight { head, tail } => (head, tail),
    };
    // Eq. (11): head bins scaled by θ/head, tail bins by (1−θ)/tail.
    let head_scale = theta / head;
    let tail_scale = (1.0 - theta) / tail;
    let weights: Vec<f64> = phi
        .probs()
        .iter()
        .enumerate()
        .map(|(l, &p)| if l <= l_bin { p * head_scale } else { p * tail_scale })
        .collect();
    let pmf = Pmf::from_weights(weights, phi.bin_width())?;
    let kl = closed_form_kl(head, tail, theta);
    #[cfg(feature = "strict-invariants")]
    {
        // Contract (Theorem 1 / eq. 11): the reweighted head carries mass
        // exactly θ, and the closed-form divergence agrees with a direct
        // D(p*‖φ) evaluation.
        let head_after: f64 = pmf.probs().iter().take(l_bin + 1).sum();
        debug_assert!(
            (head_after - theta).abs() < 1e-9,
            "REM contract: reweighted head mass {head_after} != θ {theta}"
        );
        debug_assert!(kl.is_finite() && kl >= 0.0, "REM contract: KL {kl} not finite/non-negative");
        if let Ok(direct) = pmf.kl_divergence(phi) {
            debug_assert!(
                (kl - direct).abs() < 1e-9,
                "REM contract: closed-form KL {kl} disagrees with direct {direct}"
            );
        }
    }
    Ok(RemSolution::Reweighted { pmf, kl })
}

enum Split {
    Reference,
    Infeasible,
    Tight { head: f64, tail: f64 },
}

/// Shared validation + head/tail mass computation. O(1): the head mass is
/// the PMF's cached prefix sum, not a fresh O(bins) summation.
fn split_masses(phi: &Pmf, l_bin: usize, theta: f64) -> Result<Split, CoreError> {
    if !(0.0..1.0).contains(&theta) || theta <= 0.0 {
        return Err(CoreError::InvalidTheta(theta));
    }
    let head = phi.head_mass(l_bin);
    if head <= theta {
        return Ok(Split::Reference);
    }
    let tail = 1.0 - head;
    if tail <= f64::EPSILON {
        return Ok(Split::Infeasible);
    }
    Ok(Split::Tight { head, tail })
}

/// D(p‖φ) collapses to θ·ln(θ/head) + (1−θ)·ln((1−θ)/tail) because the
/// within-group shape is unchanged (Theorem 1).
fn closed_form_kl(head: f64, tail: f64, theta: f64) -> f64 {
    let kl = theta * (theta / head).ln() + (1.0 - theta) * ((1.0 - theta) / tail).ln();
    kl.max(0.0)
}

/// The minimal KL divergence for the head constraint at `l_bin` — the value
/// the WCDE bisection compares against `δ`.
///
/// Allocation-free: unlike [`solve`] it never materializes the reweighted
/// distribution, so each probe of the bisection is O(1).
///
/// # Errors
///
/// [`CoreError::InvalidTheta`] unless `θ ∈ (0, 1)`.
pub fn min_kl(phi: &Pmf, l_bin: usize, theta: f64) -> Result<f64, CoreError> {
    Ok(match split_masses(phi, l_bin, theta)? {
        Split::Reference => 0.0,
        Split::Infeasible => f64::INFINITY,
        Split::Tight { head, tail } => closed_form_kl(head, tail, theta),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pmf(ws: &[f64]) -> Pmf {
        Pmf::from_weights(ws.to_vec(), 1).unwrap()
    }

    #[test]
    fn slack_constraint_returns_reference() {
        let phi = pmf(&[0.1, 0.1, 0.8]);
        // head at L=1 is 0.2 ≤ θ=0.5 → reference optimal.
        let sol = solve(&phi, 1, 0.5).unwrap();
        assert_eq!(sol, RemSolution::Reference);
        assert_eq!(sol.kl(), 0.0);
        assert!(sol.pmf().is_none());
    }

    #[test]
    fn tight_constraint_reweights() {
        let phi = pmf(&[0.6, 0.2, 0.2]);
        // head at L=0 is 0.6 > θ=0.5.
        let sol = solve(&phi, 0, 0.5).unwrap();
        let RemSolution::Reweighted { pmf: p, kl } = &sol else {
            panic!("expected reweighted, got {sol:?}")
        };
        assert!((p.prob(0) - 0.5).abs() < 1e-12);
        // Tail keeps its internal shape: 0.2/0.2 split of mass 0.5.
        assert!((p.prob(1) - 0.25).abs() < 1e-12);
        assert!((p.prob(2) - 0.25).abs() < 1e-12);
        assert!(*kl > 0.0);
        // KL check by direct computation.
        let direct = p.kl_divergence(&phi).unwrap();
        assert!((kl - direct).abs() < 1e-12, "closed-form {kl} vs direct {direct}");
    }

    #[test]
    fn head_mass_exactly_theta_after_reweight() {
        let phi = pmf(&[0.3, 0.3, 0.2, 0.2]);
        let theta = 0.4;
        let sol = solve(&phi, 1, theta).unwrap();
        let p = sol.pmf().unwrap();
        let head: f64 = p.probs()[..2].iter().sum();
        assert!((head - theta).abs() < 1e-12);
        assert!(p.is_normalized());
    }

    #[test]
    fn infeasible_when_tail_empty() {
        let phi = pmf(&[0.5, 0.5, 0.0]);
        // L=1 covers all mass; 1−θ must go beyond — impossible.
        let sol = solve(&phi, 1, 0.9).unwrap();
        assert_eq!(sol, RemSolution::Infeasible);
        assert_eq!(sol.kl(), f64::INFINITY);
    }

    #[test]
    fn l_beyond_support_is_infeasible_when_head_exceeds() {
        let phi = pmf(&[0.5, 0.5]);
        let sol = solve(&phi, 5, 0.9).unwrap();
        assert_eq!(sol, RemSolution::Infeasible);
    }

    #[test]
    fn theta_validation() {
        let phi = pmf(&[1.0, 1.0]);
        assert!(matches!(solve(&phi, 0, 0.0), Err(CoreError::InvalidTheta(_))));
        assert!(matches!(solve(&phi, 0, 1.0), Err(CoreError::InvalidTheta(_))));
        assert!(matches!(solve(&phi, 0, -0.1), Err(CoreError::InvalidTheta(_))));
        assert!(matches!(solve(&phi, 0, 1.7), Err(CoreError::InvalidTheta(_))));
    }

    #[test]
    fn min_kl_monotone_in_l() {
        // Larger L ⇒ more constrained head ⇒ KL non-decreasing.
        let phi = pmf(&[0.2, 0.2, 0.2, 0.2, 0.1, 0.1]);
        let theta = 0.3;
        let mut prev = 0.0;
        for l in 0..5 {
            let kl = min_kl(&phi, l, theta).unwrap();
            assert!(kl + 1e-12 >= prev, "KL dipped at L={l}");
            prev = kl;
        }
    }

    #[test]
    fn min_kl_bit_identical_to_solve() {
        let phi = pmf(&[0.25, 0.3, 0.2, 0.15, 0.1]);
        for theta in [0.05, 0.3, 0.5, 0.7, 0.9, 0.99] {
            for l in 0..7 {
                let fast = min_kl(&phi, l, theta).unwrap();
                let full = solve(&phi, l, theta).unwrap().kl();
                assert!(
                    fast == full || (fast.is_infinite() && full.is_infinite()),
                    "min_kl {fast} != solve().kl() {full} at L={l}, θ={theta}"
                );
            }
        }
    }

    #[test]
    fn kl_optimality_against_perturbations() {
        // The closed form must beat hand-constructed feasible alternatives.
        let phi = pmf(&[0.4, 0.3, 0.2, 0.1]);
        let theta = 0.5;
        let l = 1;
        let star = min_kl(&phi, l, theta).unwrap();
        // Alternatives: push different head/tail splits.
        for head_mass in [0.1, 0.2, 0.3, 0.4, 0.45, 0.49] {
            let h: f64 = phi.probs()[..=l].iter().sum();
            let t = 1.0 - h;
            let ws: Vec<f64> = phi
                .probs()
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    if i <= l {
                        p * head_mass / h
                    } else {
                        p * (1.0 - head_mass) / t
                    }
                })
                .collect();
            let alt = Pmf::from_weights(ws, 1).unwrap();
            let alt_head: f64 = alt.probs()[..=l].iter().sum();
            assert!(alt_head <= theta + 1e-9, "alternative must be feasible");
            let alt_kl = alt.kl_divergence(&phi).unwrap();
            assert!(
                alt_kl + 1e-12 >= star,
                "closed form {star} beaten by alternative {alt_kl} (head {head_mass})"
            );
        }
    }
}

//! Continuous time-slot mapping — Algorithm 4 and Theorem 3.
//!
//! The onion peel fixes *target completion times*; real containers demand
//! *continuous* occupancy: a task, once placed, holds its container for its
//! whole runtime. The mapping maintains one queue per container and packs
//! jobs in ascending-target order: a job keeps adding tasks to the current
//! queue while the queue's occupation is still below the job's target, then
//! spills to the next queue. Theorem 3 guarantees every job completes no
//! later than `T_i + R_i` — at most one average task runtime past its
//! target — provided the targets satisfy the Theorem 2 prefix-capacity
//! condition.

use crate::CoreError;

/// One job's mapping input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MapJob {
    /// Remaining tasks to place.
    pub tasks: u64,
    /// Average task runtime `R_i` in slots (≥ 1).
    pub task_len: u64,
    /// Target completion time `T_i` in slots from now.
    pub target: u64,
    /// A *lax* job is indifferent to its completion time (flat utility, or
    /// nothing left to gain): it is placed **after** every strict job, into
    /// whatever capacity is left, balanced across the least-occupied
    /// queues. Its `target` is ignored for placement.
    pub lax: bool,
}

/// A contiguous run of one job's tasks on one container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment {
    /// Container (queue) index, `0..capacity`.
    pub container: u32,
    /// First slot of the run.
    pub start: u64,
    /// Number of back-to-back tasks in the run.
    pub tasks: u64,
}

/// Where one job's tasks were placed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Placement {
    /// Task runtime used for this job.
    pub task_len: u64,
    /// Slot by which the job's last task finishes (0 for a task-less job).
    pub completion: u64,
    /// The job's segments, in placement order.
    pub segments: Vec<Segment>,
}

impl Placement {
    /// Number of containers this job occupies at slot `t` under the plan.
    ///
    /// The container-assignment unit reads `active_at(0)` as the job's
    /// desired allocation for the *next* slot — the only part of the plan
    /// that is actually executed before the feedback cycle replans.
    pub fn active_at(&self, t: u64) -> u32 {
        self.segments
            .iter()
            .filter(|s| s.start <= t && t < s.start + s.tasks * self.task_len)
            .count() as u32
    }
}

/// Runs the continuous time-slot mapping (Algorithm 4).
///
/// Jobs are packed in ascending `target` order (ties: input order); the
/// result is returned in **input order**. Task-less jobs yield empty
/// placements.
///
/// If the targets violate the Theorem 2 capacity condition the algorithm
/// stays total: overflow tasks spill onto the least-occupied queue, and the
/// affected job's completion simply exceeds `target + task_len` (callers
/// can detect this by comparing).
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] if `capacity == 0` or any `task_len == 0`.
pub fn map_continuous(jobs: &[MapJob], capacity: u32) -> Result<Vec<Placement>, CoreError> {
    validate(jobs, capacity)?;
    let order = pack_order(jobs);
    let mut occupation = vec![0u64; capacity as usize];
    let mut placements = empty_placements(jobs);
    pack_suffix(jobs, &order, 0, &mut occupation, &mut placements);
    check_mapping_contract(jobs, &placements, capacity);
    Ok(placements)
}

fn validate(jobs: &[MapJob], capacity: u32) -> Result<(), CoreError> {
    if capacity == 0 {
        return Err(CoreError::InvalidConfig { reason: "capacity must be > 0" });
    }
    if jobs.iter().any(|j| j.task_len == 0) {
        return Err(CoreError::InvalidConfig { reason: "task_len must be >= 1" });
    }
    Ok(())
}

/// Pack order: strict jobs by ascending target; lax jobs afterwards, also
/// by target (for lax jobs the target is not a deadline but an ordering
/// hint assigned by the onion peel). Ties broken by input index, so the
/// order is a pure function of the job list.
fn pack_order(jobs: &[MapJob]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| {
        let j = &jobs[i];
        (j.lax, j.target, i)
    });
    order
}

fn empty_placements(jobs: &[MapJob]) -> Vec<Placement> {
    jobs.iter()
        .map(|j| Placement { task_len: j.task_len, completion: 0, segments: Vec::new() })
        .collect()
}

/// Packs `order[from..]` onto the queues, given the occupation the prefix
/// `order[..from]` left behind. Packing one position at a time makes this
/// the shared tail of both the full and the incremental mapping: identical
/// inputs produce identical placements, bit for bit.
///
/// Least-occupied-queue selection (lax packing and overflow spill) is
/// evaluated in closed form by [`water_fill`] — O(C · log(t·R)) per job
/// instead of O(C) per *task*, with placements identical to the
/// one-task-at-a-time scan.
fn pack_suffix(
    jobs: &[MapJob],
    order: &[usize],
    from: usize,
    occupation: &mut [u64],
    placements: &mut [Placement],
) {
    for &i in &order[from..] {
        let job = jobs[i];
        // Reset in place: the slot may hold a recycled placement from the
        // previous pass — clearing keeps its segment buffer's capacity, so
        // steady-state repacks allocate nothing.
        let p = &mut placements[i];
        p.task_len = job.task_len;
        p.completion = 0;
        p.segments.clear();
        if job.lax {
            // Leftover packing: least-occupied-queue filling — work-
            // conserving, and strictly behind every strict reservation
            // already placed (the pack order puts every strict job first).
            water_fill(occupation, job.task_len, job.tasks, p);
            continue;
        }
        let mut remaining = job.tasks;
        let mut k = 0usize;
        // Dividends are at most `target + R − 1`.
        let div = Recip::new(job.task_len, job.target.saturating_add(job.task_len));
        while remaining > 0 && k < occupation.len() {
            let o = occupation[k];
            if o < job.target {
                // Tasks that can still *start* before the target on this
                // queue: ceil((target − o) / task_len).
                let fit = div.div(job.target - o + (job.task_len - 1)).min(remaining);
                if fit > 0 {
                    p.segments.push(Segment { container: k as u32, start: o, tasks: fit });
                    occupation[k] = o + fit * job.task_len;
                    p.completion = p.completion.max(occupation[k]);
                    remaining -= fit;
                }
            }
            k += 1;
        }
        // Overflow (targets violated capacity): spill onto the
        // least-occupied queues, same selection rule as lax packing.
        if remaining > 0 {
            water_fill(occupation, job.task_len, remaining, p);
        }
    }
}

/// Exact floor division by a fixed divisor via a precomputed reciprocal
/// (the round-up method): with `m = ⌊2^64/d⌋ + 1` and `e = m·d − 2^64`
/// (so `0 < e ≤ d`), `⌊x·m / 2^64⌋ = ⌊x/d⌋` exactly whenever
/// `x·e < 2^64` — guaranteed here by requiring `x_max·d < 2^64` up
/// front and falling back to hardware division otherwise. Turns the
/// ~30-cycle `div` in the packing inner loops into a multiply-and-shift
/// with bit-identical results.
#[derive(Clone, Copy)]
struct Recip {
    d: u64,
    m: u128,
    exact: bool,
}

impl Recip {
    fn new(d: u64, x_max: u64) -> Self {
        Recip {
            d,
            m: (1u128 << 64) / d as u128 + 1,
            exact: (x_max as u128) * (d as u128) < 1u128 << 64,
        }
    }

    #[inline]
    fn div(&self, x: u64) -> u64 {
        if self.exact {
            ((x as u128 * self.m) >> 64) as u64
        } else {
            x / self.d
        }
    }
}

/// Places `tasks` tasks of length `task_len` by least-occupied-queue
/// selection — the queue with the smallest `(occupation, index)` key takes
/// the next task — evaluated in closed form.
///
/// One-at-a-time selection pops keys in non-decreasing `(value, queue)`
/// order from the per-queue arithmetic progressions
/// `(o_k + j·R, k), j ≥ 0`: placing a task on queue `k` exposes its next
/// key, so after `t` pops exactly the `t` smallest keys of the union have
/// been taken. The per-queue task counts therefore follow from the value
/// `w` of the `t`-th smallest key: every key strictly below `w` is taken,
/// and the remainder goes to the queues whose progression hits `w`
/// exactly, in ascending queue order (the key tie-break). `w` is located
/// by a volume bound that pins it inside a window of width O(R) (bisection
/// narrows the rare cases where the bound is loose), then *selected*
/// outright as the matching order statistic of the ≤ 3 per-queue
/// progression keys inside the window — O(C) total, independent of how
/// many tasks each queue absorbs — and each queue's tasks land as one
/// contiguous segment, exactly where the scan would have stacked them.
fn water_fill(occupation: &mut [u64], task_len: u64, tasks: u64, placement: &mut Placement) {
    if tasks == 0 {
        return;
    }
    let l = task_len;
    // Segments already in the placement (the strict prefix when this is an
    // overflow spill) are container-ascending, and a strict segment on
    // queue `k` ends exactly at the current `occupation[k]`. When the
    // spill lands right behind one, extend it instead of emitting a second
    // segment: the tasks run at the same rate (`task_len` is uniform per
    // placement), so the merged segment covers the identical slot interval
    // — occupancy replay (last write per queue) and `active_at` (interval
    // union) are unchanged, keeping plans bit-identical while cutting the
    // emitted segment count.
    let prior = placement.segments.len();
    let mut adj = 0usize;
    let (min_o, sum_o) = occupation
        .iter()
        .fold((u64::MAX, 0u128), |(m, s), &o| (m.min(o), s + o as u128));
    debug_assert_ne!(min_o, u64::MAX, "capacity > 0");
    // Every dividend below is `w − o ≤ tasks·R` (the bisection never
    // probes past `min_o + tasks·R`, and `o ≥ min_o` whenever it is
    // divided), so one reciprocal covers the whole call.
    let div = Recip::new(l, tasks.saturating_mul(l));
    // Keys with value ≤ w across all queue progressions.
    let count = |occ: &[u64], w: u64| -> u64 {
        occ.iter().map(|&o| if o > w { 0 } else { div.div(w - o) + 1 }).sum()
    };
    // The least-occupied queue alone exposes `tasks + 1` keys by
    // `min_o + tasks·R`, so the t-th smallest key is at most that. The
    // volume bound sharpens both ends: summing over *all* queues (queues
    // above `w` contribute negatively), `count(w) > (C·w − Σo)/R`, so
    // `w` with `C·w ≥ t·R + Σo` is a valid upper end; and each of the
    // `A ≤ C` active queues overshoots the real quotient by less than 1,
    // so `count(w) < (C·w − Σo)/R + C` *when every queue is active* —
    // making the symmetric lower end a guess that one probe verifies.
    let c = occupation.len() as u128;
    let hi_bound = ((tasks as u128 * l as u128 + sum_o) / c + 1) as u64;
    let lo_guess = ((tasks.saturating_sub(c as u64) as u128 * l as u128 + sum_o) / c) as u64;
    let mut hi = (min_o + tasks * l).min(hi_bound.max(min_o));
    let mut lo = min_o.max(lo_guess.min(hi));
    if lo > min_o && count(occupation, lo) >= tasks {
        // Some queue sat above the water level: the all-active bound did
        // not apply. Fall back to the safe lower end.
        hi = lo;
        lo = min_o;
    }
    // Invariants: `count(hi) ≥ tasks` and `count(lo − 1) < tasks`, so the
    // t-th smallest key value lies in `[lo, hi]`. Bisection narrows the
    // window to width ≤ 2R (the volume guess usually lands there outright);
    // within such a window each queue's progression holds at most three
    // keys, so the t-th smallest is *selected* from the enumerated step
    // points rather than probed for — and the same enumeration yields the
    // strictly-below-`w` count the tie split needs, probe-free.
    const STACK_KEYS: usize = 256;
    let window = l.saturating_mul(2);
    while hi - lo > window {
        let mid = lo + (hi - lo) / 2;
        if count(occupation, mid) >= tasks {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let (w, below_w) = if lo < hi && 3 * occupation.len() <= STACK_KEYS {
        // `base` (keys strictly below the window) falls out of the same
        // divisions that locate each queue's first in-window key — no
        // separate counting probe.
        let mut base = 0u64;
        let mut keys = [0u64; STACK_KEYS];
        let mut nk = 0usize;
        for &o in occupation.iter() {
            // Smallest progression key ≥ lo, then every key up to hi.
            let mut key = if o >= lo {
                o
            } else {
                let q = div.div(lo - o);
                let f = o + q * l;
                if f < lo {
                    base += q + 1;
                    f + l
                } else {
                    base += q;
                    f
                }
            };
            while key <= hi {
                keys[nk] = key;
                nk += 1;
                key += l;
            }
        }
        // `nk = count(hi) − base ≥ tasks − base`, so the rank is in range.
        let k = (tasks - base) as usize;
        let (_, kth, _) = keys[..nk].select_nth_unstable(k - 1);
        let w = *kth;
        (w, base + keys[..nk].iter().filter(|&&x| x < w).count() as u64)
    } else {
        // Degenerate window or very wide fleet: finish by bisection.
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
                if count(occupation, mid) >= tasks {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let w = lo;
        (w, if w == 0 { 0 } else { count(occupation, w - 1) })
    };
    // Keys strictly below `w` are all taken (count(w−1) < tasks by
    // minimality of `w`); ties at exactly `w` fill in queue order.
    let mut leftover = tasks - below_w;
    for (k, o) in occupation.iter_mut().enumerate() {
        let o0 = *o;
        let mut m = 0;
        let mut tie = false;
        if o0 <= w {
            let q = div.div(w - o0);
            let r = (w - o0) - q * l;
            // Keys strictly below w: q + 1 if the remainder is nonzero
            // (progression entries at o0, o0+R, …, o0+q·R), else q.
            m = if r != 0 { q + 1 } else { q };
            tie = r == 0;
        }
        if leftover > 0 && tie {
            m += 1;
            leftover -= 1;
        }
        if m > 0 {
            while adj < prior && placement.segments[adj].container < k as u32 {
                adj += 1;
            }
            match placement.segments.get_mut(adj) {
                Some(s) if adj < prior && s.container == k as u32 && s.start + s.tasks * l == o0 => {
                    s.tasks += m;
                }
                _ => placement.segments.push(Segment { container: k as u32, start: o0, tasks: m }),
            }
            *o = o0 + m * l;
            placement.completion = placement.completion.max(*o);
        }
    }
    debug_assert_eq!(leftover, 0, "water_fill under-placed");
}

#[cfg_attr(not(feature = "strict-invariants"), allow(unused_variables))]
fn check_mapping_contract(jobs: &[MapJob], placements: &[Placement], capacity: u32) {
    #[cfg(feature = "strict-invariants")]
    {
        // Conservation: every task of every job lands in exactly one
        // segment — the spill path guarantees totality.
        for (i, p) in placements.iter().enumerate() {
            let placed: u64 = p.segments.iter().map(|s| s.tasks).sum();
            debug_assert_eq!(
                placed, jobs[i].tasks,
                "mapping contract: job {i} placed {placed} of {} tasks",
                jobs[i].tasks
            );
        }
        // Theorem 3: when the strict jobs' targets satisfy the Theorem 2
        // prefix-capacity condition, every strict job completes within one
        // task runtime of its target. (Lax jobs are packed after every
        // strict job and cannot affect strict completions.)
        let strict: Vec<MapJob> = jobs.iter().copied().filter(|j| !j.lax).collect();
        if capacity_condition_holds(&strict, capacity) {
            for (i, job) in jobs.iter().enumerate() {
                if job.lax {
                    continue;
                }
                debug_assert!(
                    placements[i].completion <= job.target + job.task_len,
                    "Theorem 3 contract: job {i} completion {} > T + R = {}",
                    placements[i].completion,
                    job.target + job.task_len
                );
            }
        }
    }
}

/// Telemetry: how the last [`map_continuous_incremental`] pass executed.
#[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
pub struct MapStats {
    /// Whether any cached prefix was eligible for reuse.
    pub delta: bool,
    /// Pack-order positions whose cached placements were reused verbatim.
    pub reused_prefix: usize,
    /// Pack-order positions repacked from the divergence point on.
    pub repacked: usize,
}

/// Cross-pass state for [`map_continuous_incremental`]: the previous
/// pass's inputs, pack order and placements (in input order). All
/// buffers — placements, their segment vectors, the pack order and the
/// occupation array — are recycled in place across passes, so a
/// steady-state single-job delta allocates nothing.
#[derive(Default, Debug, Clone)]
pub struct MapState {
    capacity: u32,
    jobs: Vec<MapJob>,
    order: Vec<usize>,
    placements: Vec<Placement>,
    occupation: Vec<u64>,
    valid: bool,
    stats: MapStats,
}

impl MapState {
    /// Creates an empty state; the first pass packs everything.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached pack: the next pass repacks from scratch.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// How the most recent pass executed.
    pub fn last_stats(&self) -> MapStats {
        self.stats
    }
}

/// Beyond this many changed jobs a splice repair of the cached pack
/// order stops paying for itself (each splice memmoves O(n) entries and
/// the divergence point drops toward 0 anyway); fall back to a full
/// re-sort and repack.
const MAX_SPLICED_CHANGES: usize = 16;

/// [`map_continuous`] with cross-pass memoization.
///
/// Algorithm 4 packs one pack-order position at a time, and a position's
/// placement depends only on the queue occupations left by the positions
/// before it. So when the jobs at pack-order positions `0..p` are
/// unchanged since the previous pass, their cached placements are reused
/// verbatim: the occupation array they imply is replayed from their
/// recorded segments (each segment's end *is* the queue's occupation at
/// the moment it was placed), and only positions `p..` are repacked —
/// in place, onto the recycled placement buffers. The cached pack order
/// is likewise repaired by splicing out the changed jobs and
/// re-inserting them at their new key positions instead of re-sorting.
/// The returned slice (borrowed from `state`, in input order) is
/// bit-identical to [`map_continuous`]'s result in every case.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] under the same conditions as
/// [`map_continuous`].
pub fn map_continuous_incremental<'a>(
    jobs: &[MapJob],
    capacity: u32,
    state: &'a mut MapState,
) -> Result<&'a [Placement], CoreError> {
    validate(jobs, capacity)?;
    let n = jobs.len();
    let eligible = state.valid && state.capacity == capacity && state.jobs.len() == n;
    // First pack-order position whose inputs differ from the cached pass;
    // everything before it keeps its placement verbatim.
    let mut from = 0usize;
    if eligible {
        from = splice_order(jobs, &mut state.order, &state.jobs);
    } else {
        state.order.clear();
        state.order.extend(0..n);
        state.order.sort_unstable_by_key(|&i| (jobs[i].lax, jobs[i].target, i));
    }
    state.jobs.clear();
    state.jobs.extend_from_slice(jobs);
    // Recycle the placement slots; stale suffix entries are reset inside
    // `pack_suffix`, prefix entries are already correct.
    if state.placements.len() != n {
        state
            .placements
            .resize(n, Placement { task_len: 1, completion: 0, segments: Vec::new() });
    }
    state.occupation.clear();
    state.occupation.resize(capacity as usize, 0);
    for &i in &state.order[..from] {
        // Replay occupancy: segments are recorded in placement order, so
        // the last write to a queue leaves its true occupation.
        let p = &state.placements[i];
        for s in &p.segments {
            state.occupation[s.container as usize] = s.start + s.tasks * p.task_len;
        }
    }
    pack_suffix(jobs, &state.order, from, &mut state.occupation, &mut state.placements);
    check_mapping_contract(jobs, &state.placements, capacity);
    state.capacity = capacity;
    state.stats = MapStats { delta: eligible, reused_prefix: from, repacked: n - from };
    state.valid = true;
    Ok(&state.placements)
}

/// Repairs a cached pack order after some jobs changed: every changed
/// job is spliced out (located by its *old* sort key) and re-inserted at
/// its *new* key position, leaving `order` exactly equal to
/// [`pack_order`]`(jobs)` — the key `(lax, target, index)` is unique, so
/// sorted-by-unique-key is a canonical form. Returns the first position
/// the repair touched (the repack divergence point); positions before it
/// kept both their order entry and that job's fields.
///
/// Falls back to a full re-sort when more than [`MAX_SPLICED_CHANGES`]
/// jobs changed, returning 0.
fn splice_order(jobs: &[MapJob], order: &mut Vec<usize>, old_jobs: &[MapJob]) -> usize {
    let n = jobs.len();
    let mut from = n;
    // (old position, job index) of changed jobs whose sort key moved.
    let mut moved = [(0usize, 0usize); MAX_SPLICED_CHANGES];
    let mut moved_len = 0usize;
    for (k, (job, old)) in jobs.iter().zip(old_jobs).enumerate() {
        if job == old {
            continue;
        }
        let old_key = (old.lax, old.target, k);
        let pos = order
            .binary_search_by_key(&old_key, |&i| (old_jobs[i].lax, old_jobs[i].target, i))
            // rush-lint: allow(RUSH-L003): the key is read from the same cached order being searched
            .expect("cached pack order is sorted by the cached jobs' keys");
        if (job.lax, job.target) == (old.lax, old.target) {
            // Key unchanged: the job stays put, but its packing inputs
            // changed, so repack must start no later than here.
            from = from.min(pos);
            continue;
        }
        if moved_len == MAX_SPLICED_CHANGES {
            order.clear();
            order.extend(0..n);
            order.sort_unstable_by_key(|&i| (jobs[i].lax, jobs[i].target, i));
            return 0;
        }
        moved[moved_len] = (pos, k);
        moved_len += 1;
    }
    let moved = &mut moved[..moved_len];
    // Remove in descending position order so earlier removals don't
    // shift the positions still pending; the smallest removal position is
    // removed last and hence unshifted — safe to take as a `from` bound.
    moved.sort_unstable_by_key(|m| std::cmp::Reverse(m.0));
    for &(pos, _) in moved.iter() {
        order.remove(pos);
        from = from.min(pos);
    }
    for &(_, k) in moved.iter() {
        let new_key = (jobs[k].lax, jobs[k].target, k);
        let ins = order.partition_point(|&i| (jobs[i].lax, jobs[i].target, i) < new_key);
        order.insert(ins, k);
        from = from.min(ins);
    }
    from
}

/// Checks the Theorem 2 prefix-capacity condition for (target, demand)
/// pairs: `Σ_{i: T_i ≤ T_k} η_i ≤ C · T_k` for every job `k`.
///
/// Demands are `tasks · task_len` container·slots. Useful in tests and in
/// admission logic.
pub fn capacity_condition_holds(jobs: &[MapJob], capacity: u32) -> bool {
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| jobs[i].target);
    let mut cum = 0u128;
    for &i in &order {
        cum += (jobs[i].tasks * jobs[i].task_len) as u128;
        if cum > capacity as u128 * jobs[i].target as u128 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_single_queue() {
        let jobs = [MapJob { tasks: 3, task_len: 10, target: 30, lax: false }];
        let p = map_continuous(&jobs, 4).unwrap();
        assert_eq!(p[0].segments.len(), 1);
        assert_eq!(p[0].segments[0], Segment { container: 0, start: 0, tasks: 3 });
        assert_eq!(p[0].completion, 30);
    }

    #[test]
    fn job_spreads_across_queues_when_target_tight() {
        // 4 tasks of 10 slots, target 10: one task fits per queue.
        let jobs = [MapJob { tasks: 4, task_len: 10, target: 10, lax: false }];
        let p = map_continuous(&jobs, 4).unwrap();
        assert_eq!(p[0].segments.len(), 4);
        assert!(p[0].segments.iter().all(|s| s.start == 0 && s.tasks == 1));
        assert_eq!(p[0].completion, 10);
        assert_eq!(p[0].active_at(0), 4);
        assert_eq!(p[0].active_at(9), 4);
        assert_eq!(p[0].active_at(10), 0);
    }

    #[test]
    fn theorem3_bound_on_boundary_case() {
        // Target 15 with task_len 10: a task may start at slot 14 and end
        // at 24 ≤ target + task_len = 25.
        let jobs = [
            MapJob { tasks: 1, task_len: 14, target: 15, lax: false }, // occupies queue 0 to 14
            MapJob { tasks: 1, task_len: 10, target: 15, lax: false }, // starts at 14 on queue 0
        ];
        let p = map_continuous(&jobs, 1).unwrap();
        assert_eq!(p[1].segments[0].start, 14);
        assert_eq!(p[1].completion, 24);
        assert!(p[1].completion <= 15 + 10);
    }

    #[test]
    fn jobs_packed_in_target_order_regardless_of_input_order() {
        let jobs = [
            MapJob { tasks: 2, task_len: 10, target: 100, lax: false }, // late target
            MapJob { tasks: 2, task_len: 10, target: 20, lax: false },  // early target
        ];
        let p = map_continuous(&jobs, 1).unwrap();
        // Early-target job goes first on the single queue.
        assert_eq!(p[1].segments[0].start, 0);
        assert_eq!(p[0].segments[0].start, 20);
    }

    #[test]
    fn results_in_input_order() {
        let jobs = [
            MapJob { tasks: 1, task_len: 5, target: 50, lax: false },
            MapJob { tasks: 1, task_len: 7, target: 10, lax: false },
        ];
        let p = map_continuous(&jobs, 2).unwrap();
        assert_eq!(p[0].task_len, 5);
        assert_eq!(p[1].task_len, 7);
    }

    #[test]
    fn overflow_spills_to_least_occupied() {
        // Impossible target: 10 tasks of 10 slots, target 10, 2 queues.
        let jobs = [MapJob { tasks: 10, task_len: 10, target: 10, lax: false }];
        let p = map_continuous(&jobs, 2).unwrap();
        let total: u64 = p[0].segments.iter().map(|s| s.tasks).sum();
        assert_eq!(total, 10, "all tasks placed despite overflow");
        assert_eq!(p[0].completion, 50); // 10 tasks over 2 queues
        assert!(p[0].completion > 10 + 10, "bound violated ⇒ detectable");
    }

    #[test]
    fn overflow_spill_coalesces_with_strict_prefix() {
        // The strict pass puts one task per queue (ending at slot 10) and
        // the spill continues at slot 10 on the same queues: adjacent
        // same-rate runs must come out as one segment per queue, not two.
        let jobs = [MapJob { tasks: 10, task_len: 10, target: 10, lax: false }];
        let p = map_continuous(&jobs, 2).unwrap();
        assert_eq!(p[0].segments.len(), 2, "adjacent same-rate runs merge");
        assert_eq!(p[0].segments[0], Segment { container: 0, start: 0, tasks: 5 });
        assert_eq!(p[0].segments[1], Segment { container: 1, start: 0, tasks: 5 });
        assert_eq!(p[0].active_at(0), 2);
        assert_eq!(p[0].active_at(49), 2);
    }

    #[test]
    fn zero_task_job_is_empty() {
        let jobs = [MapJob { tasks: 0, task_len: 10, target: 10, lax: false }];
        let p = map_continuous(&jobs, 2).unwrap();
        assert!(p[0].segments.is_empty());
        assert_eq!(p[0].completion, 0);
        assert_eq!(p[0].active_at(0), 0);
    }

    #[test]
    fn zero_target_job_still_places() {
        // Overdue job (target 0): the start-before-target rule never fires,
        // so everything goes through the spill path, ASAP.
        let jobs = [MapJob { tasks: 2, task_len: 5, target: 0, lax: false }];
        let p = map_continuous(&jobs, 2).unwrap();
        let total: u64 = p[0].segments.iter().map(|s| s.tasks).sum();
        assert_eq!(total, 2);
        assert_eq!(p[0].completion, 5); // one task per queue
    }

    #[test]
    fn validation() {
        assert!(map_continuous(&[], 0).is_err());
        assert!(map_continuous(&[MapJob { tasks: 1, task_len: 0, target: 5, lax: false }], 2).is_err());
    }

    #[test]
    fn capacity_condition_checker() {
        let ok = [
            MapJob { tasks: 2, task_len: 10, target: 20, lax: false },
            MapJob { tasks: 2, task_len: 10, target: 40, lax: false },
        ];
        assert!(capacity_condition_holds(&ok, 1));
        let bad = [MapJob { tasks: 3, task_len: 10, target: 20, lax: false }];
        assert!(!capacity_condition_holds(&bad, 1));
    }

    #[test]
    fn theorem3_bound_under_capacity_condition() {
        // Deterministic instance satisfying (12): staggered targets.
        let jobs = [
            MapJob { tasks: 4, task_len: 10, target: 20, lax: false },
            MapJob { tasks: 4, task_len: 15, target: 60, lax: false },
            MapJob { tasks: 6, task_len: 5, target: 70, lax: false },
            MapJob { tasks: 2, task_len: 30, target: 100, lax: false },
        ];
        let capacity = 2;
        assert!(capacity_condition_holds(&jobs, capacity));
        let p = map_continuous(&jobs, capacity).unwrap();
        for (i, placement) in p.iter().enumerate() {
            assert!(
                placement.completion <= jobs[i].target + jobs[i].task_len,
                "job {i}: completion {} > T+R {}",
                placement.completion,
                jobs[i].target + jobs[i].task_len
            );
        }
    }

    #[test]
    fn lax_jobs_pack_into_leftovers_after_strict() {
        let jobs = [
            MapJob { tasks: 2, task_len: 10, target: 10, lax: false },
            MapJob { tasks: 4, task_len: 10, target: 5, lax: true }, // target ignored
        ];
        let p = map_continuous(&jobs, 2).unwrap();
        // Strict job takes both queues at slot 0; lax fills behind it.
        assert!(p[0].segments.iter().all(|s| s.start == 0));
        assert!(p[1].segments.iter().all(|s| s.start >= 10));
        assert_eq!(p[1].completion, 30); // 4 tasks balanced on 2 queues after 10
        assert_eq!(p[1].active_at(0), 0);
        assert_eq!(p[1].active_at(15), 2);
    }

    #[test]
    fn lax_only_runs_immediately_when_capacity_free() {
        let jobs = [MapJob { tasks: 6, task_len: 5, target: 999, lax: true }];
        let p = map_continuous(&jobs, 3).unwrap();
        assert_eq!(p[0].active_at(0), 3, "lax jobs use free capacity at once");
        assert_eq!(p[0].completion, 10);
    }

    #[test]
    fn zero_demand_jobs_mixed_with_loaded_jobs() {
        // Zero-demand jobs ride along without consuming capacity or
        // breaking the Theorem 3 bound for their loaded peers.
        let jobs = [
            MapJob { tasks: 0, task_len: 10, target: 20, lax: false },
            MapJob { tasks: 4, task_len: 10, target: 20, lax: false },
            MapJob { tasks: 0, task_len: 3, target: 0, lax: false },
            MapJob { tasks: 0, task_len: 5, target: 7, lax: true },
        ];
        let p = map_continuous(&jobs, 2).unwrap();
        assert!(p[0].segments.is_empty() && p[2].segments.is_empty() && p[3].segments.is_empty());
        assert_eq!(p[0].completion, 0);
        let total: u64 = p[1].segments.iter().map(|s| s.tasks).sum();
        assert_eq!(total, 4);
        assert!(p[1].completion <= 20 + 10);
    }

    #[test]
    fn target_at_horizon_completes_within_bound() {
        // A job whose target sits exactly at the planning horizon still
        // obeys T + R: the pack never starts a task at or past the target.
        const HORIZON: u64 = 1_000_000;
        let jobs = [
            MapJob { tasks: 3, task_len: 7, target: 10, lax: false },
            MapJob { tasks: 5, task_len: 9, target: HORIZON, lax: false },
        ];
        assert!(capacity_condition_holds(&jobs, 3));
        let p = map_continuous(&jobs, 3).unwrap();
        assert!(p[1].completion <= HORIZON + 9);
    }

    #[test]
    fn full_cluster_all_containers_committed() {
        // C = 3 containers, each fully committed to a strict job through
        // slot 30; a later-target job queues behind and still meets T + R.
        let jobs = [
            MapJob { tasks: 3, task_len: 10, target: 30, lax: false },
            MapJob { tasks: 3, task_len: 10, target: 30, lax: false },
            MapJob { tasks: 3, task_len: 10, target: 30, lax: false },
            MapJob { tasks: 3, task_len: 10, target: 60, lax: false },
        ];
        assert!(capacity_condition_holds(&jobs, 3));
        let p = map_continuous(&jobs, 3).unwrap();
        for placement in &p[..3] {
            // bound: the first three jobs fill all containers through 30
            assert_eq!(placement.completion, 30);
        }
        assert!(p[3].segments.iter().all(|s| s.start >= 30));
        assert!(p[3].completion <= 60 + 10);
    }

    /// The memoized pack must be bit-identical to the full pack across a
    /// deterministic stream of single-job mutations (target moves, task
    /// count changes, lax flips, job churn at both ends of the order).
    #[test]
    fn incremental_mapping_matches_full_pack() {
        let mut jobs: Vec<MapJob> = (0..50)
            .map(|i| MapJob {
                tasks: 1 + (i * 7) % 9,
                task_len: 1 + (i * 3) % 13,
                target: 10 + (i * 37) % 400,
                lax: i % 5 == 0,
            })
            .collect();
        let mut state = MapState::new();
        let capacity = 8;
        for step in 0..40u64 {
            let k = (step as usize * 11) % jobs.len();
            match step % 4 {
                0 => jobs[k].target = (jobs[k].target + 31) % 450,
                1 => jobs[k].tasks = 1 + (jobs[k].tasks + 2) % 11,
                2 => jobs[k].lax = !jobs[k].lax,
                _ => jobs[k].task_len = 1 + (jobs[k].task_len + 4) % 17,
            }
            let full = map_continuous(&jobs, capacity).unwrap();
            let inc = map_continuous_incremental(&jobs, capacity, &mut state).unwrap();
            assert_eq!(full, inc, "step {step}");
            if step > 0 {
                assert!(state.last_stats().delta, "step {step} should take the delta path");
            }
        }
        // Capacity change invalidates the cache but stays correct.
        let full = map_continuous(&jobs, capacity + 1).unwrap();
        let inc = map_continuous_incremental(&jobs, capacity + 1, &mut state).unwrap();
        assert_eq!(full, inc);
        assert!(!state.last_stats().delta);
        // No-op replan: the entire pack order is reused.
        let again = map_continuous_incremental(&jobs, capacity + 1, &mut state).unwrap();
        assert_eq!(full, again);
        assert_eq!(state.last_stats().reused_prefix, jobs.len());
        assert_eq!(state.last_stats().repacked, 0);
    }

    #[test]
    fn segments_never_overlap_on_a_container() {
        let jobs = [
            MapJob { tasks: 3, task_len: 7, target: 25, lax: false },
            MapJob { tasks: 5, task_len: 3, target: 30, lax: false },
            MapJob { tasks: 2, task_len: 11, target: 60, lax: false },
        ];
        let p = map_continuous(&jobs, 2).unwrap();
        // Collect (container, interval) and check pairwise disjointness.
        let mut intervals: Vec<(u32, u64, u64)> = Vec::new();
        for (i, placement) in p.iter().enumerate() {
            for s in &placement.segments {
                intervals.push((s.container, s.start, s.start + s.tasks * jobs[i].task_len));
            }
        }
        for a in 0..intervals.len() {
            for b in (a + 1)..intervals.len() {
                let (ca, sa, ea) = intervals[a];
                let (cb, sb, eb) = intervals[b];
                if ca == cb {
                    assert!(ea <= sb || eb <= sa, "overlap: {:?} vs {:?}", intervals[a], intervals[b]);
                }
            }
        }
    }
}

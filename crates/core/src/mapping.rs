//! Continuous time-slot mapping — Algorithm 4 and Theorem 3.
//!
//! The onion peel fixes *target completion times*; real containers demand
//! *continuous* occupancy: a task, once placed, holds its container for its
//! whole runtime. The mapping maintains one queue per container and packs
//! jobs in ascending-target order: a job keeps adding tasks to the current
//! queue while the queue's occupation is still below the job's target, then
//! spills to the next queue. Theorem 3 guarantees every job completes no
//! later than `T_i + R_i` — at most one average task runtime past its
//! target — provided the targets satisfy the Theorem 2 prefix-capacity
//! condition.

use crate::CoreError;

/// One job's mapping input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MapJob {
    /// Remaining tasks to place.
    pub tasks: u64,
    /// Average task runtime `R_i` in slots (≥ 1).
    pub task_len: u64,
    /// Target completion time `T_i` in slots from now.
    pub target: u64,
    /// A *lax* job is indifferent to its completion time (flat utility, or
    /// nothing left to gain): it is placed **after** every strict job, into
    /// whatever capacity is left, balanced across the least-occupied
    /// queues. Its `target` is ignored for placement.
    pub lax: bool,
}

/// A contiguous run of one job's tasks on one container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment {
    /// Container (queue) index, `0..capacity`.
    pub container: u32,
    /// First slot of the run.
    pub start: u64,
    /// Number of back-to-back tasks in the run.
    pub tasks: u64,
}

/// Where one job's tasks were placed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Placement {
    /// Task runtime used for this job.
    pub task_len: u64,
    /// Slot by which the job's last task finishes (0 for a task-less job).
    pub completion: u64,
    /// The job's segments, in placement order.
    pub segments: Vec<Segment>,
}

impl Placement {
    /// Number of containers this job occupies at slot `t` under the plan.
    ///
    /// The container-assignment unit reads `active_at(0)` as the job's
    /// desired allocation for the *next* slot — the only part of the plan
    /// that is actually executed before the feedback cycle replans.
    pub fn active_at(&self, t: u64) -> u32 {
        self.segments
            .iter()
            .filter(|s| s.start <= t && t < s.start + s.tasks * self.task_len)
            .count() as u32
    }
}

/// Runs the continuous time-slot mapping (Algorithm 4).
///
/// Jobs are packed in ascending `target` order (ties: input order); the
/// result is returned in **input order**. Task-less jobs yield empty
/// placements.
///
/// If the targets violate the Theorem 2 capacity condition the algorithm
/// stays total: overflow tasks spill onto the least-occupied queue, and the
/// affected job's completion simply exceeds `target + task_len` (callers
/// can detect this by comparing).
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] if `capacity == 0` or any `task_len == 0`.
pub fn map_continuous(jobs: &[MapJob], capacity: u32) -> Result<Vec<Placement>, CoreError> {
    if capacity == 0 {
        return Err(CoreError::InvalidConfig { reason: "capacity must be > 0" });
    }
    if jobs.iter().any(|j| j.task_len == 0) {
        return Err(CoreError::InvalidConfig { reason: "task_len must be >= 1" });
    }
    // Strict jobs by ascending target; lax jobs afterwards, also by
    // target (for lax jobs the target is not a deadline but an ordering
    // hint assigned by the onion peel).
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| {
        let j = &jobs[i];
        (j.lax, j.target, i)
    });

    let mut occupation = vec![0u64; capacity as usize];
    let mut placements: Vec<Placement> = jobs
        .iter()
        .map(|j| Placement { task_len: j.task_len, completion: 0, segments: Vec::new() })
        .collect();

    for &i in &order {
        let job = jobs[i];
        if job.lax {
            // Leftover packing: one task at a time onto the least-occupied
            // queue — work-conserving, and strictly behind every strict
            // reservation already placed.
            for _ in 0..job.tasks {
                let (k, _) = occupation
                    .iter()
                    .enumerate()
                    .min_by_key(|&(idx, &o)| (o, idx))
                    .expect("capacity > 0");
                placements[i].segments.push(Segment {
                    container: k as u32,
                    start: occupation[k],
                    tasks: 1,
                });
                occupation[k] += job.task_len;
                placements[i].completion = placements[i].completion.max(occupation[k]);
            }
            continue;
        }
        let mut remaining = job.tasks;
        let mut k = 0usize;
        while remaining > 0 && k < capacity as usize {
            let o = occupation[k];
            if o < job.target {
                // Tasks that can still *start* before the target on this
                // queue: ceil((target − o) / task_len).
                let fit = (job.target - o).div_ceil(job.task_len).min(remaining);
                if fit > 0 {
                    placements[i].segments.push(Segment {
                        container: k as u32,
                        start: o,
                        tasks: fit,
                    });
                    occupation[k] = o + fit * job.task_len;
                    placements[i].completion = placements[i].completion.max(occupation[k]);
                    remaining -= fit;
                }
            }
            k += 1;
        }
        // Overflow (targets violated capacity): spill one task at a time
        // onto the least-occupied queue.
        while remaining > 0 {
            let (k, _) = occupation
                .iter()
                .enumerate()
                .min_by_key(|&(idx, &o)| (o, idx))
                .expect("capacity > 0");
            placements[i].segments.push(Segment {
                container: k as u32,
                start: occupation[k],
                tasks: 1,
            });
            occupation[k] += job.task_len;
            placements[i].completion = placements[i].completion.max(occupation[k]);
            remaining -= 1;
        }
    }
    #[cfg(feature = "strict-invariants")]
    {
        // Conservation: every task of every job lands in exactly one
        // segment — the spill path guarantees totality.
        for (i, p) in placements.iter().enumerate() {
            let placed: u64 = p.segments.iter().map(|s| s.tasks).sum();
            debug_assert_eq!(
                placed, jobs[i].tasks,
                "mapping contract: job {i} placed {placed} of {} tasks",
                jobs[i].tasks
            );
        }
        // Theorem 3: when the strict jobs' targets satisfy the Theorem 2
        // prefix-capacity condition, every strict job completes within one
        // task runtime of its target. (Lax jobs are packed after every
        // strict job and cannot affect strict completions.)
        let strict: Vec<MapJob> = jobs.iter().copied().filter(|j| !j.lax).collect();
        if capacity_condition_holds(&strict, capacity) {
            for (i, job) in jobs.iter().enumerate() {
                if job.lax {
                    continue;
                }
                debug_assert!(
                    placements[i].completion <= job.target + job.task_len,
                    "Theorem 3 contract: job {i} completion {} > T + R = {}",
                    placements[i].completion,
                    job.target + job.task_len
                );
            }
        }
    }
    Ok(placements)
}

/// Checks the Theorem 2 prefix-capacity condition for (target, demand)
/// pairs: `Σ_{i: T_i ≤ T_k} η_i ≤ C · T_k` for every job `k`.
///
/// Demands are `tasks · task_len` container·slots. Useful in tests and in
/// admission logic.
pub fn capacity_condition_holds(jobs: &[MapJob], capacity: u32) -> bool {
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| jobs[i].target);
    let mut cum = 0u128;
    for &i in &order {
        cum += (jobs[i].tasks * jobs[i].task_len) as u128;
        if cum > capacity as u128 * jobs[i].target as u128 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_single_queue() {
        let jobs = [MapJob { tasks: 3, task_len: 10, target: 30, lax: false }];
        let p = map_continuous(&jobs, 4).unwrap();
        assert_eq!(p[0].segments.len(), 1);
        assert_eq!(p[0].segments[0], Segment { container: 0, start: 0, tasks: 3 });
        assert_eq!(p[0].completion, 30);
    }

    #[test]
    fn job_spreads_across_queues_when_target_tight() {
        // 4 tasks of 10 slots, target 10: one task fits per queue.
        let jobs = [MapJob { tasks: 4, task_len: 10, target: 10, lax: false }];
        let p = map_continuous(&jobs, 4).unwrap();
        assert_eq!(p[0].segments.len(), 4);
        assert!(p[0].segments.iter().all(|s| s.start == 0 && s.tasks == 1));
        assert_eq!(p[0].completion, 10);
        assert_eq!(p[0].active_at(0), 4);
        assert_eq!(p[0].active_at(9), 4);
        assert_eq!(p[0].active_at(10), 0);
    }

    #[test]
    fn theorem3_bound_on_boundary_case() {
        // Target 15 with task_len 10: a task may start at slot 14 and end
        // at 24 ≤ target + task_len = 25.
        let jobs = [
            MapJob { tasks: 1, task_len: 14, target: 15, lax: false }, // occupies queue 0 to 14
            MapJob { tasks: 1, task_len: 10, target: 15, lax: false }, // starts at 14 on queue 0
        ];
        let p = map_continuous(&jobs, 1).unwrap();
        assert_eq!(p[1].segments[0].start, 14);
        assert_eq!(p[1].completion, 24);
        assert!(p[1].completion <= 15 + 10);
    }

    #[test]
    fn jobs_packed_in_target_order_regardless_of_input_order() {
        let jobs = [
            MapJob { tasks: 2, task_len: 10, target: 100, lax: false }, // late target
            MapJob { tasks: 2, task_len: 10, target: 20, lax: false },  // early target
        ];
        let p = map_continuous(&jobs, 1).unwrap();
        // Early-target job goes first on the single queue.
        assert_eq!(p[1].segments[0].start, 0);
        assert_eq!(p[0].segments[0].start, 20);
    }

    #[test]
    fn results_in_input_order() {
        let jobs = [
            MapJob { tasks: 1, task_len: 5, target: 50, lax: false },
            MapJob { tasks: 1, task_len: 7, target: 10, lax: false },
        ];
        let p = map_continuous(&jobs, 2).unwrap();
        assert_eq!(p[0].task_len, 5);
        assert_eq!(p[1].task_len, 7);
    }

    #[test]
    fn overflow_spills_to_least_occupied() {
        // Impossible target: 10 tasks of 10 slots, target 10, 2 queues.
        let jobs = [MapJob { tasks: 10, task_len: 10, target: 10, lax: false }];
        let p = map_continuous(&jobs, 2).unwrap();
        let total: u64 = p[0].segments.iter().map(|s| s.tasks).sum();
        assert_eq!(total, 10, "all tasks placed despite overflow");
        assert_eq!(p[0].completion, 50); // 10 tasks over 2 queues
        assert!(p[0].completion > 10 + 10, "bound violated ⇒ detectable");
    }

    #[test]
    fn zero_task_job_is_empty() {
        let jobs = [MapJob { tasks: 0, task_len: 10, target: 10, lax: false }];
        let p = map_continuous(&jobs, 2).unwrap();
        assert!(p[0].segments.is_empty());
        assert_eq!(p[0].completion, 0);
        assert_eq!(p[0].active_at(0), 0);
    }

    #[test]
    fn zero_target_job_still_places() {
        // Overdue job (target 0): the start-before-target rule never fires,
        // so everything goes through the spill path, ASAP.
        let jobs = [MapJob { tasks: 2, task_len: 5, target: 0, lax: false }];
        let p = map_continuous(&jobs, 2).unwrap();
        let total: u64 = p[0].segments.iter().map(|s| s.tasks).sum();
        assert_eq!(total, 2);
        assert_eq!(p[0].completion, 5); // one task per queue
    }

    #[test]
    fn validation() {
        assert!(map_continuous(&[], 0).is_err());
        assert!(map_continuous(&[MapJob { tasks: 1, task_len: 0, target: 5, lax: false }], 2).is_err());
    }

    #[test]
    fn capacity_condition_checker() {
        let ok = [
            MapJob { tasks: 2, task_len: 10, target: 20, lax: false },
            MapJob { tasks: 2, task_len: 10, target: 40, lax: false },
        ];
        assert!(capacity_condition_holds(&ok, 1));
        let bad = [MapJob { tasks: 3, task_len: 10, target: 20, lax: false }];
        assert!(!capacity_condition_holds(&bad, 1));
    }

    #[test]
    fn theorem3_bound_under_capacity_condition() {
        // Deterministic instance satisfying (12): staggered targets.
        let jobs = [
            MapJob { tasks: 4, task_len: 10, target: 20, lax: false },
            MapJob { tasks: 4, task_len: 15, target: 60, lax: false },
            MapJob { tasks: 6, task_len: 5, target: 70, lax: false },
            MapJob { tasks: 2, task_len: 30, target: 100, lax: false },
        ];
        let capacity = 2;
        assert!(capacity_condition_holds(&jobs, capacity));
        let p = map_continuous(&jobs, capacity).unwrap();
        for (i, placement) in p.iter().enumerate() {
            assert!(
                placement.completion <= jobs[i].target + jobs[i].task_len,
                "job {i}: completion {} > T+R {}",
                placement.completion,
                jobs[i].target + jobs[i].task_len
            );
        }
    }

    #[test]
    fn lax_jobs_pack_into_leftovers_after_strict() {
        let jobs = [
            MapJob { tasks: 2, task_len: 10, target: 10, lax: false },
            MapJob { tasks: 4, task_len: 10, target: 5, lax: true }, // target ignored
        ];
        let p = map_continuous(&jobs, 2).unwrap();
        // Strict job takes both queues at slot 0; lax fills behind it.
        assert!(p[0].segments.iter().all(|s| s.start == 0));
        assert!(p[1].segments.iter().all(|s| s.start >= 10));
        assert_eq!(p[1].completion, 30); // 4 tasks balanced on 2 queues after 10
        assert_eq!(p[1].active_at(0), 0);
        assert_eq!(p[1].active_at(15), 2);
    }

    #[test]
    fn lax_only_runs_immediately_when_capacity_free() {
        let jobs = [MapJob { tasks: 6, task_len: 5, target: 999, lax: true }];
        let p = map_continuous(&jobs, 3).unwrap();
        assert_eq!(p[0].active_at(0), 3, "lax jobs use free capacity at once");
        assert_eq!(p[0].completion, 10);
    }

    #[test]
    fn zero_demand_jobs_mixed_with_loaded_jobs() {
        // Zero-demand jobs ride along without consuming capacity or
        // breaking the Theorem 3 bound for their loaded peers.
        let jobs = [
            MapJob { tasks: 0, task_len: 10, target: 20, lax: false },
            MapJob { tasks: 4, task_len: 10, target: 20, lax: false },
            MapJob { tasks: 0, task_len: 3, target: 0, lax: false },
            MapJob { tasks: 0, task_len: 5, target: 7, lax: true },
        ];
        let p = map_continuous(&jobs, 2).unwrap();
        assert!(p[0].segments.is_empty() && p[2].segments.is_empty() && p[3].segments.is_empty());
        assert_eq!(p[0].completion, 0);
        let total: u64 = p[1].segments.iter().map(|s| s.tasks).sum();
        assert_eq!(total, 4);
        assert!(p[1].completion <= 20 + 10);
    }

    #[test]
    fn target_at_horizon_completes_within_bound() {
        // A job whose target sits exactly at the planning horizon still
        // obeys T + R: the pack never starts a task at or past the target.
        const HORIZON: u64 = 1_000_000;
        let jobs = [
            MapJob { tasks: 3, task_len: 7, target: 10, lax: false },
            MapJob { tasks: 5, task_len: 9, target: HORIZON, lax: false },
        ];
        assert!(capacity_condition_holds(&jobs, 3));
        let p = map_continuous(&jobs, 3).unwrap();
        assert!(p[1].completion <= HORIZON + 9);
    }

    #[test]
    fn full_cluster_all_containers_committed() {
        // C = 3 containers, each fully committed to a strict job through
        // slot 30; a later-target job queues behind and still meets T + R.
        let jobs = [
            MapJob { tasks: 3, task_len: 10, target: 30, lax: false },
            MapJob { tasks: 3, task_len: 10, target: 30, lax: false },
            MapJob { tasks: 3, task_len: 10, target: 30, lax: false },
            MapJob { tasks: 3, task_len: 10, target: 60, lax: false },
        ];
        assert!(capacity_condition_holds(&jobs, 3));
        let p = map_continuous(&jobs, 3).unwrap();
        for placement in &p[..3] {
            // bound: the first three jobs fill all containers through 30
            assert_eq!(placement.completion, 30);
        }
        assert!(p[3].segments.iter().all(|s| s.start >= 30));
        assert!(p[3].completion <= 60 + 10);
    }

    #[test]
    fn segments_never_overlap_on_a_container() {
        let jobs = [
            MapJob { tasks: 3, task_len: 7, target: 25, lax: false },
            MapJob { tasks: 5, task_len: 3, target: 30, lax: false },
            MapJob { tasks: 2, task_len: 11, target: 60, lax: false },
        ];
        let p = map_continuous(&jobs, 2).unwrap();
        // Collect (container, interval) and check pairwise disjointness.
        let mut intervals: Vec<(u32, u64, u64)> = Vec::new();
        for (i, placement) in p.iter().enumerate() {
            for s in &placement.segments {
                intervals.push((s.container, s.start, s.start + s.tasks * jobs[i].task_len));
            }
        }
        for a in 0..intervals.len() {
            for b in (a + 1)..intervals.len() {
                let (ca, sa, ea) = intervals[a];
                let (cb, sb, eb) = intervals[b];
                if ca == cb {
                    assert!(ea <= sb || eb <= sa, "overlap: {:?} vs {:?}", intervals[a], intervals[b]);
                }
            }
        }
    }
}

//! LP-based reference solution for the Time-Aware Scheduling problem.
//!
//! The paper (Sec. III-B) notes TAS "can be transformed and efficiently
//! solved using linear programming techniques (e.g., simplex method)" —
//! the approach of the authors' earlier CoRA scheduler — and proposes
//! onion peeling because the LP grows with jobs × time slots. This module
//! implements that LP path over a *deadline-interval* grid (the standard
//! aggregation: between two consecutive deadlines the capacity constraint
//! is a single pooled row), giving an independent oracle for the max-min
//! utility level that the test suite cross-validates against the onion
//! peel.

use crate::onion::OnionJob;
use crate::CoreError;
use rush_lp::{Problem, Relation, Solution};

/// Decides, via LP feasibility, whether every job can attain utility level
/// `level` simultaneously.
///
/// Variables `x[i][k] ≥ 0`: demand of job `i` served in deadline interval
/// `k`. Constraints: interval capacity `Σ_i x[i][k] ≤ C·len_k`, per-job
/// demand `Σ_{k: end_k ≤ d_i} x[i][k] ≥ η_i`.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] if `capacity == 0` or `horizon ≤ 0`.
pub fn level_feasible_lp(
    jobs: &[OnionJob<'_>],
    capacity: u32,
    horizon: f64,
    level: f64,
) -> Result<bool, CoreError> {
    if capacity == 0 {
        return Err(CoreError::InvalidConfig { reason: "capacity must be > 0" });
    }
    if !horizon.is_finite() || horizon <= 0.0 {
        return Err(CoreError::InvalidConfig { reason: "horizon must be > 0" });
    }
    // Deadlines; a Never with positive demand is immediately infeasible.
    let mut deadlines = Vec::with_capacity(jobs.len());
    for j in jobs {
        match j.utility.latest_time(level).deadline_within(horizon) {
            Some(d) => deadlines.push(d.max(0.0)),
            None => {
                if j.demand > 0 {
                    return Ok(false);
                }
                deadlines.push(0.0);
            }
        }
    }
    // Interval grid from the distinct positive deadlines.
    let mut bounds: Vec<f64> = deadlines.iter().copied().filter(|d| *d > 0.0).collect();
    bounds.sort_by(|a, b| a.total_cmp(b));
    bounds.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    if bounds.is_empty() {
        // No one needs anything (all demands of deadline-0 jobs must be 0).
        return Ok(jobs.iter().all(|j| j.demand == 0));
    }
    let n = jobs.len();
    let k = bounds.len();
    let var = |i: usize, kk: usize| i * k + kk;
    let mut p = Problem::maximize(vec![0.0; n * k]);
    // Interval capacities.
    let mut prev = 0.0;
    for (kk, &end) in bounds.iter().enumerate() {
        let mut row = vec![0.0; n * k];
        for i in 0..n {
            row[var(i, kk)] = 1.0;
        }
        p.constrain(row, Relation::Le, capacity as f64 * (end - prev));
        prev = end;
    }
    // Per-job demand before its own deadline; intervals past the deadline
    // are unusable (variable forced to 0 via an Le-0 row).
    for (i, j) in jobs.iter().enumerate() {
        if j.demand == 0 {
            continue;
        }
        let mut demand_row = vec![0.0; n * k];
        for (kk, &end) in bounds.iter().enumerate() {
            if end <= deadlines[i] + 1e-9 {
                demand_row[var(i, kk)] = 1.0;
            } else {
                let mut zero = vec![0.0; n * k];
                zero[var(i, kk)] = 1.0;
                p.constrain(zero, Relation::Le, 0.0);
            }
        }
        p.constrain(demand_row, Relation::Ge, j.demand as f64);
    }
    Ok(!matches!(p.solve(), Solution::Infeasible))
}

/// Computes the max-min utility level by bisection over LP feasibility —
/// the reference value for the onion peel's first layer.
///
/// # Errors
///
/// Propagates [`level_feasible_lp`]'s configuration errors.
pub fn max_min_level_lp(
    jobs: &[OnionJob<'_>],
    capacity: u32,
    tolerance: f64,
    horizon: f64,
) -> Result<f64, CoreError> {
    if !tolerance.is_finite() || tolerance <= 0.0 {
        return Err(CoreError::InvalidConfig { reason: "tolerance must be > 0" });
    }
    let mut lo = jobs.iter().map(|j| j.utility.inf()).fold(f64::INFINITY, f64::min);
    if !lo.is_finite() {
        lo = 0.0;
    }
    let hi0 = jobs.iter().map(|j| j.utility.sup()).fold(lo, f64::max);
    let mut hi = hi0 + tolerance;
    if !level_feasible_lp(jobs, capacity, horizon, lo)? {
        return Ok(lo);
    }
    while hi - lo > tolerance {
        let mid = 0.5 * (lo + hi);
        if level_feasible_lp(jobs, capacity, horizon, mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onion::peel;
    use rush_utility::{TimeUtility, Utility};

    fn sigmoid(budget: f64, weight: f64, beta: f64) -> TimeUtility {
        TimeUtility::sigmoid(budget, weight, beta).unwrap()
    }

    #[test]
    fn single_job_level_matches_capacity_bound() {
        // Demand 800 on 8 containers ⇒ earliest completion 100; the max-min
        // level is U(100).
        let u = sigmoid(100.0, 5.0, 0.1);
        let jobs = [OnionJob { demand: 800, utility: &u }];
        let lvl = max_min_level_lp(&jobs, 8, 1e-4, 1e6).unwrap();
        let expect = u.utility(100.0);
        assert!((lvl - expect).abs() < 0.01, "lvl {lvl} vs U(100) {expect}");
    }

    #[test]
    fn lp_and_onion_agree_on_first_layer() {
        let a = sigmoid(80.0, 5.0, 0.1);
        let b = sigmoid(150.0, 4.0, 0.05);
        let c = sigmoid(300.0, 3.0, 0.02);
        let jobs = [
            OnionJob { demand: 300, utility: &a },
            OnionJob { demand: 500, utility: &b },
            OnionJob { demand: 400, utility: &c },
        ];
        let lp = max_min_level_lp(&jobs, 8, 1e-4, 1e6).unwrap();
        let targets = peel(&jobs, 8, 1e-4, 1e6).unwrap();
        let onion_min = targets.iter().map(|t| t.level).fold(f64::INFINITY, f64::min);
        assert!(
            (lp - onion_min).abs() < 0.02,
            "LP max-min {lp} vs onion min level {onion_min}"
        );
    }

    #[test]
    fn infeasible_level_detected() {
        let u = sigmoid(10.0, 5.0, 1.0);
        let jobs = [OnionJob { demand: 1000, utility: &u }];
        // Level 4.9 needs completion by ~budget 10 → 1000 > 8*10.
        assert!(!level_feasible_lp(&jobs, 8, 1e6, 4.9).unwrap());
        // Level 0 is always feasible (flat region: deadline → horizon).
        assert!(level_feasible_lp(&jobs, 8, 1e6, 0.0).unwrap());
        // A tiny positive level still induces a finite deadline (the
        // sigmoid tail reaches 1e-6 at ~budget + 15/beta), which this
        // demand cannot meet.
        assert!(!level_feasible_lp(&jobs, 8, 1e6, 1e-6).unwrap());
    }

    #[test]
    fn zero_demand_jobs_are_free() {
        let u = sigmoid(10.0, 1.0, 0.5);
        let jobs = [OnionJob { demand: 0, utility: &u }];
        assert!(level_feasible_lp(&jobs, 1, 1e6, 0.5).unwrap());
        // Above the sup with zero demand: Never but nothing needed.
        assert!(level_feasible_lp(&jobs, 1, 1e6, 2.0).unwrap());
    }

    #[test]
    fn validation() {
        let u = sigmoid(10.0, 1.0, 0.5);
        let jobs = [OnionJob { demand: 1, utility: &u }];
        assert!(level_feasible_lp(&jobs, 0, 1e6, 0.5).is_err());
        assert!(level_feasible_lp(&jobs, 1, 0.0, 0.5).is_err());
        assert!(max_min_level_lp(&jobs, 1, 0.0, 1e6).is_err());
    }
}

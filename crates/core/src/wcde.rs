//! Worst-Case Distribution Estimation — Algorithm 2 of the paper.
//!
//! WCDE computes `η = max Ω⁻¹(θ)`: the largest θ-quantile attainable by any
//! distribution within KL divergence `δ` of the reference `φ`. Provisioning
//! `η` container·slots therefore guarantees `P(v ≤ η) ≥ θ` **for every**
//! distribution in the ambiguity ball — the robustness at the heart of RUSH.
//!
//! The quantile is monotone in the bin index, so a bisection over bins
//! suffices; each feasibility probe solves one closed-form REM instance
//! ([`crate::rem`]), giving `O(log bins)` total cost — the property that
//! keeps the scheduler lightweight (paper Fig. 5).

use crate::{rem, CoreError};
use rush_prob::Pmf;

/// Result of a WCDE solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WcdeResult {
    /// The worst-case θ-quantile as a bin index.
    pub eta_bin: usize,
    /// The demand to provision, in container·slots: the upper edge of
    /// `eta_bin` (`(eta_bin + 1) · bin_width`), so the guarantee holds for
    /// any demand realization quantized into that bin.
    pub eta: u64,
}

/// Computes the worst-case θ-quantile of the KL ball of radius `delta`
/// around `phi` (Algorithm 2).
///
/// A bin `L` is *feasible* when some distribution within the ball keeps at
/// most `θ` mass in bins `0..=L` (so its θ-quantile exceeds `L`); the REM
/// oracle decides this in closed form. Feasibility is monotone decreasing
/// in `L`, and the returned `eta_bin` is the largest feasible bin, or the
/// reference quantile bin if even `L = reference quantile` is infeasible
/// (which happens only for `δ = 0`-style degenerate inputs).
///
/// # Errors
///
/// * [`CoreError::InvalidTheta`] unless `θ ∈ (0, 1)`.
/// * [`CoreError::InvalidDelta`] if `δ` is negative or non-finite.
///
/// # Example
///
/// ```
/// use rush_core::wcde::worst_case_quantile;
/// use rush_prob::Pmf;
///
/// # fn main() -> Result<(), rush_core::CoreError> {
/// let phi = Pmf::from_weights(vec![0.1; 10], 1)?;
/// let nominal = worst_case_quantile(&phi, 0.9, 0.0)?;
/// let robust = worst_case_quantile(&phi, 0.9, 0.5)?;
/// assert!(robust.eta >= nominal.eta); // robustness only adds margin
/// # Ok(())
/// # }
/// ```
pub fn worst_case_quantile(phi: &Pmf, theta: f64, delta: f64) -> Result<WcdeResult, CoreError> {
    if !(0.0..1.0).contains(&theta) || theta <= 0.0 {
        return Err(CoreError::InvalidTheta(theta));
    }
    if !delta.is_finite() || delta < 0.0 {
        return Err(CoreError::InvalidDelta(delta));
    }
    let bins = phi.bins();
    let feasible = |l: usize| -> Result<bool, CoreError> { Ok(rem::min_kl(phi, l, theta)? <= delta + 1e-12) };

    // The last bin is never feasible: the head would cover all mass (1 > θ).
    let mut hi = bins - 1;
    if bins == 1 || feasible(hi)? {
        // Degenerate single-bin PMF (head==1 makes this unreachable for
        // bins > 1, but keep the guard total).
        let r = WcdeResult { eta_bin: hi, eta: (hi as u64 + 1) * phi.bin_width() };
        debug_check_wcde(phi, theta, delta, &r);
        return Ok(r);
    }
    let mut lo = 0usize;
    if !feasible(lo)? {
        // Even bin 0 cannot hold ≤ θ mass within the ball: every in-ball
        // distribution has its quantile at bin 0... except the reference
        // itself may place it higher; fall back to the reference quantile
        // so the provision never undershoots the nominal estimate.
        let qb = phi.quantile_bin(theta);
        let r = WcdeResult { eta_bin: qb, eta: (qb as u64 + 1) * phi.bin_width() };
        debug_check_wcde(phi, theta, delta, &r);
        return Ok(r);
    }
    // Invariant: feasible(lo), !feasible(hi).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if feasible(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // The worst case keeps ≤ θ mass at or below `lo`, so its θ-quantile sits
    // in bin lo+1 at the latest; provisioning to the reference quantile is a
    // floor so δ→0 never yields less than the nominal estimate.
    let eta_bin = (lo + 1).max(phi.quantile_bin(theta));
    let eta_bin = eta_bin.min(bins - 1);
    let r = WcdeResult { eta_bin, eta: (eta_bin as u64 + 1) * phi.bin_width() };
    debug_check_wcde(phi, theta, delta, &r);
    Ok(r)
}

/// Contract for Algorithm 2 (checked on every return path): `η` is the
/// upper edge of `eta_bin`, never undershoots the nominal quantile, and the
/// in-ball guarantee holds — no distribution within KL radius `δ` can push
/// its θ-quantile past `eta_bin` (the REM minimum one bin further already
/// exceeds `δ`).
#[cfg(feature = "strict-invariants")]
fn debug_check_wcde(phi: &Pmf, theta: f64, delta: f64, r: &WcdeResult) {
    debug_assert_eq!(
        r.eta,
        (r.eta_bin as u64 + 1) * phi.bin_width(),
        "WCDE contract: eta is not the upper edge of eta_bin"
    );
    debug_assert!(
        r.eta_bin >= phi.quantile_bin(theta),
        "WCDE contract: eta_bin {} undershoots nominal quantile bin {}",
        r.eta_bin,
        phi.quantile_bin(theta)
    );
    if r.eta_bin + 1 < phi.bins() {
        if let Ok(kl_next) = rem::min_kl(phi, r.eta_bin + 1, theta) {
            debug_assert!(
                kl_next > delta,
                "WCDE contract: bin {} beyond eta is still in-ball (KL {kl_next} <= δ {delta})",
                r.eta_bin + 1
            );
        }
    }
}

#[cfg(not(feature = "strict-invariants"))]
#[inline(always)]
fn debug_check_wcde(_phi: &Pmf, _theta: f64, _delta: f64, _r: &WcdeResult) {}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_prob::dist::{Continuous, Gaussian};

    fn uniform(bins: usize) -> Pmf {
        Pmf::from_weights(vec![1.0; bins], 1).unwrap()
    }

    #[test]
    fn zero_delta_matches_reference_quantile() {
        let phi = uniform(100);
        let r = worst_case_quantile(&phi, 0.9, 0.0).unwrap();
        let nominal = phi.quantile_bin(0.9);
        // Within one bin of the nominal quantile.
        assert!(
            r.eta_bin >= nominal && r.eta_bin <= nominal + 1,
            "eta_bin {} vs nominal {nominal}",
            r.eta_bin
        );
    }

    #[test]
    fn eta_grows_with_delta() {
        let g = Gaussian::new(500.0, 50.0).unwrap();
        let phi = g.quantize(1000, 1).unwrap().with_support_floor(1e-12).unwrap();
        let mut prev = 0;
        for delta in [0.0, 0.1, 0.3, 0.7, 1.4] {
            let r = worst_case_quantile(&phi, 0.9, delta).unwrap();
            assert!(r.eta >= prev, "eta must grow with delta (delta={delta})");
            prev = r.eta;
        }
    }

    #[test]
    fn eta_grows_with_theta() {
        let g = Gaussian::new(500.0, 50.0).unwrap();
        let phi = g.quantize(1000, 1).unwrap().with_support_floor(1e-12).unwrap();
        let mut prev = 0;
        for theta in [0.5, 0.7, 0.9, 0.99] {
            let r = worst_case_quantile(&phi, theta, 0.5).unwrap();
            assert!(r.eta >= prev, "eta must grow with theta (theta={theta})");
            prev = r.eta;
        }
    }

    #[test]
    fn worst_case_quantile_guarantee_holds() {
        // For the returned eta, the REM minimum at eta_bin+1 must exceed
        // delta: no in-ball distribution can push its quantile past eta.
        let g = Gaussian::new(200.0, 30.0).unwrap();
        let phi = g.quantize(400, 1).unwrap().with_support_floor(1e-12).unwrap();
        let (theta, delta) = (0.9, 0.4);
        let r = worst_case_quantile(&phi, theta, delta).unwrap();
        if r.eta_bin + 1 < phi.bins() {
            let kl_next = crate::rem::min_kl(&phi, r.eta_bin + 1, theta).unwrap();
            assert!(
                kl_next > delta,
                "bin {} beyond eta should be infeasible (kl {kl_next} <= {delta})",
                r.eta_bin + 1
            );
        }
    }

    #[test]
    fn impulse_reference_is_robustified() {
        // Mean-estimator style impulse: the KL ball around an impulse with
        // a *smoothing* support floor lets mass shift to the tail. (A
        // too-small floor like 1e-9 makes tail mass cost > δ in KL and the
        // robust quantile collapses to the nominal one — by design.)
        let phi = Pmf::impulse(100, 50, 1).unwrap().with_support_floor(1e-4).unwrap();
        let r0 = worst_case_quantile(&phi, 0.9, 0.0).unwrap();
        let r = worst_case_quantile(&phi, 0.9, 0.7).unwrap();
        assert!(r0.eta_bin >= 50);
        assert!(r.eta > r0.eta, "robust eta {} should exceed nominal {}", r.eta, r0.eta);
    }

    #[test]
    fn eta_scales_with_bin_width() {
        let phi = Pmf::from_weights(vec![1.0; 50], 10).unwrap();
        let r = worst_case_quantile(&phi, 0.9, 0.2).unwrap();
        assert_eq!(r.eta, (r.eta_bin as u64 + 1) * 10);
    }

    #[test]
    fn parameter_validation() {
        let phi = uniform(10);
        assert!(matches!(worst_case_quantile(&phi, 0.0, 0.1), Err(CoreError::InvalidTheta(_))));
        assert!(matches!(worst_case_quantile(&phi, 1.0, 0.1), Err(CoreError::InvalidTheta(_))));
        assert!(matches!(worst_case_quantile(&phi, 0.9, -0.1), Err(CoreError::InvalidDelta(_))));
        assert!(matches!(
            worst_case_quantile(&phi, 0.9, f64::NAN),
            Err(CoreError::InvalidDelta(_))
        ));
    }

    #[test]
    fn single_bin_pmf_is_total() {
        let phi = Pmf::from_weights(vec![1.0], 5).unwrap();
        let r = worst_case_quantile(&phi, 0.9, 0.3).unwrap();
        assert_eq!(r.eta_bin, 0);
        assert_eq!(r.eta, 5);
    }

    #[test]
    fn large_delta_pushes_to_tail() {
        let phi = uniform(100);
        // δ large enough to push almost all mass into the tail.
        let r = worst_case_quantile(&phi, 0.9, 5.0).unwrap();
        assert!(r.eta_bin > 95, "eta_bin={}", r.eta_bin);
    }
}

//! A typed model of the cluster's container supply.
//!
//! The paper treats capacity `C` as a scalar constant; real shared clouds
//! are tiered: some containers are *reserved* (never reclaimed), some are
//! *on-demand* (reclaimed rarely, e.g. by correlated node failures), and
//! some are *spot* (cheap, revoked whenever the market moves). RUSH's
//! δ-ball already hedges demand-side uncertainty; this module supplies the
//! supply-side counterpart: a [`ClusterModel`] describing container
//! classes with prices and reliability tiers, plus a deterministic stream
//! of class-tagged capacity events.
//!
//! The simulator itself is class-free (`rush_sim::cluster::CapacityEvent`
//! carries only a count); [`ClusterModel::sim_events`] lowers the typed
//! stream onto it. The typed view is what the planner and the serve layer
//! consume: [`ClusterModel::predicted_reclaim_slots`] turns a capacity
//! deficit into a tier-informed estimate of when the lost containers come
//! back, which is what revocation-aware admission defers against.

use crate::error::CoreError;
use rush_sim::cluster::{
    CapacityChange as SimCapacityChange, CapacityEvent as SimCapacityEvent,
};
use rush_sim::Slot;

/// How likely a container class is to be reclaimed by the provider, and
/// how quickly reclaimed capacity tends to return.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ReliabilityTier {
    /// Capacity the operator owns outright; leaves only on node failure.
    Reserved,
    /// Pay-as-you-go capacity; reclaimed rarely and restored slowly.
    OnDemand,
    /// Preemptible market capacity; revoked often but restored quickly
    /// (the market churns on the scale of minutes, not hours).
    Spot,
}

impl ReliabilityTier {
    /// Predicted slots until capacity revoked from this tier is restored,
    /// or `None` when no prediction is defensible (reserved capacity only
    /// leaves on failures, whose repair time this model does not know).
    pub fn predicted_reclaim_slots(self) -> Option<Slot> {
        match self {
            ReliabilityTier::Reserved => None,
            ReliabilityTier::OnDemand => Some(240),
            ReliabilityTier::Spot => Some(60),
        }
    }

    /// Tiers ordered least-reliable first — the order in which a capacity
    /// deficit is attributed to classes (spot capacity vanishes first).
    pub fn least_reliable_first() -> [ReliabilityTier; 3] {
        [ReliabilityTier::Spot, ReliabilityTier::OnDemand, ReliabilityTier::Reserved]
    }

    /// Stable wire form used by snapshots and diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            ReliabilityTier::Reserved => "reserved",
            ReliabilityTier::OnDemand => "on-demand",
            ReliabilityTier::Spot => "spot",
        }
    }

    /// Parses the wire form produced by [`ReliabilityTier::as_str`].
    pub fn from_wire(s: &str) -> Option<ReliabilityTier> {
        match s {
            "reserved" => Some(ReliabilityTier::Reserved),
            "on-demand" => Some(ReliabilityTier::OnDemand),
            "spot" => Some(ReliabilityTier::Spot),
            _ => None,
        }
    }
}

/// One class of interchangeable containers.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ContainerClass {
    /// Class name (unique within a model), e.g. `"spot-m4"`.
    pub name: String,
    /// Containers of this class provisioned at slot 0.
    pub count: u32,
    /// Price per container·slot, in arbitrary consistent units.
    pub price: f64,
    /// Reliability tier.
    pub tier: ReliabilityTier,
}

/// A class-tagged change to the container supply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CapacityChange {
    /// The provider reclaims `n` containers of class `class`.
    Revoke {
        /// Index into [`ClusterModel::classes`].
        class: usize,
        /// Containers reclaimed; must be ≥ 1.
        n: u32,
    },
    /// The provider restores `n` previously revoked containers of `class`.
    Restock {
        /// Index into [`ClusterModel::classes`].
        class: usize,
        /// Containers restored; must be ≥ 1.
        n: u32,
    },
}

/// A [`CapacityChange`] scheduled at an absolute slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CapacityEvent {
    /// Slot at which the change takes effect.
    pub at: Slot,
    /// The change.
    pub change: CapacityChange,
}

/// A tiered container supply with a deterministic capacity-event stream.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClusterModel {
    /// Container classes; at least one, with unique names.
    pub classes: Vec<ContainerClass>,
    /// Scheduled capacity changes, sorted by slot.
    pub events: Vec<CapacityEvent>,
}

impl ClusterModel {
    /// The scalar-capacity special case: one reserved class, no events.
    /// Every pre-existing call site that passed a plain `capacity: u32`
    /// lowers onto this.
    pub fn fixed(capacity: u32) -> Self {
        ClusterModel {
            classes: vec![ContainerClass {
                name: "reserved".into(),
                count: capacity,
                price: 1.0,
                tier: ReliabilityTier::Reserved,
            }],
            events: Vec::new(),
        }
    }

    /// A three-tier supply with conventional relative prices (on-demand
    /// at a premium over reserved, spot at a deep discount). Classes with
    /// zero count are omitted.
    pub fn tiered(reserved: u32, on_demand: u32, spot: u32) -> Self {
        let mut classes = Vec::new();
        if reserved > 0 {
            classes.push(ContainerClass {
                name: "reserved".into(),
                count: reserved,
                price: 1.0,
                tier: ReliabilityTier::Reserved,
            });
        }
        if on_demand > 0 {
            classes.push(ContainerClass {
                name: "on-demand".into(),
                count: on_demand,
                price: 1.25,
                tier: ReliabilityTier::OnDemand,
            });
        }
        if spot > 0 {
            classes.push(ContainerClass {
                name: "spot".into(),
                count: spot,
                price: 0.4,
                tier: ReliabilityTier::Spot,
            });
        }
        ClusterModel { classes, events: Vec::new() }
    }

    /// Appends a periodic spot-churn schedule: every `period` slots
    /// starting at `start`, `n` containers of `class` are revoked and
    /// restored `outage` slots later, for `cycles` cycles. Models the
    /// recurring price-spike reclamations of a spot market.
    pub fn with_spot_churn(
        mut self,
        class: usize,
        start: Slot,
        period: Slot,
        outage: Slot,
        n: u32,
        cycles: u32,
    ) -> Self {
        for k in 0..cycles as u64 {
            // bound: workload horizons are far below u64::MAX
            let at = start + k * period;
            self.events.push(CapacityEvent { at, change: CapacityChange::Revoke { class, n } });
            self.events
                .push(CapacityEvent { at: at + outage, change: CapacityChange::Restock { class, n } });
        }
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Appends a correlated node-failure burst: at `at`, every class loses
    /// `ceil(count · frac)` containers at once (capped so at least one
    /// container survives overall), all restored `repair` slots later.
    /// Models a rack or AZ outage that cuts across reliability tiers.
    pub fn with_failure_burst(mut self, at: Slot, frac: f64, repair: Slot) -> Self {
        let total = self.total_capacity();
        let mut survivors = total;
        for (class, c) in self.classes.iter().enumerate() {
            let mut n = (f64::from(c.count) * frac).ceil() as u32;
            n = n.min(c.count).min(survivors.saturating_sub(1));
            if n == 0 {
                continue;
            }
            survivors -= n;
            self.events.push(CapacityEvent { at, change: CapacityChange::Revoke { class, n } });
            self.events
                .push(CapacityEvent { at: at + repair, change: CapacityChange::Restock { class, n } });
        }
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Total provisioned capacity at slot 0 (before any events).
    pub fn total_capacity(&self) -> u32 {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Checks internal consistency. Required before handing the model to
    /// the sim or serve layers; [`ClusterModel::sim_events`] assumes it.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.classes.is_empty() {
            return Err(CoreError::InvalidConfig { reason: "cluster model needs at least one container class" });
        }
        for c in &self.classes {
            if c.name.is_empty() {
                return Err(CoreError::InvalidConfig { reason: "container class name must be non-empty" });
            }
            if !(c.price.is_finite() && c.price >= 0.0) {
                return Err(CoreError::InvalidConfig { reason: "container class price must be finite and >= 0" });
            }
        }
        for (i, a) in self.classes.iter().enumerate() {
            if self.classes.iter().skip(i + 1).any(|b| b.name == a.name) {
                return Err(CoreError::InvalidConfig { reason: "container class names must be unique" });
            }
        }
        if self.total_capacity() == 0 {
            return Err(CoreError::InvalidConfig { reason: "cluster model must provision at least one container" });
        }
        // Replay the event stream with per-class bookkeeping.
        let mut revoked: Vec<u32> = vec![0; self.classes.len()];
        let mut in_service = self.total_capacity();
        let mut last_at: Slot = 0;
        for e in &self.events {
            if e.at < last_at {
                return Err(CoreError::InvalidConfig { reason: "capacity events must be sorted by slot" });
            }
            last_at = e.at;
            match e.change {
                CapacityChange::Revoke { class, n } => {
                    if n == 0 {
                        return Err(CoreError::InvalidConfig { reason: "capacity event count must be >= 1" });
                    }
                    let Some(c) = self.classes.get(class) else {
                        return Err(CoreError::InvalidConfig { reason: "capacity event names an unknown container class" });
                    };
                    let avail = c.count - revoked[class];
                    if n > avail {
                        return Err(CoreError::InvalidConfig { reason: "revocation exceeds the class's in-service count" });
                    }
                    if n >= in_service {
                        return Err(CoreError::InvalidConfig { reason: "revocation would leave the cluster with no containers" });
                    }
                    revoked[class] += n;
                    in_service -= n;
                }
                CapacityChange::Restock { class, n } => {
                    if n == 0 {
                        return Err(CoreError::InvalidConfig { reason: "capacity event count must be >= 1" });
                    }
                    if class >= self.classes.len() {
                        return Err(CoreError::InvalidConfig { reason: "capacity event names an unknown container class" });
                    }
                    if n > revoked[class] {
                        return Err(CoreError::InvalidConfig { reason: "restock exceeds the class's revoked count" });
                    }
                    revoked[class] -= n;
                    in_service += n;
                }
            }
        }
        Ok(())
    }

    /// Effective capacity after applying every event with `at <= slot`.
    /// The model must validate.
    pub fn capacity_at(&self, slot: Slot) -> u32 {
        let mut cap = self.total_capacity();
        for e in self.events.iter().take_while(|e| e.at <= slot) {
            match e.change {
                CapacityChange::Revoke { n, .. } => cap -= n,
                CapacityChange::Restock { n, .. } => cap += n,
            }
        }
        cap
    }

    /// Lowers the class-tagged stream onto the simulator's class-free
    /// events. Event order (and hence slot order) is preserved; the
    /// simulator's own validation accepts any stream this model validates.
    pub fn sim_events(&self) -> Vec<SimCapacityEvent> {
        self.events
            .iter()
            .map(|e| SimCapacityEvent {
                at: e.at,
                change: match e.change {
                    CapacityChange::Revoke { n, .. } => SimCapacityChange::Revoke { n },
                    CapacityChange::Restock { n, .. } => SimCapacityChange::Restock { n },
                },
            })
            .collect()
    }

    /// Predicts how many slots until a capacity deficit heals, given the
    /// currently observed effective capacity.
    ///
    /// The deficit `total − current` is attributed to classes
    /// least-reliable-first (spot capacity is assumed to vanish before
    /// on-demand, on-demand before reserved); the prediction is the
    /// largest reclaim horizon among the tiers carrying deficit. Returns
    /// `None` when there is no deficit, or when the deficit reaches into
    /// reserved capacity (a failure whose repair time is unknown) —
    /// callers must not defer against an unpredictable reclaim.
    pub fn predicted_reclaim_slots(&self, current: u32) -> Option<Slot> {
        let total = self.total_capacity();
        let mut deficit = total.checked_sub(current)?;
        if deficit == 0 {
            return None;
        }
        let mut horizon: Option<Slot> = None;
        for tier in ReliabilityTier::least_reliable_first() {
            if deficit == 0 {
                break;
            }
            let tier_count: u32 =
                self.classes.iter().filter(|c| c.tier == tier).map(|c| c.count).sum();
            let absorbed = deficit.min(tier_count);
            if absorbed == 0 {
                continue;
            }
            deficit -= absorbed;
            match tier.predicted_reclaim_slots() {
                Some(h) => horizon = Some(horizon.map_or(h, |cur| cur.max(h))),
                None => return None,
            }
        }
        if deficit > 0 {
            // Deficit exceeds the model's provisioned total — the observed
            // capacity disagrees with the model; refuse to predict.
            return None;
        }
        horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_model_is_one_reserved_class() {
        let m = ClusterModel::fixed(16);
        m.validate().unwrap();
        assert_eq!(m.total_capacity(), 16);
        assert_eq!(m.classes.len(), 1);
        assert_eq!(m.classes[0].tier, ReliabilityTier::Reserved);
        assert!(m.sim_events().is_empty());
        assert_eq!(m.capacity_at(1_000_000), 16);
        assert_eq!(m.predicted_reclaim_slots(16), None);
    }

    #[test]
    fn tiered_model_and_spot_churn() {
        let m = ClusterModel::tiered(8, 4, 4).with_spot_churn(2, 10, 100, 30, 3, 2);
        m.validate().unwrap();
        assert_eq!(m.total_capacity(), 16);
        assert_eq!(m.events.len(), 4);
        assert_eq!(m.capacity_at(9), 16);
        assert_eq!(m.capacity_at(10), 13);
        assert_eq!(m.capacity_at(40), 16);
        assert_eq!(m.capacity_at(110), 13);
        let sim = m.sim_events();
        assert_eq!(sim.len(), 4);
        assert_eq!(sim[0].at, 10);
        assert!(matches!(sim[0].change, SimCapacityChange::Revoke { n: 3 }));
    }

    #[test]
    fn failure_burst_cuts_across_classes() {
        let m = ClusterModel::tiered(8, 4, 4).with_failure_burst(50, 0.25, 20);
        m.validate().unwrap();
        // ceil(8·0.25)=2 reserved, ceil(4·0.25)=1 each of the others.
        assert_eq!(m.capacity_at(50), 12);
        assert_eq!(m.capacity_at(70), 16);
        // Deficit attribution is least-reliable-first: a deficit of 4 is
        // chalked up to spot even though the burst actually hit reserved —
        // the heuristic only defers when *some* optimistic attribution
        // fits, and deficits past spot + on-demand defeat it (see
        // `reclaim_prediction_attributes_deficit_least_reliable_first`).
        assert_eq!(m.predicted_reclaim_slots(12), Some(60));
    }

    #[test]
    fn validation_rejects_malformed_models() {
        assert!(ClusterModel::default().validate().is_err());
        assert!(ClusterModel::fixed(0).validate().is_err());

        let mut m = ClusterModel::tiered(4, 0, 4);
        m.classes[1].name = "reserved".into();
        assert!(m.validate().is_err());

        let mut m = ClusterModel::tiered(4, 0, 4);
        m.classes[0].price = f64::NAN;
        assert!(m.validate().is_err());

        // Unsorted events.
        let m = ClusterModel::tiered(4, 0, 4).with_spot_churn(1, 20, 100, 5, 1, 1);
        let mut m2 = m.clone();
        m2.events.swap(0, 1);
        assert!(m2.validate().is_err());

        // Revoking more than the class has in service.
        let mut m = ClusterModel::tiered(4, 0, 4);
        m.events.push(CapacityEvent { at: 0, change: CapacityChange::Revoke { class: 1, n: 5 } });
        assert!(m.validate().is_err());

        // Revoking everything.
        let mut m = ClusterModel::tiered(0, 0, 4);
        m.events.push(CapacityEvent { at: 0, change: CapacityChange::Revoke { class: 0, n: 4 } });
        assert!(m.validate().is_err());

        // Restock without a matching revocation.
        let mut m = ClusterModel::tiered(4, 0, 4);
        m.events.push(CapacityEvent { at: 0, change: CapacityChange::Restock { class: 1, n: 1 } });
        assert!(m.validate().is_err());

        // Unknown class index.
        let mut m = ClusterModel::tiered(4, 0, 4);
        m.events.push(CapacityEvent { at: 0, change: CapacityChange::Revoke { class: 7, n: 1 } });
        assert!(m.validate().is_err());

        // Zero-count event.
        let mut m = ClusterModel::tiered(4, 0, 4);
        m.events.push(CapacityEvent { at: 0, change: CapacityChange::Revoke { class: 1, n: 0 } });
        assert!(m.validate().is_err());
    }

    #[test]
    fn reclaim_prediction_attributes_deficit_least_reliable_first() {
        let m = ClusterModel::tiered(8, 4, 4);
        // Deficit 3 ≤ spot count: spot horizon.
        assert_eq!(m.predicted_reclaim_slots(13), Some(60));
        // Deficit 6 spills into on-demand: the slower horizon dominates.
        assert_eq!(m.predicted_reclaim_slots(10), Some(240));
        // Deficit 9 reaches reserved: no prediction.
        assert_eq!(m.predicted_reclaim_slots(7), None);
        // No deficit, or capacity above the model's total: no prediction.
        assert_eq!(m.predicted_reclaim_slots(16), None);
        assert_eq!(m.predicted_reclaim_slots(20), None);
        // Observed deficit larger than the model provisions: refuse.
        let spot_only = ClusterModel::tiered(1, 0, 3);
        assert_eq!(spot_only.predicted_reclaim_slots(0), None);
    }

    #[test]
    fn tier_wire_forms_round_trip() {
        for tier in ReliabilityTier::least_reliable_first() {
            assert_eq!(ReliabilityTier::from_wire(tier.as_str()), Some(tier));
        }
        assert_eq!(ReliabilityTier::from_wire("preemptible"), None);
    }

    #[test]
    fn sim_accepts_lowered_events() {
        let m = ClusterModel::tiered(8, 4, 4)
            .with_spot_churn(2, 10, 100, 30, 3, 2)
            .with_failure_burst(500, 0.2, 40);
        m.validate().unwrap();
        rush_sim::cluster::validate_capacity_events(m.total_capacity(), &m.sim_events()).unwrap();
    }
}

//! Error types for the RUSH core algorithms.

use rush_estimator::EstimatorError;
use rush_prob::ProbError;
use std::error::Error;
use std::fmt;

/// Errors raised by the RUSH scheduling pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// `θ` must lie strictly inside `(0, 1)`.
    InvalidTheta(f64),
    /// `δ` (the KL-ball radius) must be finite and non-negative.
    InvalidDelta(f64),
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Description of the problem.
        reason: &'static str,
    },
    /// An underlying probability operation failed.
    Prob(ProbError),
    /// A demand estimation failed.
    Estimator(EstimatorError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidTheta(t) => write!(f, "theta must be in (0, 1), got {t}"),
            CoreError::InvalidDelta(d) => write!(f, "delta must be finite and >= 0, got {d}"),
            CoreError::InvalidConfig { reason } => write!(f, "invalid RUSH config: {reason}"),
            CoreError::Prob(e) => write!(f, "probability error: {e}"),
            CoreError::Estimator(e) => write!(f, "estimator error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Prob(e) => Some(e),
            CoreError::Estimator(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProbError> for CoreError {
    fn from(e: ProbError) -> Self {
        CoreError::Prob(e)
    }
}

impl From<EstimatorError> for CoreError {
    fn from(e: EstimatorError) -> Self {
        CoreError::Estimator(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        assert!(CoreError::InvalidTheta(1.5).to_string().contains("theta"));
        assert!(CoreError::InvalidDelta(-1.0).to_string().contains("delta"));
        assert!(CoreError::InvalidConfig { reason: "x" }.to_string().contains("x"));
        let e: CoreError = ProbError::ZeroMass.into();
        assert!(Error::source(&e).is_some());
        let e: CoreError = EstimatorError::NoSamples.into();
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&CoreError::InvalidTheta(0.0)).is_none());
    }
}

//! [`ReferenceScheduler`] — the **frozen pre-kernel** RUSH
//! container-assignment unit, kept verbatim as the differential twin of
//! the production adapter (`rush_planner::RushScheduler`).
//!
//! The live scheduler now drives the shared planner kernel
//! (`rush_planner::PlannerCore`); this module preserves the original
//! self-contained implementation so the refactor stays provable:
//! `crates/planner/tests/adapter_differential.rs` runs both schedulers
//! over the same randomized workloads and asserts bit-identical
//! assignment behavior and `SimResult`s. Do not evolve this file with new
//! scheduling features — change the kernel and its adapter instead.
//!
//! On every scheduling event the CA unit re-runs the full pipeline
//! ([`compute_plan`](crate::plan::compute_plan())), obtains each job's
//! desired next-slot allocation, and hands the free container to the job
//! with the **largest gap between planned and current occupancy** — the
//! paper's dispatch rule (Sec. IV, "Container Assignment"). The plan is
//! cached for the current slot and invalidated by arrivals, completions or
//! the clock moving, so a burst of free containers in one slot costs one
//! pipeline pass.
//!
//! Cold-start estimation: a job with no completed tasks borrows the runtime
//! samples of *same-template* jobs seen earlier (keyed by job label), then
//! any cluster-local samples, and only falls back to the configured prior
//! when no runtime evidence exists at all — mirroring how production
//! clusters benchmark recurring applications.

use crate::plan::{compute_plan_cached, Plan, PlanCache, PlanInput};
use crate::RushConfig;
use rush_sim::view::{ClusterView, TaskSample};
use rush_sim::{JobId, Scheduler, Slot};
use std::borrow::Cow;
use std::collections::BTreeMap;

/// Maximum borrowed samples per label pool (newest kept).
const LABEL_POOL_CAP: usize = 256;

/// Cached per-slot desired allocations: `(job, desired_now, target)`.
type DesiredCache = Vec<(JobId, u32, f64)>;

/// The frozen pre-kernel RUSH scheduler (differential twin of
/// `rush_planner::RushScheduler`).
///
/// # Example
///
/// ```
/// use rush_core::{ReferenceScheduler, RushConfig};
/// use rush_sim::engine::{SimConfig, Simulation};
/// use rush_sim::job::{JobSpec, Phase, TaskSpec};
/// use rush_utility::TimeUtility;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let job = JobSpec::builder("quick")
///     .tasks((0..4).map(|_| TaskSpec::new(10.0, Phase::Map)))
///     .utility(TimeUtility::sigmoid(100.0, 5.0, 0.1)?)
///     .build()?;
/// let mut rush = ReferenceScheduler::new(RushConfig::default());
/// let result = Simulation::new(SimConfig::homogeneous(1, 4), vec![job])?.run(&mut rush)?;
/// assert_eq!(result.outcomes.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReferenceScheduler {
    config: RushConfig,
    name: &'static str,
    /// Plan cached for the slot it was computed in.
    cache: Option<(Slot, DesiredCache)>,
    dirty: bool,
    /// Cross-job sample pools keyed by job label (template name).
    label_pool: BTreeMap<String, Vec<u64>>,
    /// All observed samples regardless of label — last-resort cold-start
    /// pool before falling back to the configured prior.
    global_pool: Vec<u64>,
    /// Label of each active job, captured at arrival.
    labels: BTreeMap<JobId, String>,
    /// The most recent full plan, for introspection (the paper's HTTP
    /// monitoring interface exposes exactly this).
    last_plan: Plan,
    /// Memo table for the per-job estimate + WCDE stage: a scheduling
    /// event touches one job, so the other jobs' robust demands are
    /// served from here (see [`PlanCache`]).
    plan_cache: PlanCache,
}

impl ReferenceScheduler {
    /// Creates a RUSH scheduler with the given configuration.
    pub fn new(config: RushConfig) -> Self {
        ReferenceScheduler {
            config,
            name: "RUSH",
            cache: None,
            dirty: true,
            label_pool: BTreeMap::new(),
            global_pool: Vec::new(),
            labels: BTreeMap::new(),
            last_plan: Plan::default(),
            plan_cache: PlanCache::new(),
        }
    }

    /// Creates a scheduler configured like the authors' earlier **CoRA**
    /// system (INFOCOM'15) — the paper's non-robust predecessor: mean-based
    /// demand estimation and no KL ambiguity margin (`δ = 0`). Useful as the
    /// "RUSH minus robustness" comparison point.
    pub fn cora() -> Self {
        let config = RushConfig::default()
            .with_delta(0.0)
            .with_estimator(crate::config::EstimatorKind::Mean);
        let mut s = Self::new(config);
        s.name = "CoRA";
        s
    }

    /// The configuration in use.
    pub fn config(&self) -> &RushConfig {
        &self.config
    }

    /// The most recently computed plan (projected completion times, robust
    /// demands, impossible-job flags) — the data behind the paper's
    /// enhanced HTTP interface (Fig. 2).
    pub fn last_plan(&self) -> &Plan {
        &self.last_plan
    }

    /// Forgets a completed or cancelled job: drops its label mapping and
    /// invalidates the per-slot plan cache so the next scheduling event
    /// re-plans without it. Returns whether the job was known.
    ///
    /// The simulator calls [`Scheduler::on_task_complete`] with the job
    /// already gone from the view when it finishes naturally, which prunes
    /// the mapping — but a job *cancelled* mid-flight (or completed while
    /// no further task-completion event fires) would otherwise leak its
    /// entry forever and keep polluting `last_plan` until the next event.
    /// Long-running daemons must call this on every cancel.
    ///
    /// Pooled runtime samples the job contributed are deliberately kept:
    /// they are evidence about the *template*, not the job, and future
    /// same-label jobs still want them.
    pub fn remove_job(&mut self, job: rush_sim::JobId) -> bool {
        self.dirty = true;
        self.labels.remove(&job).is_some()
    }

    /// Ensures the per-slot plan cache is fresh; returns desired
    /// allocations as `(job, desired_now, target)` tuples.
    fn refresh(&mut self, view: &ClusterView<'_>) {
        let stale = self.dirty || !matches!(&self.cache, Some((slot, _)) if *slot == view.now);
        if !stale {
            return;
        }
        // Destructure for disjoint borrows: the inputs borrow the sample
        // pools while the pipeline takes the plan cache mutably.
        let Self { config, label_pool, global_pool, plan_cache, .. } = &mut *self;
        let inputs: Vec<PlanInput<'_>> = view
            .jobs
            .iter()
            .map(|j| PlanInput {
                samples: Cow::Borrowed(cold_start_samples(
                    label_pool,
                    global_pool,
                    &j.label,
                    &j.samples,
                )),
                remaining_tasks: j.pending_tasks,
                running: j.running_tasks as u32,
                failed_attempts: j.failed_attempts,
                age: j.age(view.now) as f64,
                utility: j.utility,
            })
            .collect();
        // On estimation failure (pathological inputs) fall back to an empty
        // plan; the assign() fallbacks keep the cluster from stalling.
        let plan =
            compute_plan_cached(config, view.capacity, &inputs, plan_cache).unwrap_or_default();
        let desired = view
            .jobs
            .iter()
            .zip(plan.entries.iter())
            .map(|(j, e)| (j.id, e.desired_now, e.target))
            .collect();
        self.last_plan = plan;
        self.cache = Some((view.now, desired));
        self.dirty = false;
    }
}

/// Picks the sample set backing a job's estimate: its own completed-task
/// runtimes, else the same-label pool, else the cluster-wide pool. A label
/// pool that exists but holds no samples is *no evidence* — it must not
/// shadow the global pool (a label entry can outlive its drained samples).
/// The returned slice may be empty, in which case the estimator falls back
/// to the configured prior.
fn cold_start_samples<'v>(
    label_pool: &'v BTreeMap<String, Vec<u64>>,
    global_pool: &'v [u64],
    label: &str,
    own: &'v [u64],
) -> &'v [u64] {
    if !own.is_empty() {
        own
    } else if let Some(pool) = label_pool.get(label).filter(|p| !p.is_empty()) {
        pool
    } else {
        // Same-template history is best, but any cluster-local runtime
        // evidence beats an arbitrary prior.
        global_pool
    }
}

impl Scheduler for ReferenceScheduler {
    fn name(&self) -> &str {
        self.name
    }

    fn on_job_arrival(&mut self, _view: &ClusterView<'_>, job: JobId) {
        self.dirty = true;
        // Label is resolved lazily in on_task_complete via the view; record
        // it here while the job is certainly visible.
        if let Some(j) = _view.job(job) {
            self.labels.insert(job, j.label.clone());
        }
    }

    fn on_task_failed(&mut self, _view: &ClusterView<'_>, _sample: TaskSample) {
        // Failed-attempt durations are not runtime samples, but the plan
        // must be recomputed with the updated failure count.
        self.dirty = true;
    }

    fn on_task_complete(&mut self, _view: &ClusterView<'_>, sample: TaskSample) {
        self.dirty = true;
        if let Some(label) = self.labels.get(&sample.job) {
            let pool = self.label_pool.entry(label.clone()).or_default();
            pool.push(sample.runtime);
            if pool.len() > LABEL_POOL_CAP {
                let excess = pool.len() - LABEL_POOL_CAP;
                pool.drain(..excess);
            }
        }
        self.global_pool.push(sample.runtime);
        if self.global_pool.len() > LABEL_POOL_CAP {
            let excess = self.global_pool.len() - LABEL_POOL_CAP;
            self.global_pool.drain(..excess);
        }
        if _view.job(sample.job).is_none() {
            // Job finished: forget its label mapping.
            self.labels.remove(&sample.job);
        }
    }

    fn assign(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
        self.refresh(view);
        // `refresh` always populates the cache; `?` keeps that assumption
        // from becoming a panic if the invariant ever breaks.
        let desired = &self.cache.as_ref()?.1;

        // The paper's rule: the container goes to the job with the largest
        // positive gap between planned and current occupancy. When no plan
        // entry wants more containers, the container stays idle until the
        // next scheduling event — this is how RUSH holds capacity back
        // from completion-time-insensitive work (the mapping only plans
        // their tasks into genuinely free queue time). A stall guard keeps
        // the clock moving when nothing at all is running.
        // Containers that would stay free after this assignment; an
        // insensitive task may only claim one while the configured reserve
        // remains for time-aware reaction headroom.
        let free_after = view.free_containers.saturating_sub(1) as f64;
        let reserve_ok = free_after >= self.config.insensitive_reserve * view.capacity as f64;
        let mut best: Option<(JobId, i64, f64)> = None;
        for j in view.jobs.iter().filter(|j| j.runnable_tasks > 0) {
            if !j.sensitivity.is_time_aware() && !reserve_ok {
                continue;
            }
            let (want, target) = desired
                .iter()
                .find(|(id, _, _)| *id == j.id)
                .map_or((0, f64::MAX), |&(_, w, t)| (w, t));
            let gap = want as i64 - j.running_tasks as i64;
            if gap <= 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((_, bgap, btarget)) => gap > bgap || (gap == bgap && target < btarget),
            };
            if better {
                best = Some((j.id, gap, target));
            }
        }
        if let Some((id, _, _)) = best {
            return Some(id);
        }

        // No plan entry wants more containers. Estimation error routinely
        // makes planned parallelism insufficient, so stay work-conserving
        // for *time-aware* jobs (running them earlier never lowers their
        // utility and protects against under-estimated demand). The free
        // container is withheld from completion-time-insensitive jobs —
        // they only run through plan slack above — which is exactly how
        // RUSH "delays the execution of the completion-time insensitive
        // jobs" (paper Sec. V-B).
        let earliest_target = |pred: &dyn Fn(&rush_sim::view::JobView) -> bool| {
            view.jobs
                .iter()
                .filter(|j| j.runnable_tasks > 0 && pred(j))
                .min_by(|a, b| {
                    let ta =
                        desired.iter().find(|(id, _, _)| *id == a.id).map_or(f64::MAX, |x| x.2);
                    let tb =
                        desired.iter().find(|(id, _, _)| *id == b.id).map_or(f64::MAX, |x| x.2);
                    ta.total_cmp(&tb).then(a.id.cmp(&b.id))
                })
                .map(|j| j.id)
        };
        if let Some(id) = earliest_target(&|j| j.sensitivity.is_time_aware()) {
            return Some(id);
        }
        // Stall guard: with nothing running at all, idling would freeze the
        // clock — run whatever is runnable.
        if view.jobs.iter().all(|j| j.running_tasks == 0) {
            return earliest_target(&|_| true);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_sim::engine::{SimConfig, Simulation};
    use rush_sim::job::{JobSpec, Phase, TaskSpec};
    use rush_sim::perturb::Interference;
    use rush_utility::{Sensitivity, TimeUtility};

    fn job(
        label: &str,
        arrival: Slot,
        tasks: usize,
        runtime: f64,
        utility: TimeUtility,
        budget: Slot,
    ) -> JobSpec {
        JobSpec::builder(label)
            .arrival(arrival)
            .tasks((0..tasks).map(|_| TaskSpec::new(runtime, Phase::Map)))
            .utility(utility)
            .budget(budget)
            .build()
            .unwrap()
    }

    #[test]
    fn empty_label_pool_falls_back_to_global_pool() {
        // A label key can exist with no samples left (e.g. after future
        // pool eviction): it must not shadow the global pool.
        let mut label_pool: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        label_pool.insert("tpl".into(), Vec::new());
        label_pool.insert("warm".into(), vec![7, 8]);
        let global = vec![40, 50, 60];

        // Own samples always win.
        assert_eq!(cold_start_samples(&label_pool, &global, "tpl", &[9]), &[9]);
        // Non-empty label pool beats global.
        assert_eq!(cold_start_samples(&label_pool, &global, "warm", &[]), &[7, 8]);
        // Empty label pool → global, same as a missing label.
        assert_eq!(cold_start_samples(&label_pool, &global, "tpl", &[]), &[40, 50, 60]);
        assert_eq!(cold_start_samples(&label_pool, &global, "unseen", &[]), &[40, 50, 60]);
        // Nothing anywhere → empty slice (estimator prior takes over).
        let no_global: Vec<u64> = Vec::new();
        assert!(cold_start_samples(&label_pool, &no_global, "tpl", &[]).is_empty());
    }

    #[test]
    fn remove_job_forgets_label_and_invalidates_cache() {
        use rush_sim::view::{ClusterView, JobView};
        use rush_sim::JobId;
        let jv = JobView {
            id: JobId(0),
            label: "tpl".into(),
            arrival: 0,
            utility: TimeUtility::sigmoid(100.0, 5.0, 0.1).unwrap(),
            priority: 1,
            sensitivity: Sensitivity::Sensitive,
            budget: Some(100),
            total_tasks: 4,
            pending_tasks: 4,
            runnable_tasks: 4,
            running_tasks: 0,
            completed_tasks: 0,
            failed_attempts: 0,
            oldest_running_start: None,
            samples: Vec::new(),
        };
        let jobs = vec![jv];
        let view = ClusterView { now: 0, capacity: 4, free_containers: 4, jobs: &jobs };
        let mut rush = ReferenceScheduler::new(RushConfig::default());
        rush.on_job_arrival(&view, JobId(0));
        // Populate the per-slot plan cache, then cancel the job.
        assert_eq!(rush.assign(&view), Some(JobId(0)));
        assert!(rush.remove_job(JobId(0)), "job was tracked");
        assert!(!rush.remove_job(JobId(0)), "second removal is a no-op");
        // The cancelled job's samples no longer feed its label pool: a
        // late task-completion event for it must not resurrect the label.
        let empty: Vec<JobView> = Vec::new();
        let gone = ClusterView { now: 5, capacity: 4, free_containers: 4, jobs: &empty };
        rush.on_task_complete(
            &gone,
            rush_sim::view::TaskSample {
                job: JobId(0),
                task: rush_sim::TaskId(0),
                runtime: 37,
                finished_at: 5,
            },
        );
        // Re-planning over an empty view yields an empty plan (the dirty
        // flag set by remove_job forces the refresh).
        assert_eq!(rush.assign(&gone), None);
        assert!(rush.last_plan().entries.is_empty());
    }

    #[test]
    fn completes_a_simple_workload() {
        let jobs = vec![job(
            "wc",
            0,
            8,
            10.0,
            TimeUtility::sigmoid(100.0, 5.0, 0.1).unwrap(),
            100,
        )];
        let mut rush = ReferenceScheduler::new(RushConfig::default());
        let r = Simulation::new(SimConfig::homogeneous(1, 4), jobs).unwrap().run(&mut rush).unwrap();
        assert_eq!(r.outcomes.len(), 1);
        assert!(r.outcomes[0].met_budget(), "runtime {}", r.outcomes[0].runtime);
    }

    #[test]
    fn prioritizes_urgent_over_insensitive() {
        // One urgent job and one insensitive job contending for 4 containers.
        let jobs = vec![
            job("lazy", 0, 12, 20.0, TimeUtility::constant(5.0).unwrap(), 100_000),
            job("urgent", 0, 12, 20.0, TimeUtility::sigmoid(80.0, 5.0, 0.2).unwrap(), 80),
        ];
        let mut rush = ReferenceScheduler::new(RushConfig::default());
        let r = Simulation::new(SimConfig::homogeneous(1, 4), jobs)
            .unwrap()
            .run(&mut rush)
            .unwrap();
        let urgent = r.outcomes.iter().find(|o| o.label == "urgent").unwrap();
        // 12 tasks × 20 slots = 240 container·slots on 4 containers = 60
        // slots if given everything. The budget is 80: achievable only by
        // displacing the insensitive job.
        assert!(
            urgent.runtime <= 80 + 20,
            "urgent job should land near its budget, took {}",
            urgent.runtime
        );
    }

    #[test]
    fn cora_mode_is_non_robust_mean_based() {
        let cora = ReferenceScheduler::cora();
        assert_eq!(Scheduler::name(&cora), "CoRA");
        assert_eq!(cora.config().delta, 0.0);
        assert!(matches!(cora.config().estimator, crate::config::EstimatorKind::Mean));
        // CoRA still schedules a workload to completion.
        let jobs = vec![job("wc", 0, 6, 10.0, TimeUtility::sigmoid(120.0, 5.0, 0.1).unwrap(), 120)];
        let r = Simulation::new(SimConfig::homogeneous(1, 3), jobs)
            .unwrap()
            .run(&mut ReferenceScheduler::cora())
            .unwrap();
        assert_eq!(r.outcomes.len(), 1);
    }

    #[test]
    fn name_and_introspection() {
        let rush = ReferenceScheduler::new(RushConfig::default());
        assert_eq!(Scheduler::name(&rush), "RUSH");
        assert!(rush.last_plan().entries.is_empty());
        assert_eq!(rush.config().theta, 0.9);
    }

    #[test]
    fn survives_interference() {
        let jobs = vec![job(
            "noisy",
            0,
            16,
            15.0,
            TimeUtility::sigmoid(400.0, 5.0, 0.05).unwrap(),
            400,
        )];
        let cfg = SimConfig::homogeneous(2, 4)
            .with_interference(Interference::LogNormal { cv: 0.5 })
            .with_seed(13);
        let mut rush = ReferenceScheduler::new(RushConfig::default());
        let r = Simulation::new(cfg, jobs).unwrap().run(&mut rush).unwrap();
        assert_eq!(r.outcomes.len(), 1);
    }

    #[test]
    fn cross_label_pool_bootstraps_second_job() {
        // Two same-label jobs back to back: by the time the second arrives,
        // RUSH has pooled samples; the run must simply complete and both
        // jobs use sane plans (no stall, no misassignments storm).
        let u = TimeUtility::sigmoid(300.0, 5.0, 0.05).unwrap();
        let jobs = vec![
            job("tpl", 0, 8, 12.0, u, 300),
            job("tpl", 50, 8, 12.0, u, 300),
        ];
        let mut rush = ReferenceScheduler::new(RushConfig::default());
        let r = Simulation::new(SimConfig::homogeneous(1, 4), jobs)
            .unwrap()
            .run(&mut rush)
            .unwrap();
        assert_eq!(r.outcomes.len(), 2);
        assert!(r.misassignments == 0);
    }

    #[test]
    fn insensitive_reserve_gates_flat_jobs() {
        // One insensitive job alone on a busy-enough cluster: with
        // reserve 1.0 the gap rule never admits it, but the stall guard
        // still runs it when nothing else exists — the job completes
        // either way, only slower.
        let jobs = vec![job("flat", 0, 8, 10.0, TimeUtility::constant(2.0).unwrap(), 100_000)];
        let strict = RushConfig { insensitive_reserve: 1.0, ..Default::default() };
        let open = RushConfig { insensitive_reserve: 0.0, ..Default::default() };
        let r_strict = Simulation::new(SimConfig::homogeneous(1, 4), jobs.clone())
            .unwrap()
            .run(&mut ReferenceScheduler::new(strict))
            .unwrap();
        let r_open = Simulation::new(SimConfig::homogeneous(1, 4), jobs)
            .unwrap()
            .run(&mut ReferenceScheduler::new(open))
            .unwrap();
        assert_eq!(r_strict.outcomes.len(), 1);
        assert_eq!(r_open.outcomes.len(), 1);
        assert!(
            r_open.makespan <= r_strict.makespan,
            "open reserve must not be slower: {} vs {}",
            r_open.makespan,
            r_strict.makespan
        );
    }

    #[test]
    fn plan_cache_reused_within_slot() {
        // Several free containers in one slot must not trigger several
        // pipeline passes: with 4 containers and 4 runnable tasks at t=0,
        // scheduler_time stays bounded and the run completes with exactly
        // 4 assignments.
        let jobs = vec![job(
            "burst",
            0,
            4,
            10.0,
            TimeUtility::sigmoid(50.0, 5.0, 0.2).unwrap(),
            50,
        )];
        let mut rush = ReferenceScheduler::new(RushConfig::default());
        let r = Simulation::new(SimConfig::homogeneous(1, 4), jobs)
            .unwrap()
            .run(&mut rush)
            .unwrap();
        assert_eq!(r.assignments, 4);
        // One plan per event, not per container: the last plan is retained.
        assert!(!rush.last_plan().entries.is_empty() || r.outcomes.len() == 1);
    }

    #[test]
    fn failed_attempts_raise_eta_in_next_plan() {
        use rush_sim::perturb::FailureModel;
        let jobs = vec![job(
            "flaky",
            0,
            16,
            10.0,
            TimeUtility::sigmoid(400.0, 5.0, 0.05).unwrap(),
            400,
        )];
        let cfg = SimConfig::homogeneous(1, 4)
            .with_failures(FailureModel::Bernoulli { p: 0.3 })
            .with_seed(11);
        let mut rush = ReferenceScheduler::new(RushConfig::default());
        let r = Simulation::new(cfg, jobs).unwrap().run(&mut rush).unwrap();
        assert_eq!(r.outcomes.len(), 1);
        assert!(r.failed_attempts > 0);
    }

    #[test]
    fn mixed_sensitivities_complete() {
        let mk = |s: Sensitivity, arrival: Slot, budget: f64| {
            JobSpec::builder(format!("{s:?}"))
                .arrival(arrival)
                .tasks((0..6).map(|_| TaskSpec::new(10.0, Phase::Map)))
                .utility(s.utility_for(budget, 3.0).unwrap())
                .sensitivity(s)
                .budget(budget as Slot)
                .build()
                .unwrap()
        };
        let jobs = vec![
            mk(Sensitivity::Critical, 0, 120.0),
            mk(Sensitivity::Sensitive, 10, 200.0),
            mk(Sensitivity::Insensitive, 20, 100_000.0),
        ];
        let mut rush = ReferenceScheduler::new(RushConfig::default());
        let r = Simulation::new(SimConfig::homogeneous(1, 3), jobs)
            .unwrap()
            .run(&mut rush)
            .unwrap();
        assert_eq!(r.outcomes.len(), 3);
        let critical = r.outcomes.iter().find(|o| o.label == "Critical").unwrap();
        assert!(critical.utility > 1.0, "critical utility {}", critical.utility);
    }
}

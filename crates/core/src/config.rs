//! RUSH scheduler configuration.

use crate::CoreError;
use rush_estimator::RuntimePrior;

/// Which distribution-estimator class the DE units use (paper Sec. IV).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EstimatorKind {
    /// Impulse at `mean runtime × remaining tasks`.
    Mean,
    /// CLT Gaussian `N(n·x̄, n·s²)` — the paper's default.
    Gaussian,
    /// Bootstrap Monte-Carlo over observed runtimes.
    Empirical {
        /// Number of bootstrap resamples.
        resamples: usize,
    },
    /// CLT Gaussian fitted to only the most recent samples — tracks
    /// time-varying task runtimes at the cost of higher variance.
    Windowed {
        /// Number of most-recent samples in the fit (≥ 2).
        window: usize,
    },
}

/// Tunable parameters of the RUSH pipeline.
///
/// The defaults mirror the paper's evaluation: `θ = 0.9`, entropy threshold
/// `δ = 0.7` (the value Fig. 3 identifies as sufficient), Gaussian
/// estimation, and a 10⁶-slot planning horizon for completion-time
/// insensitive jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RushConfig {
    /// Completion-probability percentile `θ ∈ (0, 1)`.
    pub theta: f64,
    /// KL ambiguity radius `δ ≥ 0` ("entropy threshold"). `0` disables the
    /// robustness margin and trusts the reference distribution — the
    /// non-robust ablation.
    pub delta: f64,
    /// Maximum PMF quantization bins per job.
    pub max_bins: usize,
    /// Onion-peeling bisection tolerance `Δ` on utility levels.
    pub tolerance: f64,
    /// Planning horizon (slots) standing in for "no deadline".
    pub horizon: f64,
    /// Which estimator class the DE units run.
    pub estimator: EstimatorKind,
    /// Prior used before any runtime sample exists (cold start).
    pub cold_prior: RuntimePrior,
    /// Subtract `R_i` from each deadline before mapping, compensating the
    /// Theorem 3 `T_i + R_i` slack (paper Sec. III-C).
    pub shave_mapping_slack: bool,
    /// Fraction of cluster capacity kept free of completion-time
    /// *insensitive* tasks: such a task only starts while at least this
    /// share of containers would remain free afterwards. Because container
    /// occupancy is continuous (non-preemptible), this reaction headroom is
    /// what lets RUSH absorb estimation error and bursty arrivals without
    /// sensitive jobs queueing behind flat-utility work.
    pub insensitive_reserve: f64,
    /// Inflate a job's robust demand by the expected rework factor
    /// `1/(1−p̂)` when task failures have been observed (`p̂` is the
    /// Laplace-smoothed per-attempt failure rate) — the failure-probability
    /// estimation the paper lists as future work.
    pub failure_aware: bool,
}

impl Default for RushConfig {
    fn default() -> Self {
        RushConfig {
            theta: 0.9,
            delta: 0.7,
            max_bins: 512,
            tolerance: 0.01,
            horizon: 1e6,
            estimator: EstimatorKind::Gaussian,
            cold_prior: RuntimePrior::new(60.0, 20.0).expect("static prior is valid"),
            shave_mapping_slack: true,
            insensitive_reserve: 0.75,
            failure_aware: true,
        }
    }
}

impl RushConfig {
    /// Validates all parameters.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidTheta`], [`CoreError::InvalidDelta`] or
    /// [`CoreError::InvalidConfig`] for out-of-range fields.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(0.0..1.0).contains(&self.theta) || self.theta <= 0.0 {
            return Err(CoreError::InvalidTheta(self.theta));
        }
        if !self.delta.is_finite() || self.delta < 0.0 {
            return Err(CoreError::InvalidDelta(self.delta));
        }
        if self.max_bins < 2 {
            return Err(CoreError::InvalidConfig { reason: "max_bins must be >= 2" });
        }
        if !self.tolerance.is_finite() || self.tolerance <= 0.0 {
            return Err(CoreError::InvalidConfig { reason: "tolerance must be > 0" });
        }
        if !self.horizon.is_finite() || self.horizon <= 0.0 {
            return Err(CoreError::InvalidConfig { reason: "horizon must be > 0" });
        }
        if !(0.0..=1.0).contains(&self.insensitive_reserve) {
            return Err(CoreError::InvalidConfig {
                reason: "insensitive_reserve must be in [0, 1]",
            });
        }
        match self.estimator {
            EstimatorKind::Empirical { resamples } if resamples < 16 => {
                return Err(CoreError::InvalidConfig { reason: "resamples must be >= 16" });
            }
            EstimatorKind::Windowed { window } if window < 2 => {
                return Err(CoreError::InvalidConfig { reason: "window must be >= 2" });
            }
            _ => {}
        }
        Ok(())
    }

    /// Returns a copy with the percentile set.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Returns a copy with the entropy threshold set.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Returns a copy with the estimator class set.
    pub fn with_estimator(mut self, estimator: EstimatorKind) -> Self {
        self.estimator = estimator;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        RushConfig::default().validate().unwrap();
    }

    #[test]
    fn builders_compose() {
        let c = RushConfig::default()
            .with_theta(0.95)
            .with_delta(0.3)
            .with_estimator(EstimatorKind::Mean);
        assert_eq!(c.theta, 0.95);
        assert_eq!(c.delta, 0.3);
        assert_eq!(c.estimator, EstimatorKind::Mean);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_fields() {
        assert!(RushConfig::default().with_theta(0.0).validate().is_err());
        assert!(RushConfig::default().with_theta(1.0).validate().is_err());
        assert!(RushConfig::default().with_delta(-0.1).validate().is_err());
        assert!(RushConfig { max_bins: 1, ..Default::default() }.validate().is_err());
        assert!(RushConfig { tolerance: 0.0, ..Default::default() }.validate().is_err());
        assert!(RushConfig { horizon: -1.0, ..Default::default() }.validate().is_err());
        assert!(RushConfig { insensitive_reserve: 1.5, ..Default::default() }
            .validate()
            .is_err());
        assert!(RushConfig::default()
            .with_estimator(EstimatorKind::Empirical { resamples: 2 })
            .validate()
            .is_err());
        assert!(RushConfig::default()
            .with_estimator(EstimatorKind::Windowed { window: 1 })
            .validate()
            .is_err());
        assert!(RushConfig::default()
            .with_estimator(EstimatorKind::Windowed { window: 16 })
            .validate()
            .is_ok());
    }
}

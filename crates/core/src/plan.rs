//! The container-assignment (CA) pipeline: one full pass of the RUSH
//! feedback cycle as a pure function.
//!
//! [`compute_plan`] chains estimate → WCDE → onion peel → continuous
//! mapping and reports, per job, the robust demand `η`, the target
//! completion time, the achieved max-min level, and the number of
//! containers the plan gives the job in the *next* slot. The
//! [`RushScheduler`](crate::scheduler::RushScheduler) executes exactly that
//! next-slot column; everything else is recomputed on the next scheduling
//! event. Keeping the pipeline pure also lets the Fig. 5 benchmarks
//! measure scheduling cost at 20–1000 simultaneous jobs without running a
//! cluster.

use crate::config::EstimatorKind;
use crate::mapping::{map_continuous, MapJob};
use crate::onion::{peel, OnionJob, Shifted};
use crate::wcde::worst_case_quantile;
use crate::{CoreError, RushConfig};
use rush_estimator::{
    DistributionEstimator, EmpiricalEstimator, GaussianEstimator, MeanEstimator,
    WindowedEstimator,
};
use rush_utility::TimeUtility;

/// Scheduler-visible state of one job, fed into the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanInput {
    /// Observed runtimes (slots) of the job's completed tasks. May be
    /// empty (cold start) — the config's prior or a cross-job pool then
    /// substitutes.
    pub samples: Vec<u64>,
    /// Tasks not yet started.
    pub remaining_tasks: usize,
    /// Containers the job currently occupies.
    pub running: u32,
    /// Failed task attempts observed so far (re-queued by the cluster).
    pub failed_attempts: usize,
    /// Slots elapsed since the job arrived (shifts its utility).
    pub age: f64,
    /// The job's completion-time utility (time measured from arrival).
    pub utility: TimeUtility,
}

/// Per-job output of one CA pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEntry {
    /// Robust remaining demand `η` in container·slots.
    pub eta: u64,
    /// Average task runtime `R` used for mapping (slots).
    pub task_len: u64,
    /// Target completion time (slots from now) from the onion peel.
    pub target: f64,
    /// Achieved max-min utility level.
    pub level: f64,
    /// Containers the plan allocates to the job in the next slot.
    pub desired_now: u32,
    /// Planned completion (slots from now) under the continuity mapping.
    pub planned_completion: u64,
    /// Whether the job cannot finish without its utility dropping to
    /// (numerically) zero — the "red row" of the paper's HTTP interface.
    pub impossible: bool,
}

/// The full output of one CA pass, entries parallel to the input slice.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Plan {
    /// Per-job planning results.
    pub entries: Vec<PlanEntry>,
}

impl Plan {
    /// Total containers the plan wants occupied next slot.
    pub fn total_desired_now(&self) -> u32 {
        self.entries.iter().map(|e| e.desired_now).sum()
    }
}

/// Renders a plan as the monitoring table the paper's enhanced HTTP
/// interface displays (Fig. 2): per job, the robust demand, projected
/// completion time, achieved level — and a `!!` marker on *impossible*
/// jobs (the red rows that tell the user to renegotiate the job's
/// requirements).
///
/// `labels` must parallel the plan's entries (shorter slices are padded
/// with the entry index).
pub fn render_dashboard(plan: &Plan, labels: &[&str]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>10} {:>6} {:>10} {:>8} {:>8} {:>11}  status",
        "job", "eta", "R", "target", "level", "desired", "proj_done"
    );
    let width = 20 + 1 + 10 + 1 + 6 + 1 + 10 + 1 + 8 + 1 + 8 + 1 + 11 + 2 + 6;
    let _ = writeln!(out, "{}", "-".repeat(width));
    for (i, e) in plan.entries.iter().enumerate() {
        let label = labels.get(i).copied().map_or_else(|| i.to_string(), str::to_owned);
        let status = if e.impossible { "!! impossible" } else { "ok" };
        let _ = writeln!(
            out,
            "{:<20} {:>10} {:>6} {:>10.1} {:>8.3} {:>8} {:>11}  {}",
            label, e.eta, e.task_len, e.target, e.level, e.desired_now, e.planned_completion, status
        );
    }
    out
}

/// Runs one CA pass with the estimator class named in `config`.
///
/// # Errors
///
/// Propagates configuration validation and estimation failures; see
/// [`compute_plan_with`].
pub fn compute_plan(
    config: &RushConfig,
    capacity: u32,
    jobs: &[PlanInput],
) -> Result<Plan, CoreError> {
    match config.estimator {
        EstimatorKind::Mean => {
            let de = MeanEstimator::new(config.max_bins).with_prior(config.cold_prior);
            compute_plan_with(config, capacity, jobs, &de)
        }
        EstimatorKind::Gaussian => {
            let de = GaussianEstimator::new(config.max_bins).with_prior(config.cold_prior);
            compute_plan_with(config, capacity, jobs, &de)
        }
        EstimatorKind::Empirical { resamples } => {
            let de =
                EmpiricalEstimator::new(config.max_bins, resamples).with_prior(config.cold_prior);
            compute_plan_with(config, capacity, jobs, &de)
        }
        EstimatorKind::Windowed { window } => {
            let de =
                WindowedEstimator::new(config.max_bins, window).with_prior(config.cold_prior);
            compute_plan_with(config, capacity, jobs, &de)
        }
    }
}

/// Runs one CA pass with a caller-supplied estimator (for custom DE
/// classes, as the paper invites).
///
/// # Errors
///
/// * Configuration errors from [`RushConfig::validate`].
/// * [`CoreError::InvalidConfig`] if `capacity == 0`.
/// * Estimation or probability errors from the per-job DE pass.
pub fn compute_plan_with<E: DistributionEstimator>(
    config: &RushConfig,
    capacity: u32,
    jobs: &[PlanInput],
    estimator: &E,
) -> Result<Plan, CoreError> {
    config.validate()?;
    if capacity == 0 {
        return Err(CoreError::InvalidConfig { reason: "capacity must be > 0" });
    }
    if jobs.is_empty() {
        return Ok(Plan::default());
    }

    // 1–2. Estimate reference distributions and robustify into η. When a
    // job has shown task failures, inflate its demand by the expected
    // rework factor 1/(1−p̂) with a Laplace-smoothed failure rate — the
    // paper's stated future-work extension.
    let mut etas = Vec::with_capacity(jobs.len());
    let mut task_lens = Vec::with_capacity(jobs.len());
    for job in jobs {
        let est = estimator.estimate(&job.samples, job.remaining_tasks)?;
        let eta = if job.remaining_tasks == 0 {
            0
        } else {
            let base = worst_case_quantile(&est.pmf, config.theta, config.delta)?.eta;
            if config.failure_aware && job.failed_attempts > 0 {
                let attempts = job.failed_attempts + job.samples.len() + 1;
                let p_hat = (job.failed_attempts as f64 / attempts as f64).min(0.9);
                (base as f64 / (1.0 - p_hat)).ceil() as u64
            } else {
                base
            }
        };
        etas.push(eta);
        task_lens.push(est.mean_task_runtime.ceil().max(1.0) as u64);
    }

    // 3. Onion peel on age-shifted utilities.
    let shifted: Vec<Shifted<'_>> =
        jobs.iter().map(|j| Shifted::new(&j.utility, j.age)).collect();
    let onion_jobs: Vec<OnionJob<'_>> = shifted
        .iter()
        .zip(&etas)
        .map(|(u, &eta)| OnionJob { demand: eta, utility: u })
        .collect();
    let targets = peel(&onion_jobs, capacity, config.tolerance, config.horizon)?;

    // 4. Continuous mapping, with the Theorem 3 slack shaved off targets.
    let mut target_of = vec![0.0f64; jobs.len()];
    let mut level_of = vec![0.0f64; jobs.len()];
    let mut lax_of = vec![false; jobs.len()];
    for t in &targets {
        target_of[t.job] = t.deadline;
        level_of[t.job] = t.level;
        lax_of[t.job] = t.lax;
    }
    let map_jobs: Vec<MapJob> = jobs
        .iter()
        .enumerate()
        .map(|(i, job)| {
            // Spread the robust demand over the real remaining tasks: each
            // task occupies a container for its robust runtime η/n (≥ R),
            // so the plan provisions exactly η container·slots with the
            // true task count.
            let n = job.remaining_tasks as u64;
            let r = if n > 0 { etas[i].div_ceil(n).max(task_lens[i]) } else { task_lens[i] };
            let shaved = if config.shave_mapping_slack {
                (target_of[i] - r as f64).max(1.0)
            } else {
                target_of[i].max(1.0)
            };
            let target = if lax_of[i] { target_of[i].max(1.0) } else { shaved };
            MapJob { tasks: n, task_len: r, target: target as u64, lax: lax_of[i] }
        })
        .collect();
    let placements = map_continuous(&map_jobs, capacity)?;

    // 5. Assemble.
    let entries = jobs
        .iter()
        .enumerate()
        .map(|(i, _)| PlanEntry {
            eta: etas[i],
            task_len: task_lens[i],
            target: target_of[i],
            level: level_of[i],
            desired_now: placements[i].active_at(0),
            planned_completion: placements[i].completion,
            impossible: level_of[i] <= 1e-9,
        })
        .collect();
    Ok(Plan { entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigmoid(budget: f64, weight: f64, beta: f64) -> TimeUtility {
        TimeUtility::sigmoid(budget, weight, beta).unwrap()
    }

    fn input(samples: Vec<u64>, remaining: usize, age: f64, u: TimeUtility) -> PlanInput {
        PlanInput {
            samples,
            remaining_tasks: remaining,
            running: 0,
            failed_attempts: 0,
            age,
            utility: u,
        }
    }

    #[test]
    fn empty_jobs_empty_plan() {
        let p = compute_plan(&RushConfig::default(), 8, &[]).unwrap();
        assert!(p.entries.is_empty());
        assert_eq!(p.total_desired_now(), 0);
    }

    #[test]
    fn single_urgent_job_gets_parallelism_now() {
        // 10 tasks of ~60 slots, budget 120: needs ~5 containers at once.
        let cfg = RushConfig::default();
        let jobs = vec![input(vec![60; 20], 10, 0.0, sigmoid(120.0, 5.0, 0.2))];
        let p = compute_plan(&cfg, 16, &jobs).unwrap();
        let e = &p.entries[0];
        assert!(e.eta >= 600, "eta {} must cover 10x60", e.eta);
        assert!(e.desired_now >= 5, "desired_now {} too low for the deadline", e.desired_now);
        assert!(!e.impossible);
    }

    #[test]
    fn relaxed_job_is_not_rushed() {
        // Same job, huge budget: the plan should not parallelize much.
        let cfg = RushConfig::default();
        let jobs = vec![input(vec![60; 20], 10, 0.0, sigmoid(100_000.0, 5.0, 0.001))];
        let p = compute_plan(&cfg, 16, &jobs).unwrap();
        assert!(p.entries[0].desired_now <= 2, "desired {}", p.entries[0].desired_now);
    }

    #[test]
    fn urgent_beats_insensitive_for_next_slot() {
        // Contended cluster (capacity 4): the urgent job's reservation wins
        // the next slot; the insensitive job only gets genuine leftovers.
        let cfg = RushConfig::default();
        let jobs = vec![
            input(vec![60; 10], 8, 0.0, sigmoid(300.0, 5.0, 0.1)),
            input(vec![60; 10], 8, 0.0, TimeUtility::constant(5.0).unwrap()),
        ];
        let p = compute_plan(&cfg, 4, &jobs).unwrap();
        assert!(
            p.entries[0].desired_now >= p.entries[1].desired_now,
            "urgent {} vs insensitive {}",
            p.entries[0].desired_now,
            p.entries[1].desired_now
        );
        // The insensitive job's planned completion lands after the urgent
        // job's (it is packed into leftover capacity).
        assert!(p.entries[1].planned_completion >= p.entries[0].planned_completion);
        assert!(p.total_desired_now() <= 4);
    }

    #[test]
    fn expired_job_is_flagged_impossible() {
        let cfg = RushConfig::default();
        // Steep sigmoid budget 50 but the job is already 5000 slots old.
        let jobs = vec![input(vec![60; 10], 8, 5000.0, sigmoid(50.0, 5.0, 1.0))];
        let p = compute_plan(&cfg, 8, &jobs).unwrap();
        assert!(p.entries[0].impossible);
    }

    #[test]
    fn zero_remaining_tasks_zero_eta() {
        let cfg = RushConfig::default();
        let jobs = vec![input(vec![60; 10], 0, 100.0, sigmoid(500.0, 5.0, 0.05))];
        let p = compute_plan(&cfg, 8, &jobs).unwrap();
        assert_eq!(p.entries[0].eta, 0);
        assert_eq!(p.entries[0].desired_now, 0);
    }

    #[test]
    fn cold_start_uses_prior() {
        let cfg = RushConfig::default(); // prior mean 60 std 20
        let jobs = vec![input(vec![], 10, 0.0, sigmoid(1000.0, 5.0, 0.01))];
        let p = compute_plan(&cfg, 8, &jobs).unwrap();
        assert!(p.entries[0].eta >= 500, "prior-based eta {}", p.entries[0].eta);
    }

    #[test]
    fn delta_zero_is_less_conservative() {
        let jobs = vec![input(vec![55, 60, 65, 58, 62, 61, 59, 63], 10, 0.0, sigmoid(2000.0, 5.0, 0.01))];
        let robust = compute_plan(&RushConfig::default().with_delta(0.7), 8, &jobs).unwrap();
        let nominal = compute_plan(&RushConfig::default().with_delta(0.0), 8, &jobs).unwrap();
        assert!(robust.entries[0].eta > nominal.entries[0].eta);
    }

    #[test]
    fn estimator_kinds_all_run() {
        let jobs = vec![input(vec![50, 60, 70], 5, 0.0, sigmoid(600.0, 5.0, 0.05))];
        for kind in [
            EstimatorKind::Mean,
            EstimatorKind::Gaussian,
            EstimatorKind::Empirical { resamples: 64 },
            EstimatorKind::Windowed { window: 8 },
        ] {
            let cfg = RushConfig::default().with_estimator(kind);
            let p = compute_plan(&cfg, 8, &jobs).unwrap();
            assert!(p.entries[0].eta > 0, "{kind:?}");
        }
    }

    #[test]
    fn capacity_zero_rejected() {
        let jobs = vec![input(vec![60], 1, 0.0, sigmoid(100.0, 1.0, 0.1))];
        assert!(matches!(
            compute_plan(&RushConfig::default(), 0, &jobs),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn invalid_config_rejected() {
        let jobs = vec![input(vec![60], 1, 0.0, sigmoid(100.0, 1.0, 0.1))];
        assert!(compute_plan(&RushConfig::default().with_theta(2.0), 8, &jobs).is_err());
    }

    #[test]
    fn failure_history_inflates_provision() {
        let cfg = RushConfig::default();
        let mut healthy = input(vec![60; 20], 10, 0.0, sigmoid(5000.0, 5.0, 0.01));
        let flaky = {
            let mut j = healthy.clone();
            j.failed_attempts = 10; // as many failures as successes
            j
        };
        healthy.failed_attempts = 0;
        let p_healthy = compute_plan(&cfg, 8, &[healthy.clone()]).unwrap();
        let p_flaky = compute_plan(&cfg, 8, std::slice::from_ref(&flaky)).unwrap();
        assert!(
            p_flaky.entries[0].eta as f64 > p_healthy.entries[0].eta as f64 * 1.3,
            "flaky {} vs healthy {}",
            p_flaky.entries[0].eta,
            p_healthy.entries[0].eta
        );
        // The extension can be switched off.
        let cfg_off = RushConfig { failure_aware: false, ..Default::default() };
        let p_off = compute_plan(&cfg_off, 8, &[flaky]).unwrap();
        assert_eq!(p_off.entries[0].eta, p_healthy.entries[0].eta);
    }

    #[test]
    fn dashboard_renders_rows_and_flags() {
        let cfg = RushConfig::default();
        let jobs = vec![
            input(vec![60; 10], 8, 0.0, sigmoid(600.0, 5.0, 0.05)),
            input(vec![60; 10], 8, 5000.0, sigmoid(50.0, 5.0, 1.0)), // expired
        ];
        let plan = compute_plan(&cfg, 8, &jobs).unwrap();
        let out = render_dashboard(&plan, &["healthy", "expired"]);
        assert!(out.contains("healthy"));
        assert!(out.contains("expired"));
        assert!(out.contains("!! impossible"));
        assert_eq!(out.lines().count(), 4); // header + rule + 2 rows
        // Missing labels fall back to indices.
        let out = render_dashboard(&plan, &[]);
        assert!(out.contains('0'));
    }

    #[test]
    fn plan_respects_capacity_in_first_slot() {
        let cfg = RushConfig::default();
        let jobs: Vec<PlanInput> = (0..6)
            .map(|i| input(vec![60; 10], 10, 0.0, sigmoid(200.0 + i as f64 * 50.0, 5.0, 0.1)))
            .collect();
        let p = compute_plan(&cfg, 8, &jobs).unwrap();
        assert!(p.total_desired_now() <= 8, "desired {} > capacity", p.total_desired_now());
    }
}

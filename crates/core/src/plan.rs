//! The container-assignment (CA) pipeline: one full pass of the RUSH
//! feedback cycle as a pure function.
//!
//! [`compute_plan`] chains estimate → WCDE → onion peel → continuous
//! mapping and reports, per job, the robust demand `η`, the target
//! completion time, the achieved max-min level, and the number of
//! containers the plan gives the job in the *next* slot. The
//! [`RushScheduler`](crate::scheduler::RushScheduler) executes exactly that
//! next-slot column; everything else is recomputed on the next scheduling
//! event. Keeping the pipeline pure also lets the Fig. 5 benchmarks
//! measure scheduling cost at 20–1000 simultaneous jobs without running a
//! cluster.
//!
//! # Incremental operation
//!
//! A scheduling event (task completion, failure, arrival) changes the
//! estimator-visible state of *one* job; the other jobs' robust demands
//! `(η, R)` are unchanged. [`PlanCache`] memoizes the estimate + WCDE
//! stage per job, keyed by a fingerprint of everything that stage reads:
//! the sample multiset (order-sensitive — estimators may window), the
//! remaining-task count, the failure count and the config knobs. Ages and
//! utilities are deliberately **not** part of the key: they only enter the
//! peel and mapping stages, which are always recomputed. A cached pass
//! therefore produces bit-identical plans to an uncached one.

use crate::config::EstimatorKind;
use crate::mapping::{map_continuous, map_continuous_incremental, MapJob, MapState, MapStats};
use crate::onion::{peel, peel_incremental, OnionJob, PeelState, ReplayStats, Shifted};
use crate::wcde::worst_case_quantile;
use crate::{CoreError, RushConfig};
use rush_estimator::{
    DistributionEstimator, EmpiricalEstimator, GaussianEstimator, MeanEstimator,
    WindowedEstimator,
};
use rush_utility::TimeUtility;
use std::borrow::Cow;
// rush-lint: allow(RUSH-L001): point-lookup-only memo table, never iterated
use std::collections::HashMap;

/// Scheduler-visible state of one job, fed into the pipeline.
///
/// `samples` borrows from the caller whenever possible (the scheduler's
/// sample pools, the simulator's job views); owned vectors still convert
/// via `.into()`. One CA pass over 1000 jobs then clones no sample data
/// at all.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanInput<'a> {
    /// Observed runtimes (slots) of the job's completed tasks. May be
    /// empty (cold start) — the config's prior or a cross-job pool then
    /// substitutes.
    pub samples: Cow<'a, [u64]>,
    /// Tasks not yet started.
    pub remaining_tasks: usize,
    /// Containers the job currently occupies.
    pub running: u32,
    /// Failed task attempts observed so far (re-queued by the cluster).
    pub failed_attempts: usize,
    /// Slots elapsed since the job arrived (shifts its utility).
    pub age: f64,
    /// The job's completion-time utility (time measured from arrival).
    pub utility: TimeUtility,
}

/// Per-job output of one CA pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEntry {
    /// Robust remaining demand `η` in container·slots.
    pub eta: u64,
    /// Average task runtime `R` used for mapping (slots).
    pub task_len: u64,
    /// Target completion time (slots from now) from the onion peel.
    pub target: f64,
    /// Achieved max-min utility level.
    pub level: f64,
    /// Containers the plan allocates to the job in the next slot.
    pub desired_now: u32,
    /// Planned completion (slots from now) under the continuity mapping.
    pub planned_completion: u64,
    /// Whether the job cannot finish without its utility dropping to
    /// (numerically) zero — the "red row" of the paper's HTTP interface.
    pub impossible: bool,
}

/// The full output of one CA pass, entries parallel to the input slice.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Plan {
    /// Per-job planning results.
    pub entries: Vec<PlanEntry>,
}

impl Plan {
    /// Total containers the plan wants occupied next slot.
    pub fn total_desired_now(&self) -> u32 {
        self.entries.iter().map(|e| e.desired_now).sum()
    }
}

/// The memoized result of the estimate + WCDE stage for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSolve {
    /// Robust remaining demand `η` in container·slots.
    pub eta: u64,
    /// Average task runtime `R` (slots), for the mapping stage.
    pub task_len: u64,
}

/// Memo table for the per-job estimate + WCDE stage.
///
/// Entries are keyed by a fingerprint of the job state *and* the config
/// knobs that stage reads (θ, δ, bins, estimator class and parameters,
/// cold prior, failure awareness) — changing any of those naturally
/// misses. The table self-prunes: each pass keeps only the entries it
/// touched, so memory is bounded by the live job set, and entries for
/// departed jobs vanish on the next pass.
///
/// When used through [`compute_plan_with_cached`] with a *custom*
/// estimator, dedicate one cache per estimator instance — the fingerprint
/// can only see the estimator named in the config.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    // rush-lint: allow(RUSH-L001): keyed by u128 fingerprint, get/insert only
    map: HashMap<u128, JobSolve>,
    /// Per-input-index memo from the previous pass: `(fingerprint,
    /// solve)`. Positionally stable passes hit here in O(1) per job; the
    /// keyed map above is only the spillover for reshuffled lists.
    by_index: Vec<(u128, JobSolve)>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lifetime count of per-job stage results served from memory.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime count of per-job stage results actually computed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries currently retained (≤ jobs in the last pass).
    pub fn len(&self) -> usize {
        self.by_index.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.by_index.is_empty()
    }

    /// Drops all entries (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.by_index.clear();
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a, folded over `u64` words. Cheap, dependency-free and stable
/// across runs — cache keys never hit the allocator or `DefaultHasher`'s
/// randomized state.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new(seed: u64) -> Self {
        Fnv(FNV_OFFSET ^ seed)
    }

    fn u64(mut self, v: u64) -> Self {
        // One xor-multiply per word instead of eight per-byte rounds: the
        // fingerprint pass is on the steady-state replan path, and the
        // keys live only inside one process — no stability obligation.
        self.0 = (self.0 ^ v).wrapping_mul(FNV_PRIME);
        self
    }

    fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }
}

/// Hash of every config knob the estimate + WCDE stage reads. Mixed into
/// each job fingerprint so a cache survives config changes correctly.
fn config_tag(config: &RushConfig) -> u64 {
    let h = Fnv::new(0)
        .f64(config.theta)
        .f64(config.delta)
        .u64(config.max_bins as u64)
        .u64(u64::from(config.failure_aware))
        .f64(config.cold_prior.mean)
        .f64(config.cold_prior.std);
    match config.estimator {
        EstimatorKind::Mean => h.u64(1),
        EstimatorKind::Gaussian => h.u64(2),
        EstimatorKind::Empirical { resamples } => h.u64(3).u64(resamples as u64),
        EstimatorKind::Windowed { window } => h.u64(4).u64(window as u64),
    }
    .0
}

/// 128-bit fingerprint of one job's estimator-visible state: two
/// independently seeded 64-bit FNV streams over the sample sequence,
/// remaining-task count and failure count. Age and utility are excluded
/// on purpose — they do not enter this stage.
fn fingerprint(tag: u64, job: &PlanInput<'_>) -> u128 {
    let mut lo = Fnv::new(tag)
        .u64(job.remaining_tasks as u64)
        .u64(job.failed_attempts as u64)
        .u64(job.samples.len() as u64);
    let mut hi = Fnv::new(tag ^ 0x9e37_79b9_7f4a_7c15)
        .u64(job.remaining_tasks as u64)
        .u64(job.failed_attempts as u64)
        .u64(job.samples.len() as u64);
    for &s in job.samples.iter() {
        lo = lo.u64(s);
        hi = hi.u64(s.rotate_left(17));
    }
    (u128::from(hi.0) << 64) | u128::from(lo.0)
}

/// The estimator bound the pipeline requires. With the `parallel` feature
/// the per-job stage fans out across threads, so the estimator must also
/// be [`Sync`]; without it the alias is exactly [`DistributionEstimator`].
/// Blanket-implemented — callers never implement it by hand.
#[cfg(feature = "parallel")]
pub trait PlanEstimator: DistributionEstimator + Sync {}
#[cfg(feature = "parallel")]
impl<T: DistributionEstimator + Sync> PlanEstimator for T {}

/// The estimator bound the pipeline requires. With the `parallel` feature
/// the per-job stage fans out across threads, so the estimator must also
/// be [`Sync`]; without it the alias is exactly [`DistributionEstimator`].
/// Blanket-implemented — callers never implement it by hand.
#[cfg(not(feature = "parallel"))]
pub trait PlanEstimator: DistributionEstimator {}
#[cfg(not(feature = "parallel"))]
impl<T: DistributionEstimator> PlanEstimator for T {}

/// Estimate + WCDE + failure inflation for one job (steps 1–2 of the CA
/// pass). Pure in its inputs — the contract the memo table relies on.
fn solve_one<E: PlanEstimator>(
    config: &RushConfig,
    job: &PlanInput<'_>,
    estimator: &E,
) -> Result<JobSolve, CoreError> {
    let est = estimator.estimate(&job.samples, job.remaining_tasks)?;
    let eta = if job.remaining_tasks == 0 {
        0
    } else {
        let base = worst_case_quantile(&est.pmf, config.theta, config.delta)?.eta;
        if config.failure_aware && job.failed_attempts > 0 {
            // Inflate by the expected rework factor 1/(1−p̂) with a
            // Laplace-smoothed failure rate — the paper's stated
            // future-work extension.
            let attempts = job.failed_attempts + job.samples.len() + 1;
            let p_hat = (job.failed_attempts as f64 / attempts as f64).min(0.9);
            (base as f64 / (1.0 - p_hat)).ceil() as u64
        } else {
            base
        }
    };
    Ok(JobSolve { eta, task_len: est.mean_task_runtime.ceil().max(1.0) as u64 })
}

/// Don't spin up threads for job counts where the fan-out overhead
/// rivals the work.
#[cfg(feature = "parallel")]
const PARALLEL_THRESHOLD: usize = 32;

/// Solves the per-job stage for every listed job, in input order. With
/// the `parallel` feature and enough jobs the slice is chunked across a
/// scoped thread pool; results are identical to the sequential path
/// because each solve is a pure function of its job.
fn solve_batch<E: PlanEstimator>(
    config: &RushConfig,
    jobs: &[&PlanInput<'_>],
    estimator: &E,
) -> Result<Vec<JobSolve>, CoreError> {
    #[cfg(feature = "parallel")]
    if jobs.len() >= PARALLEL_THRESHOLD {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get()).min(8);
        if workers > 1 {
            let chunk = jobs.len().div_ceil(workers);
            let per_chunk: Vec<Result<Vec<JobSolve>, CoreError>> = std::thread::scope(|s| {
                let handles: Vec<_> = jobs
                    .chunks(chunk)
                    .map(|c| {
                        s.spawn(move || {
                            c.iter().map(|j| solve_one(config, j, estimator)).collect()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("solver thread panicked")).collect()
            });
            let mut out = Vec::with_capacity(jobs.len());
            for r in per_chunk {
                out.extend(r?);
            }
            return Ok(out);
        }
    }
    jobs.iter().map(|j| solve_one(config, j, estimator)).collect()
}

/// Per-job stage with optional memoization. Rotates the cache map so only
/// fingerprints touched by *this* pass survive into the next one.
fn solve_jobs<E: PlanEstimator>(
    config: &RushConfig,
    jobs: &[PlanInput<'_>],
    estimator: &E,
    cache: Option<&mut PlanCache>,
) -> Result<Vec<JobSolve>, CoreError> {
    let Some(cache) = cache else {
        let refs: Vec<&PlanInput<'_>> = jobs.iter().collect();
        return solve_batch(config, &refs, estimator);
    };

    let n = jobs.len();
    let tag = config_tag(config);
    let prints: Vec<u128> = jobs.iter().map(|j| fingerprint(tag, j)).collect();
    let mut out: Vec<Option<JobSolve>> = vec![None; n];
    // Index-aligned fast path: between consecutive passes the job list is
    // usually positionally stable with at most a few changed entries, so
    // the per-index memo serves almost every job without touching (or
    // rebuilding) a hash table.
    let index_ok = cache.by_index.len() == n;
    let mut miss_idx: Vec<usize> = Vec::new();
    for (i, fp) in prints.iter().enumerate() {
        if index_ok && cache.by_index[i].0 == *fp {
            out[i] = Some(cache.by_index[i].1);
            cache.hits += 1;
        } else {
            miss_idx.push(i);
        }
    }
    if miss_idx.len() > INDEX_SHIFT_SPILL {
        // Index alignment broke (an arrival or cancel reshuffled the
        // list): spill the previous pass into the keyed map so shifted
        // jobs still hit by content.
        for &(fp, s) in &cache.by_index {
            cache.map.insert(fp, s);
        }
    }
    let mut solve_idx: Vec<usize> = Vec::new();
    for &i in &miss_idx {
        if let Some(&s) = cache.map.get(&prints[i]) {
            out[i] = Some(s);
            cache.hits += 1;
        } else {
            solve_idx.push(i);
            cache.misses += 1;
        }
    }
    let miss_jobs: Vec<&PlanInput<'_>> = solve_idx.iter().map(|&i| &jobs[i]).collect();
    // On error the per-index memo is untouched and still content-correct
    // (it is keyed by fingerprint); the failed pass must not wipe it.
    let solved = solve_batch(config, &miss_jobs, estimator)?;
    for (&i, s) in solve_idx.iter().zip(solved) {
        cache.map.insert(prints[i], s);
        out[i] = Some(s);
    }
    cache.by_index.clear();
    cache
        .by_index
        // rush-lint: allow(RUSH-L003): every slot is filled by the hit loop or the miss solve above
        .extend(prints.iter().zip(&out).map(|(&fp, s)| (fp, s.expect("hit or solved"))));
    // The keyed map is intra-pass scratch: draining it here keeps the
    // retention promise (departed jobs do not linger) — the next pass's
    // reshuffle spill repopulates it from `by_index` when needed.
    cache.map.clear();
    // `by_index` was rebuilt just above in job order (one entry per
    // print), so the plan vector is a straight copy of its solved column.
    Ok(cache.by_index.iter().map(|&(_, s)| s).collect())
}

/// Index misses beyond this spill the previous pass's per-index memo into
/// the keyed map (a positional reshuffle, not a content change).
const INDEX_SHIFT_SPILL: usize = 2;

/// Runs one CA pass with the estimator class named in `config`.
///
/// # Errors
///
/// Propagates configuration validation and estimation failures; see
/// [`compute_plan_with`].
pub fn compute_plan(
    config: &RushConfig,
    capacity: u32,
    jobs: &[PlanInput<'_>],
) -> Result<Plan, CoreError> {
    dispatch(config, capacity, jobs, None)
}

/// [`compute_plan`] with the estimate + WCDE stage memoized in `cache`.
///
/// Feeding consecutive scheduling events through the same cache skips the
/// per-job robustification for every job whose samples, task counts and
/// failure counts are unchanged — the common case, since one event
/// touches one job. The resulting plan is bit-identical to
/// [`compute_plan`]'s.
///
/// # Errors
///
/// Same as [`compute_plan`]; a failed pass leaves the cache usable.
pub fn compute_plan_cached(
    config: &RushConfig,
    capacity: u32,
    jobs: &[PlanInput<'_>],
    cache: &mut PlanCache,
) -> Result<Plan, CoreError> {
    dispatch(config, capacity, jobs, Some(cache))
}

fn dispatch(
    config: &RushConfig,
    capacity: u32,
    jobs: &[PlanInput<'_>],
    cache: Option<&mut PlanCache>,
) -> Result<Plan, CoreError> {
    match config.estimator {
        EstimatorKind::Mean => {
            let de = MeanEstimator::new(config.max_bins).with_prior(config.cold_prior);
            compute_plan_inner(config, capacity, jobs, &de, cache)
        }
        EstimatorKind::Gaussian => {
            let de = GaussianEstimator::new(config.max_bins).with_prior(config.cold_prior);
            compute_plan_inner(config, capacity, jobs, &de, cache)
        }
        EstimatorKind::Empirical { resamples } => {
            let de =
                EmpiricalEstimator::new(config.max_bins, resamples).with_prior(config.cold_prior);
            compute_plan_inner(config, capacity, jobs, &de, cache)
        }
        EstimatorKind::Windowed { window } => {
            let de =
                WindowedEstimator::new(config.max_bins, window).with_prior(config.cold_prior);
            compute_plan_inner(config, capacity, jobs, &de, cache)
        }
    }
}

/// Runs one CA pass with a caller-supplied estimator (for custom DE
/// classes, as the paper invites).
///
/// # Errors
///
/// * Configuration errors from [`RushConfig::validate`].
/// * [`CoreError::InvalidConfig`] if `capacity == 0`.
/// * Estimation or probability errors from the per-job DE pass.
pub fn compute_plan_with<E: PlanEstimator>(
    config: &RushConfig,
    capacity: u32,
    jobs: &[PlanInput<'_>],
    estimator: &E,
) -> Result<Plan, CoreError> {
    compute_plan_inner(config, capacity, jobs, estimator, None)
}

/// [`compute_plan_with`] with the per-job stage memoized in `cache`. Use
/// one cache per estimator instance: the key cannot observe a custom
/// estimator's identity, only the config's knobs.
///
/// # Errors
///
/// Same as [`compute_plan_with`]; a failed pass leaves the cache usable.
pub fn compute_plan_with_cached<E: PlanEstimator>(
    config: &RushConfig,
    capacity: u32,
    jobs: &[PlanInput<'_>],
    estimator: &E,
    cache: &mut PlanCache,
) -> Result<Plan, CoreError> {
    compute_plan_inner(config, capacity, jobs, estimator, Some(cache))
}

/// Wall-clock phase breakdown and delta telemetry for the most recent
/// [`compute_plan_incremental`] pass. Times are nanoseconds.
#[derive(Default, Clone, Copy, Debug)]
pub struct PlanPhaseStats {
    /// Estimate + WCDE stage (including memo-table lookups).
    pub solve_ns: u64,
    /// Onion peel (delta replay or full re-peel).
    pub peel_ns: u64,
    /// Continuous time-slot mapping.
    pub map_ns: u64,
    /// Target/placement bookkeeping and entry assembly.
    pub assemble_ns: u64,
    /// How the peel executed (replayed / resumed / re-recorded).
    pub peel_replay: ReplayStats,
    /// How the mapping executed (prefix reuse).
    pub map_delta: MapStats,
}

/// Under `strict-invariants`, every this-many incremental passes the plan
/// is recomputed from scratch and compared — the delta structures must
/// never drift from the pure pipeline.
#[cfg(feature = "strict-invariants")]
const SPOT_CHECK_INTERVAL: u64 = 64;

/// Cross-pass state for [`compute_plan_incremental`]: the per-job memo
/// table plus the peel trace and mapping pack the delta paths patch
/// between events.
#[derive(Default, Debug, Clone)]
pub struct PlanState {
    cache: PlanCache,
    peel: PeelState,
    map: MapState,
    /// Utility/age context of the previous pass: the peel replay is only
    /// sound when demands are the sole change, so these are compared
    /// (bitwise for ages) before taking the delta path.
    last_utilities: Vec<TimeUtility>,
    last_ages: Vec<u64>,
    passes: u64,
    stats: PlanPhaseStats,
}

impl PlanState {
    /// Creates an empty state; the first pass computes everything.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all cross-pass structures; the next pass runs cold.
    pub fn invalidate(&mut self) {
        self.cache.clear();
        self.peel.invalidate();
        self.map.invalidate();
        self.last_utilities.clear();
        self.last_ages.clear();
    }

    /// The per-job estimate + WCDE memo table (hit/miss counters).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Phase breakdown of the most recent pass.
    pub fn last_stats(&self) -> PlanPhaseStats {
        self.stats
    }

    /// Incremental passes fed through this state so far.
    pub fn passes(&self) -> u64 {
        self.passes
    }
}

/// Runs one CA pass with every stage memoized across events: the per-job
/// estimate + WCDE stage through [`PlanCache`], the onion peel through
/// delta replay ([`crate::onion::peel_incremental`]) and the continuous
/// mapping through pack-prefix reuse
/// ([`crate::mapping::map_continuous_incremental`]).
///
/// This is the planner-facing steady-state entry: feeding consecutive
/// scheduling events through one [`PlanState`] turns the O(n² log n) peel
/// into an O(n) arithmetic replay whenever only demands changed, while
/// producing plans bit-identical to [`compute_plan`] in every case. Under
/// the `strict-invariants` feature the equivalence is re-proved from
/// scratch every [`SPOT_CHECK_INTERVAL`] passes.
///
/// # Errors
///
/// Same as [`compute_plan`]; a failed pass leaves the state usable.
pub fn compute_plan_incremental(
    config: &RushConfig,
    capacity: u32,
    jobs: &[PlanInput<'_>],
    state: &mut PlanState,
) -> Result<Plan, CoreError> {
    match config.estimator {
        EstimatorKind::Mean => {
            let de = MeanEstimator::new(config.max_bins).with_prior(config.cold_prior);
            compute_plan_incremental_inner(config, capacity, jobs, &de, state)
        }
        EstimatorKind::Gaussian => {
            let de = GaussianEstimator::new(config.max_bins).with_prior(config.cold_prior);
            compute_plan_incremental_inner(config, capacity, jobs, &de, state)
        }
        EstimatorKind::Empirical { resamples } => {
            let de =
                EmpiricalEstimator::new(config.max_bins, resamples).with_prior(config.cold_prior);
            compute_plan_incremental_inner(config, capacity, jobs, &de, state)
        }
        EstimatorKind::Windowed { window } => {
            let de =
                WindowedEstimator::new(config.max_bins, window).with_prior(config.cold_prior);
            compute_plan_incremental_inner(config, capacity, jobs, &de, state)
        }
    }
}

fn compute_plan_incremental_inner<E: PlanEstimator>(
    config: &RushConfig,
    capacity: u32,
    jobs: &[PlanInput<'_>],
    estimator: &E,
    state: &mut PlanState,
) -> Result<Plan, CoreError> {
    use std::time::Instant;

    config.validate()?;
    if capacity == 0 {
        return Err(CoreError::InvalidConfig { reason: "capacity must be > 0" });
    }
    if jobs.is_empty() {
        // A drained cluster retains no per-job state.
        state.invalidate();
        return Ok(Plan::default());
    }

    let t0 = Instant::now();
    let solves = solve_jobs(config, jobs, estimator, Some(&mut state.cache))?;
    let t1 = Instant::now();
    let etas: Vec<u64> = solves.iter().map(|s| s.eta).collect();
    let task_lens: Vec<u64> = solves.iter().map(|s| s.task_len).collect();

    // The peel replay is only sound when demands are the sole thing that
    // moved since the recorded pass: utilities and ages shape every probe.
    let same_context = state.last_utilities.len() == jobs.len()
        && jobs
            .iter()
            .zip(&state.last_utilities)
            .zip(&state.last_ages)
            .all(|((j, u), &a)| j.age.to_bits() == a && j.utility == *u);

    let shifted: Vec<Shifted<'_>> =
        jobs.iter().map(|j| Shifted::new(&j.utility, j.age)).collect();
    let onion_jobs: Vec<OnionJob<'_>> = shifted
        .iter()
        .zip(&etas)
        .map(|(u, &eta)| OnionJob { demand: eta, utility: u })
        .collect();
    let targets = peel_incremental(
        &onion_jobs,
        capacity,
        config.tolerance,
        config.horizon,
        same_context,
        &mut state.peel,
    )?;
    let t2 = Instant::now();

    let (map_jobs, target_of, level_of) = build_map_jobs(config, jobs, &etas, &task_lens, &targets);
    let placements = map_continuous_incremental(&map_jobs, capacity, &mut state.map)?;
    let t3 = Instant::now();

    let plan = assemble(jobs, &etas, &task_lens, &target_of, &level_of, placements);
    if !same_context {
        state.last_utilities.clear();
        state.last_utilities.extend(jobs.iter().map(|j| j.utility));
        state.last_ages.clear();
        state.last_ages.extend(jobs.iter().map(|j| j.age.to_bits()));
    }
    state.passes += 1;
    let t4 = Instant::now();

    #[cfg(feature = "strict-invariants")]
    if state.passes % SPOT_CHECK_INTERVAL == 0 {
        let scratch = compute_plan_inner(config, capacity, jobs, estimator, None)?;
        debug_assert_eq!(
            plan, scratch,
            "delta-plan contract: incremental pass {} diverged from a from-scratch CA pass",
            state.passes
        );
    }

    state.stats = PlanPhaseStats {
        solve_ns: (t1 - t0).as_nanos() as u64,
        peel_ns: (t2 - t1).as_nanos() as u64,
        map_ns: (t3 - t2).as_nanos() as u64,
        assemble_ns: (t4 - t3).as_nanos() as u64,
        peel_replay: state.peel.last_stats(),
        map_delta: state.map.last_stats(),
    };
    Ok(plan)
}

/// Builds the mapping inputs from peel targets (step 4 preamble), shared
/// by the pure and incremental pipelines. Returns `(map_jobs, target_of,
/// level_of)` in input order.
fn build_map_jobs(
    config: &RushConfig,
    jobs: &[PlanInput<'_>],
    etas: &[u64],
    task_lens: &[u64],
    targets: &[crate::onion::Target],
) -> (Vec<MapJob>, Vec<f64>, Vec<f64>) {
    let mut target_of = vec![0.0f64; jobs.len()];
    let mut level_of = vec![0.0f64; jobs.len()];
    let mut lax_of = vec![false; jobs.len()];
    for t in targets {
        target_of[t.job] = t.deadline;
        level_of[t.job] = t.level;
        lax_of[t.job] = t.lax;
    }
    let map_jobs: Vec<MapJob> = jobs
        .iter()
        .enumerate()
        .map(|(i, job)| {
            // Spread the robust demand over the real remaining tasks: each
            // task occupies a container for its robust runtime η/n (≥ R),
            // so the plan provisions exactly η container·slots with the
            // true task count.
            let n = job.remaining_tasks as u64;
            let r = if n > 0 { etas[i].div_ceil(n).max(task_lens[i]) } else { task_lens[i] };
            let shaved = if config.shave_mapping_slack {
                (target_of[i] - r as f64).max(1.0)
            } else {
                target_of[i].max(1.0)
            };
            if lax_of[i] {
                // A lax job's packing ignores its target — the field is
                // only the pack-order hint among lax jobs. Key on the
                // job's own demand (mirroring the deferred phase's
                // smallest-demand-first commit order) rather than its
                // ASAP deadline: the deadline shifts for *every* deferred
                // job whenever any demand changes, which would invalidate
                // the incremental mapping's cached order and prefix on
                // every event.
                MapJob { tasks: n, task_len: r, target: n.saturating_mul(r), lax: true }
            } else {
                MapJob { tasks: n, task_len: r, target: shaved as u64, lax: false }
            }
        })
        .collect();
    (map_jobs, target_of, level_of)
}

/// Step 5: entry assembly, shared by the pure and incremental pipelines.
fn assemble(
    jobs: &[PlanInput<'_>],
    etas: &[u64],
    task_lens: &[u64],
    target_of: &[f64],
    level_of: &[f64],
    placements: &[crate::mapping::Placement],
) -> Plan {
    let entries = jobs
        .iter()
        .enumerate()
        .map(|(i, _)| PlanEntry {
            eta: etas[i],
            task_len: task_lens[i],
            target: target_of[i],
            level: level_of[i],
            desired_now: placements[i].active_at(0),
            planned_completion: placements[i].completion,
            impossible: level_of[i] <= 1e-9,
        })
        .collect();
    Plan { entries }
}

fn compute_plan_inner<E: PlanEstimator>(
    config: &RushConfig,
    capacity: u32,
    jobs: &[PlanInput<'_>],
    estimator: &E,
    cache: Option<&mut PlanCache>,
) -> Result<Plan, CoreError> {
    config.validate()?;
    if capacity == 0 {
        return Err(CoreError::InvalidConfig { reason: "capacity must be > 0" });
    }
    if jobs.is_empty() {
        // A drained cluster retains no per-job state.
        if let Some(c) = cache {
            c.map.clear();
            c.by_index.clear();
        }
        return Ok(Plan::default());
    }

    // 1–2. Estimate reference distributions and robustify into η —
    // memoized and/or fanned out per job (see solve_jobs / solve_batch).
    let solves = solve_jobs(config, jobs, estimator, cache)?;
    let etas: Vec<u64> = solves.iter().map(|s| s.eta).collect();
    let task_lens: Vec<u64> = solves.iter().map(|s| s.task_len).collect();

    // 3. Onion peel on age-shifted utilities.
    let shifted: Vec<Shifted<'_>> =
        jobs.iter().map(|j| Shifted::new(&j.utility, j.age)).collect();
    let onion_jobs: Vec<OnionJob<'_>> = shifted
        .iter()
        .zip(&etas)
        .map(|(u, &eta)| OnionJob { demand: eta, utility: u })
        .collect();
    let targets = peel(&onion_jobs, capacity, config.tolerance, config.horizon)?;

    // 4. Continuous mapping, with the Theorem 3 slack shaved off targets.
    let (map_jobs, target_of, level_of) = build_map_jobs(config, jobs, &etas, &task_lens, &targets);
    let placements = map_continuous(&map_jobs, capacity)?;

    // 5. Assemble.
    Ok(assemble(jobs, &etas, &task_lens, &target_of, &level_of, &placements))
}

/// Renders a plan as the monitoring table the paper's enhanced HTTP
/// interface displays (Fig. 2): per job, the robust demand, projected
/// completion time, achieved level — and a `!!` marker on *impossible*
/// jobs (the red rows that tell the user to renegotiate the job's
/// requirements).
///
/// `labels` must parallel the plan's entries (shorter slices are padded
/// with the entry index).
pub fn render_dashboard(plan: &Plan, labels: &[&str]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>10} {:>6} {:>10} {:>8} {:>8} {:>11}  status",
        "job", "eta", "R", "target", "level", "desired", "proj_done"
    );
    let width = 20 + 1 + 10 + 1 + 6 + 1 + 10 + 1 + 8 + 1 + 8 + 1 + 11 + 2 + 6;
    let _ = writeln!(out, "{}", "-".repeat(width));
    for (i, e) in plan.entries.iter().enumerate() {
        let label = labels.get(i).copied().map_or_else(|| i.to_string(), str::to_owned);
        let status = if e.impossible { "!! impossible" } else { "ok" };
        let _ = writeln!(
            out,
            "{:<20} {:>10} {:>6} {:>10.1} {:>8.3} {:>8} {:>11}  {}",
            label, e.eta, e.task_len, e.target, e.level, e.desired_now, e.planned_completion, status
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigmoid(budget: f64, weight: f64, beta: f64) -> TimeUtility {
        TimeUtility::sigmoid(budget, weight, beta).unwrap()
    }

    fn input(samples: Vec<u64>, remaining: usize, age: f64, u: TimeUtility) -> PlanInput<'static> {
        PlanInput {
            samples: samples.into(),
            remaining_tasks: remaining,
            running: 0,
            failed_attempts: 0,
            age,
            utility: u,
        }
    }

    #[test]
    fn empty_jobs_empty_plan() {
        let p = compute_plan(&RushConfig::default(), 8, &[]).unwrap();
        assert!(p.entries.is_empty());
        assert_eq!(p.total_desired_now(), 0);
    }

    #[test]
    fn single_urgent_job_gets_parallelism_now() {
        // 10 tasks of ~60 slots, budget 120: needs ~5 containers at once.
        let cfg = RushConfig::default();
        let jobs = vec![input(vec![60; 20], 10, 0.0, sigmoid(120.0, 5.0, 0.2))];
        let p = compute_plan(&cfg, 16, &jobs).unwrap();
        let e = &p.entries[0];
        assert!(e.eta >= 600, "eta {} must cover 10x60", e.eta);
        assert!(e.desired_now >= 5, "desired_now {} too low for the deadline", e.desired_now);
        assert!(!e.impossible);
    }

    #[test]
    fn relaxed_job_is_not_rushed() {
        // Same job, huge budget: the plan should not parallelize much.
        let cfg = RushConfig::default();
        let jobs = vec![input(vec![60; 20], 10, 0.0, sigmoid(100_000.0, 5.0, 0.001))];
        let p = compute_plan(&cfg, 16, &jobs).unwrap();
        assert!(p.entries[0].desired_now <= 2, "desired {}", p.entries[0].desired_now);
    }

    #[test]
    fn urgent_beats_insensitive_for_next_slot() {
        // Contended cluster (capacity 4): the urgent job's reservation wins
        // the next slot; the insensitive job only gets genuine leftovers.
        let cfg = RushConfig::default();
        let jobs = vec![
            input(vec![60; 10], 8, 0.0, sigmoid(300.0, 5.0, 0.1)),
            input(vec![60; 10], 8, 0.0, TimeUtility::constant(5.0).unwrap()),
        ];
        let p = compute_plan(&cfg, 4, &jobs).unwrap();
        assert!(
            p.entries[0].desired_now >= p.entries[1].desired_now,
            "urgent {} vs insensitive {}",
            p.entries[0].desired_now,
            p.entries[1].desired_now
        );
        // The insensitive job's planned completion lands after the urgent
        // job's (it is packed into leftover capacity).
        assert!(p.entries[1].planned_completion >= p.entries[0].planned_completion);
        assert!(p.total_desired_now() <= 4);
    }

    #[test]
    fn expired_job_is_flagged_impossible() {
        let cfg = RushConfig::default();
        // Steep sigmoid budget 50 but the job is already 5000 slots old.
        let jobs = vec![input(vec![60; 10], 8, 5000.0, sigmoid(50.0, 5.0, 1.0))];
        let p = compute_plan(&cfg, 8, &jobs).unwrap();
        assert!(p.entries[0].impossible);
    }

    #[test]
    fn zero_remaining_tasks_zero_eta() {
        let cfg = RushConfig::default();
        let jobs = vec![input(vec![60; 10], 0, 100.0, sigmoid(500.0, 5.0, 0.05))];
        let p = compute_plan(&cfg, 8, &jobs).unwrap();
        assert_eq!(p.entries[0].eta, 0);
        assert_eq!(p.entries[0].desired_now, 0);
    }

    #[test]
    fn cold_start_uses_prior() {
        let cfg = RushConfig::default(); // prior mean 60 std 20
        let jobs = vec![input(vec![], 10, 0.0, sigmoid(1000.0, 5.0, 0.01))];
        let p = compute_plan(&cfg, 8, &jobs).unwrap();
        assert!(p.entries[0].eta >= 500, "prior-based eta {}", p.entries[0].eta);
    }

    #[test]
    fn delta_zero_is_less_conservative() {
        let jobs = vec![input(vec![55, 60, 65, 58, 62, 61, 59, 63], 10, 0.0, sigmoid(2000.0, 5.0, 0.01))];
        let robust = compute_plan(&RushConfig::default().with_delta(0.7), 8, &jobs).unwrap();
        let nominal = compute_plan(&RushConfig::default().with_delta(0.0), 8, &jobs).unwrap();
        assert!(robust.entries[0].eta > nominal.entries[0].eta);
    }

    #[test]
    fn estimator_kinds_all_run() {
        let jobs = vec![input(vec![50, 60, 70], 5, 0.0, sigmoid(600.0, 5.0, 0.05))];
        for kind in [
            EstimatorKind::Mean,
            EstimatorKind::Gaussian,
            EstimatorKind::Empirical { resamples: 64 },
            EstimatorKind::Windowed { window: 8 },
        ] {
            let cfg = RushConfig::default().with_estimator(kind);
            let p = compute_plan(&cfg, 8, &jobs).unwrap();
            assert!(p.entries[0].eta > 0, "{kind:?}");
        }
    }

    #[test]
    fn capacity_zero_rejected() {
        let jobs = vec![input(vec![60], 1, 0.0, sigmoid(100.0, 1.0, 0.1))];
        assert!(matches!(
            compute_plan(&RushConfig::default(), 0, &jobs),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn invalid_config_rejected() {
        let jobs = vec![input(vec![60], 1, 0.0, sigmoid(100.0, 1.0, 0.1))];
        assert!(compute_plan(&RushConfig::default().with_theta(2.0), 8, &jobs).is_err());
    }

    #[test]
    fn failure_history_inflates_provision() {
        let cfg = RushConfig::default();
        let mut healthy = input(vec![60; 20], 10, 0.0, sigmoid(5000.0, 5.0, 0.01));
        let flaky = {
            let mut j = healthy.clone();
            j.failed_attempts = 10; // as many failures as successes
            j
        };
        healthy.failed_attempts = 0;
        let p_healthy = compute_plan(&cfg, 8, &[healthy.clone()]).unwrap();
        let p_flaky = compute_plan(&cfg, 8, std::slice::from_ref(&flaky)).unwrap();
        assert!(
            p_flaky.entries[0].eta as f64 > p_healthy.entries[0].eta as f64 * 1.3,
            "flaky {} vs healthy {}",
            p_flaky.entries[0].eta,
            p_healthy.entries[0].eta
        );
        // The extension can be switched off.
        let cfg_off = RushConfig { failure_aware: false, ..Default::default() };
        let p_off = compute_plan(&cfg_off, 8, &[flaky]).unwrap();
        assert_eq!(p_off.entries[0].eta, p_healthy.entries[0].eta);
    }

    #[test]
    fn dashboard_renders_rows_and_flags() {
        let cfg = RushConfig::default();
        let jobs = vec![
            input(vec![60; 10], 8, 0.0, sigmoid(600.0, 5.0, 0.05)),
            input(vec![60; 10], 8, 5000.0, sigmoid(50.0, 5.0, 1.0)), // expired
        ];
        let plan = compute_plan(&cfg, 8, &jobs).unwrap();
        let out = render_dashboard(&plan, &["healthy", "expired"]);
        assert!(out.contains("healthy"));
        assert!(out.contains("expired"));
        assert!(out.contains("!! impossible"));
        assert_eq!(out.lines().count(), 4); // header + rule + 2 rows
        // Missing labels fall back to indices.
        let out = render_dashboard(&plan, &[]);
        assert!(out.contains('0'));
    }

    #[test]
    fn plan_respects_capacity_in_first_slot() {
        let cfg = RushConfig::default();
        let jobs: Vec<PlanInput<'_>> = (0..6)
            .map(|i| input(vec![60; 10], 10, 0.0, sigmoid(200.0 + i as f64 * 50.0, 5.0, 0.1)))
            .collect();
        let p = compute_plan(&cfg, 8, &jobs).unwrap();
        assert!(p.total_desired_now() <= 8, "desired {} > capacity", p.total_desired_now());
    }

    fn mixed_fleet(n: usize) -> Vec<PlanInput<'static>> {
        (0..n)
            .map(|i| {
                let mut j = input(
                    vec![40 + (i as u64 * 7) % 50; 4 + i % 9],
                    3 + (i * 5) % 40,
                    (i as f64 * 13.0) % 300.0,
                    sigmoid(200.0 + i as f64 * 37.0, 1.0 + (i % 4) as f64, 0.05),
                );
                j.failed_attempts = i % 3;
                j
            })
            .collect()
    }

    #[test]
    fn cached_plan_is_bit_identical_to_uncached() {
        let cfg = RushConfig::default();
        let jobs = mixed_fleet(40);
        let mut cache = PlanCache::new();
        let cold = compute_plan_cached(&cfg, 16, &jobs, &mut cache).unwrap();
        let plain = compute_plan(&cfg, 16, &jobs).unwrap();
        assert_eq!(cold, plain, "cold cached pass must equal uncached");
        // Warm pass: all per-job solves served from the cache, same plan.
        let misses_after_cold = cache.misses();
        let warm = compute_plan_cached(&cfg, 16, &jobs, &mut cache).unwrap();
        assert_eq!(warm, plain, "warm cached pass must equal uncached");
        assert_eq!(cache.misses(), misses_after_cold, "warm pass must not recompute");
        assert_eq!(cache.hits(), jobs.len() as u64);
    }

    #[test]
    fn cache_misses_only_the_mutated_job() {
        let cfg = RushConfig::default();
        let mut jobs = mixed_fleet(20);
        let mut cache = PlanCache::new();
        compute_plan_cached(&cfg, 16, &jobs, &mut cache).unwrap();
        let baseline_misses = cache.misses();
        // One event: job 7 completes a task.
        jobs[7].samples.to_mut().push(44);
        jobs[7].remaining_tasks -= 1;
        let incremental = compute_plan_cached(&cfg, 16, &jobs, &mut cache).unwrap();
        assert_eq!(cache.misses(), baseline_misses + 1, "exactly one job recomputed");
        let fresh = compute_plan(&cfg, 16, &jobs).unwrap();
        assert_eq!(incremental, fresh);
    }

    #[test]
    fn cache_prunes_departed_jobs_and_keys_on_config() {
        let cfg = RushConfig::default();
        let jobs = mixed_fleet(10);
        let mut cache = PlanCache::new();
        compute_plan_cached(&cfg, 16, &jobs, &mut cache).unwrap();
        assert!(cache.len() <= 10);
        // Half the fleet departs: the next pass retains only live entries.
        compute_plan_cached(&cfg, 16, &jobs[..5], &mut cache).unwrap();
        assert!(cache.len() <= 5, "cache kept {} entries for 5 jobs", cache.len());
        // A changed θ misses (stale η would be wrong) and still matches
        // the uncached pipeline.
        let cfg2 = cfg.with_theta(0.95);
        let p = compute_plan_cached(&cfg2, 16, &jobs[..5], &mut cache).unwrap();
        assert_eq!(p, compute_plan(&cfg2, 16, &jobs[..5]).unwrap());
        // An emptied cluster clears the cache entirely.
        compute_plan_cached(&cfg, 16, &[], &mut cache).unwrap();
        assert!(cache.is_empty());
    }

    #[test]
    fn incremental_plan_bit_identical_across_event_stream() {
        let cfg = RushConfig::default();
        let mut jobs = mixed_fleet(30);
        let mut state = PlanState::new();
        for step in 0..24u64 {
            // One scheduling event per pass: a task completes (sample +
            // remaining), a task fails, or a job ages — the planner
            // steady state.
            let k = (step as usize * 7) % jobs.len();
            match step % 3 {
                0 => {
                    jobs[k].samples.to_mut().push(40 + (step * 13) % 60);
                    jobs[k].remaining_tasks = jobs[k].remaining_tasks.saturating_sub(1).max(1);
                }
                1 => jobs[k].failed_attempts += 1,
                _ => {
                    for j in jobs.iter_mut() {
                        j.age += 1.0;
                    }
                }
            }
            let fresh = compute_plan(&cfg, 16, &jobs).unwrap();
            let inc = compute_plan_incremental(&cfg, 16, &jobs, &mut state).unwrap();
            assert_eq!(inc, fresh, "step {step}");
        }
        // A demand-only event must actually replay, not re-peel.
        jobs[3].samples.to_mut().push(47);
        let fresh = compute_plan(&cfg, 16, &jobs).unwrap();
        let inc = compute_plan_incremental(&cfg, 16, &jobs, &mut state).unwrap();
        assert_eq!(inc, fresh);
        assert!(state.last_stats().peel_replay.delta, "demand-only event must take the delta path");
        // A capacity change (spot revocation: 16 → 12) replays as a
        // divergence layer — still the delta path, still exact.
        let fresh = compute_plan(&cfg, 12, &jobs).unwrap();
        let inc = compute_plan_incremental(&cfg, 12, &jobs, &mut state).unwrap();
        assert_eq!(inc, fresh);
        assert!(
            state.last_stats().peel_replay.delta,
            "capacity-only event must take the delta path"
        );
        // A drained cluster resets the state.
        compute_plan_incremental(&cfg, 12, &[], &mut state).unwrap();
        assert!(state.cache().is_empty());
    }

    #[test]
    fn batch_solve_matches_per_job_regardless_of_count() {
        // Crossing PARALLEL_THRESHOLD must not change results; with the
        // `parallel` feature off this pins the chunk-free path too.
        let cfg = RushConfig::default();
        let jobs = mixed_fleet(70);
        let whole = compute_plan(&cfg, 16, &jobs).unwrap();
        for (i, job) in jobs.iter().enumerate() {
            let single = compute_plan(&cfg, 16, std::slice::from_ref(job)).unwrap();
            assert_eq!(
                (whole.entries[i].eta, whole.entries[i].task_len),
                (single.entries[0].eta, single.entries[0].task_len),
                "job {i} solve differs between batch and solo"
            );
        }
    }
}

//! The RUSH robust scheduler (ICDCS 2016) — core algorithms and the
//! YARN-style container-assignment unit.
//!
//! RUSH allocates cluster containers to jobs whose utilities depend on their
//! completion times, under *uncertain* job demands. The pipeline, run on
//! every scheduling event (the paper's feedback cycle):
//!
//! 1. **Estimate** — a per-job DE unit (from [`rush_estimator`]) turns
//!    completed-task runtime samples into a reference distribution `φ_i` of
//!    remaining demand.
//! 2. **Robustify** ([`wcde`]) — the Worst-Case Distribution Estimation
//!    problem finds `η_i = max Ω_i⁻¹(θ)`, the θ-quantile of the *worst*
//!    distribution within KL-divergence `δ` of `φ_i`, via bisection
//!    (Algorithm 2) with a closed-form Relative-Entropy-Minimization oracle
//!    ([`rem`], Algorithm 1, Theorem 1).
//! 3. **Peel** ([`onion`]) — the Time-Aware Scheduling problem maximizes the
//!    lexicographic max-min utility vector by peeling bottleneck jobs layer
//!    by layer (Algorithm 3, Theorem 2).
//! 4. **Map** ([`mapping`]) — targets become a continuity-respecting
//!    per-container plan (Algorithm 4), each job completing no later than
//!    `T_i + R_i` (Theorem 3).
//! 5. **Assign** ([`plan`]) — only the plan's next-slot column is used:
//!    the free container goes to the job with the largest gap between
//!    planned and current occupancy, then the cycle repeats on the next
//!    event. The production assignment unit lives in `rush-planner`
//!    (`rush_planner::RushScheduler`, a thin adapter over the shared
//!    planner kernel); [`scheduler::ReferenceScheduler`] here is its
//!    frozen pre-kernel twin, kept for differential testing.
//!
//! # Example: one pass of the robust pipeline
//!
//! ```
//! use rush_core::{plan::{PlanInput, compute_plan}, RushConfig};
//! use rush_utility::TimeUtility;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = RushConfig::default();
//! let jobs = vec![
//!     PlanInput {
//!         samples: vec![50, 60, 70, 55, 65].into(),
//!         remaining_tasks: 10,
//!         running: 0,
//!         failed_attempts: 0,
//!         age: 0.0,
//!         utility: TimeUtility::sigmoid(700.0, 5.0, 0.02)?,
//!     },
//! ];
//! let plan = compute_plan(&cfg, 8, &jobs)?;
//! assert_eq!(plan.entries.len(), 1);
//! assert!(plan.entries[0].eta > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod error;
pub mod mapping;
pub mod onion;
pub mod plan;
pub mod reference;
pub mod rem;
pub mod scheduler;
pub mod wcde;

pub use cluster::{CapacityChange, CapacityEvent, ClusterModel, ContainerClass, ReliabilityTier};
pub use config::RushConfig;
pub use error::CoreError;
pub use plan::{
    compute_plan, compute_plan_cached, compute_plan_incremental, Plan, PlanCache, PlanInput,
    PlanState,
};
pub use scheduler::ReferenceScheduler;

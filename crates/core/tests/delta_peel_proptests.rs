//! Property-based tests for delta-peeling: randomized scheduling-event
//! streams (arrival, task sample, cancel, task failure, capacity change,
//! overload episodes) driven through the incremental planner, with every
//! step checked two ways:
//!
//! * the incremental plan must be **bit-identical** to a from-scratch
//!   `compute_plan` pass — the delta replay, the resumed layer loop, and
//!   the spliced mapping all share the full path's arithmetic, so there is
//!   no tolerance to hide behind; and
//! * the peel layering must agree with the frozen `onion::naive::peel`
//!   oracle (Algorithm 3 transcribed) to within bisection wobble, exactly
//!   as the non-incremental differential suite checks.

use proptest::prelude::*;
use rush_core::onion::{self, OnionJob, PeelState};
use rush_core::plan::{compute_plan, compute_plan_incremental, PlanInput, PlanState};
use rush_core::RushConfig;
use rush_utility::TimeUtility;

/// (samples, remaining, failed, budget, weight, age)
type RawJob = (Vec<u64>, usize, usize, f64, f64, f64);

fn job_strategy() -> impl Strategy<Value = RawJob> {
    (
        prop::collection::vec(1u64..200, 0..24), // samples
        1usize..60,                              // remaining tasks
        0usize..4,                               // failed attempts
        100.0f64..3000.0,                        // utility budget
        1.0f64..5.0,                             // utility weight
        0.0f64..150.0,                           // age
    )
}

fn build_input(raw: &RawJob) -> PlanInput<'static> {
    let (samples, remaining, failed, budget, weight, age) = raw;
    PlanInput {
        samples: samples.clone().into(),
        remaining_tasks: *remaining,
        running: 0,
        failed_attempts: *failed,
        age: *age,
        utility: TimeUtility::sigmoid(*budget, *weight, 10.0 / *budget).unwrap(),
    }
}

/// One scheduling event. Selectors are reduced modulo the current fleet
/// size when applied, so shrunk cases stay valid.
#[derive(Clone, Debug)]
enum Ev {
    /// A task completed: one more runtime sample for the estimator.
    Sample { sel: usize, val: u64 },
    /// A new job enters the cluster.
    Arrival(RawJob),
    /// A job is cancelled and leaves the fleet.
    Cancel { sel: usize },
    /// A task attempt failed (bumps the failure-inflation factor).
    Failure { sel: usize },
    /// The cluster shrinks or grows.
    Capacity { cap: u32 },
    /// Overload episode: one job suddenly needs far more work than the
    /// cluster can serve before its deadline.
    Overload { sel: usize, tasks: usize },
}

fn event_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0usize..64, 1u64..200).prop_map(|(sel, val)| Ev::Sample { sel, val }),
        job_strategy().prop_map(Ev::Arrival),
        (0usize..64).prop_map(|sel| Ev::Cancel { sel }),
        (0usize..64).prop_map(|sel| Ev::Failure { sel }),
        (4u32..64).prop_map(|cap| Ev::Capacity { cap }),
        (0usize..64, 200usize..600).prop_map(|(sel, tasks)| Ev::Overload { sel, tasks }),
    ]
}

/// Bit-exact plan comparison: every entry field, including float bits.
fn assert_plans_identical(
    a: &rush_core::plan::Plan,
    b: &rush_core::plan::Plan,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.entries.len(), b.entries.len());
    for (x, y) in a.entries.iter().zip(&b.entries) {
        prop_assert_eq!(x.eta, y.eta);
        prop_assert_eq!(x.task_len, y.task_len);
        prop_assert_eq!(x.target.to_bits(), y.target.to_bits());
        prop_assert_eq!(x.level.to_bits(), y.level.to_bits());
        prop_assert_eq!(x.desired_now, y.desired_now);
        prop_assert_eq!(x.planned_completion, y.planned_completion);
        prop_assert_eq!(x.impossible, y.impossible);
    }
    Ok(())
}

/// Long steady-state stream: enough events to cross the strict-invariants
/// spot-check interval (64 passes) more than twice, so a build with
/// `--features strict-invariants` and debug assertions actually executes
/// the every-N-events from-scratch comparison inside
/// `compute_plan_incremental` — not just the per-step checks made here.
#[test]
fn long_stream_crosses_spot_check_interval() {
    let cfg = RushConfig::default();
    let mut jobs: Vec<PlanInput<'static>> = (0..6)
        .map(|i| {
            build_input(&(
                vec![40 + i * 11, 60 + i * 7],
                8 + i as usize * 5,
                0,
                600.0 + i as f64 * 300.0,
                1.0 + i as f64 * 0.5,
                0.0,
            ))
        })
        .collect();
    let mut state = PlanState::new();
    let _ = compute_plan_incremental(&cfg, 16, &jobs, &mut state).unwrap();
    for e in 0..140u64 {
        let k = (e as usize) % jobs.len();
        jobs[k].samples.to_mut().push(30 + (e * 13) % 70);
        let full = compute_plan(&cfg, 16, &jobs).unwrap();
        let inc = compute_plan_incremental(&cfg, 16, &jobs, &mut state).unwrap();
        assert_eq!(full, inc, "event {e}: incremental plan diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The maintained `PlanState` (peel trace + incremental mapping + keyed
    /// solve cache) survives an arbitrary event stream: after *every*
    /// event the incremental plan is bit-identical to a from-scratch pass
    /// over the same inputs.
    #[test]
    fn event_stream_plan_bit_identical_to_full(
        raw in prop::collection::vec(job_strategy(), 1..10),
        events in prop::collection::vec(event_strategy(), 4..14),
        capacity0 in 4u32..64,
    ) {
        let cfg = RushConfig::default();
        let mut jobs: Vec<PlanInput<'static>> = raw.iter().map(build_input).collect();
        let mut capacity = capacity0;
        let mut state = PlanState::new();

        let full = compute_plan(&cfg, capacity, &jobs).unwrap();
        let inc = compute_plan_incremental(&cfg, capacity, &jobs, &mut state).unwrap();
        assert_plans_identical(&full, &inc)?;

        for ev in &events {
            match ev {
                Ev::Sample { sel, val } => {
                    let k = sel % jobs.len();
                    jobs[k].samples.to_mut().push(*val);
                }
                Ev::Arrival(raw) => jobs.push(build_input(raw)),
                Ev::Cancel { sel } => {
                    if jobs.len() > 1 {
                        let k = sel % jobs.len();
                        jobs.remove(k);
                    }
                }
                Ev::Failure { sel } => {
                    let k = sel % jobs.len();
                    jobs[k].failed_attempts += 1;
                }
                Ev::Capacity { cap } => capacity = *cap,
                Ev::Overload { sel, tasks } => {
                    let k = sel % jobs.len();
                    jobs[k].remaining_tasks = *tasks;
                }
            }
            let full = compute_plan(&cfg, capacity, &jobs).unwrap();
            let inc = compute_plan_incremental(&cfg, capacity, &jobs, &mut state).unwrap();
            assert_plans_identical(&full, &inc)?;
        }
    }

    /// A typed [`rush_core::ClusterModel`] spot-churn schedule drives the
    /// capacity trajectory while demands drift between events: at every
    /// revoke/restock of the lowered stream the incremental plan must stay
    /// bit-identical to a from-scratch pass. This is the capacity-churn
    /// regime the divergence-layer replay was built for — the whole spot
    /// pool vanishes and returns, cycle after cycle.
    #[test]
    fn cluster_model_spot_churn_bit_identical_to_full(
        raw in prop::collection::vec(job_strategy(), 2..8),
        reserved in 3u32..8,
        spot in 2u32..10,
        period in 4u64..16,
        outage in 1u64..4,
        cycles in 2u32..5,
        drift in 1u64..120,
    ) {
        let cfg = RushConfig::default();
        // Revoke the entire spot pool each cycle — the worst-case swing —
        // keeping the period longer than the outage so cycles don't
        // overlap (the model validator rejects double-revocations).
        let model = rush_core::ClusterModel::tiered(reserved, 0, spot)
            .with_spot_churn(1, 2, period.max(outage + 1), outage, spot, cycles);
        model.validate().unwrap();

        let mut jobs: Vec<PlanInput<'static>> = raw.iter().map(build_input).collect();
        let mut state = PlanState::new();
        let full = compute_plan(&cfg, model.total_capacity(), &jobs).unwrap();
        let inc =
            compute_plan_incremental(&cfg, model.total_capacity(), &jobs, &mut state).unwrap();
        assert_plans_identical(&full, &inc)?;

        for (step, ev) in model.events.iter().enumerate() {
            // Demand drift between capacity events: a fresh sample lands
            // on one job, as it would in a live cluster.
            let k = step % jobs.len();
            jobs[k].samples.to_mut().push(drift + (step as u64 * 13) % 70);
            let capacity = model.capacity_at(ev.at);
            let full = compute_plan(&cfg, capacity, &jobs).unwrap();
            let inc = compute_plan_incremental(&cfg, capacity, &jobs, &mut state).unwrap();
            assert_plans_identical(&full, &inc)?;
        }
    }

    /// The peel layer alone, under the same event kinds, agrees with the
    /// frozen naive oracle at every step of the stream. The incremental
    /// peel is checked bitwise against the optimized full peel (they share
    /// every probe's arithmetic), and both against `naive::peel` at a
    /// coarser bound that absorbs bisection wobble — the same two-tier
    /// comparison the non-incremental differential suite uses.
    #[test]
    fn event_stream_peel_matches_naive_oracle(
        raw in prop::collection::vec((1u64..4000, 100.0f64..3000.0, 1.0f64..5.0), 2..20),
        events in prop::collection::vec(event_strategy(), 4..14),
        capacity0 in 4u32..64,
    ) {
        let tolerance = 1e-6;
        let bound = 1e-3;
        let horizon = 1e6;
        let mut utilities: Vec<TimeUtility> = raw
            .iter()
            .map(|(_, budget, weight)| {
                TimeUtility::sigmoid(*budget, *weight, 10.0 / *budget).unwrap()
            })
            .collect();
        let mut demands: Vec<u64> = raw.iter().map(|(d, _, _)| *d).collect();
        // Job identity per index: `same_context` may only be passed when
        // the utility at every index is unchanged since the previous pass
        // (the contract `compute_plan` upholds by comparing utilities).
        let mut ids: Vec<usize> = (0..demands.len()).collect();
        let mut next_id = demands.len();
        let mut prev_ids = ids.clone();
        let mut capacity = capacity0;
        let mut state = PeelState::new();

        for step in 0..=events.len() {
            if step > 0 {
                match &events[step - 1] {
                    Ev::Sample { sel, val } => {
                        // Demand drift: what a fresh sample does to η.
                        let k = sel % demands.len();
                        demands[k] = demands[k] / 2 + val * 7;
                    }
                    Ev::Arrival((_, _, _, budget, weight, _)) => {
                        utilities.push(
                            TimeUtility::sigmoid(*budget, *weight, 10.0 / *budget).unwrap(),
                        );
                        demands.push(*budget as u64);
                        ids.push(next_id);
                        next_id += 1;
                    }
                    Ev::Cancel { sel } => {
                        if demands.len() > 1 {
                            let k = sel % demands.len();
                            demands.remove(k);
                            utilities.remove(k);
                            ids.remove(k);
                        }
                    }
                    Ev::Failure { sel } => {
                        let k = sel % demands.len();
                        demands[k] = demands[k].saturating_add(demands[k] / 4 + 1);
                    }
                    Ev::Capacity { cap } => capacity = *cap,
                    Ev::Overload { sel, tasks } => {
                        let k = sel % demands.len();
                        demands[k] = (*tasks as u64).saturating_mul(50);
                    }
                }
            }
            let jobs: Vec<OnionJob<'_>> = demands
                .iter()
                .zip(&utilities)
                .map(|(&d, u)| OnionJob { demand: d, utility: u })
                .collect();
            let same_context = ids == prev_ids;
            prev_ids.clone_from(&ids);

            let full = onion::peel(&jobs, capacity, tolerance, horizon).unwrap();
            let inc =
                onion::peel_incremental(&jobs, capacity, tolerance, horizon, same_context, &mut state)
                    .unwrap();
            let naive = onion::naive::peel(&jobs, capacity, tolerance, horizon).unwrap();

            // Tier 1: incremental ≡ full, bitwise.
            prop_assert_eq!(inc.len(), full.len());
            for (a, b) in inc.iter().zip(&full) {
                prop_assert_eq!(a.job, b.job, "step {}: peel order diverged", step);
                prop_assert_eq!(
                    a.level.to_bits(),
                    b.level.to_bits(),
                    "step {}: level bits diverged for job {}",
                    step,
                    a.job
                );
                prop_assert_eq!(
                    a.deadline.to_bits(),
                    b.deadline.to_bits(),
                    "step {}: deadline bits diverged for job {}",
                    step,
                    a.job
                );
                prop_assert_eq!(a.lax, b.lax);
            }

            // Tier 2: both match the frozen oracle up to bisection wobble.
            prop_assert_eq!(naive.len(), inc.len());
            let mut inc_by_job = inc.clone();
            inc_by_job.sort_by_key(|t| t.job);
            let mut ref_by_job = naive.clone();
            ref_by_job.sort_by_key(|t| t.job);
            for (f, r) in inc_by_job.iter().zip(&ref_by_job) {
                prop_assert_eq!(f.job, r.job);
                prop_assert_eq!(
                    f.lax,
                    r.lax,
                    "step {}: deadline-free classification diverged for job {}",
                    step,
                    f.job
                );
                prop_assert!(
                    (f.level - r.level).abs() <= bound,
                    "step {}: job {} level {} vs oracle {}",
                    step, f.job, f.level, r.level
                );
            }
            let mut inc_levels: Vec<f64> = inc.iter().map(|t| t.level).collect();
            let mut ref_levels: Vec<f64> = naive.iter().map(|t| t.level).collect();
            inc_levels.sort_by(|a, b| a.partial_cmp(b).unwrap());
            ref_levels.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (f, r) in inc_levels.iter().zip(&ref_levels) {
                prop_assert!(
                    (f - r).abs() <= bound,
                    "step {}: layer level {} vs oracle {}",
                    step, f, r
                );
            }
        }
    }
}

//! Property-based tests for the RUSH core algorithms: Theorem 1 (REM
//! closed-form optimality), WCDE monotonicity, Theorem 2 (peel targets are
//! capacity-feasible), local max-min optimality of the peel, and Theorem 3
//! (mapping completes every job by `T + R`).

use proptest::prelude::*;
use rush_core::mapping::{capacity_condition_holds, map_continuous, MapJob};
use rush_core::onion::{peel, OnionJob};
use rush_core::rem;
use rush_core::wcde::worst_case_quantile;
use rush_prob::Pmf;
use rush_utility::{LatestTime, TimeUtility, Utility};

fn pmf_strategy() -> impl Strategy<Value = Pmf> {
    prop::collection::vec(0.01f64..10.0, 4..64)
        .prop_map(|ws| Pmf::from_weights(ws, 1).expect("positive weights"))
}

proptest! {
    /// Theorem 1: the closed form beats any feasible two-group reweighting
    /// and any head-tail mass split we can construct.
    #[test]
    fn rem_closed_form_is_optimal(
        phi in pmf_strategy(),
        l_frac in 0.1f64..0.9,
        theta in 0.2f64..0.95,
        alt_mass in 0.01f64..1.0,
    ) {
        let l = ((phi.bins() as f64 * l_frac) as usize).min(phi.bins() - 2);
        let star = rem::min_kl(&phi, l, theta).unwrap();
        prop_assert!(star >= 0.0);
        // Construct an arbitrary feasible alternative: head mass
        // alt_mass*theta ≤ theta, tail carries the rest, shapes follow phi.
        let head: f64 = phi.probs()[..=l].iter().sum();
        let tail = 1.0 - head;
        if tail > 1e-9 {
            let hm = alt_mass * theta;
            let ws: Vec<f64> = phi
                .probs()
                .iter()
                .enumerate()
                .map(|(i, &p)| if i <= l { p * hm / head } else { p * (1.0 - hm) / tail })
                .collect();
            let alt = Pmf::from_weights(ws, 1).unwrap();
            let alt_head: f64 = alt.probs()[..=l].iter().sum();
            prop_assert!(alt_head <= theta + 1e-9);
            let alt_kl = alt.kl_divergence(&phi).unwrap();
            prop_assert!(alt_kl + 1e-9 >= star,
                "alternative {alt_kl} beats closed form {star}");
        }
    }

    /// REM's minimal KL is monotone in the constrained head length.
    #[test]
    fn rem_min_kl_monotone(phi in pmf_strategy(), theta in 0.2f64..0.95) {
        let mut prev = 0.0;
        for l in 0..phi.bins() - 1 {
            let kl = rem::min_kl(&phi, l, theta).unwrap();
            prop_assert!(kl + 1e-9 >= prev, "KL dipped at L={l}");
            prev = kl;
        }
    }

    /// WCDE: η never undershoots the nominal quantile and is monotone in
    /// both δ and θ.
    #[test]
    fn wcde_monotone_and_dominates_nominal(
        phi in pmf_strategy(),
        theta in 0.2f64..0.95,
    ) {
        let phi = phi.with_support_floor(1e-9).unwrap();
        let nominal = phi.quantile(theta);
        let mut prev = 0;
        for delta in [0.0, 0.2, 0.5, 1.0, 2.0] {
            let r = worst_case_quantile(&phi, theta, delta).unwrap();
            prop_assert!(r.eta >= nominal, "eta {} < nominal {nominal}", r.eta);
            prop_assert!(r.eta >= prev, "eta not monotone in delta");
            prev = r.eta;
        }
        let mut prev = 0;
        for theta2 in [theta * 0.5, theta, theta + (1.0 - theta) * 0.5] {
            let r = worst_case_quantile(&phi, theta2, 0.5).unwrap();
            prop_assert!(r.eta >= prev, "eta not monotone in theta");
            prev = r.eta;
        }
    }

    /// The WCDE guarantee: no distribution within the KL ball puts its
    /// θ-quantile beyond the returned bin.
    #[test]
    fn wcde_guarantee(phi in pmf_strategy(), theta in 0.2f64..0.9, delta in 0.0f64..1.5) {
        let phi = phi.with_support_floor(1e-9).unwrap();
        let r = worst_case_quantile(&phi, theta, delta).unwrap();
        if r.eta_bin + 1 < phi.bins() {
            let kl = rem::min_kl(&phi, r.eta_bin + 1, theta).unwrap();
            prop_assert!(kl > delta, "a ball member exceeds eta: kl {kl} <= {delta}");
        }
    }
}

/// Random onion instances: sigmoid jobs with varied budgets/weights.
fn onion_instance() -> impl Strategy<Value = (Vec<(u64, f64, f64, f64)>, u32)> {
    (
        prop::collection::vec(
            (1u64..2000, 20.0f64..2000.0, 1.0f64..5.0, 0.005f64..0.5),
            1..12,
        ),
        1u32..32,
    )
}

proptest! {
    /// Theorem 2: the peel's committed targets always satisfy the
    /// prefix-capacity condition.
    #[test]
    fn peel_targets_capacity_feasible((specs, capacity) in onion_instance()) {
        let utils: Vec<TimeUtility> = specs
            .iter()
            .map(|&(_, b, w, beta)| TimeUtility::sigmoid(b, w, beta).unwrap())
            .collect();
        let jobs: Vec<OnionJob<'_>> = utils
            .iter()
            .zip(&specs)
            .map(|(u, &(d, ..))| OnionJob { demand: d, utility: u })
            .collect();
        let targets = peel(&jobs, capacity, 0.01, 1e7).unwrap();
        prop_assert_eq!(targets.len(), jobs.len());
        let mut pairs: Vec<(f64, u64)> =
            targets.iter().map(|t| (t.deadline, jobs[t.job].demand)).collect();
        pairs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut cum = 0u64;
        for (d, e) in pairs {
            cum += e;
            prop_assert!(
                cum as f64 <= capacity as f64 * d + 1e-6,
                "prefix demand {cum} > C*d = {}",
                capacity as f64 * d
            );
        }
    }

    /// Each peeled job's achieved level is consistent with its deadline:
    /// U(deadline) ≥ level (up to the bisection tolerance).
    #[test]
    fn peel_levels_match_deadlines((specs, capacity) in onion_instance()) {
        let utils: Vec<TimeUtility> = specs
            .iter()
            .map(|&(_, b, w, beta)| TimeUtility::sigmoid(b, w, beta).unwrap())
            .collect();
        let jobs: Vec<OnionJob<'_>> = utils
            .iter()
            .zip(&specs)
            .map(|(u, &(d, ..))| OnionJob { demand: d, utility: u })
            .collect();
        let targets = peel(&jobs, capacity, 0.01, 1e7).unwrap();
        for t in &targets {
            if t.lax {
                continue; // deferred jobs have informative deadlines only
            }
            let u_at = utils[t.job].utility(t.deadline);
            prop_assert!(
                u_at + 0.05 >= t.level,
                "job {} deadline {} gives {} < level {}",
                t.job,
                t.deadline,
                u_at,
                t.level
            );
        }
    }

    /// Local max-min optimality: tightening any single strict job's
    /// deadline to reach a meaningfully higher level, with every other
    /// job's reservation intact, must violate capacity — otherwise the
    /// peel left utility on the table.
    #[test]
    fn peel_is_locally_optimal((specs, capacity) in onion_instance()) {
        let utils: Vec<TimeUtility> = specs
            .iter()
            .map(|&(_, b, w, beta)| TimeUtility::sigmoid(b, w, beta).unwrap())
            .collect();
        let jobs: Vec<OnionJob<'_>> = utils
            .iter()
            .zip(&specs)
            .map(|(u, &(d, ..))| OnionJob { demand: d, utility: u })
            .collect();
        let targets = peel(&jobs, capacity, 0.01, 1e7).unwrap();
        let reservations: Vec<(usize, f64)> =
            targets.iter().map(|t| (t.job, t.deadline)).collect();
        for t in &targets {
            if t.lax || jobs[t.job].demand == 0 {
                continue;
            }
            // Improvement of 0.1 utility must be infeasible for bottleneck
            // jobs. (Jobs peeled in the final peel-all layer sit at their
            // sup and cannot improve by construction.)
            let improved = t.level + 0.1;
            if improved >= utils[t.job].sup() {
                continue;
            }
            let LatestTime::At(d_improved) = utils[t.job].latest_time(improved) else {
                continue;
            };
            // Build the deadline set with this job tightened.
            let mut pairs: Vec<(f64, u64)> = reservations
                .iter()
                .map(|&(j, d)| {
                    let dd = if j == t.job { d_improved } else { d };
                    (dd, jobs[j].demand)
                })
                .collect();
            pairs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut cum = 0u64;
            let mut feasible = true;
            for (d, e) in pairs {
                cum += e;
                if cum as f64 > capacity as f64 * d + 1e-6 {
                    feasible = false;
                    break;
                }
            }
            // If tightening is feasible the job was NOT a true bottleneck —
            // allowed only when its level is within tolerance of the layer
            // above (bisection slack) or it sits at a later layer whose
            // improvement would lower an earlier one. We tolerate feasible
            // improvements only if some *other* job's level is within 0.15
            // of this one's (they share a contested layer boundary).
            if feasible {
                let near_layer = targets.iter().any(|o| {
                    o.job != t.job && (o.level - t.level).abs() < 0.15
                });
                prop_assert!(
                    near_layer,
                    "job {} at level {} could improve to {} for free",
                    t.job,
                    t.level,
                    improved
                );
            }
        }
    }
}

proptest! {
    /// Cross-validation: the onion peel's first-layer (minimum) level
    /// agrees with the LP reference solution of the same TAS instance.
    #[test]
    fn onion_first_layer_matches_lp_reference((specs, capacity) in onion_instance()) {
        let utils: Vec<TimeUtility> = specs
            .iter()
            .map(|&(_, b, w, beta)| TimeUtility::sigmoid(b, w, beta).unwrap())
            .collect();
        let jobs: Vec<OnionJob<'_>> = utils
            .iter()
            .zip(&specs)
            .map(|(u, &(d, ..))| OnionJob { demand: d, utility: u })
            .collect();
        let lp = rush_core::reference::max_min_level_lp(&jobs, capacity, 1e-3, 1e7).unwrap();
        let targets = peel(&jobs, capacity, 1e-3, 1e7).unwrap();
        let onion_min = targets.iter().map(|t| t.level).fold(f64::INFINITY, f64::min);
        prop_assert!(
            (lp - onion_min).abs() < 0.05,
            "LP reference {lp} vs onion minimum level {onion_min}"
        );
    }
}

/// Random mapping instances that satisfy the Theorem 2 condition by
/// construction: targets are assigned greedily with enough headroom.
fn feasible_mapping_instance() -> impl Strategy<Value = (Vec<MapJob>, u32)> {
    (
        prop::collection::vec((1u64..12, 1u64..30), 1..10),
        1u32..8,
    )
        .prop_map(|(tasks_lens, capacity)| {
            let mut jobs = Vec::with_capacity(tasks_lens.len());
            let mut cum = 0u64;
            for (tasks, len) in tasks_lens {
                cum += tasks * len;
                // Target exactly at the cumulative waterline: the tightest
                // deadline satisfying the prefix condition.
                let target = cum.div_ceil(capacity as u64).max(1);
                jobs.push(MapJob { tasks, task_len: len, target, lax: false });
            }
            (jobs, capacity)
        })
}

proptest! {
    /// Theorem 3: under the capacity condition, the continuous mapping
    /// completes every job no later than `T_i + R_i`.
    #[test]
    fn mapping_theorem3_bound((jobs, capacity) in feasible_mapping_instance()) {
        prop_assume!(capacity_condition_holds(&jobs, capacity));
        let placements = map_continuous(&jobs, capacity).unwrap();
        for (i, p) in placements.iter().enumerate() {
            prop_assert!(
                p.completion <= jobs[i].target + jobs[i].task_len,
                "job {i}: completion {} > T+R = {}",
                p.completion,
                jobs[i].target + jobs[i].task_len
            );
        }
    }

    /// The mapping places every task exactly once and never overlaps two
    /// segments on one container.
    #[test]
    fn mapping_conservation_and_disjointness((jobs, capacity) in feasible_mapping_instance()) {
        let placements = map_continuous(&jobs, capacity).unwrap();
        let mut intervals: Vec<(u32, u64, u64)> = Vec::new();
        for (i, p) in placements.iter().enumerate() {
            let placed: u64 = p.segments.iter().map(|s| s.tasks).sum();
            prop_assert_eq!(placed, jobs[i].tasks, "job {} task conservation", i);
            for s in &p.segments {
                prop_assert!(s.container < capacity);
                intervals.push((s.container, s.start, s.start + s.tasks * jobs[i].task_len));
            }
        }
        intervals.sort();
        for w in intervals.windows(2) {
            let (c1, _, e1) = w[0];
            let (c2, s2, _) = w[1];
            if c1 == c2 {
                prop_assert!(e1 <= s2, "overlap on container {c1}: {:?}", w);
            }
        }
    }

    /// Lax jobs never displace strict reservations: adding a lax job leaves
    /// every strict job's completion unchanged.
    #[test]
    fn lax_jobs_never_displace_strict(
        (mut jobs, capacity) in feasible_mapping_instance(),
        lax_tasks in 1u64..10,
        lax_len in 1u64..30,
    ) {
        let before = map_continuous(&jobs, capacity).unwrap();
        jobs.push(MapJob { tasks: lax_tasks, task_len: lax_len, target: 1, lax: true });
        let after = map_continuous(&jobs, capacity).unwrap();
        for i in 0..before.len() {
            prop_assert_eq!(
                before[i].completion,
                after[i].completion,
                "strict job {} moved when a lax job was added",
                i
            );
        }
    }
}

//! Property-based tests for the incremental CA pipeline: the memoized
//! (and, when the `parallel` feature is on, multi-threaded) plan path must
//! be indistinguishable from the straightforward one, and the optimized
//! onion peel must produce the same layering as the reference
//! transcription of Algorithm 3.

use proptest::prelude::*;
use rush_core::onion::{self, OnionJob};
use rush_core::plan::{compute_plan, compute_plan_cached, PlanCache, PlanInput};
use rush_core::{config::EstimatorKind, RushConfig};
use rush_utility::TimeUtility;

/// (samples, remaining, failed, budget, weight, age)
type RawJob = (Vec<u64>, usize, usize, f64, f64, f64);

fn job_strategy() -> impl Strategy<Value = RawJob> {
    (
        prop::collection::vec(1u64..200, 0..24), // samples
        1usize..60,                              // remaining tasks
        0usize..4,                               // failed attempts
        100.0f64..3000.0,                        // utility budget
        1.0f64..5.0,                             // utility weight
        0.0f64..150.0,                           // age
    )
}

fn build_inputs(raw: &[RawJob]) -> Vec<PlanInput<'static>> {
    raw.iter()
        .map(|(samples, remaining, failed, budget, weight, age)| PlanInput {
            samples: samples.clone().into(),
            remaining_tasks: *remaining,
            running: 0,
            failed_attempts: *failed,
            age: *age,
            utility: TimeUtility::sigmoid(*budget, *weight, 10.0 / *budget).unwrap(),
        })
        .collect()
}

/// Bit-exact plan comparison: every entry field, including float bits.
fn assert_plans_identical(
    a: &rush_core::plan::Plan,
    b: &rush_core::plan::Plan,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.entries.len(), b.entries.len());
    for (x, y) in a.entries.iter().zip(&b.entries) {
        prop_assert_eq!(x.eta, y.eta);
        prop_assert_eq!(x.task_len, y.task_len);
        prop_assert_eq!(x.target.to_bits(), y.target.to_bits());
        prop_assert_eq!(x.level.to_bits(), y.level.to_bits());
        prop_assert_eq!(x.desired_now, y.desired_now);
        prop_assert_eq!(x.planned_completion, y.planned_completion);
        prop_assert_eq!(x.impossible, y.impossible);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The memoized path must be bit-identical to the uncached one across a
    /// fuzzed (θ, δ, samples) grid — cold cache, warm cache, and warm cache
    /// after a single-job mutation (the steady-state scheduling event).
    #[test]
    fn memoized_plan_bit_identical_to_uncached(
        raw in prop::collection::vec(job_strategy(), 1..12),
        theta in 0.55f64..0.99,
        delta in 0.05f64..1.5,
        capacity in 4u32..64,
        mutate_sample in 1u64..200,
    ) {
        let cfg = RushConfig { theta, delta, ..RushConfig::default() };
        let mut jobs = build_inputs(&raw);
        let mut cache = PlanCache::new();

        // Cold cache (all misses) and warm cache (all hits) both match.
        let uncached = compute_plan(&cfg, capacity, &jobs).unwrap();
        let cold = compute_plan_cached(&cfg, capacity, &jobs, &mut cache).unwrap();
        assert_plans_identical(&uncached, &cold)?;
        let warm = compute_plan_cached(&cfg, capacity, &jobs, &mut cache).unwrap();
        assert_plans_identical(&uncached, &warm)?;

        // One scheduling event: mutate a single job, replan through the
        // warm cache, and compare against a from-scratch plan.
        let k = raw.len() / 2;
        jobs[k].samples.to_mut().push(mutate_sample);
        let after_uncached = compute_plan(&cfg, capacity, &jobs).unwrap();
        let after_cached = compute_plan_cached(&cfg, capacity, &jobs, &mut cache).unwrap();
        assert_plans_identical(&after_uncached, &after_cached)?;
    }

    /// The cache keys on the full estimator configuration: switching the
    /// estimator kind must never serve stale entries.
    #[test]
    fn cache_never_leaks_across_estimator_kinds(
        raw in prop::collection::vec(job_strategy(), 1..8),
        capacity in 4u32..64,
    ) {
        let jobs = build_inputs(&raw);
        let mut cache = PlanCache::new();
        for kind in [
            EstimatorKind::Gaussian,
            EstimatorKind::Mean,
            EstimatorKind::Empirical { resamples: 64 },
        ] {
            let cfg = RushConfig { estimator: kind, ..RushConfig::default() };
            let uncached = compute_plan(&cfg, capacity, &jobs).unwrap();
            let cached = compute_plan_cached(&cfg, capacity, &jobs, &mut cache).unwrap();
            assert_plans_identical(&uncached, &cached)?;
        }
    }

    /// Differential test: the optimized peel (incremental committed index,
    /// persistent probe scratch, warm-started galloping bisection) layers
    /// jobs like the reference transcription of Algorithm 3. The two probe
    /// different level sequences, so each converged layer boundary carries
    /// an O(tolerance) wobble that can compound across layers when jobs are
    /// near-tied; running the comparison at a fine tolerance (1e-6) and
    /// checking agreement at a much coarser bound (1e-3) makes the test
    /// sharp on the algorithm while insensitive to bisection noise.
    #[test]
    fn optimized_peel_matches_reference_algorithm(
        raw in prop::collection::vec((1u64..4000, 100.0f64..3000.0, 1.0f64..5.0), 1..40),
        capacity in 4u32..64,
    ) {
        let tolerance = 1e-6;
        let bound = 1e-3;
        let horizon = 1e6;
        let utilities: Vec<TimeUtility> = raw
            .iter()
            .map(|(_, budget, weight)| TimeUtility::sigmoid(*budget, *weight, 10.0 / *budget).unwrap())
            .collect();
        let jobs: Vec<OnionJob<'_>> = raw
            .iter()
            .zip(&utilities)
            .map(|((demand, _, _), u)| OnionJob { demand: *demand, utility: u })
            .collect();
        let fast = onion::peel(&jobs, capacity, tolerance, horizon).unwrap();
        let reference = onion::naive::peel(&jobs, capacity, tolerance, horizon).unwrap();

        // Every job peels exactly once in both.
        prop_assert_eq!(fast.len(), jobs.len());
        prop_assert_eq!(reference.len(), jobs.len());
        let mut fast_by_job = fast.clone();
        fast_by_job.sort_by_key(|t| t.job);
        let mut ref_by_job = reference.clone();
        ref_by_job.sort_by_key(|t| t.job);
        for (f, r) in fast_by_job.iter().zip(&ref_by_job) {
            prop_assert_eq!(f.job, r.job);
            prop_assert_eq!(f.lax, r.lax, "deadline-free classification diverged for job {}", f.job);
            prop_assert!(
                (f.level - r.level).abs() <= bound,
                "job {}: level {} vs reference {}",
                f.job, f.level, r.level
            );
            // Deadlines are NOT compared: `U⁻¹` is ill-conditioned where
            // the utility is nearly flat, so an O(tolerance) level wobble
            // legitimately moves a deadline by a large time span.
        }
        // The sorted level vector (the max-min objective itself) agrees
        // layer by layer.
        let mut fast_levels: Vec<f64> = fast.iter().map(|t| t.level).collect();
        let mut ref_levels: Vec<f64> = reference.iter().map(|t| t.level).collect();
        fast_levels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ref_levels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (f, r) in fast_levels.iter().zip(&ref_levels) {
            prop_assert!((f - r).abs() <= bound, "layer level {} vs {}", f, r);
        }
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to a cargo registry, so the
//! workspace vendors the small slice of the `rand 0.8` API it actually
//! uses: `SmallRng`, `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods `gen`/`gen_range`/`gen_bool`. The generator is xoshiro256++
//! seeded through splitmix64 — the same construction the real `SmallRng`
//! uses on 64-bit targets — so statistical quality is comparable, though
//! streams are NOT bit-compatible with upstream `rand`. Everything in this
//! repo that depends on determinism seeds explicitly, so only internal
//! consistency matters.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (high word of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from an `RngCore` (the stand-in
/// for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range (half-open or inclusive) that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add((rng.next_u64() % (span + 1)) as $wide) as $t
            }
        }
    )*};
}

impl_int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = f64::sample_standard(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = f64::sample_standard(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (`u32`/`u64` full-range, `f64` in
    /// `[0, 1)`, `bool` fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++ with
    /// splitmix64 seed expansion.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            // splitmix64 cannot emit four zeros from any seed, but keep the
            // generator safe against an all-zero state regardless.
            if s == [0; 4] {
                return Self { s: [0xDEAD_BEEF, 1, 2, 3] };
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    use super::RngCore;

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let a = r.gen_range(5..40);
            assert!((5..40).contains(&a));
            let b = r.gen_range(1u32..=5);
            assert!((1..=5).contains(&b));
            let c = r.gen_range(-3i64..3);
            assert!((-3..3).contains(&c));
            let d = r.gen_range(0.5f64..=2.5);
            assert!((0.5..=2.5).contains(&d));
        }
    }

    #[test]
    fn usize_range_covers_support() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

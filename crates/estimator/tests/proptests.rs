//! Property tests for the demand estimators.

use proptest::prelude::*;
use rush_estimator::{
    DistributionEstimator, EmpiricalEstimator, GaussianEstimator, MeanEstimator, WindowedEstimator,
};

fn samples_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..200, 1..64)
}

proptest! {
    /// Every estimator returns a normalized PMF and a positive R for any
    /// sample set and remaining count.
    #[test]
    fn estimates_are_well_formed(samples in samples_strategy(), remaining in 0usize..80) {
        let mean_est = MeanEstimator::new(256).estimate(&samples, remaining).unwrap();
        let gauss = GaussianEstimator::new(256).estimate(&samples, remaining).unwrap();
        let emp = EmpiricalEstimator::new(256, 64).estimate(&samples, remaining).unwrap();
        let win = WindowedEstimator::new(256, 8).estimate(&samples, remaining).unwrap();
        for est in [&mean_est, &gauss, &emp, &win] {
            prop_assert!(est.pmf.is_normalized());
            prop_assert!(est.mean_task_runtime >= 1.0);
            prop_assert!(est.pmf.bins() >= 2);
        }
        if remaining == 0 {
            prop_assert_eq!(gauss.pmf.quantile(0.99), 0);
        }
    }

    /// Mean demand scales (roughly linearly) with the remaining task count.
    #[test]
    fn demand_scales_with_remaining(samples in samples_strategy(), n in 1usize..40) {
        let de = GaussianEstimator::new(1024);
        let small = de.estimate(&samples, n).unwrap().pmf.mean();
        let large = de.estimate(&samples, n * 2).unwrap().pmf.mean();
        // Quantization adds up to one bin width of error per estimate.
        let tol = 0.1 * large + 2.0 * 1024.0_f64.max(1.0) / 256.0 + 50.0;
        prop_assert!((large - 2.0 * small).abs() < tol,
            "2x tasks should ~2x demand: {small} -> {large}");
    }

    /// The Gaussian estimator's high quantile dominates its mean, and the
    /// spread grows with sample variance.
    #[test]
    fn quantile_dominates_mean(samples in samples_strategy(), n in 1usize..40) {
        let est = GaussianEstimator::new(1024).estimate(&samples, n).unwrap();
        prop_assert!(est.pmf.quantile(0.95) as f64 + est.pmf.bin_width() as f64
            >= est.pmf.mean());
    }

    /// Windowing never changes the answer when the history fits the window.
    #[test]
    fn window_noop_when_history_short(samples in prop::collection::vec(1u64..200, 1..8)) {
        let win = WindowedEstimator::new(512, 16).estimate(&samples, 10).unwrap();
        let full = GaussianEstimator::new(512).estimate(&samples, 10).unwrap();
        prop_assert_eq!(win, full);
    }
}

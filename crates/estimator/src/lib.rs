//! Online job-demand distribution estimators — the paper's **DE units**.
//!
//! In RUSH-YARN (ICDCS 2016, Sec. IV) every job owns a *Distribution
//! Estimator* that continuously turns completed-task runtime samples into a
//! reference distribution `φ_i(v_i)` of the job's **remaining total demand**
//! `v_i` (container·slots), plus the average container runtime `R_i` needed
//! by the continuous time-slot mapping. The paper ships two estimator
//! classes and invites users to plug in their own; this crate provides:
//!
//! * [`MeanEstimator`] — an impulse at `mean task runtime × remaining tasks`
//!   (the paper's "mean time estimator");
//! * [`GaussianEstimator`] — CLT-based: `N(n·x̄, n·s²)` for `n` remaining
//!   tasks (the paper's "Gaussian estimator");
//! * [`EmpiricalEstimator`] — a bootstrap Monte-Carlo estimator that resamples
//!   observed runtimes to form the n-fold sum distribution, capturing skew
//!   that the Gaussian shape misses.
//!
//! All estimators implement [`DistributionEstimator`] and can be swapped in
//! RUSH's configuration — the subject of the paper's Fig. 3 and our
//! estimator ablation.
//!
//! # Example
//!
//! ```
//! use rush_estimator::{DistributionEstimator, GaussianEstimator};
//!
//! # fn main() -> Result<(), rush_estimator::EstimatorError> {
//! let de = GaussianEstimator::new(512);
//! // 40 observed task runtimes around 60 slots, 61 tasks still to run:
//! let samples: Vec<u64> = (0..40).map(|i| 50 + (i % 21)).collect();
//! let est = de.estimate(&samples, 61)?;
//! let eta = est.pmf.quantile(0.9); // 90th-percentile remaining demand
//! assert!(eta as f64 > est.pmf.mean()); // provisioning above the mean
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rush_prob::dist::{Continuous, Gaussian};
use rush_prob::rng::{derive_seed, seeded_rng};
use rush_prob::{Pmf, ProbError};
use std::error::Error;
use std::fmt;

/// Errors from demand estimation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EstimatorError {
    /// No runtime samples and no prior were available.
    NoSamples,
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Description of the problem.
        reason: &'static str,
    },
    /// An internal probability operation failed.
    Prob(ProbError),
}

impl fmt::Display for EstimatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimatorError::NoSamples => {
                write!(f, "no runtime samples observed and no prior configured")
            }
            EstimatorError::InvalidConfig { reason } => {
                write!(f, "invalid estimator config: {reason}")
            }
            EstimatorError::Prob(e) => write!(f, "probability error: {e}"),
        }
    }
}

impl Error for EstimatorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EstimatorError::Prob(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProbError> for EstimatorError {
    fn from(e: ProbError) -> Self {
        EstimatorError::Prob(e)
    }
}

/// The output of a DE unit: the reference distribution `φ` of remaining
/// demand and the average container runtime `R`.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Reference PMF of the job's remaining total demand (container·slots).
    pub pmf: Pmf,
    /// Average container (task) runtime `R_i` in slots, used by the
    /// continuous time-slot mapping.
    pub mean_task_runtime: f64,
}

impl Estimate {
    /// Mean remaining demand in container·slots.
    pub fn mean_demand(&self) -> f64 {
        self.pmf.mean()
    }
}

/// A distribution estimator: turns completed-task runtime samples into a
/// reference distribution of the job's remaining demand.
///
/// Implementations must be deterministic functions of their inputs so that
/// simulations replay exactly.
pub trait DistributionEstimator {
    /// Short name for reports (e.g. `"gaussian"`).
    fn name(&self) -> &str;

    /// Estimates the remaining-demand distribution from `samples` (observed
    /// runtimes of completed tasks, slots) for `remaining_tasks` unfinished
    /// tasks.
    ///
    /// # Errors
    ///
    /// [`EstimatorError::NoSamples`] when `samples` is empty and the
    /// estimator has no prior to fall back on.
    fn estimate(&self, samples: &[u64], remaining_tasks: usize)
        -> Result<Estimate, EstimatorError>;
}

/// Optional prior used before any sample has been observed.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RuntimePrior {
    /// Prior mean task runtime (slots).
    pub mean: f64,
    /// Prior standard deviation of task runtime (slots).
    pub std: f64,
}

impl RuntimePrior {
    /// Creates a prior.
    ///
    /// # Errors
    ///
    /// [`EstimatorError::InvalidConfig`] if `mean ≤ 0` or `std < 0`.
    pub fn new(mean: f64, std: f64) -> Result<Self, EstimatorError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(EstimatorError::InvalidConfig { reason: "prior mean must be > 0" });
        }
        if !std.is_finite() || std < 0.0 {
            return Err(EstimatorError::InvalidConfig { reason: "prior std must be >= 0" });
        }
        Ok(RuntimePrior { mean, std })
    }
}

/// Picks `(bins, bin_width)` so that the range `[0, hi]` fits in at most
/// `max_bins` bins.
fn binning(hi: f64, max_bins: usize) -> (usize, u64) {
    let hi = hi.max(1.0).ceil() as u64 + 1;
    let bin_width = hi.div_ceil(max_bins as u64).max(1);
    let bins = (hi.div_ceil(bin_width) as usize).max(2);
    (bins, bin_width)
}

/// Sample mean and (unbiased) variance of integer runtimes. An empty slice
/// yields `(0.0, 0.0)` rather than a NaN divide — callers gate on
/// `samples.is_empty()` for cold-start handling, but the moments must stay
/// finite even if a new call site forgets to.
fn sample_moments(samples: &[u64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<u64>() as f64 / n;
    let var = if samples.len() < 2 {
        0.0
    } else {
        samples.iter().map(|&s| (s as f64 - mean) * (s as f64 - mean)).sum::<f64>() / (n - 1.0)
    };
    (mean, var)
}

/// The paper's **mean time estimator**: reports an impulse at
/// `mean task runtime × remaining tasks`. Cheap, but blind to variance —
/// the WCDE robustness margin is all that protects it.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MeanEstimator {
    max_bins: usize,
    prior: Option<RuntimePrior>,
}

impl MeanEstimator {
    /// Creates a mean estimator quantizing to at most `max_bins` bins.
    pub fn new(max_bins: usize) -> Self {
        MeanEstimator { max_bins: max_bins.max(2), prior: None }
    }

    /// Adds a prior for the no-sample cold start.
    pub fn with_prior(mut self, prior: RuntimePrior) -> Self {
        self.prior = Some(prior);
        self
    }
}

impl DistributionEstimator for MeanEstimator {
    fn name(&self) -> &str {
        "mean"
    }

    fn estimate(
        &self,
        samples: &[u64],
        remaining_tasks: usize,
    ) -> Result<Estimate, EstimatorError> {
        let mean_rt = if samples.is_empty() {
            self.prior.ok_or(EstimatorError::NoSamples)?.mean
        } else {
            sample_moments(samples).0
        };
        if remaining_tasks == 0 {
            return Ok(Estimate {
                pmf: Pmf::impulse(2, 0, 1)?,
                mean_task_runtime: mean_rt.max(1.0),
            });
        }
        let total = mean_rt * remaining_tasks as f64;
        // Leave 50% headroom above the impulse so WCDE's worst case has
        // somewhere to move mass.
        let (bins, bin_width) = binning(total * 1.5, self.max_bins);
        let bin = ((total / bin_width as f64).round() as usize).min(bins - 1);
        let pmf = Pmf::impulse(bins, bin, bin_width)?;
        Ok(Estimate { pmf, mean_task_runtime: mean_rt.max(1.0) })
    }
}

/// The paper's **Gaussian estimator**: by the central limit theorem the sum
/// of `n` i.i.d. task runtimes is approximately `N(n·x̄, n·s²)`; the
/// estimator quantizes that normal into the reference PMF.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GaussianEstimator {
    max_bins: usize,
    prior: Option<RuntimePrior>,
}

impl GaussianEstimator {
    /// Creates a Gaussian estimator quantizing to at most `max_bins` bins.
    pub fn new(max_bins: usize) -> Self {
        GaussianEstimator { max_bins: max_bins.max(2), prior: None }
    }

    /// Adds a prior for the no-sample cold start.
    pub fn with_prior(mut self, prior: RuntimePrior) -> Self {
        self.prior = Some(prior);
        self
    }
}

impl DistributionEstimator for GaussianEstimator {
    fn name(&self) -> &str {
        "gaussian"
    }

    fn estimate(
        &self,
        samples: &[u64],
        remaining_tasks: usize,
    ) -> Result<Estimate, EstimatorError> {
        let (mean_rt, var_rt) = if samples.is_empty() {
            let p = self.prior.ok_or(EstimatorError::NoSamples)?;
            (p.mean, p.std * p.std)
        } else {
            let (m, v) = sample_moments(samples);
            match (samples.len() < 2, self.prior) {
                // With a single sample the variance is unobservable; fall
                // back on the prior spread if present, else a 25% CV.
                (true, Some(p)) => (m, p.std * p.std),
                (true, None) => (m, (0.25 * m) * (0.25 * m)),
                (false, _) => (m, v),
            }
        };
        if remaining_tasks == 0 {
            return Ok(Estimate {
                pmf: Pmf::impulse(2, 0, 1)?,
                mean_task_runtime: mean_rt.max(1.0),
            });
        }
        let n = remaining_tasks as f64;
        let total_mean = n * mean_rt;
        let total_std = (n * var_rt).sqrt().max(1e-6);
        let hi = total_mean + 8.0 * total_std;
        let (bins, bin_width) = binning(hi, self.max_bins);
        let g = Gaussian::new(total_mean, total_std).map_err(EstimatorError::Prob)?;
        let pmf = g.quantize(bins, bin_width)?.with_support_floor(1e-12)?;
        Ok(Estimate { pmf, mean_task_runtime: mean_rt.max(1.0) })
    }
}

/// A bootstrap **empirical estimator**: Monte-Carlo resamples the observed
/// runtimes to approximate the distribution of the n-fold sum, preserving
/// skew and multi-modality that a Gaussian fit loses.
///
/// Determinism: the resampling RNG is seeded from the sample content, so
/// identical inputs always produce identical estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EmpiricalEstimator {
    max_bins: usize,
    resamples: usize,
    prior: Option<RuntimePrior>,
}

impl EmpiricalEstimator {
    /// Creates an empirical estimator with `max_bins` quantization bins and
    /// `resamples` bootstrap draws (≥ 16; 1000 is a good default).
    pub fn new(max_bins: usize, resamples: usize) -> Self {
        EmpiricalEstimator { max_bins: max_bins.max(2), resamples: resamples.max(16), prior: None }
    }

    /// Adds a prior for the no-sample cold start.
    pub fn with_prior(mut self, prior: RuntimePrior) -> Self {
        self.prior = Some(prior);
        self
    }
}

impl DistributionEstimator for EmpiricalEstimator {
    fn name(&self) -> &str {
        "empirical"
    }

    fn estimate(
        &self,
        samples: &[u64],
        remaining_tasks: usize,
    ) -> Result<Estimate, EstimatorError> {
        if samples.is_empty() {
            // Cold start: degenerate to the Gaussian estimator on the prior.
            let prior = self.prior.ok_or(EstimatorError::NoSamples)?;
            return GaussianEstimator::new(self.max_bins)
                .with_prior(prior)
                .estimate(samples, remaining_tasks);
        }
        let (mean_rt, _) = sample_moments(samples);
        if remaining_tasks == 0 {
            return Ok(Estimate {
                pmf: Pmf::impulse(2, 0, 1)?,
                mean_task_runtime: mean_rt.max(1.0),
            });
        }
        // Deterministic seed from the sample content.
        let mut seed = 0xE5EB_1E57u64;
        for &s in samples {
            seed = derive_seed(seed, s);
        }
        seed = derive_seed(seed, remaining_tasks as u64);
        let mut rng = seeded_rng(seed);
        use rand::Rng;
        let mut sums = Vec::with_capacity(self.resamples);
        for _ in 0..self.resamples {
            let mut total = 0u64;
            for _ in 0..remaining_tasks {
                total += samples[rng.gen_range(0..samples.len())];
            }
            sums.push(total);
        }
        let hi = sums.iter().copied().max().unwrap_or(1) as f64 * 1.25;
        let (bins, bin_width) = binning(hi, self.max_bins);
        let pmf = Pmf::from_samples(&sums, bins, bin_width)?
            .rebin(bins, bin_width)?
            .with_support_floor(1e-12)?;
        Ok(Estimate { pmf, mean_task_runtime: mean_rt.max(1.0) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: &[u64] = &[50, 55, 60, 60, 62, 58, 70, 45, 65, 61];

    #[test]
    fn mean_estimator_is_impulse_at_mean_times_remaining() {
        let de = MeanEstimator::new(512);
        let est = de.estimate(SAMPLES, 10).expect("estimate succeeds");
        let mean: f64 = SAMPLES.iter().sum::<u64>() as f64 / SAMPLES.len() as f64;
        let total = mean * 10.0;
        assert!((est.pmf.mean() - total).abs() <= est.pmf.bin_width() as f64);
        assert_eq!(est.pmf.variance(), 0.0);
        assert!((est.mean_task_runtime - mean).abs() < 1e-9);
    }

    #[test]
    fn mean_estimator_no_samples_no_prior_errors() {
        assert_eq!(MeanEstimator::new(64).estimate(&[], 5), Err(EstimatorError::NoSamples));
    }

    #[test]
    fn mean_estimator_uses_prior_when_cold() {
        let de = MeanEstimator::new(64).with_prior(RuntimePrior::new(60.0, 20.0).expect("valid prior"));
        let est = de.estimate(&[], 2).expect("estimate succeeds");
        assert!((est.pmf.mean() - 120.0).abs() <= est.pmf.bin_width() as f64);
    }

    #[test]
    fn gaussian_estimator_matches_clt_moments() {
        let de = GaussianEstimator::new(1024);
        let est = de.estimate(SAMPLES, 20).expect("estimate succeeds");
        let (m, v) = sample_moments(SAMPLES);
        let total_mean = 20.0 * m;
        let total_std = (20.0 * v).sqrt();
        assert!(
            (est.pmf.mean() - total_mean).abs() < 2.0 * est.pmf.bin_width() as f64,
            "mean {} vs {}",
            est.pmf.mean(),
            total_mean
        );
        assert!(
            (est.pmf.variance().sqrt() - total_std).abs() < 2.0 * est.pmf.bin_width() as f64,
            "std {} vs {}",
            est.pmf.variance().sqrt(),
            total_std
        );
    }

    #[test]
    fn gaussian_estimator_quantile_grows_with_theta() {
        let de = GaussianEstimator::new(1024);
        let est = de.estimate(SAMPLES, 20).expect("estimate succeeds");
        assert!(est.pmf.quantile(0.95) > est.pmf.quantile(0.5));
    }

    #[test]
    fn gaussian_single_sample_uses_cv_fallback() {
        let de = GaussianEstimator::new(512);
        let est = de.estimate(&[60], 10).expect("estimate succeeds");
        assert!(est.pmf.variance() > 0.0, "single sample must still carry spread");
    }

    #[test]
    fn gaussian_prior_cold_start() {
        let de = GaussianEstimator::new(512).with_prior(RuntimePrior::new(60.0, 20.0).expect("valid prior"));
        let est = de.estimate(&[], 100).expect("estimate succeeds");
        assert!((est.pmf.mean() - 6000.0).abs() < 50.0);
    }

    #[test]
    fn zero_remaining_tasks_is_zero_demand() {
        for est in [
            MeanEstimator::new(64).estimate(SAMPLES, 0).expect("estimate succeeds"),
            GaussianEstimator::new(64).estimate(SAMPLES, 0).expect("estimate succeeds"),
            EmpiricalEstimator::new(64, 64).estimate(SAMPLES, 0).expect("estimate succeeds"),
        ] {
            assert_eq!(est.pmf.quantile(0.99), 0);
        }
    }

    #[test]
    fn empirical_estimator_deterministic() {
        let de = EmpiricalEstimator::new(256, 200);
        let a = de.estimate(SAMPLES, 15).expect("estimate succeeds");
        let b = de.estimate(SAMPLES, 15).expect("estimate succeeds");
        assert_eq!(a, b);
    }

    #[test]
    fn empirical_estimator_tracks_gaussian_for_symmetric_data() {
        let emp = EmpiricalEstimator::new(1024, 2000).estimate(SAMPLES, 20).expect("estimate succeeds");
        let gau = GaussianEstimator::new(1024).estimate(SAMPLES, 20).expect("estimate succeeds");
        let rel = (emp.pmf.mean() - gau.pmf.mean()).abs() / gau.pmf.mean();
        assert!(rel < 0.05, "means differ by {rel}");
    }

    #[test]
    fn empirical_estimator_captures_skew() {
        // Bimodal: mostly fast tasks, occasional 10x stragglers.
        let samples: Vec<u64> = (0..50).map(|i| if i % 10 == 0 { 300 } else { 30 }).collect();
        let est = EmpiricalEstimator::new(1024, 2000).estimate(&samples, 5).expect("estimate succeeds");
        // Right tail: 99th percentile well above the mean.
        assert!(est.pmf.quantile(0.99) as f64 > est.pmf.mean() * 1.1);
    }

    #[test]
    fn estimators_expose_names() {
        assert_eq!(MeanEstimator::new(2).name(), "mean");
        assert_eq!(GaussianEstimator::new(2).name(), "gaussian");
        assert_eq!(EmpiricalEstimator::new(2, 16).name(), "empirical");
    }

    #[test]
    fn prior_validation() {
        assert!(RuntimePrior::new(0.0, 1.0).is_err());
        assert!(RuntimePrior::new(1.0, -1.0).is_err());
        assert!(RuntimePrior::new(60.0, 0.0).is_ok());
    }

    #[test]
    fn binning_respects_max_bins() {
        for hi in [1.0, 10.0, 1000.0, 123456.0] {
            let (bins, width) = binning(hi, 256);
            assert!(bins <= 257, "bins={bins}");
            assert!(bins as u64 * width >= hi as u64, "range covered");
        }
    }

    #[test]
    fn sample_moments_stay_finite_on_empty_input() {
        let (mean, var) = sample_moments(&[]);
        assert!(mean.abs() < 1e-12 && var.abs() < 1e-12, "no NaN divide on empty input");
    }

    #[test]
    fn error_display_and_source() {
        let e = EstimatorError::Prob(ProbError::ZeroMass);
        assert!(e.to_string().contains("probability"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&EstimatorError::NoSamples).is_none());
    }
}

/// A **windowed Gaussian estimator**: like [`GaussianEstimator`] but fitted
/// only to the most recent `window` samples, tracking *time-varying* task
/// runtimes (e.g. co-tenant interference ramping up mid-job) at the cost of
/// higher variance.
///
/// The paper's system model acknowledges "time-varying dynamics" as a
/// reason the reference distribution is only approximate; a windowed fit is
/// the standard mitigation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WindowedEstimator {
    inner: GaussianEstimator,
    window: usize,
}

impl WindowedEstimator {
    /// Creates a windowed estimator over the last `window ≥ 2` samples
    /// with at most `max_bins` quantization bins.
    pub fn new(max_bins: usize, window: usize) -> Self {
        WindowedEstimator { inner: GaussianEstimator::new(max_bins), window: window.max(2) }
    }

    /// Adds a prior for the no-sample cold start.
    pub fn with_prior(mut self, prior: RuntimePrior) -> Self {
        self.inner = self.inner.with_prior(prior);
        self
    }

    /// The window length.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl DistributionEstimator for WindowedEstimator {
    fn name(&self) -> &str {
        "windowed"
    }

    fn estimate(
        &self,
        samples: &[u64],
        remaining_tasks: usize,
    ) -> Result<Estimate, EstimatorError> {
        let tail = if samples.len() > self.window {
            &samples[samples.len() - self.window..]
        } else {
            samples
        };
        self.inner.estimate(tail, remaining_tasks)
    }
}

#[cfg(test)]
mod windowed_tests {
    use super::*;

    #[test]
    fn window_tracks_recent_shift() {
        // Runtimes double halfway through: the windowed fit follows the new
        // regime, the full-history Gaussian averages the two.
        let samples: Vec<u64> = (0..40).map(|i| if i < 20 { 30 } else { 60 }).collect();
        let windowed = WindowedEstimator::new(1024, 10).estimate(&samples, 10).expect("estimate succeeds");
        let full = GaussianEstimator::new(1024).estimate(&samples, 10).expect("estimate succeeds");
        assert!(
            (windowed.mean_task_runtime - 60.0).abs() < 1.0,
            "windowed R = {}",
            windowed.mean_task_runtime
        );
        assert!((full.mean_task_runtime - 45.0).abs() < 1.0);
        assert!(windowed.pmf.mean() > full.pmf.mean());
    }

    #[test]
    fn short_history_uses_everything() {
        let samples = [50u64, 52, 48];
        let windowed = WindowedEstimator::new(512, 10).estimate(&samples, 5).expect("estimate succeeds");
        let full = GaussianEstimator::new(512).estimate(&samples, 5).expect("estimate succeeds");
        assert_eq!(windowed, full);
    }

    #[test]
    fn cold_start_uses_prior() {
        let de = WindowedEstimator::new(512, 8).with_prior(RuntimePrior::new(40.0, 10.0).expect("valid prior"));
        let est = de.estimate(&[], 10).expect("estimate succeeds");
        assert!((est.pmf.mean() - 400.0).abs() < 20.0);
        assert_eq!(
            WindowedEstimator::new(512, 8).estimate(&[], 10),
            Err(EstimatorError::NoSamples)
        );
    }

    #[test]
    fn window_floor_is_two() {
        assert_eq!(WindowedEstimator::new(512, 0).window(), 2);
        assert_eq!(WindowedEstimator::new(512, 7).window(), 7);
    }
}

//! Implementation of the `rush-cli` command-line tool.
//!
//! Subcommands:
//!
//! * `workload` — generate a PUMA-style workload and print/save it in the
//!   portable text format.
//! * `compare`  — run a workload (generated or loaded) under a set of
//!   schedulers and print the comparison table.
//! * `gantt`    — run one scheduler with tracing and print an ASCII Gantt
//!   chart of container usage.
//!
//! All parsing is hand-rolled (`--key value` flags) so the binary carries
//! no extra dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rush_core::{RushConfig, RushScheduler};
use rush_metrics::gantt::{utilization, Gantt, GanttSpan};
use rush_metrics::table::{fmt_f64, Table};
use rush_prob::stats::FiveNumber;
use rush_sched::{Edf, Fair, Fifo, Rrh, Speculative};
use rush_sim::cluster::ClusterSpec;
use rush_sim::engine::{SimConfig, Simulation};
use rush_sim::job::JobSpec;
use rush_sim::perturb::Interference;
use rush_sim::trace::TraceEvent;
use rush_sim::Scheduler;
use rush_workload::persist;
use rush_workload::{generate, Experiment, WorkloadConfig};
use std::collections::HashMap;

/// Parsed command line: subcommand + `--key value` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// The subcommand name.
    pub command: String,
    /// Flag map.
    pub flags: HashMap<String, String>,
}

/// Parses `args` (without the program name).
///
/// # Errors
///
/// Returns a usage message when no subcommand is given or a flag is
/// missing its value.
pub fn parse(args: &[String]) -> Result<Cli, String> {
    let mut it = args.iter();
    let command = it.next().ok_or_else(usage)?.clone();
    if command.starts_with("--") {
        return Err(usage());
    }
    let mut flags = HashMap::new();
    while let Some(a) = it.next() {
        let key = a.strip_prefix("--").ok_or(format!("unexpected argument {a}"))?;
        let value = it.next().ok_or(format!("flag --{key} needs a value"))?;
        flags.insert(key.to_owned(), value.clone());
    }
    Ok(Cli { command, flags })
}

/// The usage string.
pub fn usage() -> String {
    "usage: rush-cli <command> [--flag value]...\n\
     commands:\n\
       workload  --jobs N --ratio R --seed S [--interarrival T] [--out FILE]\n\
       compare   --jobs N --ratio R --seed S [--interarrival T] [--load FILE]\n\
                 [--schedulers rush,fifo,edf,rrh,fair,spec-edf]\n\
       gantt     --scheduler NAME --jobs N --seed S [--width W]\n\
       dashboard --jobs N --seed S [--at SLOT]\n"
        .to_owned()
}

fn flag<T: std::str::FromStr>(cli: &Cli, key: &str, default: T) -> T {
    cli.flags.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn experiment(seed: u64) -> Experiment {
    Experiment::new(ClusterSpec::paper_testbed(8).expect("static cluster"))
        .with_interference(Interference::LogNormal { cv: 0.25 })
        .with_sim_seed(seed)
}

fn build_workload(cli: &Cli) -> Result<(Experiment, Vec<JobSpec>), String> {
    let seed: u64 = flag(cli, "seed", 1);
    let exp = experiment(seed);
    if let Some(path) = cli.flags.get("load") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let jobs = persist::from_text(&text).map_err(|e| e.to_string())?;
        return Ok((exp, jobs));
    }
    let cfg = WorkloadConfig {
        jobs: flag(cli, "jobs", 40),
        budget_ratio: flag(cli, "ratio", 1.5),
        mean_interarrival: flag(cli, "interarrival", 45.0),
        seed,
        ..Default::default()
    };
    let jobs = generate(&cfg, &exp).map_err(|e| e.to_string())?;
    Ok((exp, jobs))
}

fn scheduler_by_name(name: &str) -> Result<Box<dyn Scheduler>, String> {
    Ok(match name {
        "rush" => Box::new(RushScheduler::new(RushConfig::default())),
        "cora" => Box::new(RushScheduler::cora()),
        "fifo" => Box::new(Fifo::new()),
        "edf" => Box::new(Edf::new()),
        "rrh" => Box::new(Rrh::new()),
        "fair" => Box::new(Fair::new()),
        "spec-edf" => Box::new(Speculative::new(Edf::new(), 1.5)),
        "spec-fifo" => Box::new(Speculative::new(Fifo::new(), 1.5)),
        other => return Err(format!("unknown scheduler {other}")),
    })
}

/// `workload` subcommand: generate and print/save.
///
/// # Errors
///
/// Propagates generation and I/O failures as strings.
pub fn cmd_workload(cli: &Cli) -> Result<String, String> {
    let (_, jobs) = build_workload(cli)?;
    let text = persist::to_text(&jobs);
    if let Some(path) = cli.flags.get("out") {
        std::fs::write(path, &text).map_err(|e| format!("write {path}: {e}"))?;
        Ok(format!("wrote {} jobs to {path}\n", jobs.len()))
    } else {
        Ok(text)
    }
}

/// `compare` subcommand: run schedulers and print the table.
///
/// # Errors
///
/// Propagates workload and simulation failures as strings.
pub fn cmd_compare(cli: &Cli) -> Result<String, String> {
    let (exp, jobs) = build_workload(cli)?;
    let names: Vec<String> = cli
        .flags
        .get("schedulers")
        .map(|s| s.split(',').map(str::to_owned).collect())
        .unwrap_or_else(|| {
            vec!["rush".into(), "fifo".into(), "edf".into(), "rrh".into()]
        });
    let mut t = Table::new([
        "scheduler", "mean_util", "zero_util", "median_lat", "q3_lat", "met", "makespan",
    ]);
    for name in names {
        let mut sched = scheduler_by_name(&name)?;
        let r = exp.run(jobs.clone(), sched.as_mut()).map_err(|e| e.to_string())?;
        let utils = r.utility_vector();
        let lat: Vec<f64> = r.time_aware_outcomes().filter_map(|o| o.latency()).collect();
        let met = lat.iter().filter(|&&l| l <= 0.0).count();
        let s = FiveNumber::from_samples(&lat);
        t.row([
            name,
            fmt_f64(utils.iter().sum::<f64>() / utils.len() as f64, 3),
            fmt_f64(r.zero_utility_fraction(1e-3), 3),
            fmt_f64(s.median, 1),
            fmt_f64(s.q3, 1),
            format!("{}/{}", met, lat.len()),
            r.makespan.to_string(),
        ]);
    }
    Ok(t.render())
}

/// `gantt` subcommand: run one scheduler with tracing and render the chart.
///
/// # Errors
///
/// Propagates workload and simulation failures as strings.
pub fn cmd_gantt(cli: &Cli) -> Result<String, String> {
    let (exp, jobs) = build_workload(cli)?;
    let name = cli.flags.get("scheduler").cloned().unwrap_or_else(|| "rush".into());
    let width: usize = flag(cli, "width", 100);
    let mut sched = scheduler_by_name(&name)?;
    let capacity = exp.cluster().capacity();
    let sim_cfg = SimConfig::new(exp.cluster().clone())
        .with_interference(exp.interference().clone())
        .with_trace(true)
        .with_max_slots(10_000_000);
    let r = Simulation::new(sim_cfg, jobs)
        .map_err(|e| e.to_string())?
        .run(sched.as_mut())
        .map_err(|e| e.to_string())?;
    let trace = r.trace.expect("tracing enabled");
    let mut g = Gantt::new();
    let mut spans = Vec::new();
    for e in trace.events() {
        if let TraceEvent::TaskStarted { job, container, at, duration, .. }
        | TraceEvent::TaskSpeculated { job, container, at, duration, .. } = *e
        {
            let span = GanttSpan {
                container,
                start: at,
                duration,
                label: (b'a' + (job.0 % 26) as u8) as char,
            };
            g.span(span);
            spans.push(span);
        }
    }
    let mut out = format!("{name} on {capacity} containers\n");
    out.push_str(&g.render(width));
    out.push_str(&format!("utilization: {:.0}%\n", utilization(&spans, capacity) * 100.0));
    Ok(out)
}

/// `dashboard` subcommand: one CA pass over a snapshot of the workload at
/// slot `--at` (jobs arrived by then, progress approximated from elapsed
/// time), rendered as the paper's Fig. 2 monitoring table.
///
/// # Errors
///
/// Propagates workload and planning failures as strings.
pub fn cmd_dashboard(cli: &Cli) -> Result<String, String> {
    use rush_core::plan::{compute_plan, render_dashboard, PlanInput};
    let (exp, jobs) = build_workload(cli)?;
    let at: u64 = flag(cli, "at", 120);
    let arrived: Vec<&JobSpec> = jobs.iter().filter(|j| j.arrival() <= at).collect();
    if arrived.is_empty() {
        return Ok(format!("no jobs arrived by slot {at}
"));
    }
    // Approximate progress: assume tasks completed in arrival order at the
    // template's mean rate on a fair share of the cluster.
    let share = (exp.cluster().capacity() as usize / arrived.len()).max(1);
    let inputs: Vec<PlanInput> = arrived
        .iter()
        .map(|j| {
            let mean_rt = (j.total_base_runtime() / j.tasks().len() as f64).max(1.0);
            let age = at.saturating_sub(j.arrival());
            let done = ((age as f64 / mean_rt) * share as f64) as usize;
            let done = done.min(j.tasks().len().saturating_sub(1));
            let samples: Vec<u64> =
                j.tasks()[..done].iter().map(|t| t.base_runtime().round() as u64).collect();
            PlanInput {
                samples: samples.into(),
                remaining_tasks: j.tasks().len() - done,
                running: 0,
                failed_attempts: 0,
                age: age as f64,
                utility: *j.utility(),
            }
        })
        .collect();
    let plan = compute_plan(&RushConfig::default(), exp.cluster().capacity(), &inputs)
        .map_err(|e| e.to_string())?;
    let labels: Vec<&str> = arrived.iter().map(|j| j.label()).collect();
    Ok(format!("RUSH plan at slot {at} ({} active jobs)
{}", arrived.len(),
        render_dashboard(&plan, &labels)))
}

/// Dispatches a parsed CLI to its subcommand.
///
/// # Errors
///
/// Returns the usage string for unknown commands and propagates subcommand
/// failures.
pub fn run(cli: &Cli) -> Result<String, String> {
    match cli.command.as_str() {
        "workload" => cmd_workload(cli),
        "compare" => cmd_compare(cli),
        "gantt" => cmd_gantt(cli),
        "dashboard" => cmd_dashboard(cli),
        _ => Err(usage()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(cmd: &str, flags: &[(&str, &str)]) -> Cli {
        Cli {
            command: cmd.into(),
            flags: flags.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
        }
    }

    #[test]
    fn parse_happy_path() {
        let args: Vec<String> =
            ["compare", "--jobs", "10", "--seed", "3"].iter().map(|s| s.to_string()).collect();
        let c = parse(&args).unwrap();
        assert_eq!(c.command, "compare");
        assert_eq!(c.flags.get("jobs").unwrap(), "10");
        assert_eq!(c.flags.get("seed").unwrap(), "3");
    }

    #[test]
    fn parse_rejects_missing_command_and_values() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--jobs".into()]).is_err());
        let args: Vec<String> = ["compare", "--jobs"].iter().map(|s| s.to_string()).collect();
        assert!(parse(&args).is_err());
        let args: Vec<String> = ["compare", "jobs", "3"].iter().map(|s| s.to_string()).collect();
        assert!(parse(&args).is_err());
    }

    #[test]
    fn unknown_command_yields_usage() {
        let err = run(&cli("frobnicate", &[])).unwrap_err();
        assert!(err.contains("usage:"));
    }

    #[test]
    fn workload_prints_portable_text() {
        let out = cmd_workload(&cli(
            "workload",
            &[("jobs", "4"), ("seed", "2"), ("interarrival", "100")],
        ))
        .unwrap();
        assert!(out.starts_with("# rush workload v1"));
        let jobs = persist::from_text(&out).unwrap();
        assert_eq!(jobs.len(), 4);
    }

    #[test]
    fn compare_renders_requested_schedulers() {
        let out = cmd_compare(&cli(
            "compare",
            &[("jobs", "5"), ("seed", "2"), ("schedulers", "fifo,edf"), ("interarrival", "120")],
        ))
        .unwrap();
        assert!(out.contains("fifo"));
        assert!(out.contains("edf"));
        assert!(!out.contains("rush\n"));
    }

    #[test]
    fn compare_rejects_unknown_scheduler() {
        let err = cmd_compare(&cli(
            "compare",
            &[("jobs", "3"), ("schedulers", "quantum"), ("interarrival", "200")],
        ))
        .unwrap_err();
        assert!(err.contains("unknown scheduler"));
    }

    #[test]
    fn gantt_renders_rows() {
        let out = cmd_gantt(&cli(
            "gantt",
            &[("jobs", "3"), ("seed", "2"), ("scheduler", "fifo"), ("width", "40"), ("interarrival", "150")],
        ))
        .unwrap();
        assert!(out.contains("fifo on 48 containers"));
        assert!(out.contains("c0"));
        assert!(out.contains("utilization:"));
    }

    #[test]
    fn dashboard_renders_projection_table() {
        let out = cmd_dashboard(&cli(
            "dashboard",
            &[("jobs", "6"), ("seed", "3"), ("at", "900"), ("interarrival", "60")],
        ))
        .unwrap();
        assert!(out.contains("RUSH plan at slot 900"));
        assert!(out.contains("proj_done"));
        // Nothing arrived yet at slot 0.
        let out = cmd_dashboard(&cli(
            "dashboard",
            &[("jobs", "3"), ("seed", "3"), ("at", "0"), ("interarrival", "500")],
        ))
        .unwrap();
        assert!(out.contains("no jobs arrived"));
    }

    #[test]
    fn workload_round_trips_through_load() {
        let dir = std::env::temp_dir().join("rush-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wl.txt");
        let path_s = path.to_string_lossy().into_owned();
        cmd_workload(&cli(
            "workload",
            &[("jobs", "4"), ("seed", "9"), ("out", &path_s), ("interarrival", "100")],
        ))
        .unwrap();
        let out = cmd_compare(&cli(
            "compare",
            &[("load", &path_s), ("schedulers", "fifo"), ("seed", "9")],
        ))
        .unwrap();
        assert!(out.contains("fifo"));
        std::fs::remove_file(path).ok();
    }
}

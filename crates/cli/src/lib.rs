//! Implementation of the `rush-cli` command-line tool.
//!
//! Subcommands:
//!
//! * `workload` — generate a PUMA-style workload and print/save it in the
//!   portable text format.
//! * `compare`  — run a workload (generated or loaded) under a set of
//!   schedulers and print the comparison table.
//! * `gantt`    — run one scheduler with tracing and print an ASCII Gantt
//!   chart of container usage.
//! * `serve`    — run the `rushd` scheduling daemon in the foreground.
//! * `loadgen`  — drive a running daemon with an open-loop Poisson load.
//!
//! All parsing is hand-rolled (`--key value` flags) so the binary carries
//! no extra dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rush_core::RushConfig;
use rush_metrics::gantt::{utilization, Gantt, GanttSpan};
use rush_planner::RushScheduler;
use rush_metrics::table::{fmt_f64, Table};
use rush_prob::stats::FiveNumber;
use rush_sched::{Edf, Fair, Fifo, Rrh, Speculative};
use rush_sim::cluster::ClusterSpec;
use rush_sim::engine::{SimConfig, Simulation};
use rush_sim::job::JobSpec;
use rush_sim::perturb::Interference;
use rush_sim::trace::TraceEvent;
use rush_sim::Scheduler;
use rush_workload::persist;
use rush_workload::{generate, Experiment, WorkloadConfig};
use std::collections::HashMap;

/// Parsed command line: subcommand + `--key value` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// The subcommand name.
    pub command: String,
    /// Flag map.
    pub flags: HashMap<String, String>,
}

/// Parses `args` (without the program name).
///
/// # Errors
///
/// Returns a usage message when no subcommand is given or a flag is
/// missing its value.
pub fn parse(args: &[String]) -> Result<Cli, String> {
    let mut it = args.iter();
    let command = it.next().ok_or_else(usage)?.clone();
    if command.starts_with("--") {
        return Err(usage());
    }
    let mut flags = HashMap::new();
    while let Some(a) = it.next() {
        let key = a.strip_prefix("--").ok_or(format!("unexpected argument {a}"))?;
        let value = it.next().ok_or(format!("flag --{key} needs a value"))?;
        flags.insert(key.to_owned(), value.clone());
    }
    Ok(Cli { command, flags })
}

/// The usage string.
pub fn usage() -> String {
    "usage: rush-cli <command> [--flag value]...\n\
     commands:\n\
       workload  --jobs N --ratio R --seed S [--interarrival T] [--out FILE]\n\
       compare   --jobs N --ratio R --seed S [--interarrival T] [--load FILE]\n\
                 [--schedulers rush,fifo,edf,rrh,fair,spec-edf]\n\
       gantt     --scheduler NAME --jobs N --seed S [--width W]\n\
       dashboard --jobs N --seed S [--at SLOT]\n\
       serve     [--addr A] [--capacity N] [--shards N] [--epoch-ms T]\n\
                 [--frontend reactor|threads] [--reactors N]\n\
                 [--batch N] [--ms-per-slot T] [--snapshot FILE]\n\
                 [--theta F] [--delta F]\n\
       loadgen   --addr A [--jobs N] [--workers N] [--connections N]\n\
                 [--binary true] [--frontend-label L] [--mean-ms F] [--seed S]\n\
                 [--epoch-ms T] [--out FILE] [--append true] [--shutdown true]\n"
        .to_owned()
}

fn flag<T: std::str::FromStr>(cli: &Cli, key: &str, default: T) -> T {
    cli.flags.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn experiment(seed: u64) -> Experiment {
    Experiment::new(ClusterSpec::paper_testbed(8).expect("static cluster"))
        .with_interference(Interference::LogNormal { cv: 0.25 })
        .with_sim_seed(seed)
}

fn build_workload(cli: &Cli) -> Result<(Experiment, Vec<JobSpec>), String> {
    let seed: u64 = flag(cli, "seed", 1);
    let exp = experiment(seed);
    if let Some(path) = cli.flags.get("load") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let jobs = persist::from_text(&text).map_err(|e| e.to_string())?;
        return Ok((exp, jobs));
    }
    let cfg = WorkloadConfig {
        jobs: flag(cli, "jobs", 40),
        budget_ratio: flag(cli, "ratio", 1.5),
        mean_interarrival: flag(cli, "interarrival", 45.0),
        seed,
        ..Default::default()
    };
    let jobs = generate(&cfg, &exp).map_err(|e| e.to_string())?;
    Ok((exp, jobs))
}

fn scheduler_by_name(name: &str) -> Result<Box<dyn Scheduler>, String> {
    Ok(match name {
        "rush" => Box::new(RushScheduler::new(RushConfig::default())),
        "cora" => Box::new(RushScheduler::cora()),
        "fifo" => Box::new(Fifo::new()),
        "edf" => Box::new(Edf::new()),
        "rrh" => Box::new(Rrh::new()),
        "fair" => Box::new(Fair::new()),
        "spec-edf" => Box::new(Speculative::new(Edf::new(), 1.5)),
        "spec-fifo" => Box::new(Speculative::new(Fifo::new(), 1.5)),
        other => return Err(format!("unknown scheduler {other}")),
    })
}

/// `workload` subcommand: generate and print/save.
///
/// # Errors
///
/// Propagates generation and I/O failures as strings.
pub fn cmd_workload(cli: &Cli) -> Result<String, String> {
    let (_, jobs) = build_workload(cli)?;
    let text = persist::to_text(&jobs);
    if let Some(path) = cli.flags.get("out") {
        std::fs::write(path, &text).map_err(|e| format!("write {path}: {e}"))?;
        Ok(format!("wrote {} jobs to {path}\n", jobs.len()))
    } else {
        Ok(text)
    }
}

/// `compare` subcommand: run schedulers and print the table.
///
/// # Errors
///
/// Propagates workload and simulation failures as strings.
pub fn cmd_compare(cli: &Cli) -> Result<String, String> {
    let (exp, jobs) = build_workload(cli)?;
    let names: Vec<String> = cli
        .flags
        .get("schedulers")
        .map(|s| s.split(',').map(str::to_owned).collect())
        .unwrap_or_else(|| {
            vec!["rush".into(), "fifo".into(), "edf".into(), "rrh".into()]
        });
    let mut t = Table::new([
        "scheduler", "mean_util", "zero_util", "median_lat", "q3_lat", "met", "makespan",
    ]);
    for name in names {
        let mut sched = scheduler_by_name(&name)?;
        let r = exp.run(jobs.clone(), sched.as_mut()).map_err(|e| e.to_string())?;
        let utils = r.utility_vector();
        let lat: Vec<f64> = r.time_aware_outcomes().filter_map(|o| o.latency()).collect();
        let met = lat.iter().filter(|&&l| l <= 0.0).count();
        let s = FiveNumber::from_samples(&lat);
        t.row([
            name,
            fmt_f64(utils.iter().sum::<f64>() / utils.len() as f64, 3),
            fmt_f64(r.zero_utility_fraction(1e-3), 3),
            fmt_f64(s.median, 1),
            fmt_f64(s.q3, 1),
            format!("{}/{}", met, lat.len()),
            r.makespan.to_string(),
        ]);
    }
    Ok(t.render())
}

/// `gantt` subcommand: run one scheduler with tracing and render the chart.
///
/// # Errors
///
/// Propagates workload and simulation failures as strings.
pub fn cmd_gantt(cli: &Cli) -> Result<String, String> {
    let (exp, jobs) = build_workload(cli)?;
    let name = cli.flags.get("scheduler").cloned().unwrap_or_else(|| "rush".into());
    let width: usize = flag(cli, "width", 100);
    let mut sched = scheduler_by_name(&name)?;
    let capacity = exp.cluster().capacity();
    let sim_cfg = SimConfig::new(exp.cluster().clone())
        .with_interference(exp.interference().clone())
        .with_trace(true)
        .with_max_slots(10_000_000);
    let r = Simulation::new(sim_cfg, jobs)
        .map_err(|e| e.to_string())?
        .run(sched.as_mut())
        .map_err(|e| e.to_string())?;
    let trace = r.trace.expect("tracing enabled");
    let mut g = Gantt::new();
    let mut spans = Vec::new();
    for e in trace.events() {
        if let TraceEvent::TaskStarted { job, container, at, duration, .. }
        | TraceEvent::TaskSpeculated { job, container, at, duration, .. } = *e
        {
            let span = GanttSpan {
                container,
                start: at,
                duration,
                label: (b'a' + (job.0 % 26) as u8) as char,
            };
            g.span(span);
            spans.push(span);
        }
    }
    let mut out = format!("{name} on {capacity} containers\n");
    out.push_str(&g.render(width));
    out.push_str(&format!("utilization: {:.0}%\n", utilization(&spans, capacity) * 100.0));
    Ok(out)
}

/// `dashboard` subcommand: one CA pass over a snapshot of the workload at
/// slot `--at` (jobs arrived by then, progress approximated from elapsed
/// time), rendered as the paper's Fig. 2 monitoring table.
///
/// The snapshot is replayed into the shared planner kernel
/// ([`rush_planner::PlannerCore`]) as a typed event stream — one arrival
/// per job (kernel ids ascend in arrival order, which is the planning
/// order), one sample per approximated completed task, then a `Tick` at
/// the snapshot slot — so the CLI exercises exactly the state machine the
/// daemon and simulator adapter run.
///
/// # Errors
///
/// Propagates workload and planning failures as strings.
pub fn cmd_dashboard(cli: &Cli) -> Result<String, String> {
    use rush_core::plan::render_dashboard;
    use rush_planner::{EventOutcome, PlannerCore, PlannerEvent};
    let (exp, jobs) = build_workload(cli)?;
    let at: u64 = flag(cli, "at", 120);
    let arrived: Vec<&JobSpec> = jobs.iter().filter(|j| j.arrival() <= at).collect();
    if arrived.is_empty() {
        return Ok(format!("no jobs arrived by slot {at}\n"));
    }
    let capacity = exp.cluster().capacity();
    let mut kernel = PlannerCore::new(RushConfig::default(), capacity)
        .map_err(|e| e.to_string())?
        .with_retirement(false);
    // Approximate progress: assume tasks completed in arrival order at the
    // template's mean rate on a fair share of the cluster.
    let share = (capacity as usize / arrived.len()).max(1);
    for j in &arrived {
        let mean_rt = (j.total_base_runtime() / j.tasks().len() as f64).max(1.0);
        let age = at.saturating_sub(j.arrival());
        let done = ((age as f64 / mean_rt) * share as f64) as usize;
        let done = done.min(j.tasks().len().saturating_sub(1));
        let outcome = kernel
            .apply(PlannerEvent::JobArrival {
                id: None,
                spec: rush_planner::JobSpec {
                    label: j.label().to_owned(),
                    utility: *j.utility(),
                    tasks: j.tasks().len() as u64,
                    arrived_slot: j.arrival(),
                    runtime_hint: None,
                    parked: false,
                },
            })
            .map_err(|e| e.to_string())?;
        let EventOutcome::Arrived { job } = outcome else {
            return Err(format!("unexpected arrival outcome {outcome:?}"));
        };
        for t in &j.tasks()[..done] {
            kernel
                .apply(PlannerEvent::TaskSample {
                    job,
                    runtime: t.base_runtime().round() as u64,
                })
                .map_err(|e| e.to_string())?;
        }
    }
    kernel.apply(PlannerEvent::Tick { now_slot: at }).map_err(|e| e.to_string())?;
    let labels: Vec<&str> = arrived.iter().map(|j| j.label()).collect();
    Ok(format!(
        "RUSH plan at slot {at} ({} active jobs)\n{}",
        arrived.len(),
        render_dashboard(kernel.plan(), &labels)
    ))
}

/// Builds a daemon config from `serve` subcommand flags.
///
/// # Errors
///
/// Returns a message when a numeric flag fails to parse.
pub fn serve_config(cli: &Cli) -> Result<rush_serve::ServeConfig, String> {
    let mut cfg = rush_serve::ServeConfig {
        addr: cli.flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:4117".into()),
        ..rush_serve::ServeConfig::default()
    };
    cfg.capacity = flag(cli, "capacity", cfg.capacity);
    cfg.epoch_ms = flag(cli, "epoch-ms", cfg.epoch_ms);
    cfg.epoch_max_batch = flag(cli, "batch", cfg.epoch_max_batch);
    cfg.ms_per_slot = flag(cli, "ms-per-slot", cfg.ms_per_slot);
    cfg.shards = flag(cli, "shards", cfg.shards);
    // The CLI defaults to the epoll reactor where it exists (lower tail
    // latency at high connection counts); `--frontend threads` opts back
    // into the blocking per-connection workers. Non-unix platforms have no
    // epoll, so the library's threads default stands there.
    let default_frontend =
        if cfg!(unix) { rush_serve::Frontend::Reactor } else { cfg.frontend };
    cfg.frontend = flag(cli, "frontend", default_frontend);
    cfg.reactors = flag(cli, "reactors", cfg.reactors);
    cfg.snapshot_path = cli.flags.get("snapshot").map(std::path::PathBuf::from);
    cfg.rush.theta = flag(cli, "theta", cfg.rush.theta);
    cfg.rush.delta = flag(cli, "delta", cfg.rush.delta);
    Ok(cfg)
}

/// `serve` subcommand: run the daemon in the foreground until a client
/// sends the `shutdown` op, then report submit-wait quantiles.
///
/// # Errors
///
/// Propagates bind/snapshot failures as strings.
pub fn cmd_serve(cli: &Cli) -> Result<String, String> {
    let cfg = serve_config(cli)?;
    let handle = rush_serve::serve(cfg).map_err(|e| e.to_string())?;
    println!("rushd listening on {}", handle.local_addr());
    let waits = handle.join().map_err(|e| e.to_string())?;
    Ok(format!(
        "served {} submissions (p50 wait {} us, p99 {} us)\n",
        waits.count(),
        waits.quantile(0.5),
        waits.quantile(0.99)
    ))
}

/// Builds a load-generator config from `loadgen` subcommand flags.
///
/// # Errors
///
/// Returns a message when a numeric flag fails to parse.
pub fn loadgen_config(cli: &Cli) -> Result<rush_serve::loadgen::LoadgenConfig, String> {
    Ok(rush_serve::loadgen::LoadgenConfig {
        addr: cli.flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:4117".into()),
        jobs: flag(cli, "jobs", 100),
        workers: flag(cli, "workers", 8),
        connections: flag(cli, "connections", 0),
        binary: flag(cli, "binary", false),
        frontend: cli.flags.get("frontend-label").cloned().unwrap_or_else(|| "threads".into()),
        mean_interarrival_ms: flag(cli, "mean-ms", 10.0),
        seed: flag(cli, "seed", 7),
        epoch_ms: flag(cli, "epoch-ms", 25),
        report_samples: flag(cli, "report-samples", true),
        shutdown: flag(cli, "shutdown", false),
        append: flag(cli, "append", false),
        out: cli.flags.get("out").map(std::path::PathBuf::from),
    })
}

/// `loadgen` subcommand: drive a running daemon and summarize latency.
///
/// # Errors
///
/// Propagates connection and protocol failures as strings.
pub fn cmd_loadgen(cli: &Cli) -> Result<String, String> {
    let cfg = loadgen_config(cli)?;
    let report = rush_serve::loadgen::run(&cfg).map_err(|e| e.to_string())?;
    if report.protocol_errors > 0 {
        return Err(format!("loadgen hit {} protocol errors", report.protocol_errors));
    }
    Ok(format!(
        "loadgen: {} submitted over {} conns ({}), {} admitted, {} deferred, {} rejected; \
         p50 {} us, p99 {} us, p999 {} us; {:.0} sub/s; \
         {:.1}% within epoch deadline; {} epochs\n",
        report.submitted,
        cfg.effective_connections(),
        cfg.codec(),
        report.admitted,
        report.deferred,
        report.rejected,
        report.client_latency_us.quantile(0.5),
        report.client_latency_us.quantile(0.99),
        report.client_latency_us.quantile(0.999),
        report.submissions_per_sec(),
        100.0 * report.within_deadline_frac(),
        report.epochs,
    ))
}

/// Dispatches a parsed CLI to its subcommand.
///
/// # Errors
///
/// Returns the usage string for unknown commands and propagates subcommand
/// failures.
pub fn run(cli: &Cli) -> Result<String, String> {
    match cli.command.as_str() {
        "workload" => cmd_workload(cli),
        "compare" => cmd_compare(cli),
        "gantt" => cmd_gantt(cli),
        "dashboard" => cmd_dashboard(cli),
        "serve" => cmd_serve(cli),
        "loadgen" => cmd_loadgen(cli),
        _ => Err(usage()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(cmd: &str, flags: &[(&str, &str)]) -> Cli {
        Cli {
            command: cmd.into(),
            flags: flags.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
        }
    }

    #[test]
    fn parse_happy_path() {
        let args: Vec<String> =
            ["compare", "--jobs", "10", "--seed", "3"].iter().map(|s| s.to_string()).collect();
        let c = parse(&args).unwrap();
        assert_eq!(c.command, "compare");
        assert_eq!(c.flags.get("jobs").unwrap(), "10");
        assert_eq!(c.flags.get("seed").unwrap(), "3");
    }

    #[test]
    fn parse_rejects_missing_command_and_values() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--jobs".into()]).is_err());
        let args: Vec<String> = ["compare", "--jobs"].iter().map(|s| s.to_string()).collect();
        assert!(parse(&args).is_err());
        let args: Vec<String> = ["compare", "jobs", "3"].iter().map(|s| s.to_string()).collect();
        assert!(parse(&args).is_err());
    }

    #[test]
    fn unknown_command_yields_usage() {
        let err = run(&cli("frobnicate", &[])).unwrap_err();
        assert!(err.contains("usage:"));
    }

    #[test]
    fn workload_prints_portable_text() {
        let out = cmd_workload(&cli(
            "workload",
            &[("jobs", "4"), ("seed", "2"), ("interarrival", "100")],
        ))
        .unwrap();
        assert!(out.starts_with("# rush workload v1"));
        let jobs = persist::from_text(&out).unwrap();
        assert_eq!(jobs.len(), 4);
    }

    #[test]
    fn compare_renders_requested_schedulers() {
        let out = cmd_compare(&cli(
            "compare",
            &[("jobs", "5"), ("seed", "2"), ("schedulers", "fifo,edf"), ("interarrival", "120")],
        ))
        .unwrap();
        assert!(out.contains("fifo"));
        assert!(out.contains("edf"));
        assert!(!out.contains("rush\n"));
    }

    #[test]
    fn compare_rejects_unknown_scheduler() {
        let err = cmd_compare(&cli(
            "compare",
            &[("jobs", "3"), ("schedulers", "quantum"), ("interarrival", "200")],
        ))
        .unwrap_err();
        assert!(err.contains("unknown scheduler"));
    }

    #[test]
    fn gantt_renders_rows() {
        let out = cmd_gantt(&cli(
            "gantt",
            &[("jobs", "3"), ("seed", "2"), ("scheduler", "fifo"), ("width", "40"), ("interarrival", "150")],
        ))
        .unwrap();
        assert!(out.contains("fifo on 48 containers"));
        assert!(out.contains("c0"));
        assert!(out.contains("utilization:"));
    }

    #[test]
    fn dashboard_renders_projection_table() {
        let out = cmd_dashboard(&cli(
            "dashboard",
            &[("jobs", "6"), ("seed", "3"), ("at", "900"), ("interarrival", "60")],
        ))
        .unwrap();
        assert!(out.contains("RUSH plan at slot 900"));
        assert!(out.contains("proj_done"));
        // Nothing arrived yet at slot 0.
        let out = cmd_dashboard(&cli(
            "dashboard",
            &[("jobs", "3"), ("seed", "3"), ("at", "0"), ("interarrival", "500")],
        ))
        .unwrap();
        assert!(out.contains("no jobs arrived"));
    }

    #[test]
    fn serve_config_parses_flags_and_defaults() {
        let cfg = serve_config(&cli(
            "serve",
            &[("capacity", "4"), ("epoch-ms", "7"), ("batch", "3"), ("theta", "0.8")],
        ))
        .unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:4117");
        assert_eq!(cfg.capacity, 4);
        assert_eq!(cfg.epoch_ms, 7);
        assert_eq!(cfg.epoch_max_batch, 3);
        assert!((cfg.rush.theta - 0.8).abs() < 1e-12);
        assert!(cfg.snapshot_path.is_none());
    }

    #[test]
    fn loadgen_config_parses_flags_and_defaults() {
        let cfg = loadgen_config(&cli(
            "loadgen",
            &[("addr", "127.0.0.1:9"), ("jobs", "5"), ("shutdown", "true")],
        ))
        .unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:9");
        assert_eq!(cfg.jobs, 5);
        assert_eq!(cfg.workers, 8);
        assert_eq!(cfg.connections, 0);
        assert!(!cfg.binary);
        assert_eq!(cfg.frontend, "threads");
        assert!(cfg.shutdown);
        assert!(!cfg.append);
        assert!(cfg.out.is_none());

        let cfg = loadgen_config(&cli(
            "loadgen",
            &[
                ("connections", "64"),
                ("binary", "true"),
                ("frontend-label", "reactor"),
                ("append", "true"),
            ],
        ))
        .unwrap();
        assert_eq!(cfg.connections, 64);
        assert!(cfg.binary);
        assert_eq!(cfg.frontend, "reactor");
        assert!(cfg.append);
        assert_eq!(cfg.effective_connections(), 64);
        assert_eq!(cfg.codec(), "binary");
    }

    #[test]
    fn serve_config_parses_frontend_flags() {
        let cfg = serve_config(&cli(
            "serve",
            &[("frontend", "reactor"), ("reactors", "2")],
        ))
        .unwrap();
        assert_eq!(cfg.frontend, rush_serve::Frontend::Reactor);
        assert_eq!(cfg.reactors, 2);
        // Threads stays one flag away.
        let cfg = serve_config(&cli("serve", &[("frontend", "threads")])).unwrap();
        assert_eq!(cfg.frontend, rush_serve::Frontend::Threads);
    }

    #[cfg(unix)]
    #[test]
    fn serve_defaults_to_the_reactor_frontend() {
        let cfg = serve_config(&cli("serve", &[])).unwrap();
        assert_eq!(cfg.frontend, rush_serve::Frontend::Reactor);
    }

    #[cfg(unix)]
    #[test]
    fn loadgen_open_loop_drives_a_reactor_daemon() {
        // The reactor frontend and the open-loop engine end to end: a
        // binary-codec loadgen over concurrent nonblocking connections.
        let handle = rush_serve::serve(rush_serve::ServeConfig {
            addr: "127.0.0.1:0".into(),
            frontend: rush_serve::Frontend::Reactor,
            ..serve_config(&cli("serve", &[("epoch-ms", "5")])).unwrap()
        })
        .unwrap();
        let addr = handle.local_addr().to_string();
        let out = cmd_loadgen(&cli(
            "loadgen",
            &[
                ("addr", &addr),
                ("jobs", "8"),
                ("connections", "4"),
                ("binary", "true"),
                ("frontend-label", "reactor"),
                ("mean-ms", "2"),
                ("epoch-ms", "5"),
                ("shutdown", "true"),
            ],
        ))
        .unwrap();
        assert!(out.contains("8 submitted"), "{out}");
        assert!(out.contains("4 conns (binary)"), "{out}");
        let waits = handle.join().unwrap();
        assert_eq!(waits.count(), 8);
    }

    #[test]
    fn loadgen_drives_a_live_daemon_to_shutdown() {
        // serve+loadgen end to end through the CLI layer: bind on an
        // ephemeral port, point loadgen at it with --shutdown, and check
        // both summaries.
        let handle = rush_serve::serve(rush_serve::ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..serve_config(&cli("serve", &[("epoch-ms", "5")])).unwrap()
        })
        .unwrap();
        let addr = handle.local_addr().to_string();
        let out = cmd_loadgen(&cli(
            "loadgen",
            &[
                ("addr", &addr),
                ("jobs", "6"),
                ("workers", "2"),
                ("mean-ms", "2"),
                ("epoch-ms", "5"),
                ("shutdown", "true"),
            ],
        ))
        .unwrap();
        assert!(out.contains("6 submitted"), "{out}");
        assert!(out.contains("within epoch deadline"), "{out}");
        let waits = handle.join().unwrap();
        assert_eq!(waits.count(), 6);
    }

    #[test]
    fn workload_round_trips_through_load() {
        let dir = std::env::temp_dir().join("rush-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wl.txt");
        let path_s = path.to_string_lossy().into_owned();
        cmd_workload(&cli(
            "workload",
            &[("jobs", "4"), ("seed", "9"), ("out", &path_s), ("interarrival", "100")],
        ))
        .unwrap();
        let out = cmd_compare(&cli(
            "compare",
            &[("load", &path_s), ("schedulers", "fifo"), ("seed", "9")],
        ))
        .unwrap();
        assert!(out.contains("fifo"));
        std::fs::remove_file(path).ok();
    }
}

//! `rush-cli` entry point; all logic lives in [`rush_cli`] for testability.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = rush_cli::parse(&args).and_then(|cli| rush_cli::run(&cli));
    match outcome {
        Ok(out) => print!("{out}"),
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no cargo registry, so the workspace vendors the
//! slice of the proptest API its property tests use: the [`proptest!`]
//! macro, `Strategy` with `prop_map`/`prop_filter`/`prop_flat_map`, range
//! and tuple strategies, `prop::collection::vec`, `prop_oneof!`, and the
//! `prop_assert*`/`prop_assume!` assertion macros.
//!
//! Differences from upstream, deliberately accepted:
//! - no shrinking: a failing case panics with the generated inputs'
//!   assertion message, not a minimized counterexample;
//! - no persistence: `.proptest-regressions` files are ignored;
//! - case seeds derive deterministically from the test's module path and
//!   name, so every run explores the same cases (reproducible CI).

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Execution state for one `proptest!`-generated test.

    use rand::rngs::SmallRng;
    use rand::{Rng, RngCore, SeedableRng};

    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's inputs violated a `prop_assume!`; try another case.
        Reject,
        /// A `prop_assert*!` failed; abort the whole test.
        Fail(String),
    }

    impl TestCaseError {
        /// Upstream-compatible constructor for a failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            Self::Fail(reason.into())
        }

        /// Upstream-compatible constructor for a rejection.
        pub fn reject(_reason: impl Into<String>) -> Self {
            Self::Reject
        }
    }

    /// The deterministic generator driving strategy sampling.
    #[derive(Clone, Debug)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Seeds from an arbitrary identifier (FNV-1a over the bytes), so
        /// each test explores a stable, test-specific case sequence.
        pub fn deterministic(identifier: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in identifier.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self(SmallRng::seed_from_u64(h))
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.0.gen::<f64>()
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            self.0.gen_range(0..n)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use super::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value`. `None` means the candidate was
    /// rejected (by a filter) and the runner should retry.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one candidate value.
        fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Discards candidates for which `f` is false. `reason` matches the
        /// upstream signature and is kept for diagnostics.
        fn prop_filter<R: Into<String>, F: Fn(&Self::Value) -> bool>(
            self,
            reason: R,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, reason: reason.into(), f }
        }

        /// Builds a second strategy from each generated value and samples it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.gen_value(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        #[allow(dead_code)]
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.inner.gen_value(rng).filter(|v| (self.f)(v))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S2::Value> {
            let mid = self.inner.gen_value(rng)?;
            (self.f)(mid).gen_value(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    trait ErasedStrategy<T> {
        fn gen_erased(&self, rng: &mut TestRng) -> Option<T>;
    }

    impl<S: Strategy> ErasedStrategy<S::Value> for S {
        fn gen_erased(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.gen_value(rng)
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
            self.0.gen_erased(rng)
        }
    }

    /// Uniform choice among alternatives (the engine behind `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
            let i = rng.below(self.options.len());
            self.options[i].gen_value(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty => $wide:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    Some((self.start as $wide)
                        .wrapping_add((rng.next_u64() % span) as $wide) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    if span == u64::MAX {
                        return Some(rng.next_u64() as $t);
                    }
                    Some((lo as $wide)
                        .wrapping_add((rng.next_u64() % (span + 1)) as $wide) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    );

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    Some(self.start + u * (self.end - self.start))
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    Some(lo + u * (hi - lo))
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.gen_value(rng)?,)+))
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::ops::Range;

    /// Element-count specification for [`vec`]: an exact count or a
    /// half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                self.size.lo + rng.below(self.size.hi - self.size.lo)
            };
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Upstream-compatible access path: `prop::collection::vec`, etc.
pub mod prop {
    pub use super::collection;
    pub use super::strategy;
}

/// The glob-import surface used by every test file.
pub mod prelude {
    pub use super::prop;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use super::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines `#[test]` functions over generated inputs.
///
/// Supports the subset of upstream syntax this repo uses: an optional
/// leading `#![proptest_config(...)]`, then any number of
/// `fn name(pat in strategy, ...) { body }` items with attributes and doc
/// comments.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr)) => {};
    (@run ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut ran: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = cfg.cases.saturating_mul(20).saturating_add(100);
            while ran < cfg.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest {}: too many rejected cases ({} attempts for {} cases)",
                    stringify!($name),
                    attempts,
                    cfg.cases,
                );
                let ($($pat,)*) = ($(
                    match $crate::strategy::Strategy::gen_value(&{ $strat }, &mut rng) {
                        ::core::option::Option::Some(v) => v,
                        ::core::option::Option::None => continue,
                    },
                )*);
                let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    { $body }
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => ran += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} (case {}): {}", stringify!($name), ran, msg);
                    }
                }
            }
        }
        $crate::proptest! { @run ($cfg) $($rest)* }
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @run ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        // `if cond {} else { fail }` rather than `if !cond` so conditions
        // on partially ordered operands don't trip clippy::neg_cmp_op.
        if $cond {
        } else {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Rejects the current case (retried, not failed) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("shim::smoke");
        let s = prop::collection::vec(0.5f64..2.0, 3..7);
        for _ in 0..100 {
            let v = s.gen_value(&mut rng).unwrap();
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0.5..2.0).contains(x)));
        }
    }

    #[test]
    fn filter_rejects() {
        let mut rng = crate::test_runner::TestRng::deterministic("shim::filter");
        let s = (0u64..10).prop_filter("even", |x| x % 2 == 0);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match s.gen_value(&mut rng) {
                Some(x) => {
                    assert_eq!(x % 2, 0);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro wires bindings, assume, and assertions together.
        #[test]
        fn macro_end_to_end(
            xs in prop::collection::vec(1u64..50, 1..8),
            scale in 1.0f64..3.0,
        ) {
            prop_assume!(!xs.is_empty());
            let total: u64 = xs.iter().sum();
            prop_assert!(total >= xs.len() as u64, "sum {} below len {}", total, xs.len());
            prop_assert_eq!(xs.len(), xs.iter().map(|_| 1usize).sum::<usize>());
            let scaled = total as f64 * scale;
            prop_assert!(scaled >= total as f64);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn oneof_covers_arms() {
        let mut rng = crate::test_runner::TestRng::deterministic("shim::oneof");
        let s = prop_oneof![
            (0u64..1).prop_map(|_| "a"),
            (0u64..1).prop_map(|_| "b"),
        ];
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..64 {
            match s.gen_value(&mut rng).unwrap() {
                "a" => seen_a = true,
                "b" => seen_b = true,
                _ => unreachable!(),
            }
        }
        assert!(seen_a && seen_b);
    }
}

//! End-to-end tests for the epoll reactor frontend, run against live
//! in-process daemons:
//!
//! * the full request lifecycle over the reactor in both codecs (JSON and
//!   binary), single- and multi-shard;
//! * pipelined requests answered strictly in order;
//! * the epoch-tick regression — a lone submission must be planned within
//!   one epoch with **no** further traffic on any connection;
//! * the frontend/codec differential — identical request streams driven
//!   through `threads`×JSON, `threads`×binary, `reactor`×JSON and
//!   `reactor`×binary must leave byte-identical snapshots (the planner
//!   state cannot depend on the transport).

#![cfg(unix)]

use rush_serve::protocol::{Decision, Request, Response};
use rush_serve::server::{serve, Frontend, ServeConfig};
use rush_serve::Client;
use rush_utility::TimeUtility;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn reactor_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        capacity: 16,
        epoch_max_batch: 8,
        epoch_ms: 10,
        ms_per_slot: 3_600_000,
        frontend: Frontend::Reactor,
        ..ServeConfig::default()
    }
}

fn submission(label: &str, tasks: u64) -> rush_serve::protocol::JobSubmission {
    rush_serve::protocol::JobSubmission {
        label: label.into(),
        tasks,
        runtime_hint: Some(40.0),
        utility: TimeUtility::linear(5000.0, 3.0, 0.01).expect("valid"),
        budget: Some(5000),
        priority: 1,
    }
}

/// The full session lifecycle from `server_e2e.rs`, replayed against a
/// reactor daemon with the given client constructor.
fn lifecycle(cfg: ServeConfig, connect: fn(std::net::SocketAddr) -> Client) {
    let handle = serve(cfg).expect("serve");
    let mut client = connect(handle.local_addr());

    let (decision, id, epoch, _) = client.submit(submission("session", 10)).expect("submit");
    assert_eq!(decision, Decision::Admit);
    let id = id.expect("admitted");
    assert!(epoch >= 1);

    let rows = client.query_plan(Some(id)).expect("plan");
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].label, "session");
    assert_eq!(rows[0].remaining_tasks, 10);

    let bound = client.predict(id).expect("predict");
    assert_eq!(bound, rows[0].target + rows[0].task_len as f64);

    for _ in 0..10 {
        client.report_sample(id, 40).expect("sample");
    }
    let err = client.predict(id).expect_err("job completed");
    assert!(err.to_string().contains("unknown-job"), "{err}");

    let (_, id2, _, _) = client.submit(submission("doomed", 4)).expect("submit");
    client.cancel(id2.expect("admitted")).expect("cancel");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.admitted, 2);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cancelled, 1);

    assert!(!client.shutdown(false).expect("shutdown"));
    handle.join().expect("join");
}

fn json_client(addr: std::net::SocketAddr) -> Client {
    Client::connect(addr).expect("connect")
}

fn binary_client(addr: std::net::SocketAddr) -> Client {
    Client::connect_binary(addr).expect("connect binary")
}

#[test]
fn reactor_serves_the_json_lifecycle() {
    lifecycle(reactor_config(), json_client);
}

#[test]
fn reactor_serves_the_binary_lifecycle() {
    lifecycle(reactor_config(), binary_client);
}

#[test]
fn sharded_reactor_serves_both_codecs() {
    // Four planner shards under two reactor threads: per-job requests
    // route by wire id, broadcasts merge across shards, and the two
    // codecs interoperate on the same daemon.
    let cfg = ServeConfig { shards: 4, reactors: 2, ..reactor_config() };
    let handle = serve(cfg).expect("serve");
    let mut json = Client::connect(handle.local_addr()).expect("connect");
    let mut bin = Client::connect_binary(handle.local_addr()).expect("connect binary");

    let mut ids = Vec::new();
    for i in 0..8 {
        let client = if i % 2 == 0 { &mut json } else { &mut bin };
        let (decision, id, _, _) =
            client.submit(submission(&format!("tpl-{i}"), 4)).expect("submit");
        assert_eq!(decision, Decision::Admit);
        ids.push(id.expect("admitted"));
    }
    assert_eq!(
        ids.iter().collect::<std::collections::BTreeSet<_>>().len(),
        8,
        "wire ids stay unique across shards"
    );

    for &id in &ids {
        let rows = bin.query_plan(Some(id)).expect("plan");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].job, id);
    }
    // Broadcast merge across shards, through both codecs.
    assert_eq!(json.query_plan(None).expect("full table").len(), 8);
    assert_eq!(bin.query_plan(None).expect("full table").len(), 8);

    let stats = bin.stats().expect("stats");
    assert_eq!(stats.admitted, 8);
    assert_eq!(stats.active_jobs, 8);

    assert!(!json.shutdown(false).expect("shutdown"));
    handle.join().expect("join");
}

#[test]
fn pipelined_requests_answer_in_order() {
    // Fire a burst of distinguishable requests in one write, before
    // reading anything: the reactor must answer them strictly in request
    // order even though they complete on planner threads asynchronously.
    let cfg = ServeConfig { shards: 2, ..reactor_config() };
    let handle = serve(cfg).expect("serve");
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let mut burst = String::new();
    burst.push_str(&(Request::Stats.encode() + "\n"));
    burst.push_str("{\"v\":1,\"op\":\"warp\"}\n"); // BadOp — completes locally
    burst.push_str(&(Request::QueryPlan { job: None }.encode() + "\n"));
    burst.push_str(&(Request::Predict { job: 9999 }.encode() + "\n")); // unknown job
    burst.push_str(&(Request::Stats.encode() + "\n"));
    stream.write_all(burst.as_bytes()).expect("write");

    let mut replies = Vec::new();
    for _ in 0..5 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        replies.push(Response::decode(line.trim()).expect("decode"));
    }
    assert!(matches!(replies[0], Response::Stats(_)), "{:?}", replies[0]);
    assert!(matches!(&replies[1], Response::Error(e) if e.code.as_str() == "bad-op"));
    assert!(matches!(replies[2], Response::PlanTable { .. }), "{:?}", replies[2]);
    assert!(matches!(&replies[3], Response::Error(e) if e.code.as_str() == "unknown-job"));
    assert!(matches!(replies[4], Response::Stats(_)), "{:?}", replies[4]);

    let mut client = Client::connect(handle.local_addr()).expect("connect");
    client.shutdown(false).expect("shutdown");
    handle.join().expect("join");
}

/// Satellite regression: a lone submission must be planned within one
/// epoch deadline with no further traffic — the reactor's timer wheel
/// (and the planner's own deadline check) close the epoch, not some later
/// request happening to poke the daemon.
fn idle_epoch_closes(frontend: Frontend) {
    let cfg = ServeConfig {
        // Only the deadline can close the epoch: the batch trigger is
        // out of reach for a single submission.
        epoch_max_batch: 1000,
        epoch_ms: 50,
        frontend,
        ..reactor_config()
    };
    let epoch_ms = cfg.epoch_ms;
    let handle = serve(cfg).expect("serve");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let started = Instant::now();
    let (decision, id, epoch, _) = client.submit(submission("lonely", 4)).expect("submit");
    let elapsed = started.elapsed();
    assert_eq!(decision, Decision::Admit);
    assert!(id.is_some());
    assert_eq!(epoch, 1, "exactly one epoch closed");
    assert!(
        elapsed < Duration::from_millis(epoch_ms * 20),
        "submission sat {elapsed:?} — the epoch deadline did not fire while idle"
    );

    // The job is really planned, not merely acknowledged.
    let rows = client.query_plan(id).expect("plan");
    assert_eq!(rows.len(), 1);

    client.shutdown(false).expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn idle_epoch_closes_under_the_reactor() {
    idle_epoch_closes(Frontend::Reactor);
}

#[test]
fn idle_epoch_closes_under_threads() {
    idle_epoch_closes(Frontend::Threads);
}

/// Drives one fixed request stream through a daemon and returns its
/// snapshot bytes.
fn snapshot_after_stream(frontend: Frontend, binary: bool, tag: &str) -> Vec<u8> {
    let snap: PathBuf = std::env::temp_dir()
        .join(format!("rushd-differential-{}-{tag}.json", std::process::id()));
    std::fs::remove_file(&snap).ok();
    let cfg = ServeConfig {
        frontend,
        snapshot_path: Some(snap.clone()),
        ..reactor_config()
    };
    let handle = serve(cfg).expect("serve");
    let mut client = if binary {
        Client::connect_binary(handle.local_addr()).expect("connect binary")
    } else {
        Client::connect(handle.local_addr()).expect("connect")
    };

    // A deterministic sequential stream: the hour-long logical slot keeps
    // the clock at 0 for every daemon, so the final state depends only on
    // the requests.
    let mut ids = Vec::new();
    for (label, tasks) in [("grep", 12), ("terasort", 40), ("wordcount", 25)] {
        let (decision, id, _, _) = client.submit(submission(label, tasks)).expect("submit");
        assert_eq!(decision, Decision::Admit);
        ids.push(id.expect("admitted"));
    }
    for _ in 0..5 {
        client.report_sample(ids[0], 38).expect("sample");
    }
    client.cancel(ids[1]).expect("cancel");
    assert!(client.shutdown(true).expect("shutdown writes the snapshot"));
    handle.join().expect("join");

    let bytes = std::fs::read(&snap).expect("snapshot file");
    std::fs::remove_file(&snap).ok();
    bytes
}

#[test]
fn frontends_and_codecs_produce_identical_planner_state() {
    let reference = snapshot_after_stream(Frontend::Threads, false, "threads-json");
    let threads_bin = snapshot_after_stream(Frontend::Threads, true, "threads-bin");
    let reactor_json = snapshot_after_stream(Frontend::Reactor, false, "reactor-json");
    let reactor_bin = snapshot_after_stream(Frontend::Reactor, true, "reactor-bin");
    assert_eq!(reference, threads_bin, "threads×binary diverged from threads×JSON");
    assert_eq!(reference, reactor_json, "reactor×JSON diverged from threads×JSON");
    assert_eq!(reference, reactor_bin, "reactor×binary diverged from threads×JSON");
}

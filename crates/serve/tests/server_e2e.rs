//! End-to-end tests against a live in-process daemon: full request
//! lifecycle, epoch batching across concurrent clients, and the
//! connection-survives-a-bad-frame contract whose pure-codec halves live
//! in `malformed_frames.rs`.

use rush_serve::protocol::{Decision, ErrorCode, Request, Response};
use rush_serve::server::{serve, ServeConfig};
use rush_serve::Client;
use rush_utility::TimeUtility;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        capacity: 16,
        epoch_max_batch: 8,
        epoch_ms: 10,
        ms_per_slot: 3_600_000,
        ..ServeConfig::default()
    }
}

fn submission(label: &str, tasks: u64) -> rush_serve::protocol::JobSubmission {
    rush_serve::protocol::JobSubmission {
        label: label.into(),
        tasks,
        runtime_hint: Some(40.0),
        utility: TimeUtility::linear(5000.0, 3.0, 0.01).expect("valid"),
        budget: Some(5000),
        priority: 1,
    }
}

#[test]
fn full_session_lifecycle() {
    let handle = serve(test_config()).expect("serve");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Submit, then exercise every read/write op against the job.
    let (decision, id, epoch, _) = client.submit(submission("session", 10)).expect("submit");
    assert_eq!(decision, Decision::Admit);
    let id = id.expect("admitted");
    assert!(epoch >= 1);

    let rows = client.query_plan(Some(id)).expect("plan");
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].label, "session");
    assert_eq!(rows[0].remaining_tasks, 10);
    assert!(rows[0].eta >= 10 * 40, "robust demand inflates the hint");

    let bound = client.predict(id).expect("predict");
    assert_eq!(bound, rows[0].target + rows[0].task_len as f64);

    for _ in 0..9 {
        client.report_sample(id, 41).expect("sample");
    }
    client.report_sample(id, 39).expect("last sample completes the job");
    let err = client.predict(id).expect_err("job is gone");
    let msg = err.to_string();
    assert!(msg.contains("unknown-job"), "completion removes the job: {msg}");

    // A second job can still be cancelled explicitly.
    let (_, id2, _, _) = client.submit(submission("doomed", 4)).expect("submit");
    client.cancel(id2.expect("admitted")).expect("cancel");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.active_jobs, 0);
    assert_eq!(stats.admitted, 2);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.samples, 10);

    assert!(!client.shutdown(false).expect("shutdown"));
    handle.join().expect("join");
}

#[test]
fn concurrent_submissions_share_an_epoch() {
    // Batch of 4 with a generous 2 s window: the epoch closes on count,
    // so four concurrent submissions must land in the same epoch.
    let cfg = ServeConfig { epoch_max_batch: 4, epoch_ms: 2000, ..test_config() };
    let handle = serve(cfg).expect("serve");
    let addr = handle.local_addr();

    let workers: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let (decision, id, epoch, waited_us) =
                    client.submit(submission(&format!("par-{i}"), 5)).expect("submit");
                assert_eq!(decision, Decision::Admit);
                assert!(id.is_some());
                (epoch, waited_us)
            })
        })
        .collect();
    let results: Vec<(u64, u64)> =
        workers.into_iter().map(|w| w.join().expect("worker")).collect();

    let first_epoch = results[0].0;
    assert!(
        results.iter().all(|(e, _)| *e == first_epoch),
        "all four submissions should share one epoch: {results:?}"
    );
    // The batch trigger fired well before the 2 s deadline.
    assert!(
        results.iter().all(|(_, w)| *w < 2_000_000),
        "batch-close should beat the epoch deadline: {results:?}"
    );

    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.admitted, 4);
    assert_eq!(stats.epochs, 1, "one shared epoch");
    client.shutdown(false).expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn sharded_daemon_serves_the_same_lifecycle() {
    // Four planner shards: submissions route by label hash, wire ids
    // encode the owner shard, and cluster-wide requests (full table,
    // stats, shutdown) merge across shards.
    let cfg = ServeConfig { shards: 4, ..test_config() };
    let handle = serve(cfg).expect("serve");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let mut ids = Vec::new();
    for i in 0..8 {
        let (decision, id, _, _) =
            client.submit(submission(&format!("tpl-{i}"), 4)).expect("submit");
        assert_eq!(decision, Decision::Admit);
        ids.push(id.expect("admitted"));
    }
    assert_eq!(
        ids.iter().collect::<std::collections::BTreeSet<_>>().len(),
        8,
        "wire ids stay unique across shards"
    );

    // Per-job reads route to the owner shard.
    for &id in &ids {
        let rows = client.query_plan(Some(id)).expect("plan");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].job, id);
        let _ = client.predict(id).expect("predict");
    }

    // The merged full table sees every shard's jobs.
    let all = client.query_plan(None).expect("full table");
    assert_eq!(all.len(), 8);

    // Samples route by wire id; completing one job updates merged stats.
    for _ in 0..4 {
        client.report_sample(ids[0], 40).expect("sample");
    }
    client.cancel(ids[1]).expect("cancel");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.admitted, 8);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.samples, 4);
    assert_eq!(stats.active_jobs, 6);

    assert!(!client.shutdown(false).expect("shutdown"));
    handle.join().expect("join");
}

#[test]
fn set_capacity_resizes_across_shards_and_codecs() {
    let cfg = ServeConfig { shards: 4, ..test_config() };
    let handle = serve(cfg).expect("serve");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // A resident job keeps its plan through both resizes.
    let (d, id, _, _) = client.submit(submission("survivor", 4)).expect("submit");
    assert_eq!(d, Decision::Admit);
    let id = id.expect("admitted");

    // Shrink: every shard re-slices; the reply sums back to the total.
    assert_eq!(client.set_capacity(8).expect("shrink"), 8);
    assert_eq!(client.query_plan(Some(id)).expect("plan").len(), 1);

    // Grow, over the binary codec this time.
    let mut bin = Client::connect_binary(handle.local_addr()).expect("connect binary");
    assert_eq!(bin.set_capacity(24).expect("grow"), 24);
    assert_eq!(bin.query_plan(Some(id)).expect("plan").len(), 1);

    // A capacity the shards cannot split is refused atomically …
    let err = client.set_capacity(3).expect_err("4 shards need >= 4 containers");
    assert!(err.to_string().contains("bad-field"), "{err}");
    // … and zero dies in the decoder before reaching any planner.
    let err = client.set_capacity(0).expect_err("zero capacity");
    assert!(err.to_string().contains("bad-field"), "{err}");
    // Neither failed resize moved the cluster off 24.
    assert_eq!(client.set_capacity(24).expect("idempotent resize"), 24);

    client.shutdown(false).expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn spot_revocation_defers_awaiting_restock_over_the_wire() {
    use rush_core::cluster::ClusterModel;
    use rush_serve::protocol::DeferReason;

    let cfg = ServeConfig {
        cluster: Some(ClusterModel::tiered(8, 0, 8)),
        ..test_config()
    };
    let handle = serve(cfg).expect("serve");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // The whole spot pool is revoked: 16 → 8 containers.
    assert_eq!(client.set_capacity(8).expect("revoke"), 8);

    // Size the job from the same estimator the daemon runs: a budget of
    // η/8 − 1 is infeasible at the depressed 8 but feasible at the
    // provisioned 16 even after the 60-slot spot reclaim horizon.
    let (eta, _) = rush_planner::estimate_eta(
        &rush_core::RushConfig::default(),
        &[],
        Some(40.0),
        400,
    )
    .expect("estimate");
    let budget = eta / 8 - 1;
    let spiky = rush_serve::protocol::JobSubmission {
        label: "spiky".into(),
        tasks: 400,
        runtime_hint: Some(40.0),
        utility: TimeUtility::linear(budget as f64, 3.0, 0.01).expect("valid"),
        budget: Some(budget),
        priority: 1,
    };
    let job = match client.call(&Request::Submit(spiky)).expect("submit") {
        Response::Submitted { decision, defer_reason, job, .. } => {
            assert_eq!(decision, Decision::Defer);
            assert_eq!(defer_reason, Some(DeferReason::AwaitingRestock));
            job.expect("parked job keeps its id")
        }
        other => panic!("expected a submit verdict, got {other:?}"),
    };
    assert_eq!(client.stats().expect("stats").deferred_jobs, 1);

    // The market restocks; the next epoch re-probes and admits.
    assert_eq!(client.set_capacity(16).expect("restock"), 16);
    let (d, _, _, _) = client.submit(submission("epoch-trigger", 1)).expect("submit");
    assert_eq!(d, Decision::Admit);
    assert_eq!(client.stats().expect("stats").deferred_jobs, 0);
    assert_eq!(client.query_plan(Some(job)).expect("plan").len(), 1);

    client.shutdown(false).expect("shutdown");
    handle.join().expect("join");
}

#[test]
fn cluster_model_requires_a_single_shard() {
    use rush_core::cluster::ClusterModel;
    let cfg = ServeConfig {
        cluster: Some(ClusterModel::tiered(8, 0, 8)),
        shards: 4,
        ..test_config()
    };
    assert!(serve(cfg).is_err(), "a shard slice cannot observe the cluster-wide deficit");
}

#[test]
fn sharded_daemon_rejects_thin_capacity() {
    let cfg = ServeConfig { shards: 32, capacity: 16, ..test_config() };
    assert!(serve(cfg).is_err(), "capacity must cover one container per shard");
}

/// Raw-socket client: sends `line`, returns the response line.
fn raw_call(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    stream.write_all(line.as_bytes()).expect("write");
    stream.write_all(b"\n").expect("write");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    reply
}

#[test]
fn connection_survives_malformed_frames() {
    let handle = serve(test_config()).expect("serve");
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Three different malformed frames, each answered with a structured
    // error on the SAME connection.
    for (bad, want) in [
        ("{\"v\":1,\"op\":\"stats\"", ErrorCode::BadJson),
        ("{\"v\":9,\"op\":\"stats\"}", ErrorCode::BadVersion),
        ("{\"v\":1,\"op\":\"warp\"}", ErrorCode::BadOp),
    ] {
        let reply = raw_call(&mut stream, &mut reader, bad);
        match Response::decode(reply.trim()) {
            Ok(Response::Error(e)) => assert_eq!(e.code, want, "frame {bad:?}"),
            other => panic!("expected structured error for {bad:?}, got {other:?}"),
        }
    }

    // ...and the connection is still perfectly usable afterwards.
    let reply = raw_call(&mut stream, &mut reader, &Request::Stats.encode());
    match Response::decode(reply.trim()) {
        Ok(Response::Stats(s)) => assert_eq!(s.active_jobs, 0),
        other => panic!("expected stats after bad frames, got {other:?}"),
    }

    let reply = raw_call(&mut stream, &mut reader, &Request::Shutdown { snapshot: false }.encode());
    match Response::decode(reply.trim()) {
        Ok(Response::ShuttingDown { snapshot_written }) => assert!(!snapshot_written),
        other => panic!("expected shutdown ack, got {other:?}"),
    }
    handle.join().expect("join");
}

#[test]
fn overcommit_draws_reject_and_deferred_is_queryable_later() {
    // Tiny cluster: one container, short horizon. A huge deadline-
    // sensitive job is rejected; an insensitive one is deferred and its
    // plan/predict queries answer `deferred` until room frees up.
    let rush = rush_core::RushConfig { horizon: 500.0, ..rush_core::RushConfig::default() };
    let cfg = ServeConfig { capacity: 1, rush, ..test_config() };
    let handle = serve(cfg).expect("serve");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Fills most of the single 500-slot container.
    let (d1, id1, _, _) = client.submit(submission("filler", 4)).expect("submit");
    assert_eq!(d1, Decision::Admit);
    let _ = id1.expect("admitted");

    // Deadline-sensitive and far too big: rejected outright, no id.
    let (d2, id2, _, _) = client.submit(submission("too-big", 400)).expect("submit");
    assert_eq!(d2, Decision::Reject);
    assert!(id2.is_none());

    // Deadline-insensitive and too big *now*: deferred with an id.
    let insensitive = rush_serve::protocol::JobSubmission {
        label: "patient".into(),
        tasks: 8,
        runtime_hint: Some(40.0),
        utility: TimeUtility::constant(1.0).expect("valid"),
        budget: None,
        priority: 1,
    };
    let (d3, id3, _, _) = client.submit(insensitive).expect("submit");
    assert_eq!(d3, Decision::Defer);
    let id3 = id3.expect("deferred jobs get ids");

    let err = client.predict(id3).expect_err("parked job has no plan row");
    assert!(err.to_string().contains("deferred"), "{err}");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.deferred_jobs, 1);
    assert_eq!(stats.rejected, 1);

    client.shutdown(false).expect("shutdown");
    handle.join().expect("join");
}

//! End-to-end snapshot/restore: a daemon is stopped gracefully and a new
//! daemon restored from its snapshot must reproduce the *same plan* for
//! the in-flight jobs — bit-identical `η`, targets and levels (the
//! `assert_eq!` below compares the raw `f64` fields).
//!
//! The daemons run with an hour-long logical slot so the slot clock cannot
//! advance during the test: both plans are computed at the snapshot's
//! slot, which is exactly the restart contract (the restored daemon's
//! clock starts at the snapshot slot, not at zero).

use rush_serve::protocol::Decision;
use rush_serve::server::{serve, ServeConfig};
use rush_serve::Client;
use rush_utility::TimeUtility;
use std::path::PathBuf;

fn submission(label: &str, tasks: u64, budget: u64) -> rush_serve::protocol::JobSubmission {
    rush_serve::protocol::JobSubmission {
        label: label.into(),
        tasks,
        runtime_hint: Some(45.0),
        utility: TimeUtility::sigmoid(budget as f64, 4.0, 10.0 / budget as f64).expect("valid"),
        budget: Some(budget),
        priority: 2,
    }
}

fn config(snapshot: PathBuf) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        capacity: 16,
        epoch_max_batch: 8,
        epoch_ms: 10,
        // One slot per hour: the logical clock is frozen for the duration
        // of the test, on both sides of the restart.
        ms_per_slot: 3_600_000,
        snapshot_path: Some(snapshot),
        ..ServeConfig::default()
    }
}

#[test]
fn restarted_daemon_reproduces_the_plan_bit_identically() {
    let snap = std::env::temp_dir()
        .join(format!("rushd-restore-test-{}.json", std::process::id()));
    std::fs::remove_file(&snap).ok();

    // First life: submit three jobs, feed one of them samples.
    let handle = serve(config(snap.clone())).expect("serve");
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    let mut ids = Vec::new();
    for sub in [
        submission("grep", 12, 4000),
        submission("terasort", 40, 9000),
        submission("wordcount", 25, 6000),
    ] {
        let (decision, id, _, _) = client.submit(sub).expect("submit");
        assert_eq!(decision, Decision::Admit);
        ids.push(id.expect("admitted jobs have ids"));
    }
    client.report_sample(ids[0], 43).expect("sample");
    client.report_sample(ids[0], 48).expect("sample");
    let rows_before = client.query_plan(None).expect("plan");
    assert_eq!(rows_before.len(), 3);
    let bound_before = client.predict(ids[1]).expect("predict");
    assert!(client.shutdown(true).expect("shutdown"), "snapshot must be written");
    handle.join().expect("join");

    // Second life: restore from the snapshot, ask for the same plan.
    let handle = serve(config(snap.clone())).expect("serve restored");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let rows_after = client.query_plan(None).expect("plan");
    let bound_after = client.predict(ids[1]).expect("predict");
    let stats = client.stats().expect("stats");

    // Bit-identical: PlanRow's PartialEq compares the f64 targets/levels
    // exactly, and eta/task_len/planned_completion are integers.
    assert_eq!(rows_before, rows_after);
    assert_eq!(bound_before.to_bits(), bound_after.to_bits());
    // Counters and ids survived too: new submissions must not reuse ids.
    assert_eq!(stats.active_jobs, 3);
    assert_eq!(stats.samples, 2);
    let (_, new_id, _, _) =
        client.submit(submission("late", 5, 3000)).expect("submit after restore");
    assert!(new_id.expect("admitted") > ids[2], "ids must not be reused after restore");

    client.shutdown(false).expect("shutdown");
    handle.join().expect("join");
    std::fs::remove_file(&snap).ok();
}

#[test]
fn snapshotless_shutdown_writes_nothing() {
    let snap = std::env::temp_dir()
        .join(format!("rushd-nosnap-test-{}.json", std::process::id()));
    std::fs::remove_file(&snap).ok();
    let handle = serve(config(snap.clone())).expect("serve");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    client.submit(submission("j", 4, 2000)).expect("submit");
    // shutdown(snapshot: false) must not write the file.
    assert!(!client.shutdown(false).expect("shutdown"));
    handle.join().expect("join");
    assert!(!snap.exists(), "no snapshot requested, none should exist");
}

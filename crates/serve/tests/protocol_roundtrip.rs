//! Property tests for the wire codecs: every request and response variant
//! must survive encode → decode unchanged (PartialEq, which for the float
//! fields means bit-identical thanks to shortest-round-trip `f64`
//! formatting on both the JSON layer and the utility text form).
//!
//! One strategy corpus feeds **both** codecs: each variant round-trips
//! through the newline-JSON codec and the length-prefixed binary codec,
//! and a differential property asserts the two decoders produce identical
//! values from their respective encodings of the same frame.

use proptest::prelude::*;
use rush_serve::binary::{self, Scan};
use rush_serve::protocol::{
    Decision, DeferReason, ErrorCode, JobSubmission, PlanRow, Request, Response, StatsReport,
    WireError,
};
use rush_utility::TimeUtility;

/// Characters chosen to stress the string escaper: quotes, backslashes,
/// control characters, multi-byte UTF-8 and an astral-plane emoji.
const PALETTE: &[char] =
    &['a', 'Z', '7', ' ', '-', '_', '"', '\\', '\n', '\t', '\r', '\u{1}', 'é', '木', '🚀'];

fn label_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PALETTE.len(), 0..12)
        .prop_map(|ix| ix.into_iter().map(|i| PALETTE[i]).collect())
}

fn utility_strategy() -> BoxedStrategy<TimeUtility> {
    prop_oneof![
        (100.0f64..5000.0, 0.5f64..10.0, 0.001f64..1.0)
            .prop_map(|(b, w, beta)| TimeUtility::linear(b, w, beta).expect("valid linear")),
        (100.0f64..5000.0, 0.5f64..10.0, 0.001f64..1.0)
            .prop_map(|(b, w, beta)| TimeUtility::sigmoid(b, w, beta).expect("valid sigmoid")),
        (0.5f64..10.0).prop_map(|w| TimeUtility::constant(w).expect("valid constant")),
        (100.0f64..5000.0, 0.5f64..10.0)
            .prop_map(|(b, w)| TimeUtility::step(b, w).expect("valid step")),
    ]
    .boxed()
}

fn submission_strategy() -> impl Strategy<Value = JobSubmission> {
    (
        label_strategy(),
        1u64..500,
        prop_oneof![Just(None), (1.0f64..500.0).prop_map(Some)],
        utility_strategy(),
        prop_oneof![Just(None), (1u64..100_000).prop_map(Some)],
        1u64..20,
    )
        .prop_map(|(label, tasks, runtime_hint, utility, budget, priority)| JobSubmission {
            label,
            tasks,
            runtime_hint,
            utility,
            budget,
            priority: priority as u32,
        })
}

fn request_strategy() -> BoxedStrategy<Request> {
    prop_oneof![
        submission_strategy().prop_map(Request::Submit),
        (0u64..1000, 1u64..10_000)
            .prop_map(|(job, runtime)| Request::ReportSample { job, runtime }),
        prop_oneof![Just(None), (0u64..1000).prop_map(Some)]
            .prop_map(|job| Request::QueryPlan { job }),
        (0u64..1000).prop_map(|job| Request::Predict { job }),
        (0u64..1000).prop_map(|job| Request::Cancel { job }),
        Just(Request::Stats),
        (1u32..100_000).prop_map(|capacity| Request::SetCapacity { capacity }),
        prop_oneof![Just(true), Just(false)]
            .prop_map(|snapshot| Request::Shutdown { snapshot }),
    ]
    .boxed()
}

fn plan_row_strategy() -> impl Strategy<Value = PlanRow> {
    (
        (0u64..1000, label_strategy(), 1u64..1_000_000, 1u64..500),
        (0.0f64..100_000.0, 0.0f64..50.0, 0u64..64, 0u64..1_000_000),
        prop_oneof![Just(true), Just(false)],
        0u64..500,
    )
        .prop_map(|((job, label, eta, task_len), (target, level, desired, planned), imp, rem)| {
            PlanRow {
                job,
                label,
                eta,
                task_len,
                target,
                level,
                desired_now: desired as u32,
                planned_completion: planned,
                impossible: imp,
                remaining_tasks: rem,
            }
        })
}

fn decision_strategy() -> BoxedStrategy<Decision> {
    prop_oneof![Just(Decision::Admit), Just(Decision::Defer), Just(Decision::Reject)]
    .boxed()
}

fn error_code_strategy() -> BoxedStrategy<ErrorCode> {
    prop_oneof![
        Just(ErrorCode::BadJson),
        Just(ErrorCode::BadFrame),
        Just(ErrorCode::BadVersion),
        Just(ErrorCode::BadOp),
        Just(ErrorCode::BadField),
        Just(ErrorCode::UnknownJob),
        Just(ErrorCode::Deferred),
        Just(ErrorCode::Shutdown),
        Just(ErrorCode::Internal),
    ]
    .boxed()
}

fn defer_reason_strategy() -> BoxedStrategy<Option<DeferReason>> {
    prop_oneof![
        Just(None),
        Just(Some(DeferReason::Overcommit)),
        Just(Some(DeferReason::AwaitingRestock)),
    ]
    .boxed()
}

fn response_strategy() -> BoxedStrategy<Response> {
    prop_oneof![
        (
            prop_oneof![Just(None), (0u64..1000).prop_map(Some)],
            decision_strategy(),
            0u64..10_000,
            0u64..100_000_000,
            defer_reason_strategy(),
        )
            .prop_map(|(job, decision, epoch, waited_us, defer_reason)| Response::Submitted {
                job,
                decision,
                epoch,
                waited_us,
                defer_reason,
            }),
        (1u32..100_000).prop_map(|capacity| Response::CapacitySet { capacity }),
        Just(Response::Ack),
        (0u64..100_000, 0u64..10_000, prop::collection::vec(plan_row_strategy(), 0..6))
            .prop_map(|(now_slot, epoch, rows)| Response::PlanTable { now_slot, epoch, rows }),
        (
            (0u64..1000, 0.0f64..100_000.0, 1u64..500),
            (0.0f64..100_500.0, 0u64..1_000_000),
            prop_oneof![Just(true), Just(false)],
        )
            .prop_map(|((job, target, task_len), (bound, planned), impossible)| {
                Response::Prediction {
                    job,
                    target,
                    task_len,
                    bound,
                    planned_completion: planned,
                    impossible,
                }
            }),
        (
            (0u64..100, 0u64..100, 0u64..10_000, 0u64..10_000),
            (0u64..10_000, 0u64..10_000, 0u64..10_000, 0u64..10_000),
            (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        )
            .prop_map(
                |(
                    (active_jobs, deferred_jobs, epochs, admitted),
                    (deferred, rejected, cancelled, completed),
                    (samples, cache_hits, cache_misses, now_slot),
                )| {
                    Response::Stats(StatsReport {
                        active_jobs,
                        deferred_jobs,
                        epochs,
                        admitted,
                        deferred,
                        rejected,
                        cancelled,
                        completed,
                        samples,
                        cache_hits,
                        cache_misses,
                        now_slot,
                    })
                }
            ),
        prop_oneof![Just(true), Just(false)]
            .prop_map(|snapshot_written| Response::ShuttingDown { snapshot_written }),
        (error_code_strategy(), label_strategy())
            .prop_map(|(code, message)| Response::Error(WireError { code, message })),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode → decode is the identity on every request variant, and the
    /// encoded frame is always a single line.
    #[test]
    fn request_encode_decode_round_trips(req in request_strategy()) {
        let line = req.encode();
        prop_assert!(!line.contains('\n'), "frame must be one line: {:?}", line);
        let back = Request::decode(&line);
        prop_assert!(back.is_ok(), "decode failed on {:?}: {:?}", line, back);
        prop_assert_eq!(req, back.expect("checked ok"));
    }

    /// Encode → decode is the identity on every response variant.
    #[test]
    fn response_encode_decode_round_trips(resp in response_strategy()) {
        let line = resp.encode();
        prop_assert!(!line.contains('\n'), "frame must be one line: {:?}", line);
        let back = Response::decode(&line);
        prop_assert!(back.is_ok(), "decode failed on {:?}: {:?}", line, back);
        prop_assert_eq!(resp, back.expect("checked ok"));
    }

    /// Truncating an encoded request anywhere never panics the decoder:
    /// it either still parses (the cut fell inside trailing whitespace —
    /// impossible here, frames end at the closing brace) or returns a
    /// structured error.
    #[test]
    fn truncated_requests_never_panic(req in request_strategy(), frac in 0.0f64..1.0) {
        let line = req.encode();
        let mut cut = (line.len() as f64 * frac) as usize;
        while cut < line.len() && !line.is_char_boundary(cut) {
            cut += 1;
        }
        if cut < line.len() {
            let e = Request::decode(&line[..cut]);
            prop_assert!(e.is_err(), "truncation at {} decoded: {:?}", cut, e);
        }
    }

    /// Differential: the JSON and binary codecs decode their respective
    /// encodings of the same request to identical values.
    #[test]
    fn request_codecs_agree(req in request_strategy()) {
        let via_json = Request::decode(&req.encode());
        prop_assert!(via_json.is_ok(), "json decode failed: {:?}", via_json);
        let via_binary = binary::decode_request(&binary::encode_request(&req));
        prop_assert!(via_binary.is_ok(), "binary decode failed: {:?}", via_binary);
        let via_binary = via_binary.expect("checked ok");
        prop_assert_eq!(via_json.expect("checked ok"), via_binary.clone());
        prop_assert_eq!(req, via_binary);
    }

    /// Differential: the JSON and binary codecs decode their respective
    /// encodings of the same response to identical values.
    #[test]
    fn response_codecs_agree(resp in response_strategy()) {
        let via_json = Response::decode(&resp.encode());
        prop_assert!(via_json.is_ok(), "json decode failed: {:?}", via_json);
        let via_binary = binary::decode_response(&binary::encode_response(&resp));
        prop_assert!(via_binary.is_ok(), "binary decode failed: {:?}", via_binary);
        let via_binary = via_binary.expect("checked ok");
        prop_assert_eq!(via_json.expect("checked ok"), via_binary.clone());
        prop_assert_eq!(resp, via_binary);
    }

    /// A complete binary frame scans back exactly, and every proper prefix
    /// is `Incomplete` — the incremental scanner never misparses a frame
    /// boundary mid-stream.
    #[test]
    fn binary_frames_scan_incrementally(req in request_strategy()) {
        let frame = binary::frame_request(&req);
        for cut in 0..frame.len() {
            let scan = binary::scan_frame(&frame[..cut]);
            prop_assert_eq!(scan, Ok(Scan::Incomplete), "cut at {}", cut);
        }
        match binary::scan_frame(&frame) {
            Ok(Scan::Done { item, consumed }) => {
                prop_assert_eq!(consumed, frame.len(), "one frame, nothing left over");
                let back = binary::decode_request(&frame[item]);
                prop_assert!(back.is_ok(), "framed payload must decode: {:?}", back);
                prop_assert_eq!(req, back.expect("checked ok"));
            }
            other => prop_assert!(false, "complete frame must scan Done: {:?}", other),
        }
    }

    /// Truncating a binary request payload anywhere yields a structured
    /// error, never a panic or a silently shorter value (the payload
    /// reader demands exact consumption).
    #[test]
    fn truncated_binary_requests_never_panic(req in request_strategy(), frac in 0.0f64..1.0) {
        let payload = binary::encode_request(&req);
        let cut = (payload.len() as f64 * frac) as usize;
        if cut < payload.len() {
            let e = binary::decode_request(&payload[..cut]);
            prop_assert!(e.is_err(), "truncation at {} decoded: {:?}", cut, e);
        }
    }

    /// The response payload decoder has the same truncation contract.
    #[test]
    fn truncated_binary_responses_never_panic(resp in response_strategy(), frac in 0.0f64..1.0) {
        let payload = binary::encode_response(&resp);
        let cut = (payload.len() as f64 * frac) as usize;
        if cut < payload.len() {
            let e = binary::decode_response(&payload[..cut]);
            prop_assert!(e.is_err(), "truncation at {} decoded: {:?}", cut, e);
        }
    }
}

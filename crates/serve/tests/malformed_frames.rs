//! Fixture tests for malformed wire frames: every one must produce a
//! *structured* error with the right [`ErrorCode`] — never a panic, and
//! never a silently-coerced value. The live-daemon halves of these cases
//! (connection survives a bad frame) are in `server_e2e.rs`.

use rush_serve::protocol::{ErrorCode, Request, Response};

fn code_of(line: &str) -> ErrorCode {
    Request::decode(line).expect_err(&format!("should be rejected: {line:?}")).code
}

#[test]
fn truncated_frames() {
    let whole = r#"{"v":1,"op":"submit","label":"grep","tasks":8,"utility":"sigmoid:700,5,0.02","priority":2}"#;
    assert!(Request::decode(whole).is_ok(), "fixture itself must be valid");
    for cut in 1..whole.len() {
        assert_eq!(code_of(&whole[..cut]), ErrorCode::BadJson, "cut at {cut}");
    }
}

#[test]
fn non_object_and_garbage_frames() {
    for bad in ["", "   ", "null", "42", "[1,2]", "\"submit\"", "submit", "{]", "{\"v\":1,}"] {
        assert_eq!(code_of(bad), ErrorCode::BadJson, "{bad:?}");
    }
}

#[test]
fn bad_versions() {
    for bad in [
        r#"{"op":"stats"}"#,
        r#"{"v":0,"op":"stats"}"#,
        r#"{"v":2,"op":"stats"}"#,
        r#"{"v":"1","op":"stats"}"#,
        r#"{"v":1.5,"op":"stats"}"#,
        r#"{"v":null,"op":"stats"}"#,
    ] {
        assert_eq!(code_of(bad), ErrorCode::BadVersion, "{bad:?}");
    }
}

#[test]
fn unknown_ops() {
    for bad in [
        r#"{"v":1}"#,
        r#"{"v":1,"op":"frobnicate"}"#,
        r#"{"v":1,"op":""}"#,
        r#"{"v":1,"op":17}"#,
        r#"{"v":1,"op":"SUBMIT"}"#,
    ] {
        assert_eq!(code_of(bad), ErrorCode::BadOp, "{bad:?}");
    }
}

#[test]
fn missing_and_mistyped_submit_fields() {
    let cases = [
        // missing label
        r#"{"v":1,"op":"submit","tasks":8,"utility":"constant:1","priority":2}"#,
        // missing tasks
        r#"{"v":1,"op":"submit","label":"x","utility":"constant:1","priority":2}"#,
        // zero tasks
        r#"{"v":1,"op":"submit","label":"x","tasks":0,"utility":"constant:1","priority":2}"#,
        // fractional tasks
        r#"{"v":1,"op":"submit","label":"x","tasks":2.5,"utility":"constant:1","priority":2}"#,
        // negative hint
        r#"{"v":1,"op":"submit","label":"x","tasks":2,"hint":-4,"utility":"constant:1","priority":2}"#,
        // unknown utility kind
        r#"{"v":1,"op":"submit","label":"x","tasks":2,"utility":"warp:1,2","priority":2}"#,
        // malformed utility args
        r#"{"v":1,"op":"submit","label":"x","tasks":2,"utility":"sigmoid:1","priority":2}"#,
        // utility args that fail validation (negative weight)
        r#"{"v":1,"op":"submit","label":"x","tasks":2,"utility":"constant:-3","priority":2}"#,
        // missing priority
        r#"{"v":1,"op":"submit","label":"x","tasks":2,"utility":"constant:1"}"#,
        // zero priority
        r#"{"v":1,"op":"submit","label":"x","tasks":2,"utility":"constant:1","priority":0}"#,
        // priority beyond u32
        r#"{"v":1,"op":"submit","label":"x","tasks":2,"utility":"constant:1","priority":5000000000}"#,
        // mistyped budget
        r#"{"v":1,"op":"submit","label":"x","tasks":2,"utility":"constant:1","priority":2,"budget":"soon"}"#,
    ];
    for bad in cases {
        assert_eq!(code_of(bad), ErrorCode::BadField, "{bad:?}");
    }
}

#[test]
fn mistyped_job_references() {
    for bad in [
        r#"{"v":1,"op":"report-sample","runtime":10}"#,
        r#"{"v":1,"op":"report-sample","job":1}"#,
        r#"{"v":1,"op":"report-sample","job":-1,"runtime":10}"#,
        r#"{"v":1,"op":"report-sample","job":"j1","runtime":10}"#,
        r#"{"v":1,"op":"predict"}"#,
        r#"{"v":1,"op":"predict","job":3.25}"#,
        r#"{"v":1,"op":"cancel","job":null}"#,
        r#"{"v":1,"op":"query-plan","job":"all"}"#,
        // 2^53 + 1: not exactly representable, must not be silently rounded
        r#"{"v":1,"op":"predict","job":9007199254740993}"#,
    ] {
        assert_eq!(code_of(bad), ErrorCode::BadField, "{bad:?}");
    }
}

#[test]
fn duplicate_keys_and_deep_nesting_are_bad_json() {
    assert_eq!(code_of(r#"{"v":1,"op":"stats","op":"shutdown"}"#), ErrorCode::BadJson);
    let deep = format!(r#"{{"v":1,"op":"stats","x":{}{}}}"#, "[".repeat(80), "]".repeat(80));
    assert_eq!(code_of(&deep), ErrorCode::BadJson);
}

#[test]
fn trailing_garbage_is_rejected() {
    assert_eq!(code_of(r#"{"v":1,"op":"stats"} extra"#), ErrorCode::BadJson);
    assert_eq!(code_of(r#"{"v":1,"op":"stats"}{"v":1,"op":"stats"}"#), ErrorCode::BadJson);
}

#[test]
fn error_messages_locate_the_problem() {
    let e = Request::decode(r#"{"v":1,"op":"submit","label":"x"}"#).expect_err("rejected");
    assert!(e.message.contains("tasks"), "message should name the field: {e}");
    let e = Request::decode("{\"v\":1,\"op\"").expect_err("rejected");
    assert!(e.message.contains("byte"), "json errors carry a position: {e}");
}

#[test]
fn malformed_responses_are_structured_errors_too() {
    for bad in [
        "",
        "{}",
        r#"{"ok":"yes"}"#,
        r#"{"ok":true}"#,
        r#"{"ok":true,"kind":"prize"}"#,
        r#"{"ok":false,"code":"made-up","message":"x"}"#,
        r#"{"ok":false,"code":"bad-json"}"#,
        r#"{"ok":true,"kind":"submitted","decision":"maybe","epoch":1,"waited_us":1}"#,
        r#"{"ok":true,"kind":"plan","now_slot":1,"epoch":1,"rows":[{"job":1}]}"#,
    ] {
        assert!(Response::decode(bad).is_err(), "{bad:?}");
    }
}

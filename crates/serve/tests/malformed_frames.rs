//! Fixture tests for malformed wire frames — JSON and binary: every one
//! must produce a *structured* error with the right [`ErrorCode`] — never
//! a panic, and never a silently-coerced value. The live-daemon halves of
//! these cases (connection survives a bad frame; framing errors are
//! connection-fatal) are in `server_e2e.rs` and `reactor_e2e.rs`.

use rush_serve::binary::{self, Scan};
use rush_serve::protocol::{ErrorCode, Request, Response};

fn code_of(line: &str) -> ErrorCode {
    Request::decode(line).expect_err(&format!("should be rejected: {line:?}")).code
}

#[test]
fn truncated_frames() {
    let whole = r#"{"v":1,"op":"submit","label":"grep","tasks":8,"utility":"sigmoid:700,5,0.02","priority":2}"#;
    assert!(Request::decode(whole).is_ok(), "fixture itself must be valid");
    for cut in 1..whole.len() {
        assert_eq!(code_of(&whole[..cut]), ErrorCode::BadJson, "cut at {cut}");
    }
}

#[test]
fn non_object_and_garbage_frames() {
    for bad in ["", "   ", "null", "42", "[1,2]", "\"submit\"", "submit", "{]", "{\"v\":1,}"] {
        assert_eq!(code_of(bad), ErrorCode::BadJson, "{bad:?}");
    }
}

#[test]
fn bad_versions() {
    for bad in [
        r#"{"op":"stats"}"#,
        r#"{"v":0,"op":"stats"}"#,
        r#"{"v":2,"op":"stats"}"#,
        r#"{"v":"1","op":"stats"}"#,
        r#"{"v":1.5,"op":"stats"}"#,
        r#"{"v":null,"op":"stats"}"#,
    ] {
        assert_eq!(code_of(bad), ErrorCode::BadVersion, "{bad:?}");
    }
}

#[test]
fn unknown_ops() {
    for bad in [
        r#"{"v":1}"#,
        r#"{"v":1,"op":"frobnicate"}"#,
        r#"{"v":1,"op":""}"#,
        r#"{"v":1,"op":17}"#,
        r#"{"v":1,"op":"SUBMIT"}"#,
    ] {
        assert_eq!(code_of(bad), ErrorCode::BadOp, "{bad:?}");
    }
}

#[test]
fn missing_and_mistyped_submit_fields() {
    let cases = [
        // missing label
        r#"{"v":1,"op":"submit","tasks":8,"utility":"constant:1","priority":2}"#,
        // missing tasks
        r#"{"v":1,"op":"submit","label":"x","utility":"constant:1","priority":2}"#,
        // zero tasks
        r#"{"v":1,"op":"submit","label":"x","tasks":0,"utility":"constant:1","priority":2}"#,
        // fractional tasks
        r#"{"v":1,"op":"submit","label":"x","tasks":2.5,"utility":"constant:1","priority":2}"#,
        // negative hint
        r#"{"v":1,"op":"submit","label":"x","tasks":2,"hint":-4,"utility":"constant:1","priority":2}"#,
        // unknown utility kind
        r#"{"v":1,"op":"submit","label":"x","tasks":2,"utility":"warp:1,2","priority":2}"#,
        // malformed utility args
        r#"{"v":1,"op":"submit","label":"x","tasks":2,"utility":"sigmoid:1","priority":2}"#,
        // utility args that fail validation (negative weight)
        r#"{"v":1,"op":"submit","label":"x","tasks":2,"utility":"constant:-3","priority":2}"#,
        // missing priority
        r#"{"v":1,"op":"submit","label":"x","tasks":2,"utility":"constant:1"}"#,
        // zero priority
        r#"{"v":1,"op":"submit","label":"x","tasks":2,"utility":"constant:1","priority":0}"#,
        // priority beyond u32
        r#"{"v":1,"op":"submit","label":"x","tasks":2,"utility":"constant:1","priority":5000000000}"#,
        // mistyped budget
        r#"{"v":1,"op":"submit","label":"x","tasks":2,"utility":"constant:1","priority":2,"budget":"soon"}"#,
    ];
    for bad in cases {
        assert_eq!(code_of(bad), ErrorCode::BadField, "{bad:?}");
    }
}

#[test]
fn mistyped_job_references() {
    for bad in [
        r#"{"v":1,"op":"report-sample","runtime":10}"#,
        r#"{"v":1,"op":"report-sample","job":1}"#,
        r#"{"v":1,"op":"report-sample","job":-1,"runtime":10}"#,
        r#"{"v":1,"op":"report-sample","job":"j1","runtime":10}"#,
        r#"{"v":1,"op":"predict"}"#,
        r#"{"v":1,"op":"predict","job":3.25}"#,
        r#"{"v":1,"op":"cancel","job":null}"#,
        r#"{"v":1,"op":"query-plan","job":"all"}"#,
        // 2^53 + 1: not exactly representable, must not be silently rounded
        r#"{"v":1,"op":"predict","job":9007199254740993}"#,
    ] {
        assert_eq!(code_of(bad), ErrorCode::BadField, "{bad:?}");
    }
}

#[test]
fn duplicate_keys_and_deep_nesting_are_bad_json() {
    assert_eq!(code_of(r#"{"v":1,"op":"stats","op":"shutdown"}"#), ErrorCode::BadJson);
    let deep = format!(r#"{{"v":1,"op":"stats","x":{}{}}}"#, "[".repeat(80), "]".repeat(80));
    assert_eq!(code_of(&deep), ErrorCode::BadJson);
}

#[test]
fn trailing_garbage_is_rejected() {
    assert_eq!(code_of(r#"{"v":1,"op":"stats"} extra"#), ErrorCode::BadJson);
    assert_eq!(code_of(r#"{"v":1,"op":"stats"}{"v":1,"op":"stats"}"#), ErrorCode::BadJson);
}

#[test]
fn error_messages_locate_the_problem() {
    let e = Request::decode(r#"{"v":1,"op":"submit","label":"x"}"#).expect_err("rejected");
    assert!(e.message.contains("tasks"), "message should name the field: {e}");
    let e = Request::decode("{\"v\":1,\"op\"").expect_err("rejected");
    assert!(e.message.contains("byte"), "json errors carry a position: {e}");
}

#[test]
fn binary_bad_magic_is_connection_fatal() {
    // Wrong magic: the peer is not speaking RUSH1 at all.
    let e = binary::scan_hello(b"RUSX1\x01").expect_err("bad magic");
    assert_eq!(e.code, ErrorCode::BadFrame);
    // A JSON frame's first byte is `{`, never `R`: the codec sniff in the
    // frontends is unambiguous, and feeding JSON to the hello scanner is
    // caught immediately.
    assert_eq!(binary::scan_hello(br#"{"v":1,"op":"stats"}"#).expect_err("json").code, ErrorCode::BadFrame);
}

#[test]
fn binary_truncated_hello_waits_for_more() {
    let hello = binary::hello(binary::BINARY_VERSION);
    for cut in 0..hello.len() {
        assert_eq!(
            binary::scan_hello(&hello[..cut]).expect("prefix of a valid hello"),
            Scan::Incomplete,
            "cut at {cut}"
        );
    }
    match binary::scan_hello(&hello).expect("complete hello") {
        Scan::Done { item, consumed } => {
            assert_eq!(item, binary::BINARY_VERSION);
            assert_eq!(consumed, hello.len());
        }
        Scan::Incomplete => panic!("complete hello must scan"),
    }
}

#[test]
fn binary_version_mismatch_negotiates_to_zero() {
    assert_eq!(binary::negotiate(0), 0, "a client offering nothing gets nothing");
    assert_eq!(binary::negotiate(binary::BINARY_VERSION), binary::BINARY_VERSION);
    assert_eq!(binary::negotiate(250), binary::BINARY_VERSION, "future client downgrades");
    // The zero verdict survives the hello round trip: the client can tell
    // "no common version" apart from any negotiated one.
    match binary::scan_hello(&binary::hello(0)).expect("hello") {
        Scan::Done { item, .. } => assert_eq!(item, 0),
        Scan::Incomplete => panic!("complete hello must scan"),
    }
}

#[test]
fn binary_truncated_length_prefix_waits_for_more() {
    let frame = binary::frame_request(&Request::Stats);
    for cut in 0..frame.len() {
        assert_eq!(
            binary::scan_frame(&frame[..cut]).expect("prefix of a valid frame"),
            Scan::Incomplete,
            "cut at {cut}"
        );
    }
}

#[test]
fn binary_oversized_frame_is_fatal() {
    // A varint length prefix announcing one byte more than the cap.
    let mut prefix = Vec::new();
    let mut n = binary::MAX_FRAME_LEN + 1;
    while n >= 0x80 {
        prefix.push((n as u8 & 0x7f) | 0x80);
        n >>= 7;
    }
    prefix.push(n as u8);
    let e = binary::scan_frame(&prefix).expect_err("oversized frame");
    assert_eq!(e.code, ErrorCode::BadFrame);
}

#[test]
fn binary_runaway_length_prefix_is_fatal() {
    // Endless continuation bits: the scanner must give up rather than
    // wait for bytes that cannot complete a legal length.
    let e = binary::scan_frame(&[0x80u8; 11]).expect_err("runaway varint");
    assert_eq!(e.code, ErrorCode::BadFrame);
}

#[test]
fn binary_unknown_tags_and_empty_payloads_are_structured_errors() {
    assert_eq!(binary::decode_request(&[]).expect_err("empty").code, ErrorCode::BadFrame);
    assert_eq!(binary::decode_request(&[0xEE]).expect_err("unknown tag").code, ErrorCode::BadOp);
    assert!(binary::decode_response(&[]).is_err());
    assert!(binary::decode_response(&[0xEE]).is_err());
}

#[test]
fn binary_trailing_bytes_in_a_payload_are_rejected() {
    let mut payload = binary::encode_request(&Request::Stats);
    payload.push(0);
    assert_eq!(binary::decode_request(&payload).expect_err("trailing byte").code, ErrorCode::BadFrame);
}

#[test]
fn binary_field_validation_matches_the_json_codec() {
    // The binary decoder applies the same semantic validation as JSON:
    // zero tasks must draw `bad-field`, not a structural error. Encode a
    // valid submit, then surgically zero the tasks varint (it follows the
    // 1-byte label-length prefix + label).
    let sub = rush_serve::protocol::JobSubmission {
        label: "x".into(),
        tasks: 1,
        runtime_hint: None,
        utility: rush_utility::TimeUtility::constant(1.0).expect("valid"),
        budget: None,
        priority: 1,
    };
    let mut payload = binary::encode_request(&Request::Submit(sub));
    // payload = [tag, label_len=1, 'x', tasks=1, ...]
    assert_eq!(payload[3], 1, "tasks varint sits after the 1-byte label");
    payload[3] = 0;
    assert_eq!(binary::decode_request(&payload).expect_err("zero tasks").code, ErrorCode::BadField);
}

#[test]
fn malformed_responses_are_structured_errors_too() {
    for bad in [
        "",
        "{}",
        r#"{"ok":"yes"}"#,
        r#"{"ok":true}"#,
        r#"{"ok":true,"kind":"prize"}"#,
        r#"{"ok":false,"code":"made-up","message":"x"}"#,
        r#"{"ok":false,"code":"bad-json"}"#,
        r#"{"ok":true,"kind":"submitted","decision":"maybe","epoch":1,"waited_us":1}"#,
        r#"{"ok":true,"kind":"plan","now_slot":1,"epoch":1,"rows":[{"job":1}]}"#,
    ] {
        assert!(Response::decode(bad).is_err(), "{bad:?}");
    }
}

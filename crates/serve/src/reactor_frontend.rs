//! The nonblocking epoll frontend for `rushd`.
//!
//! [`ServeConfig::reactors`](crate::ServeConfig::reactors) event-loop
//! threads share the listening socket (each holds a `try_clone`d handle
//! registered level-triggered in its own [`rush_reactor::Poller`]) and own
//! the connections they accept: a connection's reads, parsing, planner
//! dispatch and writes all happen on its accepting reactor thread, so
//! per-connection state needs no synchronization.
//!
//! **Request flow.** Each connection sniffs its codec from the first byte
//! (`R` opens the binary `RUSH1` handshake, anything else is newline
//! JSON), then runs a parse → route → complete state machine. Requests
//! get per-connection sequence numbers; responses are emitted strictly in
//! sequence order, so pipelined clients observe the same ordering the
//! thread frontend gives them. Planner replies return through a
//! completion queue (one per reactor) drained after an eventfd wake —
//! the planner thread never blocks on a slow connection.
//!
//! **Broadcasts.** Cluster-wide requests fan out to every planner shard;
//! the parts accumulate in a per-request slot and are merged in shard
//! order with the same [`merge_pair`] fold the thread frontend uses, so
//! "first error wins" is deterministic across frontends.
//!
//! **Backpressure.** Three bounds protect the daemon from slow or
//! hostile peers: a per-connection cap on in-flight requests (reads pause
//! until replies drain), a hard byte cap on the pending write buffer
//! (overflow evicts), and a slow-reader timer (a write buffer that stays
//! non-empty for `slow_reader_ms` evicts).
//!
//! **Epoch ticks.** Reactor 0's timer wheel fires
//! [`PlannerMsg::EpochTick`] to every shard each `epoch_ms`, so epoch
//! deadlines are honored even when every connection is idle.

#[cfg(unix)]
pub(crate) use imp::spawn;

/// What `spawn` hands back: the reactor threads' join handles plus one
/// waker per reactor, so [`crate::ServerHandle::join`] can interrupt
/// `epoll_wait` at shutdown.
pub(crate) type ReactorHandles =
    (Vec<std::thread::JoinHandle<()>>, Vec<std::sync::Arc<rush_reactor::Waker>>);

#[cfg(not(unix))]
pub(crate) fn spawn(
    _listener: std::net::TcpListener,
    _txs: Vec<std::sync::mpsc::Sender<crate::server::PlannerMsg>>,
    _config: &crate::server::ServeConfig,
    _stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
) -> Result<ReactorHandles, crate::ServeError> {
    Err(crate::ServeError::Config(
        "the reactor frontend requires a unix platform (epoll); use --frontend threads".into(),
    ))
}

#[cfg(unix)]
mod imp {
    use crate::binary::{self, Scan};
    use crate::protocol::{ErrorCode, Request, Response, WireError};
    use crate::server::{
        encode_response, merge_pair, route, Completion, PlannerMsg, ReactorSink, ReplySink,
        Routed, ServeConfig,
    };
    use super::ReactorHandles;
    use crate::ServeError;
    use rush_reactor::{Event, Interest, Poller, ReadBuf, ReadOutcome, TimerId, TimerWheel, Waker};
    use std::collections::{BTreeMap, VecDeque};
    use std::io::ErrorKind;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::mpsc::Sender;
    use std::sync::{Arc, Mutex};
    use std::thread;
    use std::time::{Duration, Instant};

    /// Poller token of the shared listener.
    const TOKEN_LISTENER: u64 = 0;
    /// Poller token of the reactor's eventfd waker.
    const TOKEN_WAKER: u64 = 1;
    /// Timer-wheel token of the recurring epoch tick (the wheel's token
    /// space is separate from the poller's; connection timers use the
    /// connection token, which starts at [`FIRST_CONN`]).
    const TOKEN_EPOCH: u64 = 1;
    /// First token handed to an accepted connection.
    const FIRST_CONN: u64 = 2;

    /// Cap on fill/parse rounds per readable event, so one firehose
    /// connection cannot monopolize the loop (level-triggered epoll
    /// re-reports whatever is left).
    const READ_ROUNDS: usize = 4;

    /// Spawns the reactor threads. Returns their join handles plus one
    /// waker per reactor so [`crate::ServerHandle::join`] can interrupt
    /// `epoll_wait` at shutdown.
    pub(crate) fn spawn(
        listener: TcpListener,
        txs: Vec<Sender<PlannerMsg>>,
        config: &ServeConfig,
        stop: Arc<AtomicBool>,
    ) -> Result<ReactorHandles, ServeError> {
        let txs = Arc::new(txs);
        let mut handles = Vec::with_capacity(config.reactors);
        let mut wakers = Vec::with_capacity(config.reactors);
        for i in 0..config.reactors {
            let listener = listener.try_clone()?;
            let waker = Arc::new(Waker::new()?);
            let mut reactor = Reactor::new(
                listener,
                Arc::clone(&txs),
                config.clone(),
                Arc::clone(&waker),
                Arc::clone(&stop),
                i == 0,
            )?;
            wakers.push(waker);
            let handle = thread::Builder::new()
                .name(format!("rush-reactor-{i}"))
                .spawn(move || reactor.run())
                .map_err(ServeError::Io)?;
            handles.push(handle);
        }
        Ok((handles, wakers))
    }

    /// Codec state of one connection.
    enum Codec {
        /// Nothing read yet; the first byte picks the codec.
        Sniff,
        /// Saw the magic's first byte; collecting the 6-byte client hello.
        Hello,
        /// Newline-delimited JSON frames.
        Json,
        /// Length-prefixed binary frames (handshake done).
        Binary,
    }

    /// A broadcast request waiting for every shard's part.
    struct BroadcastSlot {
        parts: Vec<Option<Response>>,
        remaining: usize,
    }

    /// What one parser step produced.
    enum Step {
        /// Need more bytes.
        Wait,
        /// Made progress (state change or skipped frame); parse again.
        Again,
        /// One complete frame, decoded or not (decode errors become
        /// structured error responses; the connection survives).
        Request(Result<Request, WireError>),
        /// Unrecoverable framing error: report it, then close.
        FatalFrame(WireError),
        /// The connection is beyond saving (corrupt handshake, oversized
        /// unterminated line).
        EvictNow,
    }

    /// Per-connection state. Owned by exactly one reactor thread.
    struct Conn {
        stream: TcpStream,
        codec: Codec,
        rbuf: ReadBuf,
        wbuf: rush_reactor::WriteBuf,
        /// Next sequence number to assign to a parsed request.
        next_seq: u64,
        /// Next sequence number to serialize — responses are emitted in
        /// request order regardless of completion order.
        next_write_seq: u64,
        /// Completed responses waiting for their turn in the sequence.
        ready: BTreeMap<u64, Response>,
        /// Broadcast accumulators keyed by sequence number.
        broadcasts: BTreeMap<u64, BroadcastSlot>,
        /// Requests dispatched (or locally failed) whose responses have
        /// not yet been serialized.
        inflight: usize,
        /// Interest currently registered with the poller.
        interest: Interest,
        /// Flush the write buffer, then close.
        closing: bool,
        /// Peer sent EOF; answer what is pending, then close.
        read_closed: bool,
        /// When the write buffer last transitioned empty → non-empty.
        write_since: Option<Instant>,
        /// Pending slow-reader eviction timer.
        slow_timer: Option<TimerId>,
    }

    impl Conn {
        fn new(stream: TcpStream) -> Conn {
            Conn {
                stream,
                codec: Codec::Sniff,
                rbuf: ReadBuf::new(),
                wbuf: rush_reactor::WriteBuf::new(),
                next_seq: 0,
                next_write_seq: 0,
                ready: BTreeMap::new(),
                broadcasts: BTreeMap::new(),
                inflight: 0,
                interest: Interest::READ,
                closing: false,
                read_closed: false,
                write_since: None,
                slow_timer: None,
            }
        }

        /// Allocates the next request sequence number and counts it
        /// in-flight.
        fn begin_request(&mut self) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.inflight += 1;
            seq
        }

        /// Runs one parser step against the read buffer.
        fn step(&mut self) -> Step {
            match self.codec {
                Codec::Sniff => match self.rbuf.data().first() {
                    None => Step::Wait,
                    // bound: MAGIC is a non-empty const (b"RUSH1")
                    Some(&b) if b == binary::MAGIC[0] => {
                        self.codec = Codec::Hello;
                        Step::Again
                    }
                    Some(_) => {
                        self.codec = Codec::Json;
                        Step::Again
                    }
                },
                Codec::Hello => match binary::scan_hello(self.rbuf.data()) {
                    Ok(Scan::Incomplete) => Step::Wait,
                    Ok(Scan::Done { item, consumed }) => {
                        self.rbuf.consume(consumed);
                        let agreed = binary::negotiate(item);
                        self.wbuf.push(&binary::hello(agreed));
                        self.codec = Codec::Binary;
                        if agreed == 0 {
                            // No common protocol version: flush the zero
                            // hello, then close.
                            self.closing = true;
                            Step::Wait
                        } else {
                            Step::Again
                        }
                    }
                    Err(_) => Step::EvictNow,
                },
                Codec::Json => {
                    let data = self.rbuf.data();
                    match data.iter().position(|&b| b == b'\n') {
                        None if data.len() > binary::MAX_FRAME_LEN => Step::EvictNow,
                        None => Step::Wait,
                        Some(pos) => {
                            let line =
                                String::from_utf8_lossy(&data[..pos]).trim().to_string();
                            self.rbuf.consume(pos + 1);
                            if line.is_empty() {
                                Step::Again
                            } else {
                                Step::Request(Request::decode(&line))
                            }
                        }
                    }
                }
                Codec::Binary => match binary::scan_frame(self.rbuf.data()) {
                    Ok(Scan::Incomplete) => Step::Wait,
                    Ok(Scan::Done { item, consumed }) => {
                        let decoded = binary::decode_request(self.rbuf.data().get(item).unwrap_or(&[]));
                        self.rbuf.consume(consumed);
                        Step::Request(decoded)
                    }
                    Err(e) => Step::FatalFrame(e),
                },
            }
        }
    }

    /// One event-loop thread.
    pub(crate) struct Reactor {
        poller: Poller,
        listener: TcpListener,
        txs: Arc<Vec<Sender<PlannerMsg>>>,
        config: ServeConfig,
        waker: Arc<Waker>,
        completions: Arc<Mutex<VecDeque<Completion>>>,
        stop: Arc<AtomicBool>,
        timers: TimerWheel,
        conns: BTreeMap<u64, Conn>,
        next_token: u64,
        fire_epochs: bool,
    }

    impl Reactor {
        fn new(
            listener: TcpListener,
            txs: Arc<Vec<Sender<PlannerMsg>>>,
            config: ServeConfig,
            waker: Arc<Waker>,
            stop: Arc<AtomicBool>,
            fire_epochs: bool,
        ) -> Result<Reactor, ServeError> {
            let poller = Poller::new()?;
            poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
            poller.register(waker.fd(), TOKEN_WAKER, Interest::READ)?;
            Ok(Reactor {
                poller,
                listener,
                txs,
                config,
                waker,
                completions: Arc::new(Mutex::new(VecDeque::new())),
                stop,
                timers: TimerWheel::new(),
                conns: BTreeMap::new(),
                next_token: FIRST_CONN,
                fire_epochs,
            })
        }

        /// The event loop: wait, dispatch, drain completions, fire timers.
        pub(crate) fn run(&mut self) {
            let idle = Duration::from_millis(200);
            if self.fire_epochs {
                let period = Duration::from_millis(self.config.epoch_ms.max(1));
                self.timers.schedule(Instant::now() + period, TOKEN_EPOCH);
            }
            // Once the stop flag is up, the loop keeps running for a short
            // grace window so in-flight requests (e.g. the other shards'
            // parts of the shutdown broadcast itself) can complete and
            // their responses reach the wire before the final flush.
            let mut drain_until: Option<Instant> = None;
            loop {
                if self.stop.load(Ordering::SeqCst) {
                    let now = Instant::now();
                    let deadline =
                        *drain_until.get_or_insert(now + Duration::from_millis(500));
                    let inflight =
                        self.conns.values().any(|c| c.inflight > 0 || !c.wbuf.is_empty());
                    if !inflight || now >= deadline {
                        self.drain_completions();
                        self.final_flush();
                        return;
                    }
                }
                let now = Instant::now();
                let mut timeout = self
                    .timers
                    .next_deadline()
                    .map_or(idle, |d| d.saturating_duration_since(now).min(idle));
                if drain_until.is_some() {
                    timeout = timeout.min(Duration::from_millis(10));
                }
                let events: Vec<Event> = match self.poller.wait(Some(timeout)) {
                    Ok(evs) => evs.to_vec(),
                    // The poller retries EINTR itself; any surviving
                    // error means the epoll fd is gone. Bail out rather
                    // than spin.
                    Err(_) => return,
                };
                for ev in &events {
                    match ev.token {
                        TOKEN_LISTENER => self.accept_all(),
                        TOKEN_WAKER => {
                            self.waker.drain();
                        }
                        token => self.handle_conn_event(token, ev),
                    }
                }
                self.drain_completions();
                self.fire_timers();
            }
        }

        /// Accepts until the listener would block. Level-triggered: if
        /// another reactor won a pending connection, accept just returns
        /// `WouldBlock`.
        fn accept_all(&mut self) {
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        let token = self.next_token;
                        self.next_token += 1;
                        if self
                            .poller
                            .register(stream.as_raw_fd(), token, Interest::READ)
                            .is_err()
                        {
                            continue;
                        }
                        self.conns.insert(token, Conn::new(stream));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    // Transient accept errors (peer reset mid-handshake)
                    // must not kill the reactor.
                    Err(_) => break,
                }
            }
        }

        fn handle_conn_event(&mut self, token: u64, ev: &Event) {
            if !self.conns.contains_key(&token) {
                return;
            }
            if ev.closed {
                self.evict(token);
                return;
            }
            if ev.readable {
                self.conn_readable(token);
            }
            if ev.writable {
                self.pump_writes(token);
            }
        }

        /// Reads and parses as much as backpressure allows.
        fn conn_readable(&mut self, token: u64) {
            for _ in 0..READ_ROUNDS {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                if conn.closing || conn.inflight >= self.config.max_inflight {
                    break;
                }
                match conn.rbuf.fill(&mut conn.stream) {
                    Ok(ReadOutcome::WouldBlock) => {
                        if !self.process_input(token) {
                            return;
                        }
                        break;
                    }
                    Ok(ReadOutcome::Closed) => {
                        if !self.process_input(token) {
                            return;
                        }
                        if let Some(conn) = self.conns.get_mut(&token) {
                            conn.read_closed = true;
                        }
                        break;
                    }
                    Ok(ReadOutcome::Read(_)) => {
                        if !self.process_input(token) {
                            return;
                        }
                    }
                    Err(_) => {
                        self.evict(token);
                        return;
                    }
                }
            }
            self.pump_writes(token);
        }

        /// Parses buffered bytes into requests until the buffer runs dry
        /// or the in-flight cap pauses the connection. Returns `false`
        /// when the connection was evicted.
        fn process_input(&mut self, token: u64) -> bool {
            loop {
                let step = {
                    let Some(conn) = self.conns.get_mut(&token) else { return false };
                    if conn.closing || conn.inflight >= self.config.max_inflight {
                        return true;
                    }
                    conn.step()
                };
                match step {
                    Step::Wait => return true,
                    Step::Again => {}
                    Step::Request(decoded) => self.dispatch_request(token, decoded),
                    Step::FatalFrame(e) => {
                        if let Some(conn) = self.conns.get_mut(&token) {
                            let seq = conn.begin_request();
                            conn.ready.insert(seq, Response::Error(e));
                            conn.closing = true;
                        }
                        self.emit_ready(token);
                        return self.conns.contains_key(&token);
                    }
                    Step::EvictNow => {
                        self.evict(token);
                        return false;
                    }
                }
            }
        }

        /// A completion sink pointing back at this reactor.
        fn sink(&self, conn: u64, seq: u64, shard: usize) -> ReplySink {
            ReplySink::Reactor(ReactorSink {
                queue: Arc::clone(&self.completions),
                waker: Arc::clone(&self.waker),
                conn,
                seq,
                shard,
            })
        }

        /// Assigns a sequence number and routes one request to its
        /// planner shard(s), or completes it locally on a decode error.
        fn dispatch_request(&mut self, token: u64, decoded: Result<Request, WireError>) {
            let shards = self.txs.len();
            let seq = {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                conn.begin_request()
            };
            let req = match decoded {
                Err(e) => {
                    self.complete(token, seq, Response::Error(e));
                    return;
                }
                Ok(req) => req,
            };
            match route(req, shards) {
                Routed::Submit { shard, sub } => {
                    let msg = PlannerMsg::Submit {
                        sub,
                        enqueued: Instant::now(),
                        reply: self.sink(token, seq, shard),
                    };
                    match self.txs.get(shard) {
                        Some(tx) if tx.send(msg).is_ok() => {}
                        _ => self.complete(token, seq, shutting_down()),
                    }
                }
                Routed::Single { shard, req } => {
                    let msg = PlannerMsg::Immediate { req, reply: self.sink(token, seq, shard) };
                    match self.txs.get(shard) {
                        Some(tx) if tx.send(msg).is_ok() => {}
                        _ => self.complete(token, seq, shutting_down()),
                    }
                }
                Routed::Broadcast { req } => {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.broadcasts.insert(
                            seq,
                            BroadcastSlot {
                                parts: (0..shards).map(|_| None).collect(),
                                remaining: shards,
                            },
                        );
                    }
                    for shard in 0..shards {
                        let msg = PlannerMsg::Immediate {
                            req: req.clone(),
                            reply: self.sink(token, seq, shard),
                        };
                        match self.txs.get(shard) {
                            Some(tx) if tx.send(msg).is_ok() => {}
                            _ => self.deliver(Completion {
                                conn: token,
                                seq,
                                shard,
                                resp: shutting_down(),
                            }),
                        }
                    }
                }
            }
        }

        /// Completes a request locally (decode error, dead planner).
        fn complete(&mut self, token: u64, seq: u64, resp: Response) {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.ready.insert(seq, resp);
            }
            self.emit_ready(token);
        }

        /// Moves every completion out of the shared queue and into its
        /// connection.
        fn drain_completions(&mut self) {
            let batch = match self.completions.lock() {
                Ok(mut q) => std::mem::take(&mut *q),
                Err(_) => return,
            };
            for c in batch {
                self.deliver(c);
            }
        }

        /// Lands one planner reply: translates wire ids, folds broadcast
        /// parts (merging in shard order once all arrive), then emits any
        /// responses that are next in sequence.
        fn deliver(&mut self, c: Completion) {
            let shards = self.txs.len();
            let resp = encode_response(c.resp, c.shard, shards);
            let token = c.conn;
            {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                if conn.broadcasts.contains_key(&c.seq) {
                    let done = match conn.broadcasts.get_mut(&c.seq) {
                        Some(slot) => {
                            if let Some(part) = slot.parts.get_mut(c.shard) {
                                if part.is_none() {
                                    *part = Some(resp);
                                    slot.remaining = slot.remaining.saturating_sub(1);
                                }
                            }
                            slot.remaining == 0
                        }
                        None => false,
                    };
                    if !done {
                        return;
                    }
                    if let Some(slot) = conn.broadcasts.remove(&c.seq) {
                        let mut merged = None;
                        for part in slot.parts.into_iter().flatten() {
                            merged = Some(merge_pair(merged, part));
                        }
                        conn.ready.insert(
                            c.seq,
                            merged.unwrap_or_else(|| {
                                Response::error(ErrorCode::Internal, "no planner shards")
                            }),
                        );
                    }
                } else {
                    conn.ready.insert(c.seq, resp);
                }
            }
            self.emit_ready(token);
            // A drained reply may unpause parsing of already-buffered
            // requests.
            if self.process_input(token) {
                self.update_interest(token);
            }
        }

        /// Serializes every response that is next in sequence, enforces
        /// the write-buffer cap, then pumps the socket.
        fn emit_ready(&mut self, token: u64) {
            let cap = self.config.max_write_buffer.max(1);
            let overflow = {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                while let Some(resp) = conn.ready.remove(&conn.next_write_seq) {
                    if matches!(resp, Response::ShuttingDown { .. }) {
                        conn.closing = true;
                    }
                    match conn.codec {
                        Codec::Binary => conn.wbuf.push(&binary::frame_response(&resp)),
                        _ => conn.wbuf.push((resp.encode() + "\n").as_bytes()),
                    }
                    conn.next_write_seq += 1;
                    conn.inflight = conn.inflight.saturating_sub(1);
                }
                conn.wbuf.len() > cap
            };
            if overflow {
                // The peer let responses pile past the hard cap: evict
                // rather than buffer without bound.
                self.evict(token);
                return;
            }
            self.pump_writes(token);
        }

        /// Flushes the write buffer as far as the socket allows, manages
        /// the slow-reader timer, closes finished connections, and keeps
        /// poller interest in sync.
        fn pump_writes(&mut self, token: u64) {
            let slow = Duration::from_millis(self.config.slow_reader_ms.max(1));
            let mut evict = false;
            let mut schedule_at: Option<Instant> = None;
            let mut cancel: Option<TimerId> = None;
            {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                if !conn.wbuf.is_empty() && conn.wbuf.flush_to(&mut conn.stream).is_err() {
                    evict = true;
                }
                if !evict {
                    if conn.wbuf.is_empty() {
                        conn.write_since = None;
                        cancel = conn.slow_timer.take();
                        let drained = conn.inflight == 0
                            && conn.ready.is_empty()
                            && conn.broadcasts.is_empty();
                        if conn.closing || (conn.read_closed && drained) {
                            evict = true;
                        }
                    } else if conn.write_since.is_none() {
                        let now = Instant::now();
                        conn.write_since = Some(now);
                        schedule_at = Some(now + slow);
                    }
                }
            }
            if let Some(id) = cancel {
                self.timers.unschedule(id);
            }
            if evict {
                self.evict(token);
                return;
            }
            if let Some(at) = schedule_at {
                let id = self.timers.schedule(at, token);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.slow_timer = Some(id);
                }
            }
            self.update_interest(token);
        }

        /// Reregisters the connection when its desired interest changed:
        /// reads pause at the in-flight cap, writes arm only while the
        /// buffer is non-empty.
        fn update_interest(&mut self, token: u64) {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            let want = Interest {
                readable: !conn.closing
                    && !conn.read_closed
                    && conn.inflight < self.config.max_inflight,
                writable: !conn.wbuf.is_empty(),
            };
            if want != conn.interest
                && self.poller.reregister(conn.stream.as_raw_fd(), token, want).is_ok()
            {
                conn.interest = want;
            }
        }

        /// Drops one connection: poller deregistration, timer cleanup,
        /// socket close (on drop). Pending completions for it are
        /// discarded when they arrive.
        fn evict(&mut self, token: u64) {
            if let Some(conn) = self.conns.remove(&token) {
                let _ = self.poller.deregister(conn.stream.as_raw_fd());
                if let Some(id) = conn.slow_timer {
                    self.timers.unschedule(id);
                }
            }
        }

        /// Handles expired timers: the recurring epoch tick plus
        /// slow-reader evictions.
        fn fire_timers(&mut self) {
            let now = Instant::now();
            let slow = Duration::from_millis(self.config.slow_reader_ms.max(1));
            for tok in self.timers.expired(now) {
                if tok == TOKEN_EPOCH {
                    for tx in self.txs.iter() {
                        let _ = tx.send(PlannerMsg::EpochTick);
                    }
                    let period = Duration::from_millis(self.config.epoch_ms.max(1));
                    self.timers.schedule(now + period, TOKEN_EPOCH);
                    continue;
                }
                let verdict = self.conns.get(&tok).map(|conn| {
                    conn.write_since
                        .map(|since| now.saturating_duration_since(since) >= slow)
                        .unwrap_or(false)
                });
                match verdict {
                    // Still stuck past the deadline: a slow reader.
                    Some(true) => self.evict(tok),
                    // Writes drained and refilled since; re-arm from the
                    // new stall start.
                    Some(false) => {
                        if let Some(conn) = self.conns.get_mut(&tok) {
                            conn.slow_timer =
                                conn.write_since.map(|since| self.timers.schedule(since + slow, tok));
                        }
                    }
                    None => {}
                }
            }
        }

        /// Best-effort blocking flush of every connection at shutdown, so
        /// the `shutdown` requester receives its acknowledgment even if
        /// the final nonblocking write was partial.
        fn final_flush(&mut self) {
            for conn in self.conns.values_mut() {
                if conn.wbuf.is_empty() {
                    continue;
                }
                let _ = conn.stream.set_nonblocking(false);
                let _ = conn.stream.set_write_timeout(Some(Duration::from_millis(250)));
                let _ = conn.wbuf.flush_to(&mut conn.stream);
            }
        }
    }

    /// The canned "planner channel is gone" reply.
    fn shutting_down() -> Response {
        Response::error(ErrorCode::Shutdown, "daemon is shutting down")
    }
}

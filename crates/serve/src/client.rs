//! A blocking client for the `rushd` wire protocol.

use crate::protocol::{
    Decision, JobSubmission, PlanRow, Request, Response, StatsReport, WireError,
};
use crate::ServeError;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected client. One request/response in flight at a time.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sets a read timeout on the underlying socket (`None` = block
    /// forever).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the socket rejects the option.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on a broken connection, [`ServeError::Wire`] when
    /// the server's reply cannot be decoded.
    pub fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        self.writer.write_all((req.encode() + "\n").as_bytes())?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(Response::decode(line.trim_end())?)
    }

    /// Submits a job; returns `(decision, job id, epoch, waited_us)`.
    ///
    /// # Errors
    ///
    /// Transport errors as in [`Client::call`]; a server-side error
    /// response surfaces as [`ServeError::Wire`].
    pub fn submit(
        &mut self,
        sub: JobSubmission,
    ) -> Result<(Decision, Option<u64>, u64, u64), ServeError> {
        match self.call(&Request::Submit(sub))? {
            Response::Submitted { job, decision, epoch, waited_us } => {
                Ok((decision, job, epoch, waited_us))
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Reports one completed-task runtime sample.
    ///
    /// # Errors
    ///
    /// As in [`Client::submit`].
    pub fn report_sample(&mut self, job: u64, runtime: u64) -> Result<(), ServeError> {
        match self.call(&Request::ReportSample { job, runtime })? {
            Response::Ack => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the plan table (all jobs when `job` is `None`).
    ///
    /// # Errors
    ///
    /// As in [`Client::submit`].
    pub fn query_plan(&mut self, job: Option<u64>) -> Result<Vec<PlanRow>, ServeError> {
        match self.call(&Request::QueryPlan { job })? {
            Response::PlanTable { rows, .. } => Ok(rows),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks for the Theorem-3 robust completion bound `T + R` of a job.
    ///
    /// # Errors
    ///
    /// As in [`Client::submit`].
    pub fn predict(&mut self, job: u64) -> Result<f64, ServeError> {
        match self.call(&Request::Predict { job })? {
            Response::Prediction { bound, .. } => Ok(bound),
            other => Err(unexpected(&other)),
        }
    }

    /// Cancels a job.
    ///
    /// # Errors
    ///
    /// As in [`Client::submit`].
    pub fn cancel(&mut self, job: u64) -> Result<(), ServeError> {
        match self.call(&Request::Cancel { job })? {
            Response::Ack => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the daemon counters.
    ///
    /// # Errors
    ///
    /// As in [`Client::submit`].
    pub fn stats(&mut self) -> Result<StatsReport, ServeError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Gracefully stops the daemon; returns whether a snapshot was
    /// written.
    ///
    /// # Errors
    ///
    /// As in [`Client::submit`].
    pub fn shutdown(&mut self, snapshot: bool) -> Result<bool, ServeError> {
        match self.call(&Request::Shutdown { snapshot })? {
            Response::ShuttingDown { snapshot_written } => Ok(snapshot_written),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> ServeError {
    match resp {
        Response::Error(e) => ServeError::Wire(e.clone()),
        other => ServeError::Wire(WireError {
            code: crate::protocol::ErrorCode::BadOp,
            message: format!("unexpected response kind: {other:?}"),
        }),
    }
}

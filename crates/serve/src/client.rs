//! A blocking client for the `rushd` wire protocol (JSON or binary).

use crate::binary::{self, Scan};
use crate::protocol::{
    Decision, JobSubmission, PlanRow, Request, Response, StatsReport, WireError,
};
use crate::ServeError;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Which codec the connection negotiated.
enum Codec {
    /// Newline-delimited JSON frames.
    Json,
    /// Length-prefixed binary frames; the buffer carries bytes read past
    /// the previous frame boundary.
    Binary { buf: Vec<u8> },
}

/// A connected client. One request/response in flight at a time.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    codec: Codec,
}

impl Client {
    /// Connects to a daemon speaking the JSON protocol.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, codec: Codec::Json })
    }

    /// Connects to a daemon and negotiates the length-prefixed binary
    /// protocol (`RUSH1` magic + version handshake).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the connection cannot be established or the
    /// server closes during the handshake; [`ServeError::Wire`] when the
    /// server's hello is malformed or no common version exists.
    pub fn connect_binary(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        writer.write_all(&binary::hello(binary::BINARY_VERSION))?;
        writer.flush()?;
        let mut buf = Vec::new();
        let version = loop {
            match binary::scan_hello(&buf).map_err(ServeError::Wire)? {
                Scan::Done { item, consumed } => {
                    buf.drain(..consumed);
                    break item;
                }
                Scan::Incomplete => fill(&mut reader, &mut buf)?,
            }
        };
        if version == 0 {
            return Err(ServeError::Wire(WireError {
                code: crate::protocol::ErrorCode::BadVersion,
                message: "server offers no common binary protocol version".into(),
            }));
        }
        Ok(Client { reader, writer, codec: Codec::Binary { buf } })
    }

    /// Sets a read timeout on the underlying socket (`None` = block
    /// forever).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the socket rejects the option.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on a broken connection, [`ServeError::Wire`] when
    /// the server's reply cannot be decoded.
    pub fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        match &mut self.codec {
            Codec::Json => {
                self.writer.write_all((req.encode() + "\n").as_bytes())?;
                self.writer.flush()?;
                let mut line = String::new();
                let n = self.reader.read_line(&mut line)?;
                if n == 0 {
                    return Err(eof());
                }
                Ok(Response::decode(line.trim_end())?)
            }
            Codec::Binary { .. } => {
                self.writer.write_all(&binary::frame_request(req))?;
                self.writer.flush()?;
                self.read_binary_response()
            }
        }
    }

    /// Reads one length-prefixed response frame.
    fn read_binary_response(&mut self) -> Result<Response, ServeError> {
        let Codec::Binary { buf } = &mut self.codec else {
            return Err(ServeError::Config("not a binary connection".into()));
        };
        loop {
            match binary::scan_frame(buf).map_err(ServeError::Wire)? {
                Scan::Done { item, consumed } => {
                    let resp = binary::decode_response(buf.get(item).unwrap_or(&[]))?;
                    buf.drain(..consumed);
                    return Ok(resp);
                }
                Scan::Incomplete => fill(&mut self.reader, buf)?,
            }
        }
    }

    /// Submits a job; returns `(decision, job id, epoch, waited_us)`.
    /// (The defer reason, when present, is available via [`Client::call`]
    /// on the raw [`Response::Submitted`].)
    ///
    /// # Errors
    ///
    /// Transport errors as in [`Client::call`]; a server-side error
    /// response surfaces as [`ServeError::Wire`].
    pub fn submit(
        &mut self,
        sub: JobSubmission,
    ) -> Result<(Decision, Option<u64>, u64, u64), ServeError> {
        match self.call(&Request::Submit(sub))? {
            Response::Submitted { job, decision, epoch, waited_us, .. } => {
                Ok((decision, job, epoch, waited_us))
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Re-sizes the cluster to `capacity` containers (a revocation when
    /// shrinking, a restock when growing). Returns the capacity the daemon
    /// now serves, summed across planner shards.
    ///
    /// # Errors
    ///
    /// As in [`Client::submit`]; a capacity the daemon refuses (zero, or
    /// fewer containers than planner shards) surfaces as
    /// [`ServeError::Wire`] with [`crate::protocol::ErrorCode::BadField`].
    pub fn set_capacity(&mut self, capacity: u32) -> Result<u32, ServeError> {
        match self.call(&Request::SetCapacity { capacity })? {
            Response::CapacitySet { capacity } => Ok(capacity),
            other => Err(unexpected(&other)),
        }
    }

    /// Reports one completed-task runtime sample.
    ///
    /// # Errors
    ///
    /// As in [`Client::submit`].
    pub fn report_sample(&mut self, job: u64, runtime: u64) -> Result<(), ServeError> {
        match self.call(&Request::ReportSample { job, runtime })? {
            Response::Ack => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the plan table (all jobs when `job` is `None`).
    ///
    /// # Errors
    ///
    /// As in [`Client::submit`].
    pub fn query_plan(&mut self, job: Option<u64>) -> Result<Vec<PlanRow>, ServeError> {
        match self.call(&Request::QueryPlan { job })? {
            Response::PlanTable { rows, .. } => Ok(rows),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks for the Theorem-3 robust completion bound `T + R` of a job.
    ///
    /// # Errors
    ///
    /// As in [`Client::submit`].
    pub fn predict(&mut self, job: u64) -> Result<f64, ServeError> {
        match self.call(&Request::Predict { job })? {
            Response::Prediction { bound, .. } => Ok(bound),
            other => Err(unexpected(&other)),
        }
    }

    /// Cancels a job.
    ///
    /// # Errors
    ///
    /// As in [`Client::submit`].
    pub fn cancel(&mut self, job: u64) -> Result<(), ServeError> {
        match self.call(&Request::Cancel { job })? {
            Response::Ack => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the daemon counters.
    ///
    /// # Errors
    ///
    /// As in [`Client::submit`].
    pub fn stats(&mut self) -> Result<StatsReport, ServeError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Gracefully stops the daemon; returns whether a snapshot was
    /// written.
    ///
    /// # Errors
    ///
    /// As in [`Client::submit`].
    pub fn shutdown(&mut self, snapshot: bool) -> Result<bool, ServeError> {
        match self.call(&Request::Shutdown { snapshot })? {
            Response::ShuttingDown { snapshot_written } => Ok(snapshot_written),
            other => Err(unexpected(&other)),
        }
    }
}

/// Appends the reader's next chunk to `buf`; EOF is an error (we are
/// always mid-frame when this is called).
fn fill(reader: &mut BufReader<TcpStream>, buf: &mut Vec<u8>) -> Result<(), ServeError> {
    let mut chunk = [0u8; 4096];
    let n = reader.read(&mut chunk)?;
    if n == 0 {
        return Err(eof());
    }
    buf.extend_from_slice(&chunk[..n]);
    Ok(())
}

fn eof() -> ServeError {
    ServeError::Io(std::io::Error::new(
        std::io::ErrorKind::UnexpectedEof,
        "server closed the connection",
    ))
}

fn unexpected(resp: &Response) -> ServeError {
    match resp {
        Response::Error(e) => ServeError::Wire(e.clone()),
        other => ServeError::Wire(WireError {
            code: crate::protocol::ErrorCode::BadOp,
            message: format!("unexpected response kind: {other:?}"),
        }),
    }
}

//! A hand-rolled JSON codec for the wire protocol.
//!
//! The workspace vendors no serde, and the protocol needs *strict* framing:
//! a malformed byte must produce a located error, never a panic or a
//! silently-coerced value. This module implements exactly the JSON subset
//! RFC 8259 defines, with the following deliberate strictness choices:
//!
//! * one value per frame: trailing non-whitespace is an error;
//! * duplicate object keys are rejected (a lenient reader would silently
//!   drop half a request);
//! * nesting is capped at [`MAX_DEPTH`] so an adversarial frame cannot
//!   overflow the parser's stack;
//! * numbers must be finite JSON numbers — `NaN`/`Infinity` tokens are
//!   rejected on read and never produced on write.
//!
//! Integers round-trip exactly up to 2^53 (the `f64` mantissa); the
//! protocol never carries larger values (latencies are µs, counters are
//! event counts).
//!
//! Objects preserve insertion order (they are association lists, not hash
//! maps), so encoded frames are deterministic and snapshots diff cleanly.

use std::fmt;

/// Maximum nesting depth accepted by the parser.
pub const MAX_DEPTH: usize = 64;

/// Largest integer exactly representable in a JSON number (2^53).
pub const MAX_SAFE_INT: u64 = 1 << 53;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an insertion-ordered association list.
    Obj(Vec<(String, Json)>),
}

/// A located parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the error was detected.
    pub pos: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.reason)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from a `u64` (values at or above 2^53 saturate to
    /// 2^53 − 1, the largest integer [`Json::as_u64`] accepts back).
    pub fn u64(v: u64) -> Json {
        Json::Num(v.min(MAX_SAFE_INT - 1) as f64)
    }

    /// Builds a number from an `f64`; non-finite values become `null`.
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// Object field lookup (first match; parse rejects duplicates).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer: a number that is whole,
    /// non-negative and strictly below 2^53. The bound is strict because
    /// every integer ≥ 2^53 shares its `f64` with a neighbour (2^53 + 1
    /// parses to exactly 2^53), so accepting 2^53 would silently alias
    /// rounded wire values.
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        let t = v.trunc();
        if t.total_cmp(&v).is_eq() && v >= 0.0 && v < MAX_SAFE_INT as f64 {
            Some(v as u64)
        } else {
            None
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a single-line JSON string (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if v.is_finite() {
                    // Rust's f64 Display is shortest-round-trip, and whole
                    // numbers print without a fraction — both parse back
                    // to the identical bit pattern.
                    let mut s = format!("{v}");
                    if !s.contains(['.', 'e', 'E']) && s.parse::<i64>().is_err() {
                        // Magnitudes beyond i64 print like "1e300" already;
                        // nothing to normalize. (Unreachable in practice.)
                        s.push_str(".0");
                    }
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON value from `text`, rejecting trailing garbage.
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first offending character.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: impl Into<String>) -> JsonError {
        JsonError { pos: self.pos, reason: reason.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key_pos = self.pos;
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(JsonError {
                    pos: key_pos,
                    reason: format!("duplicate object key \"{key}\""),
                });
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(fields)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require \uXXXX low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code)
                        } else if (0xDC00..0xE000).contains(&hi) {
                            None
                        } else {
                            char::from_u32(hi)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid \\u escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => {
                    return Err(JsonError {
                        pos: start,
                        reason: "unescaped control character in string".into(),
                    });
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid; copy it wholesale.
                    let s = self.bytes;
                    let mut end = self.pos;
                    while s.get(end).is_some_and(|&b| (b & 0xC0) == 0x80) {
                        end += 1;
                    }
                    match std::str::from_utf8(&s[start..end]) {
                        Ok(chunk) => out.push_str(chunk),
                        Err(_) => return Err(self.err("invalid utf-8 in string")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => Err(JsonError { pos: start, reason: format!("number out of range: {text}") }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let text = v.encode();
        let back = parse(&text).unwrap_or_else(|e| panic!("reparse {text}: {e}"));
        assert_eq!(*v, back, "{text}");
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-1.5),
            Json::Num(1e-9),
            Json::Num(6.02e23),
            Json::u64(9_007_199_254_740_992),
            Json::str(""),
            Json::str("plain"),
            Json::str("esc \" \\ \n \t \u{08} \u{0C} \r"),
            Json::str("unicode: caña 木 🚀 \u{1}"),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = Json::Obj(vec![
            ("v".into(), Json::u64(1)),
            ("op".into(), Json::str("submit")),
            ("args".into(), Json::Arr(vec![Json::Num(1.25), Json::Null, Json::Bool(true)])),
            ("nested".into(), Json::Obj(vec![("k".into(), Json::Arr(vec![]))])),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        roundtrip(&v);
    }

    #[test]
    fn parses_whitespace_liberally() {
        let v = parse(" {\n\t\"a\" : [ 1 , 2 ] ,\r\n \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let e = parse("{} x").unwrap_err();
        assert!(e.reason.contains("trailing"), "{e}");
        assert!(parse("1 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn rejects_malformed_numbers() {
        for bad in ["01", "1.", ".5", "1e", "+-3", "--1", "1e+", "NaN", "Infinity", "0x10"] {
            assert!(parse(bad).is_err(), "{bad} should be rejected");
        }
        // Overflowing literals are rejected rather than becoming inf.
        assert!(parse("1e999").is_err());
    }

    #[test]
    fn rejects_malformed_strings() {
        for bad in [r#"""#, r#""\x""#, r#""\u12"#, r#""\ud800""#, r#""\ud800A""#, "\"\u{1}\""] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
        // Valid surrogate pair decodes.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::str("😀"));
    }

    #[test]
    fn rejects_duplicate_keys() {
        let e = parse(r#"{"a":1,"a":2}"#).unwrap_err();
        assert!(e.reason.contains("duplicate"), "{e}");
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let e = parse(&deep).unwrap_err();
        assert!(e.reason.contains("deep"), "{e}");
    }

    #[test]
    fn error_positions_point_at_the_problem() {
        let e = parse(r#"{"ok": tru}"#).unwrap_err();
        assert_eq!(e.pos, 7);
        let e = parse("[1,, 2]").unwrap_err();
        assert_eq!(e.pos, 3);
    }

    #[test]
    fn accessors_are_typed() {
        let v = parse(r#"{"n": 3, "f": 2.5, "s": "x", "b": false, "a": [1], "neg": -1}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("f").and_then(Json::as_u64), None);
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(2.5));
        assert_eq!(v.get("neg").and_then(Json::as_u64), None);
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("k"), None);
        assert_eq!(Json::Null.as_str(), None);
    }

    #[test]
    fn nonfinite_floats_encode_as_null() {
        assert_eq!(Json::f64(f64::NAN), Json::Null);
        assert_eq!(Json::f64(f64::INFINITY), Json::Null);
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
    }
}

//! The version-negotiated, length-prefixed binary wire codec.
//!
//! A compact alternative to the newline-JSON protocol carrying exactly the
//! same [`Request`]/[`Response`] values — the codec differential suite
//! proves both decode to identical values and drive the planner to
//! byte-identical snapshots.
//!
//! ## Negotiation handshake
//!
//! A binary connection opens with a 6-byte client hello: the magic
//! `b"RUSH1"` followed by the highest frame version the client speaks.
//! The server answers with the same magic and the negotiated version
//! (`min(client, server)`), or version `0` ("no common version") and a
//! close. The magic's first byte (`R`, 0x52) is how a frontend sniffs
//! binary from JSON on one port: a JSON frame always starts with `{`.
//!
//! ## Framing
//!
//! After the handshake, each frame in either direction is an LEB128
//! varint payload length followed by the payload. Payloads are capped at
//! [`MAX_FRAME_LEN`]; an oversized or unparseable length prefix is
//! connection-fatal (there is no way to resynchronize), while a
//! well-framed but malformed payload yields a structured
//! [`ErrorCode::BadFrame`]/[`ErrorCode::BadField`] error and the
//! connection keeps serving — mirroring the JSON codec's contract.
//!
//! ## Field encoding
//!
//! * `u64`/`u32` — LEB128 varint (u32 widened).
//! * `f64` — 8 bytes, little-endian IEEE-754 bits (bit-exact round trip).
//! * `String` — varint byte length + UTF-8 bytes.
//! * `bool` — one byte, `0` or `1` (anything else is malformed).
//! * `Option<T>` — one presence byte (`0`/`1`) then `T` when present.
//! * Utilities travel in the same persist text form as JSON
//!   (`sigmoid:700,5,0.02`), so all wire formats share one grammar.
//!
//! Every payload starts with a one-byte variant tag; the tag tables for
//! requests and responses are documented in `DESIGN.md` §15.

use crate::protocol::{
    Decision, DeferReason, ErrorCode, JobSubmission, PlanRow, Request, Response, StatsReport,
    WireError,
};
use rush_workload::persist::{utility_from_text, utility_to_text};

/// The 5-byte connection magic both hellos open with.
pub const MAGIC: &[u8; 5] = b"RUSH1";

/// The highest binary frame version this build speaks.
pub const BINARY_VERSION: u8 = 1;

/// Hard cap on a frame payload; larger length prefixes are
/// connection-fatal.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Result of scanning a byte buffer for one complete item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scan<T> {
    /// More bytes are needed; read again and re-scan.
    Incomplete,
    /// One complete item, consuming `consumed` buffer bytes.
    Done {
        /// The decoded item.
        item: T,
        /// Bytes to drop from the front of the buffer.
        consumed: usize,
    },
}

fn bad_frame(why: impl Into<String>) -> WireError {
    WireError::new(ErrorCode::BadFrame, why)
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// The negotiated version for a client that offered `client_max`, or `0`
/// when there is no common version.
pub fn negotiate(client_max: u8) -> u8 {
    client_max.min(BINARY_VERSION)
}

/// The 6-byte hello either side sends: magic + version byte.
pub fn hello(version: u8) -> [u8; 6] {
    let mut h = [0u8; 6];
    h[..5].copy_from_slice(MAGIC);
    h[5] = version; // bound: h is a fixed [u8; 6], index 5 is its last byte
    h
}

/// Scans a buffer for a complete 6-byte hello.
///
/// # Errors
///
/// [`ErrorCode::BadFrame`] when the magic does not match (connection-fatal:
/// the peer is not speaking this protocol).
pub fn scan_hello(buf: &[u8]) -> Result<Scan<u8>, WireError> {
    let prefix = buf.len().min(MAGIC.len());
    if buf[..prefix] != MAGIC[..prefix] {
        return Err(bad_frame("bad magic: expected RUSH1"));
    }
    if buf.len() < 6 {
        return Ok(Scan::Incomplete);
    }
    // bound: the length check above guarantees buf.len() >= 6
    Ok(Scan::Done { item: buf[5], consumed: 6 })
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Appends a varint length prefix + `payload` to `out`.
pub fn frame_into(payload: &[u8], out: &mut Vec<u8>) {
    put_varint(payload.len() as u64, out);
    out.extend_from_slice(payload);
}

/// Scans a buffer for one complete length-prefixed frame, returning the
/// payload byte range (relative to the buffer start).
///
/// # Errors
///
/// [`ErrorCode::BadFrame`] for an oversized or malformed length prefix —
/// connection-fatal, since the stream cannot be resynchronized.
pub fn scan_frame(buf: &[u8]) -> Result<Scan<std::ops::Range<usize>>, WireError> {
    let mut len: u64 = 0;
    let mut shift = 0u32;
    let mut idx = 0usize;
    loop {
        let Some(&byte) = buf.get(idx) else {
            // A length prefix longer than 5 bytes already exceeds the
            // frame cap; don't wait for more bytes that cannot help.
            return if idx >= 5 { Err(bad_frame("length prefix too long")) } else { Ok(Scan::Incomplete) };
        };
        len |= u64::from(byte & 0x7f) << shift;
        idx += 1;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift >= 35 {
            return Err(bad_frame("length prefix too long"));
        }
    }
    if len > MAX_FRAME_LEN as u64 {
        return Err(bad_frame(format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap")));
    }
    let len = len as usize;
    if buf.len() < idx + len {
        return Ok(Scan::Incomplete);
    }
    Ok(Scan::Done { item: idx..idx + len, consumed: idx + len })
}

// ---------------------------------------------------------------------------
// Primitive field codecs
// ---------------------------------------------------------------------------

fn put_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_f64(v: f64, out: &mut Vec<u8>) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(s: &str, out: &mut Vec<u8>) {
    put_varint(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

fn put_bool(b: bool, out: &mut Vec<u8>) {
    out.push(u8::from(b));
}

fn put_opt_varint(v: Option<u64>, out: &mut Vec<u8>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_varint(v, out);
        }
    }
}

fn put_opt_f64(v: Option<f64>, out: &mut Vec<u8>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_f64(v, out);
        }
    }
}

/// A checked cursor over one frame payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        let b = self
            .buf
            .get(self.pos)
            .copied()
            .ok_or_else(|| bad_frame(format!("truncated payload reading {what}")))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self, what: &str) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8(what)?;
            if shift == 63 && byte > 1 {
                return Err(bad_frame(format!("varint overflow in {what}")));
            }
            if shift >= 64 {
                return Err(bad_frame(format!("varint overflow in {what}")));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn f64(&mut self, what: &str) -> Result<f64, WireError> {
        let end = self
            .pos
            .checked_add(8)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad_frame(format!("truncated payload reading {what}")))?;
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    fn string(&mut self, what: &str) -> Result<String, WireError> {
        let len = self.varint(what)? as usize;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad_frame(format!("truncated payload reading {what}")))?;
        let s = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|_| bad_frame(format!("invalid UTF-8 in {what}")))?;
        self.pos = end;
        Ok(s.to_string())
    }

    fn boolean(&mut self, what: &str) -> Result<bool, WireError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(bad_frame(format!("bad boolean byte {b} in {what}"))),
        }
    }

    fn opt_varint(&mut self, what: &str) -> Result<Option<u64>, WireError> {
        if self.boolean(what)? {
            Ok(Some(self.varint(what)?))
        } else {
            Ok(None)
        }
    }

    fn opt_f64(&mut self, what: &str) -> Result<Option<f64>, WireError> {
        if self.boolean(what)? {
            Ok(Some(self.f64(what)?))
        } else {
            Ok(None)
        }
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad_frame(format!("{} trailing bytes after payload", self.buf.len() - self.pos)))
        }
    }
}

fn bad_field(name: &str, why: &str) -> WireError {
    WireError::new(ErrorCode::BadField, format!("field \"{name}\": {why}"))
}

// ---------------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------------

const REQ_SUBMIT: u8 = 0;
const REQ_REPORT_SAMPLE: u8 = 1;
const REQ_QUERY_PLAN: u8 = 2;
const REQ_PREDICT: u8 = 3;
const REQ_CANCEL: u8 = 4;
const REQ_STATS: u8 = 5;
const REQ_SHUTDOWN: u8 = 6;
const REQ_SET_CAPACITY: u8 = 7;

/// Encodes a request payload (tag + fields, no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match req {
        Request::Submit(sub) => {
            out.push(REQ_SUBMIT);
            put_str(&sub.label, &mut out);
            put_varint(sub.tasks, &mut out);
            put_opt_f64(sub.runtime_hint, &mut out);
            put_str(&utility_to_text(&sub.utility), &mut out);
            put_opt_varint(sub.budget, &mut out);
            put_varint(u64::from(sub.priority), &mut out);
        }
        Request::ReportSample { job, runtime } => {
            out.push(REQ_REPORT_SAMPLE);
            put_varint(*job, &mut out);
            put_varint(*runtime, &mut out);
        }
        Request::QueryPlan { job } => {
            out.push(REQ_QUERY_PLAN);
            put_opt_varint(*job, &mut out);
        }
        Request::Predict { job } => {
            out.push(REQ_PREDICT);
            put_varint(*job, &mut out);
        }
        Request::Cancel { job } => {
            out.push(REQ_CANCEL);
            put_varint(*job, &mut out);
        }
        Request::Stats => out.push(REQ_STATS),
        Request::SetCapacity { capacity } => {
            out.push(REQ_SET_CAPACITY);
            put_varint(u64::from(*capacity), &mut out);
        }
        Request::Shutdown { snapshot } => {
            out.push(REQ_SHUTDOWN);
            put_bool(*snapshot, &mut out);
        }
    }
    out
}

/// Decodes a request payload, applying exactly the validation the JSON
/// decoder applies (`tasks >= 1`, `hint > 0`, utility grammar, priority in
/// `1..=u32::MAX`).
///
/// # Errors
///
/// [`ErrorCode::BadFrame`] for structural problems, [`ErrorCode::BadOp`]
/// for an unknown tag, [`ErrorCode::BadField`] for validation failures —
/// the connection stays usable after any of them.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(payload);
    let tag = r.u8("request tag")?;
    let req = match tag {
        REQ_SUBMIT => {
            let label = r.string("label")?;
            let tasks = r.varint("tasks")?;
            if tasks == 0 {
                return Err(bad_field("tasks", "must be >= 1"));
            }
            let hint = r.opt_f64("hint")?;
            if let Some(h) = hint {
                if h <= 0.0 || !h.is_finite() {
                    return Err(bad_field("hint", "must be > 0"));
                }
            }
            let utility =
                utility_from_text(&r.string("utility")?).map_err(|e| bad_field("utility", &e))?;
            let budget = r.opt_varint("budget")?;
            let priority = r.varint("priority")?;
            let priority =
                u32::try_from(priority).map_err(|_| bad_field("priority", "must fit in u32"))?;
            if priority == 0 {
                return Err(bad_field("priority", "must be >= 1"));
            }
            Request::Submit(JobSubmission { label, tasks, runtime_hint: hint, utility, budget, priority })
        }
        REQ_REPORT_SAMPLE => {
            Request::ReportSample { job: r.varint("job")?, runtime: r.varint("runtime")? }
        }
        REQ_QUERY_PLAN => Request::QueryPlan { job: r.opt_varint("job")? },
        REQ_PREDICT => Request::Predict { job: r.varint("job")? },
        REQ_CANCEL => Request::Cancel { job: r.varint("job")? },
        REQ_STATS => Request::Stats,
        REQ_SET_CAPACITY => {
            let capacity = r.varint("capacity")?;
            let capacity =
                u32::try_from(capacity).map_err(|_| bad_field("capacity", "must fit in u32"))?;
            if capacity == 0 {
                return Err(bad_field("capacity", "must be >= 1"));
            }
            Request::SetCapacity { capacity }
        }
        REQ_SHUTDOWN => Request::Shutdown { snapshot: r.boolean("snapshot")? },
        other => {
            return Err(WireError::new(ErrorCode::BadOp, format!("unknown request tag {other}")))
        }
    };
    r.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------------

const RESP_SUBMITTED: u8 = 0;
const RESP_ACK: u8 = 1;
const RESP_PLAN_TABLE: u8 = 2;
const RESP_PREDICTION: u8 = 3;
const RESP_STATS: u8 = 4;
const RESP_SHUTTING_DOWN: u8 = 5;
const RESP_ERROR: u8 = 6;
const RESP_CAPACITY_SET: u8 = 7;

fn decision_tag(d: Decision) -> u8 {
    match d {
        Decision::Admit => 0,
        Decision::Defer => 1,
        Decision::Reject => 2,
    }
}

fn decision_from_tag(tag: u8) -> Result<Decision, WireError> {
    match tag {
        0 => Ok(Decision::Admit),
        1 => Ok(Decision::Defer),
        2 => Ok(Decision::Reject),
        other => Err(bad_frame(format!("unknown decision tag {other}"))),
    }
}

/// `Option<DeferReason>` as one byte: 0 = none, 1 = overcommit,
/// 2 = awaiting-restock.
fn defer_reason_tag(r: Option<DeferReason>) -> u8 {
    match r {
        None => 0,
        Some(DeferReason::Overcommit) => 1,
        Some(DeferReason::AwaitingRestock) => 2,
    }
}

fn defer_reason_from_tag(tag: u8) -> Result<Option<DeferReason>, WireError> {
    match tag {
        0 => Ok(None),
        1 => Ok(Some(DeferReason::Overcommit)),
        2 => Ok(Some(DeferReason::AwaitingRestock)),
        other => Err(bad_frame(format!("unknown defer-reason tag {other}"))),
    }
}

fn error_code_tag(c: ErrorCode) -> u8 {
    match c {
        ErrorCode::BadJson => 0,
        ErrorCode::BadFrame => 1,
        ErrorCode::BadVersion => 2,
        ErrorCode::BadOp => 3,
        ErrorCode::BadField => 4,
        ErrorCode::UnknownJob => 5,
        ErrorCode::Deferred => 6,
        ErrorCode::Shutdown => 7,
        ErrorCode::Internal => 8,
    }
}

fn error_code_from_tag(tag: u8) -> Result<ErrorCode, WireError> {
    match tag {
        0 => Ok(ErrorCode::BadJson),
        1 => Ok(ErrorCode::BadFrame),
        2 => Ok(ErrorCode::BadVersion),
        3 => Ok(ErrorCode::BadOp),
        4 => Ok(ErrorCode::BadField),
        5 => Ok(ErrorCode::UnknownJob),
        6 => Ok(ErrorCode::Deferred),
        7 => Ok(ErrorCode::Shutdown),
        8 => Ok(ErrorCode::Internal),
        other => Err(bad_frame(format!("unknown error-code tag {other}"))),
    }
}

fn put_plan_row(row: &PlanRow, out: &mut Vec<u8>) {
    put_varint(row.job, out);
    put_str(&row.label, out);
    put_varint(row.eta, out);
    put_varint(row.task_len, out);
    put_f64(row.target, out);
    put_f64(row.level, out);
    put_varint(u64::from(row.desired_now), out);
    put_varint(row.planned_completion, out);
    put_bool(row.impossible, out);
    put_varint(row.remaining_tasks, out);
}

fn read_plan_row(r: &mut Reader<'_>) -> Result<PlanRow, WireError> {
    let job = r.varint("row.job")?;
    let label = r.string("row.label")?;
    let eta = r.varint("row.eta")?;
    let task_len = r.varint("row.task_len")?;
    let target = r.f64("row.target")?;
    let level = r.f64("row.level")?;
    let desired = r.varint("row.desired_now")?;
    let desired_now =
        u32::try_from(desired).map_err(|_| bad_field("desired_now", "must fit in u32"))?;
    Ok(PlanRow {
        job,
        label,
        eta,
        task_len,
        target,
        level,
        desired_now,
        planned_completion: r.varint("row.planned_completion")?,
        impossible: r.boolean("row.impossible")?,
        remaining_tasks: r.varint("row.remaining_tasks")?,
    })
}

/// Encodes a response payload (tag + fields, no length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match resp {
        Response::Submitted { job, decision, epoch, waited_us, defer_reason } => {
            out.push(RESP_SUBMITTED);
            put_opt_varint(*job, &mut out);
            out.push(decision_tag(*decision));
            put_varint(*epoch, &mut out);
            put_varint(*waited_us, &mut out);
            out.push(defer_reason_tag(*defer_reason));
        }
        Response::Ack => out.push(RESP_ACK),
        Response::PlanTable { now_slot, epoch, rows } => {
            out.push(RESP_PLAN_TABLE);
            put_varint(*now_slot, &mut out);
            put_varint(*epoch, &mut out);
            put_varint(rows.len() as u64, &mut out);
            for row in rows {
                put_plan_row(row, &mut out);
            }
        }
        Response::Prediction { job, target, task_len, bound, planned_completion, impossible } => {
            out.push(RESP_PREDICTION);
            put_varint(*job, &mut out);
            put_f64(*target, &mut out);
            put_varint(*task_len, &mut out);
            put_f64(*bound, &mut out);
            put_varint(*planned_completion, &mut out);
            put_bool(*impossible, &mut out);
        }
        Response::Stats(s) => {
            out.push(RESP_STATS);
            for v in [
                s.active_jobs,
                s.deferred_jobs,
                s.epochs,
                s.admitted,
                s.deferred,
                s.rejected,
                s.cancelled,
                s.completed,
                s.samples,
                s.cache_hits,
                s.cache_misses,
                s.now_slot,
            ] {
                put_varint(v, &mut out);
            }
        }
        Response::CapacitySet { capacity } => {
            out.push(RESP_CAPACITY_SET);
            put_varint(u64::from(*capacity), &mut out);
        }
        Response::ShuttingDown { snapshot_written } => {
            out.push(RESP_SHUTTING_DOWN);
            put_bool(*snapshot_written, &mut out);
        }
        Response::Error(e) => {
            out.push(RESP_ERROR);
            out.push(error_code_tag(e.code));
            put_str(&e.message, &mut out);
        }
    }
    out
}

/// Decodes a response payload (the client side of the codec).
///
/// # Errors
///
/// [`WireError`] when the payload is not a well-formed response.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(payload);
    let tag = r.u8("response tag")?;
    let resp = match tag {
        RESP_SUBMITTED => {
            let job = r.opt_varint("job")?;
            let decision = decision_from_tag(r.u8("decision")?)?;
            let epoch = r.varint("epoch")?;
            let waited_us = r.varint("waited_us")?;
            let defer_reason = defer_reason_from_tag(r.u8("defer_reason")?)?;
            Response::Submitted { job, decision, epoch, waited_us, defer_reason }
        }
        RESP_ACK => Response::Ack,
        RESP_PLAN_TABLE => {
            let now_slot = r.varint("now_slot")?;
            let epoch = r.varint("epoch")?;
            let count = r.varint("rows")? as usize;
            // Each row is at least 14 bytes; pre-check against the payload
            // so a hostile count cannot balloon the allocation.
            if count > payload.len() {
                return Err(bad_frame("row count exceeds payload size"));
            }
            let mut rows = Vec::with_capacity(count);
            for _ in 0..count {
                rows.push(read_plan_row(&mut r)?);
            }
            Response::PlanTable { now_slot, epoch, rows }
        }
        RESP_PREDICTION => Response::Prediction {
            job: r.varint("job")?,
            target: r.f64("target")?,
            task_len: r.varint("task_len")?,
            bound: r.f64("bound")?,
            planned_completion: r.varint("planned_completion")?,
            impossible: r.boolean("impossible")?,
        },
        RESP_STATS => Response::Stats(StatsReport {
            active_jobs: r.varint("active_jobs")?,
            deferred_jobs: r.varint("deferred_jobs")?,
            epochs: r.varint("epochs")?,
            admitted: r.varint("admitted")?,
            deferred: r.varint("deferred")?,
            rejected: r.varint("rejected")?,
            cancelled: r.varint("cancelled")?,
            completed: r.varint("completed")?,
            samples: r.varint("samples")?,
            cache_hits: r.varint("cache_hits")?,
            cache_misses: r.varint("cache_misses")?,
            now_slot: r.varint("now_slot")?,
        }),
        RESP_CAPACITY_SET => {
            let capacity = r.varint("capacity")?;
            Response::CapacitySet {
                capacity: u32::try_from(capacity)
                    .map_err(|_| bad_field("capacity", "must fit in u32"))?,
            }
        }
        RESP_SHUTTING_DOWN => Response::ShuttingDown { snapshot_written: r.boolean("snapshot_written")? },
        RESP_ERROR => {
            let code = error_code_from_tag(r.u8("code")?)?;
            Response::Error(WireError::new(code, r.string("message")?))
        }
        other => {
            return Err(WireError::new(ErrorCode::BadOp, format!("unknown response tag {other}")))
        }
    };
    r.finish()?;
    Ok(resp)
}

/// Encodes a request as one complete frame (length prefix + payload).
pub fn frame_request(req: &Request) -> Vec<u8> {
    let payload = encode_request(req);
    let mut out = Vec::with_capacity(payload.len() + 3);
    frame_into(&payload, &mut out);
    out
}

/// Encodes a response as one complete frame (length prefix + payload).
pub fn frame_response(resp: &Response) -> Vec<u8> {
    let payload = encode_response(resp);
    let mut out = Vec::with_capacity(payload.len() + 3);
    frame_into(&payload, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_utility::TimeUtility;

    fn sub() -> JobSubmission {
        JobSubmission {
            label: "terasort".into(),
            tasks: 40,
            runtime_hint: Some(55.5),
            utility: TimeUtility::sigmoid(700.0, 5.0, 0.02).expect("valid"),
            budget: Some(700),
            priority: 3,
        }
    }

    #[test]
    fn handshake_negotiates_the_minimum() {
        assert_eq!(negotiate(0), 0);
        assert_eq!(negotiate(1), 1);
        assert_eq!(negotiate(200), BINARY_VERSION);
        let h = hello(1);
        assert_eq!(&h[..5], MAGIC);
        match scan_hello(&h).expect("valid hello") {
            Scan::Done { item, consumed } => {
                assert_eq!(item, 1);
                assert_eq!(consumed, 6);
            }
            Scan::Incomplete => unreachable!("complete hello"),
        }
    }

    #[test]
    fn partial_hello_waits_and_bad_magic_is_fatal() {
        assert_eq!(scan_hello(b"RUS").expect("prefix ok"), Scan::Incomplete);
        assert!(scan_hello(b"RUSX1\x01").is_err());
        assert!(scan_hello(b"{\"v\":1").is_err(), "JSON opener is not binary magic");
    }

    #[test]
    fn frames_round_trip_through_the_scanner() {
        let mut buf = Vec::new();
        frame_into(b"abc", &mut buf);
        frame_into(b"", &mut buf);
        frame_into(&[7u8; 300], &mut buf);

        let Scan::Done { item, consumed } = scan_frame(&buf).expect("frame") else {
            unreachable!("complete frame")
        };
        assert_eq!(&buf[item], b"abc");
        buf.drain(..consumed);

        let Scan::Done { item, consumed } = scan_frame(&buf).expect("frame") else {
            unreachable!("complete frame")
        };
        assert!(buf[item.clone()].is_empty());
        buf.drain(..consumed);

        let Scan::Done { item, consumed } = scan_frame(&buf).expect("frame") else {
            unreachable!("complete frame")
        };
        assert_eq!(buf[item.clone()].len(), 300);
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn truncated_length_prefix_and_payload_wait_for_more() {
        // 300-byte frame: 2-byte prefix. One prefix byte alone: incomplete.
        let mut buf = Vec::new();
        frame_into(&[7u8; 300], &mut buf);
        assert_eq!(scan_frame(&buf[..1]).expect("scan"), Scan::Incomplete);
        assert_eq!(scan_frame(&buf[..50]).expect("scan"), Scan::Incomplete);
    }

    #[test]
    fn oversized_frames_are_fatal() {
        let mut buf = Vec::new();
        put_varint(MAX_FRAME_LEN as u64 + 1, &mut buf);
        let e = scan_frame(&buf).expect_err("over cap");
        assert_eq!(e.code, ErrorCode::BadFrame);
        // A length prefix that never terminates is fatal too.
        let e = scan_frame(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff]).expect_err("runaway varint");
        assert_eq!(e.code, ErrorCode::BadFrame);
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Submit(sub()),
            Request::Submit(JobSubmission {
                runtime_hint: None,
                budget: None,
                utility: TimeUtility::constant(2.0).expect("valid"),
                ..sub()
            }),
            Request::ReportSample { job: 7, runtime: 61 },
            Request::QueryPlan { job: None },
            Request::QueryPlan { job: Some(3) },
            Request::Predict { job: 9 },
            Request::Cancel { job: 0 },
            Request::Stats,
            Request::SetCapacity { capacity: 24 },
            Request::Shutdown { snapshot: false },
        ];
        for r in reqs {
            let payload = encode_request(&r);
            let back = decode_request(&payload).unwrap_or_else(|e| panic!("{r:?}: {e}"));
            assert_eq!(r, back);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Submitted {
                job: Some(12),
                decision: Decision::Admit,
                epoch: 4,
                waited_us: 1800,
                defer_reason: None,
            },
            Response::Submitted {
                job: None,
                decision: Decision::Reject,
                epoch: 4,
                waited_us: 90,
                defer_reason: None,
            },
            Response::Submitted {
                job: Some(3),
                decision: Decision::Defer,
                epoch: 2,
                waited_us: 40,
                defer_reason: Some(DeferReason::AwaitingRestock),
            },
            Response::Submitted {
                job: Some(4),
                decision: Decision::Defer,
                epoch: 2,
                waited_us: 41,
                defer_reason: Some(DeferReason::Overcommit),
            },
            Response::CapacitySet { capacity: 48 },
            Response::Ack,
            Response::PlanTable {
                now_slot: 17,
                epoch: 6,
                rows: vec![PlanRow {
                    job: 12,
                    label: "grep".into(),
                    eta: 2400,
                    task_len: 60,
                    target: 512.25,
                    level: 4.75,
                    desired_now: 5,
                    planned_completion: 480,
                    impossible: false,
                    remaining_tasks: 31,
                }],
            },
            Response::Prediction {
                job: 12,
                target: 512.25,
                task_len: 60,
                bound: 572.25,
                planned_completion: 480,
                impossible: false,
            },
            Response::Stats(StatsReport { active_jobs: 3, samples: 230, ..StatsReport::default() }),
            Response::ShuttingDown { snapshot_written: true },
            Response::error(ErrorCode::UnknownJob, "job 99 is not resident"),
        ];
        for r in resps {
            let payload = encode_response(&r);
            let back = decode_response(&payload).unwrap_or_else(|e| panic!("{r:?}: {e}"));
            assert_eq!(r, back);
        }
    }

    #[test]
    fn set_capacity_and_defer_reason_are_validated() {
        // capacity == 0 mirrors the JSON decoder's BadField.
        let p = vec![REQ_SET_CAPACITY, 0];
        assert_eq!(decode_request(&p).expect_err("zero capacity").code, ErrorCode::BadField);
        // capacity beyond u32.
        let mut p = vec![REQ_SET_CAPACITY];
        put_varint(5_000_000_000, &mut p);
        assert_eq!(decode_request(&p).expect_err("huge capacity").code, ErrorCode::BadField);
        // An unknown defer-reason tag in a Submitted frame is a framing
        // error: the byte is ours, not the client's.
        let mut p = vec![RESP_SUBMITTED];
        put_opt_varint(Some(1), &mut p);
        p.push(0); // Admit
        put_varint(1, &mut p); // epoch
        put_varint(2, &mut p); // waited_us
        p.push(9); // bogus reason tag
        assert_eq!(decode_response(&p).expect_err("bad reason").code, ErrorCode::BadFrame);
    }

    #[test]
    fn validation_mirrors_the_json_decoder() {
        // tasks == 0
        let mut p = encode_request(&Request::Submit(sub()));
        // Rebuild by hand: tag, label, tasks=0 ...
        p.clear();
        p.push(REQ_SUBMIT);
        put_str("x", &mut p);
        put_varint(0, &mut p);
        put_opt_f64(None, &mut p);
        put_str("constant:1", &mut p);
        put_opt_varint(None, &mut p);
        put_varint(1, &mut p);
        assert_eq!(decode_request(&p).expect_err("zero tasks").code, ErrorCode::BadField);

        // hint <= 0 and non-finite hints.
        for bad_hint in [0.0, -4.0, f64::NAN, f64::INFINITY] {
            let mut p = Vec::new();
            p.push(REQ_SUBMIT);
            put_str("x", &mut p);
            put_varint(2, &mut p);
            put_opt_f64(Some(bad_hint), &mut p);
            put_str("constant:1", &mut p);
            put_opt_varint(None, &mut p);
            put_varint(1, &mut p);
            assert_eq!(decode_request(&p).expect_err("bad hint").code, ErrorCode::BadField);
        }

        // unknown utility grammar
        let mut p = Vec::new();
        p.push(REQ_SUBMIT);
        put_str("x", &mut p);
        put_varint(2, &mut p);
        put_opt_f64(None, &mut p);
        put_str("warp:1,2", &mut p);
        put_opt_varint(None, &mut p);
        put_varint(1, &mut p);
        assert_eq!(decode_request(&p).expect_err("bad utility").code, ErrorCode::BadField);

        // priority 0 and priority beyond u32
        for bad_priority in [0u64, 5_000_000_000] {
            let mut p = Vec::new();
            p.push(REQ_SUBMIT);
            put_str("x", &mut p);
            put_varint(2, &mut p);
            put_opt_f64(None, &mut p);
            put_str("constant:1", &mut p);
            put_opt_varint(None, &mut p);
            put_varint(bad_priority, &mut p);
            assert_eq!(decode_request(&p).expect_err("bad priority").code, ErrorCode::BadField);
        }
    }

    #[test]
    fn structural_garbage_is_bad_frame_or_bad_op() {
        assert_eq!(decode_request(&[]).expect_err("empty").code, ErrorCode::BadFrame);
        assert_eq!(decode_request(&[99]).expect_err("unknown tag").code, ErrorCode::BadOp);
        assert_eq!(decode_response(&[99]).expect_err("unknown tag").code, ErrorCode::BadOp);
        // Truncated mid-field.
        let whole = encode_request(&Request::Submit(sub()));
        for cut in 1..whole.len() {
            let e = decode_request(&whole[..cut]).expect_err("truncated");
            assert_eq!(e.code, ErrorCode::BadFrame, "cut at {cut}");
        }
        // Trailing bytes after a complete payload.
        let mut padded = encode_request(&Request::Stats);
        padded.push(0);
        assert_eq!(decode_request(&padded).expect_err("trailing").code, ErrorCode::BadFrame);
        // Bad boolean byte.
        assert_eq!(decode_request(&[REQ_SHUTDOWN, 7]).expect_err("bad bool").code, ErrorCode::BadFrame);
    }

    #[test]
    fn float_fields_are_bit_exact() {
        let resp = Response::Prediction {
            job: 1,
            target: f64::MIN_POSITIVE,
            task_len: 1,
            bound: 1.0 / 3.0,
            planned_completion: 0,
            impossible: false,
        };
        let back = decode_response(&encode_response(&resp)).expect("round trip");
        let Response::Prediction { target, bound, .. } = back else {
            unreachable!("prediction")
        };
        assert_eq!(target.to_bits(), f64::MIN_POSITIVE.to_bits());
        assert_eq!(bound.to_bits(), (1.0f64 / 3.0).to_bits());
    }
}

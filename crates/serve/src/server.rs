//! The `rushd` TCP daemon.
//!
//! Concurrency model: **thread-per-connection workers feeding a single
//! planner thread** over an `mpsc` channel. Connection workers only parse
//! and frame — all scheduling state lives on the planner thread, so there
//! are no locks anywhere in the daemon.
//!
//! **Epoch batching.** `submit` requests are not planned individually: the
//! planner collects them until either `epoch_max_batch` submissions are
//! pending or the oldest has waited `epoch_ms` milliseconds, then closes
//! the epoch — one admission sweep plus **one** kernel replan for the
//! whole batch (the delta path patches the previous onion layering and
//! mapping, so the unchanged residents are nearly free). Every waiting
//! client then receives its verdict, stamped with the microseconds it
//! waited; the planner records that wait in a
//! [`rush_metrics::Histogram`] surfaced through the load generator.
//! Non-submit requests never wait for an epoch.
//!
//! **Time.** The daemon quantizes its wall clock into logical slots:
//! `now_slot = base_slot + elapsed_ms / ms_per_slot`. Plans are a pure
//! function of (state, slot), which is what makes the snapshot/restore
//! guarantee testable: a daemon restored from a snapshot starts its clock
//! at the snapshot's slot.
//!
//! **Shards.** With [`ServeConfig::shards`] `> 1` the daemon runs one
//! planner thread per shard, each owning an independent [`ServeState`]
//! over a slice of the capacity. Connection workers route submissions by
//! label hash ([`rush_planner::shard_of_label`] — same-label jobs share a
//! shard, so cold-start pools and epoch batching stay effective) and
//! per-job requests by wire id. Wire ids encode the owner:
//! `wire = local * shards + shard`, which is the identity when
//! `shards == 1`, so the single-shard daemon is bit-identical to the
//! pre-sharding one. Cluster-wide requests (full plan table, stats,
//! shutdown) are broadcast and merged by the connection worker.

use crate::protocol::{ErrorCode, JobSubmission, Request, Response};
use crate::snapshot;
use crate::state::ServeState;
use crate::ServeError;
use rush_core::RushConfig;
use rush_metrics::Histogram;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:0` (0 = ephemeral port).
    pub addr: String,
    /// Cluster capacity in containers.
    pub capacity: u32,
    /// Close an epoch once this many submissions are pending.
    pub epoch_max_batch: usize,
    /// Close an epoch once the oldest pending submission has waited this
    /// many milliseconds.
    pub epoch_ms: u64,
    /// Wall-clock milliseconds per logical slot.
    pub ms_per_slot: u64,
    /// Snapshot file: written on graceful shutdown, restored on startup
    /// when present. With more than one shard, shard `i` uses the path
    /// suffixed `.shard<i>`.
    pub snapshot_path: Option<PathBuf>,
    /// Planner shards (threads). `1` (the default) is bit-identical to
    /// the pre-sharding daemon; more shards split the capacity and plan
    /// label-hash partitions of the jobs independently.
    pub shards: usize,
    /// The scheduling pipeline's parameters.
    pub rush: RushConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            capacity: 16,
            epoch_max_batch: 32,
            epoch_ms: 25,
            ms_per_slot: 1000,
            snapshot_path: None,
            shards: 1,
            rush: RushConfig::default(),
        }
    }
}

/// What connection workers send the planner.
enum PlannerMsg {
    /// A submission waiting for its epoch.
    Submit { sub: JobSubmission, enqueued: Instant, reply: Sender<Response> },
    /// Anything else — answered immediately.
    Immediate { req: Request, reply: Sender<Response> },
}

/// A running daemon. Dropping the handle does *not* stop the daemon; send
/// a `shutdown` request (or use [`crate::Client::shutdown`]) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    planners: Vec<thread::JoinHandle<Result<Histogram, ServeError>>>,
    acceptor: thread::JoinHandle<()>,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the daemon to finish (it finishes when a client sends
    /// `shutdown`). Returns the submit-wait histogram (µs), merged across
    /// planner shards.
    ///
    /// # Errors
    ///
    /// [`ServeError`] when a planner exited on an internal error or a
    /// daemon thread panicked.
    pub fn join(self) -> Result<Histogram, ServeError> {
        let mut merged = Histogram::new();
        let mut first_err = None;
        for p in self.planners {
            match p.join() {
                Ok(Ok(hist)) => merged.merge(&hist),
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => {
                    first_err = first_err
                        .or_else(|| Some(ServeError::Config("planner thread panicked".into())));
                }
            }
        }
        // The planners exit first and flip the stop flag; the acceptor
        // notices within one poll interval.
        self.stop.store(true, Ordering::SeqCst);
        self.acceptor
            .join()
            .map_err(|_| ServeError::Config("acceptor thread panicked".into()))?;
        match first_err {
            Some(e) => Err(e),
            None => Ok(merged),
        }
    }
}

/// Shard `i`'s snapshot file: the configured path itself for a
/// single-shard daemon, the path suffixed `.shard<i>` otherwise.
fn shard_snapshot_path(base: Option<&PathBuf>, shard: usize, shards: usize) -> Option<PathBuf> {
    base.map(|p| {
        if shards == 1 {
            p.clone()
        } else {
            let mut os = p.clone().into_os_string();
            os.push(format!(".shard{shard}"));
            PathBuf::from(os)
        }
    })
}

/// An even split of `total` into `shards` slices (first slices take the
/// remainder), mirroring the planner's slice initialization.
fn split_capacity(total: u32, shards: usize) -> Vec<u32> {
    let n = shards as u32;
    let base = total / n;
    let extra = total % n;
    (0..n).map(|i| base + u32::from(i < extra)).collect()
}

/// Starts the daemon: binds `config.addr`, restores the snapshot(s) if
/// present, and spawns one planner thread per shard plus the acceptor.
///
/// # Errors
///
/// [`ServeError::Io`] when the bind fails, [`ServeError::Snapshot`] when a
/// present snapshot is malformed or mismatched, [`ServeError::Core`] /
/// [`ServeError::Config`] for invalid configuration.
pub fn serve(config: ServeConfig) -> Result<ServerHandle, ServeError> {
    if config.epoch_max_batch == 0 {
        return Err(ServeError::Config("epoch_max_batch must be >= 1".into()));
    }
    if config.ms_per_slot == 0 {
        return Err(ServeError::Config("ms_per_slot must be >= 1".into()));
    }
    if config.shards == 0 {
        return Err(ServeError::Config("shards must be >= 1".into()));
    }
    if config.capacity < config.shards as u32 {
        return Err(ServeError::Config(format!(
            "capacity {} cannot be split across {} planner shards",
            config.capacity, config.shards
        )));
    }

    let slices = split_capacity(config.capacity, config.shards);
    let mut shard_states = Vec::with_capacity(config.shards);
    for (i, &slice) in slices.iter().enumerate() {
        let path = shard_snapshot_path(config.snapshot_path.as_ref(), i, config.shards);
        let (state, base_slot) = match &path {
            Some(p) if p.exists() => snapshot::read(p, config.rush, slice)?,
            _ => (ServeState::new(config.rush, slice)?, 0),
        };
        shard_states.push((state, base_slot, path, slice));
    }

    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let stop = Arc::new(AtomicBool::new(false));
    let mut planners = Vec::with_capacity(config.shards);
    let mut txs = Vec::with_capacity(config.shards);
    for (state, base_slot, path, slice) in shard_states {
        let (tx, rx) = mpsc::channel::<PlannerMsg>();
        txs.push(tx);
        let stop = Arc::clone(&stop);
        // Each planner sees a shard-local view of the config: its slice
        // of the capacity and its own snapshot file.
        let shard_config =
            ServeConfig { capacity: slice, snapshot_path: path, ..config.clone() };
        planners
            .push(thread::spawn(move || planner_loop(shard_config, state, base_slot, &rx, &stop)));
    }

    let acceptor = {
        let stop = Arc::clone(&stop);
        let txs = Arc::new(txs);
        thread::spawn(move || acceptor_loop(&listener, &txs, &stop))
    };

    Ok(ServerHandle { addr, planners, acceptor, stop })
}

/// The logical slot clock.
fn now_slot(base_slot: u64, started: Instant, ms_per_slot: u64) -> u64 {
    base_slot + started.elapsed().as_millis() as u64 / ms_per_slot
}

#[allow(clippy::needless_pass_by_value)]
fn planner_loop(
    config: ServeConfig,
    mut state: ServeState,
    base_slot: u64,
    rx: &Receiver<PlannerMsg>,
    stop: &AtomicBool,
) -> Result<Histogram, ServeError> {
    let started = Instant::now();
    let mut waits = Histogram::new();
    let mut pending: Vec<(JobSubmission, Instant, Sender<Response>)> = Vec::new();
    let mut epoch_deadline: Option<Instant> = None;
    let idle_tick = Duration::from_millis(200);

    loop {
        let timeout = match epoch_deadline {
            Some(d) => d.saturating_duration_since(Instant::now()),
            None => idle_tick,
        };
        match rx.recv_timeout(timeout) {
            Ok(PlannerMsg::Submit { sub, enqueued, reply }) => {
                if pending.is_empty() {
                    epoch_deadline = Some(enqueued + Duration::from_millis(config.epoch_ms));
                }
                pending.push((sub, enqueued, reply));
                if pending.len() >= config.epoch_max_batch {
                    close_epoch(&config, &mut state, base_slot, started, &mut pending, &mut waits)?;
                    epoch_deadline = None;
                }
            }
            Ok(PlannerMsg::Immediate { req, reply }) => {
                if matches!(req, Request::Shutdown { .. }) {
                    // Flush the pending epoch so no submitter is stranded,
                    // then snapshot and exit.
                    close_epoch(&config, &mut state, base_slot, started, &mut pending, &mut waits)?;
                    let slot = now_slot(base_slot, started, config.ms_per_slot);
                    let wants_snapshot = matches!(req, Request::Shutdown { snapshot: true });
                    let written = match (&config.snapshot_path, wants_snapshot) {
                        (Some(p), true) => snapshot::write(p, &state, slot).is_ok(),
                        _ => false,
                    };
                    let _ = reply.send(Response::ShuttingDown { snapshot_written: written });
                    stop.store(true, Ordering::SeqCst);
                    return Ok(waits);
                }
                let slot = now_slot(base_slot, started, config.ms_per_slot);
                let _ = reply.send(answer_immediate(&mut state, req, slot));
            }
            Err(RecvTimeoutError::Timeout) => {
                if epoch_deadline.is_some_and(|d| Instant::now() >= d) {
                    close_epoch(&config, &mut state, base_slot, started, &mut pending, &mut waits)?;
                    epoch_deadline = None;
                }
                if stop.load(Ordering::SeqCst) {
                    return Ok(waits);
                }
            }
            Err(RecvTimeoutError::Disconnected) => return Ok(waits),
        }
    }
}

/// Closes one planning epoch: admission + a single replan for every
/// pending submission, then replies to all of them.
fn close_epoch(
    config: &ServeConfig,
    state: &mut ServeState,
    base_slot: u64,
    started: Instant,
    pending: &mut Vec<(JobSubmission, Instant, Sender<Response>)>,
    waits: &mut Histogram,
) -> Result<(), ServeError> {
    if pending.is_empty() {
        return Ok(());
    }
    let batch = std::mem::take(pending);
    let slot = now_slot(base_slot, started, config.ms_per_slot);
    let subs = batch.iter().map(|(sub, _, _)| sub.clone()).collect();
    let verdicts = state.submit_epoch(subs, slot)?;
    let epoch = state.counters().epochs;
    for ((_, enqueued, reply), (decision, id)) in batch.iter().zip(verdicts) {
        let waited_us = enqueued.elapsed().as_micros() as u64;
        waits.record(waited_us);
        let _ = reply.send(Response::Submitted { job: id, decision, epoch, waited_us });
    }
    Ok(())
}

/// Answers a non-submit request against the state.
fn answer_immediate(state: &mut ServeState, req: Request, slot: u64) -> Response {
    match req {
        Request::ReportSample { job, runtime } => match state.report_sample(job, runtime) {
            Ok(_) => Response::Ack,
            Err(e) => Response::Error(e),
        },
        Request::QueryPlan { job } => match state.rows(slot, job) {
            Ok(rows) => Response::PlanTable {
                now_slot: slot,
                epoch: state.counters().epochs,
                rows,
            },
            Err(e) => Response::Error(e),
        },
        Request::Predict { job } => match state.predict(job, slot) {
            Ok((target, task_len, bound, planned_completion, impossible)) => {
                Response::Prediction { job, target, task_len, bound, planned_completion, impossible }
            }
            Err(e) => Response::Error(e),
        },
        Request::Cancel { job } => match state.cancel(job) {
            Ok(()) => Response::Ack,
            Err(e) => Response::Error(e),
        },
        Request::Stats => Response::Stats(state.stats(slot)),
        // Submit and Shutdown are routed before this function.
        Request::Submit(_) | Request::Shutdown { .. } => {
            Response::error(ErrorCode::Internal, "request routed to the wrong handler")
        }
    }
}

fn acceptor_loop(listener: &TcpListener, txs: &Arc<Vec<Sender<PlannerMsg>>>, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let txs = Arc::clone(txs);
                thread::spawn(move || connection_loop(stream, &txs));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            // Transient accept errors (e.g. a peer resetting mid-handshake)
            // must not kill the daemon.
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

// ----------------------------------------------------------------------
// Wire-id codec: `wire = local * shards + shard` (identity with one
// shard), so every wire id names its owner without a shared table.
// ----------------------------------------------------------------------

fn wire_shard(job: u64, shards: usize) -> usize {
    (job % shards as u64) as usize
}

fn wire_to_local(job: u64, shards: usize) -> u64 {
    job / shards as u64
}

fn local_to_wire(job: u64, shard: usize, shards: usize) -> u64 {
    job * shards as u64 + shard as u64
}

/// Rewrites the shard-local job ids of a planner reply to wire ids.
fn encode_response(mut resp: Response, shard: usize, shards: usize) -> Response {
    match &mut resp {
        Response::Submitted { job, .. } => {
            *job = job.map(|j| local_to_wire(j, shard, shards));
        }
        Response::PlanTable { rows, .. } => {
            for row in rows {
                row.job = local_to_wire(row.job, shard, shards);
            }
        }
        Response::Prediction { job, .. } => *job = local_to_wire(*job, shard, shards),
        // No job ids to rewrite; enumerated so a new carrying variant
        // fails to compile here instead of silently passing through.
        Response::Ack
        | Response::Stats(_)
        | Response::ShuttingDown { .. }
        | Response::Error(_) => {}
    }
    resp
}

/// Sends one request to one shard's planner and waits for the reply, with
/// wire-id translation on both legs.
fn ask_shard(
    txs: &[Sender<PlannerMsg>],
    shard: usize,
    make: impl FnOnce(Sender<Response>) -> PlannerMsg,
) -> Response {
    let (reply_tx, reply_rx) = mpsc::channel();
    let Some(tx) = txs.get(shard) else {
        return Response::error(ErrorCode::Internal, "shard index out of range");
    };
    if tx.send(make(reply_tx)).is_err() {
        return Response::error(ErrorCode::Shutdown, "daemon is shutting down");
    }
    match reply_rx.recv() {
        Ok(resp) => encode_response(resp, shard, txs.len()),
        Err(_) => Response::error(ErrorCode::Shutdown, "daemon is shutting down"),
    }
}

/// Broadcasts a cluster-wide request to every shard and merges the
/// replies: plan tables concatenate (ids translated per shard), stats sum
/// their counters, shutdown acknowledgments AND their snapshot flags. The
/// first error reply, if any, wins.
fn broadcast(txs: &[Sender<PlannerMsg>], req: &Request) -> Response {
    let shards = txs.len();
    let mut merged: Option<Response> = None;
    for shard in 0..shards {
        let resp = ask_shard(txs, shard, |reply| PlannerMsg::Immediate { req: req.clone(), reply });
        merged = Some(match (merged, resp) {
            (None, r) => r,
            (Some(e @ Response::Error(_)), _) => e,
            (Some(_), e @ Response::Error(_)) => e,
            (
                Some(Response::PlanTable { now_slot, epoch, mut rows }),
                Response::PlanTable { now_slot: ns, epoch: ep, rows: more },
            ) => {
                rows.extend(more);
                Response::PlanTable {
                    now_slot: now_slot.max(ns),
                    epoch: epoch + ep,
                    rows,
                }
            }
            (Some(Response::Stats(mut a)), Response::Stats(b)) => {
                a.active_jobs += b.active_jobs;
                a.deferred_jobs += b.deferred_jobs;
                a.epochs += b.epochs;
                a.admitted += b.admitted;
                a.deferred += b.deferred;
                a.rejected += b.rejected;
                a.cancelled += b.cancelled;
                a.completed += b.completed;
                a.samples += b.samples;
                a.cache_hits += b.cache_hits;
                a.cache_misses += b.cache_misses;
                a.now_slot = a.now_slot.max(b.now_slot);
                Response::Stats(a)
            }
            (
                Some(Response::ShuttingDown { snapshot_written }),
                Response::ShuttingDown { snapshot_written: w },
            ) => Response::ShuttingDown { snapshot_written: snapshot_written && w },
            // Mixed reply kinds (a shard racing shutdown): keep the first.
            (Some(first), _) => first,
        });
    }
    merged.unwrap_or_else(|| Response::error(ErrorCode::Internal, "no planner shards"))
}

/// Routes one decoded request to its shard(s).
fn route_request(txs: &[Sender<PlannerMsg>], req: Request) -> Response {
    let shards = txs.len();
    match req {
        Request::Submit(sub) => {
            let shard = rush_planner::shard_of_label(&sub.label, shards);
            ask_shard(txs, shard, |reply| PlannerMsg::Submit {
                sub,
                enqueued: Instant::now(),
                reply,
            })
        }
        Request::ReportSample { job, runtime } => {
            let shard = wire_shard(job, shards);
            let req = Request::ReportSample { job: wire_to_local(job, shards), runtime };
            ask_shard(txs, shard, |reply| PlannerMsg::Immediate { req, reply })
        }
        Request::QueryPlan { job: Some(job) } => {
            let shard = wire_shard(job, shards);
            let req = Request::QueryPlan { job: Some(wire_to_local(job, shards)) };
            ask_shard(txs, shard, |reply| PlannerMsg::Immediate { req, reply })
        }
        Request::Predict { job } => {
            let shard = wire_shard(job, shards);
            let req = Request::Predict { job: wire_to_local(job, shards) };
            ask_shard(txs, shard, |reply| PlannerMsg::Immediate { req, reply })
        }
        Request::Cancel { job } => {
            let shard = wire_shard(job, shards);
            let req = Request::Cancel { job: wire_to_local(job, shards) };
            ask_shard(txs, shard, |reply| PlannerMsg::Immediate { req, reply })
        }
        Request::QueryPlan { job: None } | Request::Stats | Request::Shutdown { .. } => {
            broadcast(txs, &req)
        }
    }
}

/// One connection: read request lines, route to the planner shard(s),
/// write response lines. Malformed frames get structured error responses
/// and the connection stays open.
fn connection_loop(stream: TcpStream, txs: &[Sender<PlannerMsg>]) {
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = write_half;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::decode(&line) {
            Err(e) => Response::Error(e),
            Ok(req) => route_request(txs, req),
        };
        let done = matches!(response, Response::ShuttingDown { .. });
        if writer.write_all((response.encode() + "\n").as_bytes()).is_err() {
            return;
        }
        if writer.flush().is_err() || done {
            return;
        }
    }
}

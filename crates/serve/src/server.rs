//! The `rushd` TCP daemon.
//!
//! Concurrency model: connection frontends feeding **one planner thread per
//! shard** over `mpsc` channels. Frontend code only parses and frames — all
//! scheduling state lives on the planner threads, so there are no locks
//! around scheduler state anywhere in the daemon. Two frontends share the
//! routing layer:
//!
//! * [`Frontend::Threads`] — one blocking worker thread per connection (the
//!   original model, kept as the differential oracle);
//! * [`Frontend::Reactor`] — N nonblocking epoll event loops multiplexing
//!   thousands of connections each (see [`crate::reactor_frontend`]).
//!
//! Both frontends speak both codecs, sniffed from the first byte of a
//! connection: `R` opens the [`crate::binary`] `RUSH1` handshake, anything
//! else is treated as newline-delimited JSON.
//!
//! **Epoch batching.** `submit` requests are not planned individually: the
//! planner collects them until either `epoch_max_batch` submissions are
//! pending or the oldest has waited `epoch_ms` milliseconds, then closes
//! the epoch — one admission sweep plus **one** kernel replan for the
//! whole batch (the delta path patches the previous onion layering and
//! mapping, so the unchanged residents are nearly free). Every waiting
//! client then receives its verdict, stamped with the microseconds it
//! waited; the planner records that wait in a
//! [`rush_metrics::Histogram`] surfaced through the load generator.
//! Non-submit requests never wait for an epoch. The epoch deadline is
//! enforced after **every** planner-channel turn (not only when the
//! channel goes idle), and the reactor frontend additionally fires
//! [`PlannerMsg::EpochTick`] from its timer wheel so deadlines hold even
//! with zero connection activity.
//!
//! **Time.** The daemon quantizes its wall clock into logical slots:
//! `now_slot = base_slot + elapsed_ms / ms_per_slot`. Plans are a pure
//! function of (state, slot), which is what makes the snapshot/restore
//! guarantee testable: a daemon restored from a snapshot starts its clock
//! at the snapshot's slot.
//!
//! **Shards.** With [`ServeConfig::shards`] `> 1` the daemon runs one
//! planner thread per shard, each owning an independent [`ServeState`]
//! over a slice of the capacity. Frontends route submissions by label hash
//! ([`rush_planner::shard_of_label`] — same-label jobs share a shard, so
//! cold-start pools and epoch batching stay effective) and per-job
//! requests by wire id. Wire ids encode the owner:
//! `wire = local * shards + shard`, which is the identity when
//! `shards == 1`, so the single-shard daemon is bit-identical to the
//! pre-sharding one. Cluster-wide requests (full plan table, stats,
//! shutdown) are broadcast and merged in shard order.

use crate::binary::{self, Scan};
use crate::protocol::{ErrorCode, JobSubmission, Request, Response, WireError};
use crate::snapshot;
use crate::state::ServeState;
use crate::ServeError;
use rush_core::cluster::ClusterModel;
use rush_core::RushConfig;
use rush_metrics::Histogram;
use std::collections::VecDeque;
use std::fmt;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Which connection frontend the daemon runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frontend {
    /// One blocking worker thread per connection. Simple, and the
    /// differential oracle for the reactor: both must produce identical
    /// planner state from identical request streams.
    Threads,
    /// [`ServeConfig::reactors`] nonblocking epoll event loops, each
    /// multiplexing its share of the connections (see
    /// [`crate::reactor_frontend`]).
    Reactor,
}

impl std::str::FromStr for Frontend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "threads" => Ok(Frontend::Threads),
            "reactor" => Ok(Frontend::Reactor),
            other => Err(format!("unknown frontend {other:?} (expected `threads` or `reactor`)")),
        }
    }
}

impl fmt::Display for Frontend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Frontend::Threads => "threads",
            Frontend::Reactor => "reactor",
        })
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:0` (0 = ephemeral port).
    pub addr: String,
    /// Cluster capacity in containers.
    pub capacity: u32,
    /// Close an epoch once this many submissions are pending.
    pub epoch_max_batch: usize,
    /// Close an epoch once the oldest pending submission has waited this
    /// many milliseconds.
    pub epoch_ms: u64,
    /// Wall-clock milliseconds per logical slot.
    pub ms_per_slot: u64,
    /// Snapshot file: written on graceful shutdown, restored on startup
    /// when present. With more than one shard, shard `i` uses the path
    /// suffixed `.shard<i>`.
    pub snapshot_path: Option<PathBuf>,
    /// Planner shards (threads). `1` (the default) is bit-identical to
    /// the pre-sharding daemon; more shards split the capacity and plan
    /// label-hash partitions of the jobs independently.
    pub shards: usize,
    /// Connection frontend: blocking thread-per-connection workers or
    /// nonblocking epoll reactors.
    pub frontend: Frontend,
    /// Reactor event-loop threads (reactor frontend only). Each accepts
    /// from the shared listener and owns the connections it accepted.
    pub reactors: usize,
    /// Reactor backpressure: per-connection cap on requests handed to the
    /// planner whose responses have not yet been serialized. A connection
    /// at the cap stops being read until replies drain.
    pub max_inflight: usize,
    /// Reactor backpressure: hard cap in bytes on a connection's pending
    /// write buffer. A peer that lets us buffer more than this is evicted.
    pub max_write_buffer: usize,
    /// Reactor backpressure: a connection whose write buffer has stayed
    /// non-empty this many milliseconds is a slow reader and is evicted.
    pub slow_reader_ms: u64,
    /// The scheduling pipeline's parameters.
    pub rush: RushConfig,
    /// An optional typed model of the container supply. When set, the
    /// daemon runs revocation-aware admission: a time-sensitive job that
    /// fails Theorem 2 at the current (revocation-depressed) capacity is
    /// parked as `awaiting-restock` when the model predicts the deficit
    /// heals inside the job's deadline. Requires `shards == 1` (a shard's
    /// capacity slice cannot observe the cluster-wide deficit) and a
    /// provisioned total equal to `capacity`.
    pub cluster: Option<ClusterModel>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            capacity: 16,
            epoch_max_batch: 32,
            epoch_ms: 25,
            ms_per_slot: 1000,
            snapshot_path: None,
            shards: 1,
            frontend: Frontend::Threads,
            reactors: 1,
            max_inflight: 64,
            max_write_buffer: 4 * 1024 * 1024,
            slow_reader_ms: 10_000,
            rush: RushConfig::default(),
            cluster: None,
        }
    }
}

/// One planner reply headed back to a reactor connection.
pub(crate) struct Completion {
    /// Token of the connection that issued the request.
    pub(crate) conn: u64,
    /// Per-connection sequence number of the request (responses are
    /// emitted in sequence order, so pipelined requests stay ordered).
    pub(crate) seq: u64,
    /// Shard that produced the reply (for wire-id translation and for
    /// slotting broadcast parts).
    pub(crate) shard: usize,
    /// The reply itself, still carrying shard-local job ids.
    pub(crate) resp: Response,
}

/// The reactor half of [`ReplySink`]: planner threads push completions
/// onto the owning reactor's queue and wake its event loop.
#[derive(Clone)]
pub(crate) struct ReactorSink {
    pub(crate) queue: Arc<Mutex<VecDeque<Completion>>>,
    pub(crate) waker: Arc<rush_reactor::Waker>,
    pub(crate) conn: u64,
    pub(crate) seq: u64,
    pub(crate) shard: usize,
}

/// Where a planner reply goes: the thread frontend blocks a worker on an
/// mpsc channel; the reactor frontend enqueues a completion and wakes the
/// owning event loop. Either way `send` never blocks the planner.
pub(crate) enum ReplySink {
    /// Thread frontend: a connection worker blocked on the channel.
    Channel(Sender<Response>),
    /// Reactor frontend: completion queue plus the loop's waker.
    Reactor(ReactorSink),
}

impl ReplySink {
    /// Delivers one response. Delivery failures (a vanished peer) are
    /// dropped — the planner does not care whether anyone is listening.
    pub(crate) fn send(self, resp: Response) {
        match self {
            ReplySink::Channel(tx) => {
                let _ = tx.send(resp);
            }
            ReplySink::Reactor(sink) => {
                let completion = Completion {
                    conn: sink.conn,
                    seq: sink.seq,
                    shard: sink.shard,
                    resp,
                };
                if let Ok(mut queue) = sink.queue.lock() {
                    queue.push_back(completion);
                }
                // The guard dropped above, before the eventfd write:
                // never hold a lock across I/O, even a nonblocking one. A
                // failed wake is survivable — the reactor also drains its
                // completion queue on every loop turn.
                let _ = sink.waker.wake();
            }
        }
    }
}

/// What frontends send the planner.
pub(crate) enum PlannerMsg {
    /// A submission waiting for its epoch.
    Submit {
        /// The submission.
        sub: JobSubmission,
        /// When the frontend enqueued it (starts the epoch clock).
        enqueued: Instant,
        /// Where the verdict goes.
        reply: ReplySink,
    },
    /// Anything else — answered immediately.
    Immediate {
        /// The request, with job ids already shard-localized.
        req: Request,
        /// Where the answer goes.
        reply: ReplySink,
    },
    /// A frontend timer tick: close the epoch if its deadline has passed.
    /// The reactor fires one per shard every `epoch_ms` from its timer
    /// wheel so deadlines hold even with zero connection activity; the
    /// planner also enforces deadlines itself after every channel turn.
    EpochTick,
}

/// A running daemon. Dropping the handle does *not* stop the daemon; send
/// a `shutdown` request (or use [`crate::Client::shutdown`]) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    planners: Vec<thread::JoinHandle<Result<Histogram, ServeError>>>,
    frontend: Vec<thread::JoinHandle<()>>,
    wakers: Vec<Arc<rush_reactor::Waker>>,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the daemon to finish (it finishes when a client sends
    /// `shutdown`). Returns the submit-wait histogram (µs), merged across
    /// planner shards.
    ///
    /// # Errors
    ///
    /// [`ServeError`] when a planner exited on an internal error or a
    /// daemon thread panicked.
    pub fn join(self) -> Result<Histogram, ServeError> {
        let mut merged = Histogram::new();
        let mut first_err = None;
        for p in self.planners {
            match p.join() {
                Ok(Ok(hist)) => merged.merge(&hist),
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => {
                    first_err = first_err
                        .or_else(|| Some(ServeError::Config("planner thread panicked".into())));
                }
            }
        }
        // The planners exit first and flip the stop flag; the thread
        // acceptor notices within one poll interval, the reactors on the
        // wake below.
        self.stop.store(true, Ordering::SeqCst);
        for waker in &self.wakers {
            let _ = waker.wake();
        }
        let mut frontend_panic = false;
        for t in self.frontend {
            frontend_panic |= t.join().is_err();
        }
        if frontend_panic {
            first_err =
                first_err.or_else(|| Some(ServeError::Config("frontend thread panicked".into())));
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(merged),
        }
    }
}

/// Shard `i`'s snapshot file: the configured path itself for a
/// single-shard daemon, the path suffixed `.shard<i>` otherwise.
fn shard_snapshot_path(base: Option<&PathBuf>, shard: usize, shards: usize) -> Option<PathBuf> {
    base.map(|p| {
        if shards == 1 {
            p.clone()
        } else {
            let mut os = p.clone().into_os_string();
            os.push(format!(".shard{shard}"));
            PathBuf::from(os)
        }
    })
}

/// An even split of `total` into `shards` slices (first slices take the
/// remainder), mirroring the planner's slice initialization.
fn split_capacity(total: u32, shards: usize) -> Vec<u32> {
    let n = shards as u32;
    let base = total / n;
    let extra = total % n;
    (0..n).map(|i| base + u32::from(i < extra)).collect()
}

/// Starts the daemon: binds `config.addr`, restores the snapshot(s) if
/// present, and spawns one planner thread per shard plus the configured
/// frontend (a thread acceptor or N epoll reactors).
///
/// # Errors
///
/// [`ServeError::Io`] when the bind fails, [`ServeError::Snapshot`] when a
/// present snapshot is malformed or mismatched, [`ServeError::Planner`] /
/// [`ServeError::Config`] for invalid configuration.
pub fn serve(config: ServeConfig) -> Result<ServerHandle, ServeError> {
    if config.epoch_max_batch == 0 {
        return Err(ServeError::Config("epoch_max_batch must be >= 1".into()));
    }
    if config.ms_per_slot == 0 {
        return Err(ServeError::Config("ms_per_slot must be >= 1".into()));
    }
    if config.shards == 0 {
        return Err(ServeError::Config("shards must be >= 1".into()));
    }
    if config.reactors == 0 {
        return Err(ServeError::Config("reactors must be >= 1".into()));
    }
    if config.max_inflight == 0 {
        return Err(ServeError::Config("max_inflight must be >= 1".into()));
    }
    if config.capacity < config.shards as u32 {
        return Err(ServeError::Config(format!(
            "capacity {} cannot be split across {} planner shards",
            config.capacity, config.shards
        )));
    }
    if let Some(model) = &config.cluster {
        if config.shards != 1 {
            return Err(ServeError::Config(
                "a cluster model requires a single planner shard: a shard's capacity \
                 slice cannot observe the cluster-wide deficit"
                    .into(),
            ));
        }
        model.validate().map_err(|e| ServeError::Config(format!("cluster model: {e}")))?;
        // `capacity > total` (serving more than is provisioned) is
        // rejected per shard by `with_cluster_model`; `capacity < total`
        // is legitimate — a daemon restarted mid-outage.
    }

    let slices = split_capacity(config.capacity, config.shards);
    let mut shard_states = Vec::with_capacity(config.shards);
    for (i, &slice) in slices.iter().enumerate() {
        let path = shard_snapshot_path(config.snapshot_path.as_ref(), i, config.shards);
        let (state, base_slot) = match &path {
            Some(p) if p.exists() => snapshot::read(p, config.rush, slice)?,
            _ => (ServeState::new(config.rush, slice)?, 0),
        };
        // The operator's model wins over a snapshot-restored one: the
        // snapshot records what was attached at write time, the config
        // says what is provisioned now.
        let state = match &config.cluster {
            Some(model) => state.with_cluster_model(model.clone())?,
            None => state,
        };
        shard_states.push((state, base_slot, path, slice));
    }

    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let stop = Arc::new(AtomicBool::new(false));
    let mut planners = Vec::with_capacity(config.shards);
    let mut txs = Vec::with_capacity(config.shards);
    for (state, base_slot, path, slice) in shard_states {
        let (tx, rx) = mpsc::channel::<PlannerMsg>();
        let shard = txs.len();
        txs.push(tx);
        let stop = Arc::clone(&stop);
        // Each planner sees a shard-local view of the config: its slice
        // of the capacity and its own snapshot file.
        let shard_config =
            ServeConfig { capacity: slice, snapshot_path: path, ..config.clone() };
        planners.push(thread::spawn(move || {
            planner_loop(shard_config, shard, state, base_slot, &rx, &stop)
        }));
    }

    let (frontend, wakers) = match config.frontend {
        Frontend::Threads => {
            let stop = Arc::clone(&stop);
            let txs = Arc::new(txs);
            let acceptor = thread::spawn(move || acceptor_loop(&listener, &txs, &stop));
            (vec![acceptor], Vec::new())
        }
        Frontend::Reactor => {
            crate::reactor_frontend::spawn(listener, txs, &config, Arc::clone(&stop))?
        }
    };

    Ok(ServerHandle { addr, planners, frontend, wakers, stop })
}

/// The logical slot clock.
fn now_slot(base_slot: u64, started: Instant, ms_per_slot: u64) -> u64 {
    base_slot + started.elapsed().as_millis() as u64 / ms_per_slot
}

#[allow(clippy::needless_pass_by_value)]
fn planner_loop(
    config: ServeConfig,
    shard: usize,
    mut state: ServeState,
    base_slot: u64,
    rx: &Receiver<PlannerMsg>,
    stop: &AtomicBool,
) -> Result<Histogram, ServeError> {
    let started = Instant::now();
    let mut waits = Histogram::new();
    let mut pending: Vec<(JobSubmission, Instant, ReplySink)> = Vec::new();
    let mut epoch_deadline: Option<Instant> = None;
    let idle_tick = Duration::from_millis(200);

    loop {
        let timeout = match epoch_deadline {
            Some(d) => d.saturating_duration_since(Instant::now()),
            None => idle_tick,
        };
        match rx.recv_timeout(timeout) {
            Ok(PlannerMsg::Submit { sub, enqueued, reply }) => {
                if pending.is_empty() {
                    epoch_deadline = Some(enqueued + Duration::from_millis(config.epoch_ms));
                }
                pending.push((sub, enqueued, reply));
                if pending.len() >= config.epoch_max_batch {
                    close_epoch(&config, &mut state, base_slot, started, &mut pending, &mut waits)?;
                    epoch_deadline = None;
                }
            }
            Ok(PlannerMsg::Immediate { req, reply }) => {
                if matches!(req, Request::Shutdown { .. }) {
                    // Flush the pending epoch so no submitter is stranded,
                    // then snapshot and exit.
                    close_epoch(&config, &mut state, base_slot, started, &mut pending, &mut waits)?;
                    let slot = now_slot(base_slot, started, config.ms_per_slot);
                    let wants_snapshot = matches!(req, Request::Shutdown { snapshot: true });
                    let written = match (&config.snapshot_path, wants_snapshot) {
                        (Some(p), true) => snapshot::write(p, &state, slot).is_ok(),
                        _ => false,
                    };
                    reply.send(Response::ShuttingDown { snapshot_written: written });
                    stop.store(true, Ordering::SeqCst);
                    return Ok(waits);
                }
                let slot = now_slot(base_slot, started, config.ms_per_slot);
                reply.send(answer_immediate(&mut state, req, slot, shard, config.shards));
            }
            // The tick itself carries no work; the deadline check below
            // (which runs on every turn) does the closing.
            Ok(PlannerMsg::EpochTick) => {}
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    return Ok(waits);
                }
            }
            Err(RecvTimeoutError::Disconnected) => return Ok(waits),
        }
        // Enforce the epoch deadline after *every* turn, not only when
        // the channel goes idle: a steady stream of immediate requests
        // used to starve a pending batch indefinitely because the
        // deadline was consulted only on the `recv_timeout` Timeout arm.
        if epoch_deadline.is_some_and(|d| Instant::now() >= d) {
            close_epoch(&config, &mut state, base_slot, started, &mut pending, &mut waits)?;
            epoch_deadline = None;
        }
    }
}

/// Closes one planning epoch: admission + a single replan for every
/// pending submission, then replies to all of them.
fn close_epoch(
    config: &ServeConfig,
    state: &mut ServeState,
    base_slot: u64,
    started: Instant,
    pending: &mut Vec<(JobSubmission, Instant, ReplySink)>,
    waits: &mut Histogram,
) -> Result<(), ServeError> {
    if pending.is_empty() {
        return Ok(());
    }
    let batch = std::mem::take(pending);
    let slot = now_slot(base_slot, started, config.ms_per_slot);
    let subs = batch.iter().map(|(sub, _, _)| sub.clone()).collect();
    let verdicts = state.submit_epoch(subs, slot)?;
    let epoch = state.counters().epochs;
    for ((_, enqueued, reply), v) in batch.into_iter().zip(verdicts) {
        let waited_us = enqueued.elapsed().as_micros() as u64;
        waits.record(waited_us);
        reply.send(Response::Submitted {
            job: v.job,
            decision: v.decision,
            epoch,
            waited_us,
            defer_reason: v.defer_reason,
        });
    }
    Ok(())
}

/// Answers a non-submit request against the state. `shard` / `shards`
/// locate this planner inside the daemon so a broadcast `set-capacity`
/// can compute its own slice of the new total.
fn answer_immediate(
    state: &mut ServeState,
    req: Request,
    slot: u64,
    shard: usize,
    shards: usize,
) -> Response {
    match req {
        Request::ReportSample { job, runtime } => match state.report_sample(job, runtime) {
            Ok(_) => Response::Ack,
            Err(e) => Response::Error(e),
        },
        Request::QueryPlan { job } => match state.rows(slot, job) {
            Ok(rows) => Response::PlanTable {
                now_slot: slot,
                epoch: state.counters().epochs,
                rows,
            },
            Err(e) => Response::Error(e),
        },
        Request::Predict { job } => match state.predict(job, slot) {
            Ok((target, task_len, bound, planned_completion, impossible)) => {
                Response::Prediction { job, target, task_len, bound, planned_completion, impossible }
            }
            Err(e) => Response::Error(e),
        },
        Request::Cancel { job } => match state.cancel(job) {
            Ok(()) => Response::Ack,
            Err(e) => Response::Error(e),
        },
        Request::Stats => Response::Stats(state.stats(slot)),
        Request::SetCapacity { capacity } => {
            // Validated identically on every shard *before* any state
            // changes: a broadcast is not atomic, so a capacity that only
            // some shards could absorb must be refused by all of them.
            if capacity < shards as u32 {
                return Response::Error(WireError {
                    code: ErrorCode::BadField,
                    message: format!(
                        "capacity: {capacity} cannot be split across {shards} planner shards"
                    ),
                });
            }
            // `split_capacity` returns exactly `shards` slices; a missing
            // one would be an internal routing bug, not a client error.
            let Some(&slice) = split_capacity(capacity, shards).get(shard) else {
                return Response::error(ErrorCode::Internal, "shard index out of range");
            };
            // rush-lint: allow(RUSH-L014): sanctioned wire adapter — ServeState lowers onto PlannerEvent::CapacityChange
            match state.set_capacity(slice) {
                // Each shard reports its slice; the broadcast merge sums
                // them back to the cluster-wide total.
                Ok(()) => Response::CapacitySet { capacity: slice },
                Err(e) => Response::Error(e),
            }
        }
        // Submit and Shutdown are routed before this function.
        Request::Submit(_) | Request::Shutdown { .. } => {
            Response::error(ErrorCode::Internal, "request routed to the wrong handler")
        }
    }
}

fn acceptor_loop(listener: &TcpListener, txs: &Arc<Vec<Sender<PlannerMsg>>>, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let txs = Arc::clone(txs);
                thread::spawn(move || connection_loop(stream, &txs));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            // Transient accept errors (e.g. a peer resetting mid-handshake)
            // must not kill the daemon.
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

// ----------------------------------------------------------------------
// Wire-id codec: `wire = local * shards + shard` (identity with one
// shard), so every wire id names its owner without a shared table.
// ----------------------------------------------------------------------

fn wire_shard(job: u64, shards: usize) -> usize {
    (job % shards as u64) as usize
}

fn wire_to_local(job: u64, shards: usize) -> u64 {
    job / shards as u64
}

fn local_to_wire(job: u64, shard: usize, shards: usize) -> u64 {
    job * shards as u64 + shard as u64
}

/// Rewrites the shard-local job ids of a planner reply to wire ids.
pub(crate) fn encode_response(mut resp: Response, shard: usize, shards: usize) -> Response {
    match &mut resp {
        Response::Submitted { job, .. } => {
            *job = job.map(|j| local_to_wire(j, shard, shards));
        }
        Response::PlanTable { rows, .. } => {
            for row in rows {
                row.job = local_to_wire(row.job, shard, shards);
            }
        }
        Response::Prediction { job, .. } => *job = local_to_wire(*job, shard, shards),
        // No job ids to rewrite; enumerated so a new carrying variant
        // fails to compile here instead of silently passing through.
        Response::Ack
        | Response::Stats(_)
        | Response::CapacitySet { .. }
        | Response::ShuttingDown { .. }
        | Response::Error(_) => {}
    }
    resp
}

/// Where one decoded request goes, with wire job ids already rewritten to
/// shard-local ids. Shared by both frontends so routing semantics cannot
/// drift between them.
pub(crate) enum Routed {
    /// An epoch-batched submission for one shard.
    Submit {
        /// Label-hash shard that owns the submission.
        shard: usize,
        /// The submission itself.
        sub: JobSubmission,
    },
    /// An immediately-answered request for one shard.
    Single {
        /// The wire id's owner shard.
        shard: usize,
        /// The request, with job ids localized.
        req: Request,
    },
    /// A cluster-wide request: ask every shard, merge in shard order.
    Broadcast {
        /// The request, forwarded verbatim to each shard.
        req: Request,
    },
}

/// Routes one decoded request: picks the owning shard(s) and localizes
/// wire job ids.
pub(crate) fn route(req: Request, shards: usize) -> Routed {
    match req {
        Request::Submit(sub) => {
            Routed::Submit { shard: rush_planner::shard_of_label(&sub.label, shards), sub }
        }
        Request::ReportSample { job, runtime } => Routed::Single {
            shard: wire_shard(job, shards),
            req: Request::ReportSample { job: wire_to_local(job, shards), runtime },
        },
        Request::QueryPlan { job: Some(job) } => Routed::Single {
            shard: wire_shard(job, shards),
            req: Request::QueryPlan { job: Some(wire_to_local(job, shards)) },
        },
        Request::Predict { job } => Routed::Single {
            shard: wire_shard(job, shards),
            req: Request::Predict { job: wire_to_local(job, shards) },
        },
        Request::Cancel { job } => Routed::Single {
            shard: wire_shard(job, shards),
            req: Request::Cancel { job: wire_to_local(job, shards) },
        },
        Request::QueryPlan { job: None }
        | Request::Stats
        | Request::SetCapacity { .. }
        | Request::Shutdown { .. } => Routed::Broadcast { req },
    }
}

/// Sends one request to one shard's planner and waits for the reply, with
/// wire-id translation on both legs.
fn ask_shard(
    txs: &[Sender<PlannerMsg>],
    shard: usize,
    make: impl FnOnce(ReplySink) -> PlannerMsg,
) -> Response {
    let (reply_tx, reply_rx) = mpsc::channel();
    let Some(tx) = txs.get(shard) else {
        return Response::error(ErrorCode::Internal, "shard index out of range");
    };
    if tx.send(make(ReplySink::Channel(reply_tx))).is_err() {
        return Response::error(ErrorCode::Shutdown, "daemon is shutting down");
    }
    match reply_rx.recv() {
        Ok(resp) => encode_response(resp, shard, txs.len()),
        Err(_) => Response::error(ErrorCode::Shutdown, "daemon is shutting down"),
    }
}

/// Folds one shard's reply into the running broadcast merge: plan tables
/// concatenate (ids already translated per shard), stats sum their
/// counters, shutdown acknowledgments AND their snapshot flags. The first
/// error reply wins — callers must fold in shard order so "first" is
/// deterministic across frontends.
pub(crate) fn merge_pair(merged: Option<Response>, resp: Response) -> Response {
    match (merged, resp) {
        (None, r) => r,
        (Some(e @ Response::Error(_)), _) => e,
        (Some(_), e @ Response::Error(_)) => e,
        (
            Some(Response::PlanTable { now_slot, epoch, mut rows }),
            Response::PlanTable { now_slot: ns, epoch: ep, rows: more },
        ) => {
            rows.extend(more);
            Response::PlanTable {
                now_slot: now_slot.max(ns),
                epoch: epoch + ep,
                rows,
            }
        }
        (Some(Response::Stats(mut a)), Response::Stats(b)) => {
            a.active_jobs += b.active_jobs;
            a.deferred_jobs += b.deferred_jobs;
            a.epochs += b.epochs;
            a.admitted += b.admitted;
            a.deferred += b.deferred;
            a.rejected += b.rejected;
            a.cancelled += b.cancelled;
            a.completed += b.completed;
            a.samples += b.samples;
            a.cache_hits += b.cache_hits;
            a.cache_misses += b.cache_misses;
            a.now_slot = a.now_slot.max(b.now_slot);
            Response::Stats(a)
        }
        // Each shard resized its slice; the cluster-wide total is the sum.
        (Some(Response::CapacitySet { capacity }), Response::CapacitySet { capacity: c }) => {
            Response::CapacitySet { capacity: capacity + c }
        }
        (
            Some(Response::ShuttingDown { snapshot_written }),
            Response::ShuttingDown { snapshot_written: w },
        ) => Response::ShuttingDown { snapshot_written: snapshot_written && w },
        // Mixed reply kinds (a shard racing shutdown): keep the first.
        (Some(first), _) => first,
    }
}

/// Broadcasts a cluster-wide request to every shard and merges the
/// replies in shard order (see [`merge_pair`]).
fn broadcast(txs: &[Sender<PlannerMsg>], req: &Request) -> Response {
    let shards = txs.len();
    let mut merged: Option<Response> = None;
    for shard in 0..shards {
        let resp = ask_shard(txs, shard, |reply| PlannerMsg::Immediate { req: req.clone(), reply });
        merged = Some(merge_pair(merged, resp));
    }
    merged.unwrap_or_else(|| Response::error(ErrorCode::Internal, "no planner shards"))
}

/// Routes one decoded request to its shard(s), blocking until the reply.
fn route_request(txs: &[Sender<PlannerMsg>], req: Request) -> Response {
    match route(req, txs.len()) {
        Routed::Submit { shard, sub } => ask_shard(txs, shard, |reply| PlannerMsg::Submit {
            sub,
            enqueued: Instant::now(),
            reply,
        }),
        Routed::Single { shard, req } => {
            ask_shard(txs, shard, |reply| PlannerMsg::Immediate { req, reply })
        }
        Routed::Broadcast { req } => broadcast(txs, &req),
    }
}

/// One thread-frontend connection. The first byte picks the codec: `R`
/// opens the binary `RUSH1` handshake, anything else is newline JSON.
fn connection_loop(stream: TcpStream, txs: &[Sender<PlannerMsg>]) {
    let mut reader = BufReader::new(stream);
    let first = loop {
        match reader.fill_buf() {
            Ok([]) => return,
            // bound: the Ok([]) arm above means buf is non-empty here
            Ok(buf) => break buf[0],
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    };
    // bound: MAGIC is a non-empty const (b"RUSH1")
    if first == binary::MAGIC[0] {
        binary_connection_loop(reader, txs);
    } else {
        json_connection_loop(reader, txs);
    }
}

/// Newline-delimited JSON: read request lines, route, write response
/// lines. Malformed frames get structured error responses and the
/// connection stays open.
fn json_connection_loop(reader: BufReader<TcpStream>, txs: &[Sender<PlannerMsg>]) {
    let Ok(mut writer) = reader.get_ref().try_clone() else { return };
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::decode(&line) {
            Err(e) => Response::Error(e),
            Ok(req) => route_request(txs, req),
        };
        let done = matches!(response, Response::ShuttingDown { .. });
        if writer.write_all((response.encode() + "\n").as_bytes()).is_err() {
            return;
        }
        if writer.flush().is_err() || done {
            return;
        }
    }
}

/// Appends the reader's next chunk to `buf`. Returns `false` on EOF or a
/// connection error.
fn fill(reader: &mut BufReader<TcpStream>, buf: &mut Vec<u8>) -> bool {
    match reader.fill_buf() {
        Ok([]) => false,
        Ok(chunk) => {
            let n = chunk.len();
            buf.extend_from_slice(chunk);
            reader.consume(n);
            true
        }
        Err(e) if e.kind() == ErrorKind::Interrupted => true,
        Err(_) => false,
    }
}

/// Length-prefixed binary: version handshake, then framed requests in and
/// framed responses out. Payload decode errors get structured error
/// responses (the connection survives); framing errors are fatal — the
/// error is reported and the connection closed, because a broken length
/// prefix leaves no resynchronization point.
fn binary_connection_loop(mut reader: BufReader<TcpStream>, txs: &[Sender<PlannerMsg>]) {
    let Ok(mut writer) = reader.get_ref().try_clone() else { return };
    let mut buf: Vec<u8> = Vec::new();
    let client_max = loop {
        match binary::scan_hello(&buf) {
            Ok(Scan::Done { item, consumed }) => {
                buf.drain(..consumed);
                break item;
            }
            Ok(Scan::Incomplete) => {
                if !fill(&mut reader, &mut buf) {
                    return;
                }
            }
            // A corrupt hello (bad magic) has no framing to reply within.
            Err(_) => return,
        }
    };
    let agreed = binary::negotiate(client_max);
    if writer.write_all(&binary::hello(agreed)).is_err() || writer.flush().is_err() {
        return;
    }
    if agreed == 0 {
        return; // no common protocol version
    }
    loop {
        match binary::scan_frame(&buf) {
            Ok(Scan::Done { item, consumed }) => {
                let response = match binary::decode_request(buf.get(item).unwrap_or(&[])) {
                    Err(e) => Response::Error(e),
                    Ok(req) => route_request(txs, req),
                };
                buf.drain(..consumed);
                let done = matches!(response, Response::ShuttingDown { .. });
                if writer.write_all(&binary::frame_response(&response)).is_err()
                    || writer.flush().is_err()
                    || done
                {
                    return;
                }
            }
            Ok(Scan::Incomplete) => {
                if !fill(&mut reader, &mut buf) {
                    return;
                }
            }
            Err(e) => {
                let _ = writer.write_all(&binary::frame_response(&Response::Error(e)));
                let _ = writer.flush();
                return;
            }
        }
    }
}

//! The `rushd` TCP daemon.
//!
//! Concurrency model: **thread-per-connection workers feeding a single
//! planner thread** over an `mpsc` channel. Connection workers only parse
//! and frame — all scheduling state lives on the planner thread, so there
//! are no locks anywhere in the daemon.
//!
//! **Epoch batching.** `submit` requests are not planned individually: the
//! planner collects them until either `epoch_max_batch` submissions are
//! pending or the oldest has waited `epoch_ms` milliseconds, then closes
//! the epoch — one admission sweep plus **one** kernel replan for the
//! whole batch (the delta path patches the previous onion layering and
//! mapping, so the unchanged residents are nearly free). Every waiting
//! client then receives its verdict, stamped with the microseconds it
//! waited; the planner records that wait in a
//! [`rush_metrics::Histogram`] surfaced through the load generator.
//! Non-submit requests never wait for an epoch.
//!
//! **Time.** The daemon quantizes its wall clock into logical slots:
//! `now_slot = base_slot + elapsed_ms / ms_per_slot`. Plans are a pure
//! function of (state, slot), which is what makes the snapshot/restore
//! guarantee testable: a daemon restored from a snapshot starts its clock
//! at the snapshot's slot.

use crate::protocol::{ErrorCode, Request, Response};
use crate::snapshot;
use crate::state::ServeState;
use crate::ServeError;
use rush_core::RushConfig;
use rush_metrics::Histogram;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:0` (0 = ephemeral port).
    pub addr: String,
    /// Cluster capacity in containers.
    pub capacity: u32,
    /// Close an epoch once this many submissions are pending.
    pub epoch_max_batch: usize,
    /// Close an epoch once the oldest pending submission has waited this
    /// many milliseconds.
    pub epoch_ms: u64,
    /// Wall-clock milliseconds per logical slot.
    pub ms_per_slot: u64,
    /// Snapshot file: written on graceful shutdown, restored on startup
    /// when present.
    pub snapshot_path: Option<PathBuf>,
    /// The scheduling pipeline's parameters.
    pub rush: RushConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            capacity: 16,
            epoch_max_batch: 32,
            epoch_ms: 25,
            ms_per_slot: 1000,
            snapshot_path: None,
            rush: RushConfig::default(),
        }
    }
}

/// What connection workers send the planner.
enum PlannerMsg {
    /// A submission waiting for its epoch.
    Submit { req: Request, enqueued: Instant, reply: Sender<Response> },
    /// Anything else — answered immediately.
    Immediate { req: Request, reply: Sender<Response> },
}

/// A running daemon. Dropping the handle does *not* stop the daemon; send
/// a `shutdown` request (or use [`crate::Client::shutdown`]) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    planner: thread::JoinHandle<Result<Histogram, ServeError>>,
    acceptor: thread::JoinHandle<()>,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the daemon to finish (it finishes when a client sends
    /// `shutdown`). Returns the submit-wait histogram (µs).
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the planner exited on an internal error or a
    /// daemon thread panicked.
    pub fn join(self) -> Result<Histogram, ServeError> {
        let hist = self
            .planner
            .join()
            .map_err(|_| ServeError::Config("planner thread panicked".into()))??;
        // The planner exits first and flips the stop flag; the acceptor
        // notices within one poll interval.
        self.stop.store(true, Ordering::SeqCst);
        self.acceptor
            .join()
            .map_err(|_| ServeError::Config("acceptor thread panicked".into()))?;
        Ok(hist)
    }
}

/// Starts the daemon: binds `config.addr`, restores the snapshot if one
/// exists, and spawns the planner + acceptor threads.
///
/// # Errors
///
/// [`ServeError::Io`] when the bind fails, [`ServeError::Snapshot`] when a
/// present snapshot is malformed or mismatched, [`ServeError::Core`] /
/// [`ServeError::Config`] for invalid configuration.
pub fn serve(config: ServeConfig) -> Result<ServerHandle, ServeError> {
    if config.epoch_max_batch == 0 {
        return Err(ServeError::Config("epoch_max_batch must be >= 1".into()));
    }
    if config.ms_per_slot == 0 {
        return Err(ServeError::Config("ms_per_slot must be >= 1".into()));
    }
    let (state, base_slot) = match &config.snapshot_path {
        Some(p) if p.exists() => snapshot::read(p, config.rush, config.capacity)?,
        _ => (ServeState::new(config.rush, config.capacity)?, 0),
    };

    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<PlannerMsg>();

    let planner = {
        let stop = Arc::clone(&stop);
        let config = config.clone();
        thread::spawn(move || planner_loop(config, state, base_slot, &rx, &stop))
    };

    let acceptor = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || acceptor_loop(&listener, &tx, &stop))
    };

    Ok(ServerHandle { addr, planner, acceptor, stop })
}

/// The logical slot clock.
fn now_slot(base_slot: u64, started: Instant, ms_per_slot: u64) -> u64 {
    base_slot + started.elapsed().as_millis() as u64 / ms_per_slot
}

#[allow(clippy::needless_pass_by_value)]
fn planner_loop(
    config: ServeConfig,
    mut state: ServeState,
    base_slot: u64,
    rx: &Receiver<PlannerMsg>,
    stop: &AtomicBool,
) -> Result<Histogram, ServeError> {
    let started = Instant::now();
    let mut waits = Histogram::new();
    let mut pending: Vec<(Request, Instant, Sender<Response>)> = Vec::new();
    let mut epoch_deadline: Option<Instant> = None;
    let idle_tick = Duration::from_millis(200);

    loop {
        let timeout = match epoch_deadline {
            Some(d) => d.saturating_duration_since(Instant::now()),
            None => idle_tick,
        };
        match rx.recv_timeout(timeout) {
            Ok(PlannerMsg::Submit { req, enqueued, reply }) => {
                if pending.is_empty() {
                    epoch_deadline = Some(enqueued + Duration::from_millis(config.epoch_ms));
                }
                pending.push((req, enqueued, reply));
                if pending.len() >= config.epoch_max_batch {
                    close_epoch(&config, &mut state, base_slot, started, &mut pending, &mut waits)?;
                    epoch_deadline = None;
                }
            }
            Ok(PlannerMsg::Immediate { req, reply }) => {
                if matches!(req, Request::Shutdown { .. }) {
                    // Flush the pending epoch so no submitter is stranded,
                    // then snapshot and exit.
                    close_epoch(&config, &mut state, base_slot, started, &mut pending, &mut waits)?;
                    let slot = now_slot(base_slot, started, config.ms_per_slot);
                    let wants_snapshot = matches!(req, Request::Shutdown { snapshot: true });
                    let written = match (&config.snapshot_path, wants_snapshot) {
                        (Some(p), true) => snapshot::write(p, &state, slot).is_ok(),
                        _ => false,
                    };
                    let _ = reply.send(Response::ShuttingDown { snapshot_written: written });
                    stop.store(true, Ordering::SeqCst);
                    return Ok(waits);
                }
                let slot = now_slot(base_slot, started, config.ms_per_slot);
                let _ = reply.send(answer_immediate(&mut state, req, slot));
            }
            Err(RecvTimeoutError::Timeout) => {
                if epoch_deadline.is_some_and(|d| Instant::now() >= d) {
                    close_epoch(&config, &mut state, base_slot, started, &mut pending, &mut waits)?;
                    epoch_deadline = None;
                }
                if stop.load(Ordering::SeqCst) {
                    return Ok(waits);
                }
            }
            Err(RecvTimeoutError::Disconnected) => return Ok(waits),
        }
    }
}

/// Closes one planning epoch: admission + a single replan for every
/// pending submission, then replies to all of them.
fn close_epoch(
    config: &ServeConfig,
    state: &mut ServeState,
    base_slot: u64,
    started: Instant,
    pending: &mut Vec<(Request, Instant, Sender<Response>)>,
    waits: &mut Histogram,
) -> Result<(), ServeError> {
    if pending.is_empty() {
        return Ok(());
    }
    let batch = std::mem::take(pending);
    let slot = now_slot(base_slot, started, config.ms_per_slot);
    let subs = batch
        .iter()
        .filter_map(|(req, _, _)| match req {
            Request::Submit(sub) => Some(sub.clone()),
            _ => None,
        })
        .collect();
    let verdicts = state.submit_epoch(subs, slot)?;
    let epoch = state.counters().epochs;
    for ((_, enqueued, reply), (decision, id)) in batch.iter().zip(verdicts) {
        let waited_us = enqueued.elapsed().as_micros() as u64;
        waits.record(waited_us);
        let _ = reply.send(Response::Submitted { job: id, decision, epoch, waited_us });
    }
    Ok(())
}

/// Answers a non-submit request against the state.
fn answer_immediate(state: &mut ServeState, req: Request, slot: u64) -> Response {
    match req {
        Request::ReportSample { job, runtime } => match state.report_sample(job, runtime) {
            Ok(_) => Response::Ack,
            Err(e) => Response::Error(e),
        },
        Request::QueryPlan { job } => match state.rows(slot, job) {
            Ok(rows) => Response::PlanTable {
                now_slot: slot,
                epoch: state.counters().epochs,
                rows,
            },
            Err(e) => Response::Error(e),
        },
        Request::Predict { job } => match state.predict(job, slot) {
            Ok((target, task_len, bound, planned_completion, impossible)) => {
                Response::Prediction { job, target, task_len, bound, planned_completion, impossible }
            }
            Err(e) => Response::Error(e),
        },
        Request::Cancel { job } => match state.cancel(job) {
            Ok(()) => Response::Ack,
            Err(e) => Response::Error(e),
        },
        Request::Stats => Response::Stats(state.stats(slot)),
        // Submit and Shutdown are routed before this function.
        Request::Submit(_) | Request::Shutdown { .. } => {
            Response::error(ErrorCode::Internal, "request routed to the wrong handler")
        }
    }
}

fn acceptor_loop(listener: &TcpListener, tx: &Sender<PlannerMsg>, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = tx.clone();
                thread::spawn(move || connection_loop(stream, &tx));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            // Transient accept errors (e.g. a peer resetting mid-handshake)
            // must not kill the daemon.
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// One connection: read request lines, route to the planner, write
/// response lines. Malformed frames get structured error responses and the
/// connection stays open.
fn connection_loop(stream: TcpStream, tx: &Sender<PlannerMsg>) {
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = write_half;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::decode(&line) {
            Err(e) => Response::Error(e),
            Ok(req) => {
                let (reply_tx, reply_rx) = mpsc::channel();
                let msg = match req {
                    Request::Submit(_) => {
                        PlannerMsg::Submit { req, enqueued: Instant::now(), reply: reply_tx }
                    }
                    _ => PlannerMsg::Immediate { req, reply: reply_tx },
                };
                if tx.send(msg).is_err() {
                    Response::error(ErrorCode::Shutdown, "daemon is shutting down")
                } else {
                    match reply_rx.recv() {
                        Ok(resp) => resp,
                        Err(_) => {
                            Response::error(ErrorCode::Shutdown, "daemon is shutting down")
                        }
                    }
                }
            }
        };
        let done = matches!(response, Response::ShuttingDown { .. });
        if writer.write_all((response.encode() + "\n").as_bytes()).is_err() {
            return;
        }
        if writer.flush().is_err() || done {
            return;
        }
    }
}

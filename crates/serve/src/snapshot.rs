//! Durable daemon state: snapshot on shutdown, restore on startup.
//!
//! The snapshot is one JSON document (same strict codec as the wire
//! protocol) holding the job table, the id counter, the daemon counters
//! and the logical slot at which the snapshot was taken. It deliberately
//! does **not** store the [`rush_core::RushConfig`] or the capacity as the
//! source of truth — those come from the daemon's startup flags — but it
//! records both and the restore path *verifies* them, because a plan is
//! only reproducible under the same configuration.
//!
//! Restoring sets the restarted daemon's slot clock base to the snapshot's
//! `now_slot`, so job ages — and therefore the age-shifted utilities, the
//! peel targets and the whole plan — are bit-identical to what the old
//! daemon would have produced at that slot (`tests/snapshot_restore.rs`
//! proves this).

use crate::json::{parse, Json};
use crate::protocol::JobSubmission;
use crate::state::{Counters, JobState, ServeState};
use crate::ServeError;
use rush_core::cluster::{ClusterModel, ContainerClass, ReliabilityTier};
use rush_core::RushConfig;
use rush_workload::persist::{utility_from_text, utility_to_text};
use std::path::Path;

/// Format version of the snapshot document.
pub const SNAPSHOT_VERSION: u64 = 1;

fn snap_err(msg: impl Into<String>) -> ServeError {
    ServeError::Snapshot(msg.into())
}

fn need_u64(v: &Json, name: &str) -> Result<u64, ServeError> {
    v.get(name)
        .and_then(Json::as_u64)
        .ok_or_else(|| snap_err(format!("missing or non-integer field \"{name}\"")))
}

fn job_to_json(id: u64, j: &JobState) -> Json {
    let sub = &j.submission;
    let mut fields = vec![
        ("id".to_string(), Json::u64(id)),
        ("label".into(), Json::str(sub.label.clone())),
        ("tasks".into(), Json::u64(sub.tasks)),
        ("utility".into(), Json::str(utility_to_text(&sub.utility))),
        ("priority".into(), Json::u64(u64::from(sub.priority))),
        ("remaining_tasks".into(), Json::u64(j.remaining_tasks)),
        ("arrived_slot".into(), Json::u64(j.arrived_slot)),
        ("parked".into(), Json::Bool(j.parked)),
        ("samples".into(), Json::Arr(j.samples.iter().map(|&s| Json::u64(s)).collect())),
    ];
    if let Some(h) = sub.runtime_hint {
        fields.insert(4, ("hint".into(), Json::f64(h)));
    }
    if let Some(b) = sub.budget {
        fields.insert(4, ("budget".into(), Json::u64(b)));
    }
    Json::Obj(fields)
}

fn job_from_json(v: &Json) -> Result<(u64, JobState), ServeError> {
    let utility = utility_from_text(
        v.get("utility")
            .and_then(Json::as_str)
            .ok_or_else(|| snap_err("job is missing \"utility\""))?,
    )
    .map_err(|e| snap_err(format!("bad utility: {e}")))?;
    let hint = match v.get("hint") {
        None | Some(Json::Null) => None,
        Some(h) => Some(h.as_f64().ok_or_else(|| snap_err("bad \"hint\""))?),
    };
    let budget = match v.get("budget") {
        None | Some(Json::Null) => None,
        Some(b) => Some(b.as_u64().ok_or_else(|| snap_err("bad \"budget\""))?),
    };
    let samples: Result<Vec<u64>, ServeError> = v
        .get("samples")
        .and_then(Json::as_arr)
        .ok_or_else(|| snap_err("job is missing \"samples\""))?
        .iter()
        .map(|s| s.as_u64().ok_or_else(|| snap_err("non-integer sample")))
        .collect();
    let priority = u32::try_from(need_u64(v, "priority")?)
        .map_err(|_| snap_err("priority does not fit in u32"))?;
    Ok((
        need_u64(v, "id")?,
        JobState {
            submission: JobSubmission {
                label: v
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or_else(|| snap_err("job is missing \"label\""))?
                    .to_string(),
                tasks: need_u64(v, "tasks")?,
                runtime_hint: hint,
                utility,
                budget,
                priority,
            },
            samples: samples?,
            remaining_tasks: need_u64(v, "remaining_tasks")?,
            arrived_slot: need_u64(v, "arrived_slot")?,
            parked: v
                .get("parked")
                .and_then(Json::as_bool)
                .ok_or_else(|| snap_err("job is missing \"parked\""))?,
        },
    ))
}

/// The attached [`ClusterModel`], minus its event schedule: capacity
/// changes arrive over the wire, so only the provisioned classes are
/// durable state.
fn cluster_to_json(m: &ClusterModel) -> Json {
    Json::Obj(vec![
        ("provisioned".into(), Json::u64(u64::from(m.total_capacity()))),
        (
            "classes".into(),
            Json::Arr(
                m.classes
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("name".into(), Json::str(c.name.clone())),
                            ("count".into(), Json::u64(u64::from(c.count))),
                            ("price".into(), Json::f64(c.price)),
                            ("tier".into(), Json::str(c.tier.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn cluster_from_json(v: &Json) -> Result<ClusterModel, ServeError> {
    let classes: Result<Vec<ContainerClass>, ServeError> = v
        .get("classes")
        .and_then(Json::as_arr)
        .ok_or_else(|| snap_err("cluster is missing \"classes\""))?
        .iter()
        .map(|c| {
            Ok(ContainerClass {
                name: c
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| snap_err("container class is missing \"name\""))?
                    .to_string(),
                count: u32::try_from(need_u64(c, "count")?)
                    .map_err(|_| snap_err("container class count does not fit in u32"))?,
                price: c
                    .get("price")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| snap_err("container class is missing \"price\""))?,
                tier: c
                    .get("tier")
                    .and_then(Json::as_str)
                    .and_then(ReliabilityTier::from_wire)
                    .ok_or_else(|| snap_err("container class has an unknown \"tier\""))?,
            })
        })
        .collect();
    let model = ClusterModel { classes: classes?, events: Vec::new() };
    if need_u64(v, "provisioned")? != u64::from(model.total_capacity()) {
        return Err(snap_err("cluster \"provisioned\" disagrees with its classes"));
    }
    Ok(model)
}

/// Serializes the daemon state (plus the slot it was taken at) to a JSON
/// document.
pub fn encode(state: &ServeState, now_slot: u64) -> String {
    let c = state.counters();
    let mut fields = vec![
        ("v".to_string(), Json::u64(SNAPSHOT_VERSION)),
        ("kind".into(), Json::str("rushd-snapshot")),
        ("now_slot".into(), Json::u64(now_slot)),
        ("next_id".into(), Json::u64(state.next_id())),
        ("capacity".into(), Json::u64(u64::from(state.capacity()))),
    ];
    if let Some(m) = state.cluster_model() {
        fields.push(("cluster".into(), cluster_to_json(m)));
    }
    fields.extend(vec![
        ("theta".into(), Json::f64(state.config().theta)),
        ("delta".into(), Json::f64(state.config().delta)),
        (
            "counters".into(),
            Json::Obj(vec![
                ("epochs".into(), Json::u64(c.epochs)),
                ("admitted".into(), Json::u64(c.admitted)),
                ("deferred".into(), Json::u64(c.deferred)),
                ("rejected".into(), Json::u64(c.rejected)),
                ("cancelled".into(), Json::u64(c.cancelled)),
                ("completed".into(), Json::u64(c.completed)),
                ("samples".into(), Json::u64(c.samples)),
            ]),
        ),
        (
            "jobs".into(),
            Json::Arr(state.jobs().map(|(id, j)| job_to_json(id, &j)).collect()),
        ),
    ]);
    Json::Obj(fields).encode()
}

/// Rebuilds a [`ServeState`] from a snapshot document under the daemon's
/// startup `config` and `capacity`. Returns the state and the logical slot
/// the snapshot was taken at (the restarted clock's base).
///
/// # Errors
///
/// [`ServeError::Snapshot`] when the document is malformed, claims a
/// different format version, or was taken under a different capacity /
/// `θ` / `δ` than the daemon was restarted with.
pub fn decode(text: &str, config: RushConfig, capacity: u32) -> Result<(ServeState, u64), ServeError> {
    let doc = parse(text).map_err(|e| snap_err(format!("not valid JSON: {e}")))?;
    if doc.get("kind").and_then(Json::as_str) != Some("rushd-snapshot") {
        return Err(snap_err("not a rushd snapshot"));
    }
    match need_u64(&doc, "v")? {
        SNAPSHOT_VERSION => {}
        v => return Err(snap_err(format!("unsupported snapshot version {v}"))),
    }
    let snap_capacity = need_u64(&doc, "capacity")?;
    if snap_capacity != u64::from(capacity) {
        return Err(snap_err(format!(
            "snapshot was taken at capacity {snap_capacity}, daemon restarted with {capacity}"
        )));
    }
    for (name, have) in [("theta", config.theta), ("delta", config.delta)] {
        let want = doc
            .get(name)
            .and_then(Json::as_f64)
            .ok_or_else(|| snap_err(format!("missing \"{name}\"")))?;
        if (want - have).abs() > 1e-12 {
            return Err(snap_err(format!(
                "snapshot was taken with {name}={want}, daemon restarted with {have}"
            )));
        }
    }
    let now_slot = need_u64(&doc, "now_slot")?;
    let cj = doc.get("counters").ok_or_else(|| snap_err("missing \"counters\""))?;
    let counters = Counters {
        epochs: need_u64(cj, "epochs")?,
        admitted: need_u64(cj, "admitted")?,
        deferred: need_u64(cj, "deferred")?,
        rejected: need_u64(cj, "rejected")?,
        cancelled: need_u64(cj, "cancelled")?,
        completed: need_u64(cj, "completed")?,
        samples: need_u64(cj, "samples")?,
    };
    let jobs: Result<Vec<(u64, JobState)>, ServeError> = doc
        .get("jobs")
        .and_then(Json::as_arr)
        .ok_or_else(|| snap_err("missing \"jobs\""))?
        .iter()
        .map(job_from_json)
        .collect();
    let state =
        ServeState::from_parts(config, capacity, jobs?, need_u64(&doc, "next_id")?, counters)?;
    // An absent "cluster" field is a pre-model snapshot: restore without
    // revocation-aware admission, exactly as that daemon ran.
    let state = match doc.get("cluster") {
        None | Some(Json::Null) => state,
        Some(cv) => state
            .with_cluster_model(cluster_from_json(cv)?)
            .map_err(|e| snap_err(format!("cluster model: {e}")))?,
    };
    Ok((state, now_slot))
}

/// Writes a snapshot atomically (temp file + rename).
///
/// # Errors
///
/// [`ServeError::Io`] on filesystem failure.
pub fn write(path: &Path, state: &ServeState, now_slot: u64) -> Result<(), ServeError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, encode(state, now_slot) + "\n")?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and decodes a snapshot file.
///
/// # Errors
///
/// [`ServeError::Io`] on filesystem failure, [`ServeError::Snapshot`] on a
/// malformed or mismatched document.
pub fn read(path: &Path, config: RushConfig, capacity: u32) -> Result<(ServeState, u64), ServeError> {
    let text = std::fs::read_to_string(path)?;
    decode(&text, config, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Decision;
    use rush_utility::TimeUtility;

    fn populated() -> (ServeState, u64) {
        let mut s = ServeState::new(RushConfig::default(), 16).expect("state");
        let subs = vec![
            JobSubmission {
                label: "grep".into(),
                tasks: 12,
                runtime_hint: Some(40.0),
                utility: TimeUtility::sigmoid(2000.0, 4.0, 0.005).expect("valid"),
                budget: Some(2000),
                priority: 4,
            },
            JobSubmission {
                label: "bulk".into(),
                tasks: 50,
                runtime_hint: None,
                utility: TimeUtility::constant(1.0).expect("valid"),
                budget: None,
                priority: 1,
            },
        ];
        let verdicts = s.submit_epoch(subs, 3).expect("epoch");
        assert!(verdicts.iter().all(|v| v.decision == Decision::Admit));
        let id = verdicts[0].job.expect("id");
        s.report_sample(id, 38).expect("sample");
        s.report_sample(id, 44).expect("sample");
        (s, 7)
    }

    #[test]
    fn snapshot_round_trips_state_and_slot() {
        let (mut a, slot) = populated();
        let text = encode(&a, slot);
        let (mut b, restored_slot) =
            decode(&text, RushConfig::default(), 16).expect("decode");
        assert_eq!(restored_slot, slot);
        assert_eq!(a.next_id(), b.next_id());
        assert_eq!(a.counters(), b.counters());
        let ja: Vec<_> = a.jobs().collect();
        let jb: Vec<_> = b.jobs().collect();
        assert_eq!(ja, jb);
        // The restored daemon reproduces the plan bit-identically.
        assert_eq!(a.rows(slot, None).expect("rows"), b.rows(slot, None).expect("rows"));
        // And encoding the restored state yields the identical document.
        assert_eq!(text, encode(&b, slot));
    }

    #[test]
    fn snapshot_files_round_trip() {
        let (state, slot) = populated();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rushd-snap-test-{}.json", std::process::id()));
        write(&path, &state, slot).expect("write");
        let (restored, restored_slot) =
            read(&path, RushConfig::default(), 16).expect("read");
        std::fs::remove_file(&path).ok();
        assert_eq!(restored_slot, slot);
        assert_eq!(restored.next_id(), state.next_id());
    }

    #[test]
    fn cluster_model_round_trips_and_reattaches() {
        let (s, slot) = populated();
        let s = s
            .with_cluster_model(ClusterModel::tiered(8, 4, 4).with_spot_churn(2, 10, 100, 30, 2, 3))
            .expect("valid model");
        let text = encode(&s, slot);
        assert!(text.contains("\"cluster\""), "{text}");
        let (b, _) = decode(&text, RushConfig::default(), 16).expect("decode");
        let m = b.cluster_model().expect("model restored");
        assert_eq!(m.total_capacity(), 16);
        assert_eq!(m.classes.len(), 3);
        assert_eq!(m.classes[2].tier, ReliabilityTier::Spot);
        // The event schedule is deliberately not durable: capacity changes
        // arrive over the wire after restart.
        assert!(m.events.is_empty());
        // Re-encoding the restored state reproduces the document.
        assert_eq!(text, encode(&b, slot));
    }

    #[test]
    fn pre_model_snapshots_restore_without_a_model() {
        let (s, slot) = populated();
        let text = encode(&s, slot);
        assert!(!text.contains("\"cluster\""), "{text}");
        let (b, _) = decode(&text, RushConfig::default(), 16).expect("decode");
        assert!(b.cluster_model().is_none());
    }

    #[test]
    fn malformed_cluster_fields_are_refused() {
        let (s, slot) = populated();
        let s = s.with_cluster_model(ClusterModel::tiered(8, 4, 4)).expect("valid model");
        let text = encode(&s, slot);
        for (from, to) in [
            // Unknown tier name.
            ("\"tier\":\"spot\"", "\"tier\":\"preemptible\""),
            // Provisioned total out of step with the classes.
            ("\"provisioned\":16", "\"provisioned\":12"),
            // Class list gone entirely.
            ("\"classes\"", "\"klasses\""),
        ] {
            let bad = text.replace(from, to);
            assert_ne!(bad, text, "replacement {from:?} must apply");
            assert!(
                matches!(decode(&bad, RushConfig::default(), 16), Err(ServeError::Snapshot(_))),
                "{from} -> {to}"
            );
        }
    }

    #[test]
    fn mismatched_restore_configuration_is_refused() {
        let (state, slot) = populated();
        let text = encode(&state, slot);
        assert!(matches!(
            decode(&text, RushConfig::default(), 8),
            Err(ServeError::Snapshot(_))
        ));
        let other = RushConfig { theta: 0.5, ..RushConfig::default() };
        assert!(matches!(decode(&text, other, 16), Err(ServeError::Snapshot(_))));
    }

    #[test]
    fn malformed_snapshots_are_refused() {
        for bad in [
            "",
            "{}",
            r#"{"v":1,"kind":"other"}"#,
            r#"{"v":9,"kind":"rushd-snapshot"}"#,
        ] {
            assert!(
                matches!(decode(bad, RushConfig::default(), 4), Err(ServeError::Snapshot(_))),
                "{bad:?}"
            );
        }
    }
}

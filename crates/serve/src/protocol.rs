//! The versioned, newline-delimited wire protocol of `rushd`.
//!
//! One frame = one JSON object = one line. Every request carries
//! `"v": 1` and an `"op"` discriminator; every response carries `"ok"`
//! plus either a `"kind"` discriminator (success) or a structured error
//! (`"code"`, `"message"`). Unknown versions, unknown ops and missing or
//! mistyped fields are *structured* errors ([`WireError`]), never panics —
//! the daemon keeps serving after any malformed frame.
//!
//! Utilities travel in the workload persist text form (`sigmoid:700,5,0.02`,
//! see [`rush_workload::persist::utility_from_text`]) so the wire format,
//! the workload files and the snapshot format all share one grammar.
//!
//! The full grammar is documented in `DESIGN.md` §10.

use crate::json::{parse, Json};
use rush_utility::TimeUtility;
use rush_workload::persist::{utility_from_text, utility_to_text};
use std::fmt;

/// Wire protocol version carried in every request's `"v"` field.
pub const PROTOCOL_VERSION: u64 = 1;

/// Machine-readable error class carried in error responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not valid JSON.
    BadJson,
    /// A binary frame was structurally malformed (truncated payload,
    /// unknown tag, bad UTF-8) — the binary analog of [`ErrorCode::BadJson`].
    BadFrame,
    /// The `"v"` field was missing or not a supported version.
    BadVersion,
    /// The `"op"` (or response `"kind"`) was missing or unrecognized.
    BadOp,
    /// A field was missing, mistyped or out of range.
    BadField,
    /// The referenced job id is not resident.
    UnknownJob,
    /// The referenced job is parked by admission control (deferred), so it
    /// has no plan row yet.
    Deferred,
    /// The daemon is shutting down and no longer accepts work.
    Shutdown,
    /// The request was valid but the planner failed internally.
    Internal,
}

impl ErrorCode {
    /// The wire form of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::BadVersion => "bad-version",
            ErrorCode::BadOp => "bad-op",
            ErrorCode::BadField => "bad-field",
            ErrorCode::UnknownJob => "unknown-job",
            ErrorCode::Deferred => "deferred",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses the wire form.
    pub fn from_wire(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad-json" => ErrorCode::BadJson,
            "bad-frame" => ErrorCode::BadFrame,
            "bad-version" => ErrorCode::BadVersion,
            "bad-op" => ErrorCode::BadOp,
            "bad-field" => ErrorCode::BadField,
            "unknown-job" => ErrorCode::UnknownJob,
            "deferred" => ErrorCode::Deferred,
            "shutdown" => ErrorCode::Shutdown,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A structured protocol-level failure: decoding a frame, or a request the
/// server answered with an error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    pub(crate) fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError { code, message: message.into() }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for WireError {}

/// The admission controller's verdict on a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The job passed the Theorem-2 prefix-capacity test and is planned.
    Admit,
    /// The cluster is overcommitted but the job is completion-time
    /// insensitive: it is parked and re-probed every epoch.
    Defer,
    /// The cluster is overcommitted and the job's deadline cannot be met;
    /// admitting it would only dilute every resident job's guarantee.
    Reject,
}

impl Decision {
    /// The wire form of the decision.
    pub fn as_str(self) -> &'static str {
        match self {
            Decision::Admit => "admit",
            Decision::Defer => "defer",
            Decision::Reject => "reject",
        }
    }

    /// Parses the wire form.
    pub fn from_wire(s: &str) -> Option<Decision> {
        Some(match s {
            "admit" => Decision::Admit,
            "defer" => Decision::Defer,
            "reject" => Decision::Reject,
            _ => return None,
        })
    }
}

/// Why a submission was deferred (parked) rather than admitted outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeferReason {
    /// The classic Theorem-2 verdict: the cluster is overcommitted and the
    /// job is completion-time insensitive, so it waits for room.
    Overcommit,
    /// Revocation-aware price deferral: the cluster is temporarily below
    /// its provisioned capacity (spot revocation / node failure), the
    /// [`rush_core::ClusterModel`] predicts the lost containers return
    /// within the job's deadline slack, and the job fits at the
    /// provisioned capacity — so it waits for the restock instead of
    /// being rejected.
    AwaitingRestock,
}

impl DeferReason {
    /// The wire form of the reason.
    pub fn as_str(self) -> &'static str {
        match self {
            DeferReason::Overcommit => "overcommit",
            DeferReason::AwaitingRestock => "awaiting-restock",
        }
    }

    /// Parses the wire form.
    pub fn from_wire(s: &str) -> Option<DeferReason> {
        Some(match s {
            "overcommit" => DeferReason::Overcommit,
            "awaiting-restock" => DeferReason::AwaitingRestock,
            _ => return None,
        })
    }
}

/// A job submission: everything the paper's job-configuration interface
/// collects from the client (Sec. IV).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSubmission {
    /// Human-readable label (e.g. the workload template name).
    pub label: String,
    /// Number of tasks the job will run.
    pub tasks: u64,
    /// Client's per-task runtime hint in slots (used only before the first
    /// real sample arrives; the cold prior covers its absence).
    pub runtime_hint: Option<f64>,
    /// Completion-time utility, in persist text form on the wire.
    pub utility: TimeUtility,
    /// Declared time budget in slots, if any (drives the admission
    /// deadline; the planner itself reads only the utility).
    pub budget: Option<u64>,
    /// Priority weight.
    pub priority: u32,
}

impl JobSubmission {
    /// Whether the job is completion-time insensitive (constant utility) —
    /// the class admission control may defer instead of reject.
    pub fn is_insensitive(&self) -> bool {
        matches!(self.utility, TimeUtility::Constant { .. })
    }
}

/// A client request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job for admission + planning.
    Submit(JobSubmission),
    /// Report one completed-task runtime sample for a resident job.
    ReportSample {
        /// Job id returned by `submit`.
        job: u64,
        /// Observed task runtime in slots.
        runtime: u64,
    },
    /// Fetch the current plan table (all jobs, or one).
    QueryPlan {
        /// Restrict to one job id.
        job: Option<u64>,
    },
    /// Ask for the robust completion bound `T_i + R_i` (Theorem 3).
    Predict {
        /// Job id.
        job: u64,
    },
    /// Remove a job from the table (and its parked twin, if deferred).
    Cancel {
        /// Job id.
        job: u64,
    },
    /// Fetch daemon counters.
    Stats,
    /// Inject a capacity event: the cluster's effective container count
    /// changed (spot revocation, restock, node failure, operator resize).
    /// Cluster-wide: a multi-shard daemon re-splits the new total across
    /// its shards exactly like the startup split.
    SetCapacity {
        /// New cluster-wide effective capacity in containers (≥ 1).
        capacity: u32,
    },
    /// Gracefully stop the daemon.
    Shutdown {
        /// Write a state snapshot before exiting (requires the daemon to
        /// have been started with a snapshot path).
        snapshot: bool,
    },
}

/// One row of the plan table, mirroring [`rush_core::plan::PlanEntry`] plus
/// the job's identity.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRow {
    /// Job id.
    pub job: u64,
    /// Job label.
    pub label: String,
    /// Robust remaining demand `η` (container·slots).
    pub eta: u64,
    /// Mean task runtime `R` (slots).
    pub task_len: u64,
    /// Target completion time (slots from now).
    pub target: f64,
    /// Achieved max-min utility level.
    pub level: f64,
    /// Containers the plan allocates next slot.
    pub desired_now: u32,
    /// Planned completion (slots from now).
    pub planned_completion: u64,
    /// Whether the job cannot finish with nonzero utility.
    pub impossible: bool,
    /// Remaining (unsampled) tasks.
    pub remaining_tasks: u64,
}

/// Daemon counters returned by `stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReport {
    /// Jobs currently planned.
    pub active_jobs: u64,
    /// Jobs parked by admission control.
    pub deferred_jobs: u64,
    /// Planning epochs closed so far.
    pub epochs: u64,
    /// Submissions admitted (including unparked ones).
    pub admitted: u64,
    /// Submissions deferred at least once.
    pub deferred: u64,
    /// Submissions rejected.
    pub rejected: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Jobs whose every task reported a sample.
    pub completed: u64,
    /// Task runtime samples ingested.
    pub samples: u64,
    /// Plan-cache hits across all epochs.
    pub cache_hits: u64,
    /// Plan-cache misses across all epochs.
    pub cache_misses: u64,
    /// Current logical slot.
    pub now_slot: u64,
}

/// A server response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Verdict on a `submit`.
    Submitted {
        /// Job id (present unless rejected).
        job: Option<u64>,
        /// Admission decision.
        decision: Decision,
        /// Epoch that planned (or parked) the job.
        epoch: u64,
        /// Microseconds the submission waited for its epoch to close.
        waited_us: u64,
        /// Why the job was parked (present exactly when `decision` is
        /// [`Decision::Defer`]).
        defer_reason: Option<DeferReason>,
    },
    /// Generic success (report-sample, cancel).
    Ack,
    /// Plan table.
    PlanTable {
        /// Logical slot the table was computed at.
        now_slot: u64,
        /// Epoch counter at computation time.
        epoch: u64,
        /// One row per requested job.
        rows: Vec<PlanRow>,
    },
    /// Robust completion prediction for one job.
    Prediction {
        /// Job id.
        job: u64,
        /// Target completion `T_i` (slots from now).
        target: f64,
        /// Mean task runtime `R_i` (slots).
        task_len: u64,
        /// Theorem-3 robust bound `T_i + R_i` (slots from now).
        bound: f64,
        /// Planned completion under the continuity mapping (slots from now).
        planned_completion: u64,
        /// Whether the job cannot finish with nonzero utility.
        impossible: bool,
    },
    /// Counter dump.
    Stats(StatsReport),
    /// The capacity event was applied. From a multi-shard daemon this is
    /// the merged (summed) effective capacity across shards.
    CapacitySet {
        /// The effective capacity now in force.
        capacity: u32,
    },
    /// The daemon acknowledged `shutdown` and is exiting.
    ShuttingDown {
        /// Whether a snapshot was written.
        snapshot_written: bool,
    },
    /// Structured failure.
    Error(WireError),
}

// ---------------------------------------------------------------------------
// Field-access helpers (decode side)
// ---------------------------------------------------------------------------

fn bad_field(name: &str, why: &str) -> WireError {
    WireError::new(ErrorCode::BadField, format!("field \"{name}\": {why}"))
}

fn need_u64(obj: &Json, name: &str) -> Result<u64, WireError> {
    obj.get(name)
        .ok_or_else(|| bad_field(name, "missing"))?
        .as_u64()
        .ok_or_else(|| bad_field(name, "expected a non-negative integer"))
}

fn opt_u64(obj: &Json, name: &str) -> Result<Option<u64>, WireError> {
    match obj.get(name) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            v.as_u64().map(Some).ok_or_else(|| bad_field(name, "expected a non-negative integer"))
        }
    }
}

fn need_f64(obj: &Json, name: &str) -> Result<f64, WireError> {
    obj.get(name)
        .ok_or_else(|| bad_field(name, "missing"))?
        .as_f64()
        .ok_or_else(|| bad_field(name, "expected a number"))
}

fn opt_f64(obj: &Json, name: &str) -> Result<Option<f64>, WireError> {
    match obj.get(name) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_f64().map(Some).ok_or_else(|| bad_field(name, "expected a number")),
    }
}

fn need_str<'a>(obj: &'a Json, name: &str) -> Result<&'a str, WireError> {
    obj.get(name)
        .ok_or_else(|| bad_field(name, "missing"))?
        .as_str()
        .ok_or_else(|| bad_field(name, "expected a string"))
}

fn need_bool(obj: &Json, name: &str) -> Result<bool, WireError> {
    obj.get(name)
        .ok_or_else(|| bad_field(name, "missing"))?
        .as_bool()
        .ok_or_else(|| bad_field(name, "expected a boolean"))
}

fn opt_bool(obj: &Json, name: &str, default: bool) -> Result<bool, WireError> {
    match obj.get(name) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| bad_field(name, "expected a boolean")),
    }
}

fn parse_frame(line: &str) -> Result<Json, WireError> {
    let v = parse(line)
        .map_err(|e| WireError::new(ErrorCode::BadJson, e.to_string()))?;
    if !matches!(v, Json::Obj(_)) {
        return Err(WireError::new(ErrorCode::BadJson, "frame must be a JSON object"));
    }
    Ok(v)
}

fn check_version(obj: &Json) -> Result<(), WireError> {
    match obj.get("v").and_then(Json::as_u64) {
        Some(PROTOCOL_VERSION) => Ok(()),
        Some(v) => Err(WireError::new(
            ErrorCode::BadVersion,
            format!("unsupported protocol version {v} (expected {PROTOCOL_VERSION})"),
        )),
        None => Err(WireError::new(ErrorCode::BadVersion, "missing \"v\" field")),
    }
}

// ---------------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------------

impl Request {
    /// Encodes the request as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut fields = vec![("v".to_string(), Json::u64(PROTOCOL_VERSION))];
        match self {
            Request::Submit(sub) => {
                fields.push(("op".into(), Json::str("submit")));
                fields.push(("label".into(), Json::str(sub.label.clone())));
                fields.push(("tasks".into(), Json::u64(sub.tasks)));
                if let Some(h) = sub.runtime_hint {
                    fields.push(("hint".into(), Json::f64(h)));
                }
                fields.push(("utility".into(), Json::str(utility_to_text(&sub.utility))));
                if let Some(b) = sub.budget {
                    fields.push(("budget".into(), Json::u64(b)));
                }
                fields.push(("priority".into(), Json::u64(u64::from(sub.priority))));
            }
            Request::ReportSample { job, runtime } => {
                fields.push(("op".into(), Json::str("report-sample")));
                fields.push(("job".into(), Json::u64(*job)));
                fields.push(("runtime".into(), Json::u64(*runtime)));
            }
            Request::QueryPlan { job } => {
                fields.push(("op".into(), Json::str("query-plan")));
                if let Some(id) = job {
                    fields.push(("job".into(), Json::u64(*id)));
                }
            }
            Request::Predict { job } => {
                fields.push(("op".into(), Json::str("predict")));
                fields.push(("job".into(), Json::u64(*job)));
            }
            Request::Cancel { job } => {
                fields.push(("op".into(), Json::str("cancel")));
                fields.push(("job".into(), Json::u64(*job)));
            }
            Request::Stats => {
                fields.push(("op".into(), Json::str("stats")));
            }
            Request::SetCapacity { capacity } => {
                fields.push(("op".into(), Json::str("set-capacity")));
                fields.push(("capacity".into(), Json::u64(u64::from(*capacity))));
            }
            Request::Shutdown { snapshot } => {
                fields.push(("op".into(), Json::str("shutdown")));
                fields.push(("snapshot".into(), Json::Bool(*snapshot)));
            }
        }
        Json::Obj(fields).encode()
    }

    /// Decodes one request line.
    ///
    /// # Errors
    ///
    /// [`WireError`] with [`ErrorCode::BadJson`], [`ErrorCode::BadVersion`],
    /// [`ErrorCode::BadOp`] or [`ErrorCode::BadField`]; the connection
    /// stays usable after any of them.
    pub fn decode(line: &str) -> Result<Request, WireError> {
        let obj = parse_frame(line)?;
        check_version(&obj)?;
        let op = obj
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError::new(ErrorCode::BadOp, "missing \"op\" field"))?;
        match op {
            "submit" => {
                let tasks = need_u64(&obj, "tasks")?;
                if tasks == 0 {
                    return Err(bad_field("tasks", "must be >= 1"));
                }
                let hint = opt_f64(&obj, "hint")?;
                if let Some(h) = hint {
                    // The JSON layer only yields finite numbers, so this
                    // cleanly rejects zero and negatives.
                    if h <= 0.0 {
                        return Err(bad_field("hint", "must be > 0"));
                    }
                }
                let utility = utility_from_text(need_str(&obj, "utility")?)
                    .map_err(|e| bad_field("utility", &e))?;
                let priority = need_u64(&obj, "priority")?;
                let priority = u32::try_from(priority)
                    .map_err(|_| bad_field("priority", "must fit in u32"))?;
                if priority == 0 {
                    return Err(bad_field("priority", "must be >= 1"));
                }
                Ok(Request::Submit(JobSubmission {
                    label: need_str(&obj, "label")?.to_string(),
                    tasks,
                    runtime_hint: hint,
                    utility,
                    budget: opt_u64(&obj, "budget")?,
                    priority,
                }))
            }
            "report-sample" => Ok(Request::ReportSample {
                job: need_u64(&obj, "job")?,
                runtime: need_u64(&obj, "runtime")?,
            }),
            "query-plan" => Ok(Request::QueryPlan { job: opt_u64(&obj, "job")? }),
            "predict" => Ok(Request::Predict { job: need_u64(&obj, "job")? }),
            "cancel" => Ok(Request::Cancel { job: need_u64(&obj, "job")? }),
            "stats" => Ok(Request::Stats),
            "set-capacity" => {
                let capacity = need_u64(&obj, "capacity")?;
                let capacity = u32::try_from(capacity)
                    .map_err(|_| bad_field("capacity", "must fit in u32"))?;
                if capacity == 0 {
                    return Err(bad_field("capacity", "must be >= 1"));
                }
                Ok(Request::SetCapacity { capacity })
            }
            "shutdown" => Ok(Request::Shutdown { snapshot: opt_bool(&obj, "snapshot", true)? }),
            other => {
                Err(WireError::new(ErrorCode::BadOp, format!("unknown op \"{other}\"")))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------------

fn plan_row_to_json(r: &PlanRow) -> Json {
    Json::Obj(vec![
        ("job".into(), Json::u64(r.job)),
        ("label".into(), Json::str(r.label.clone())),
        ("eta".into(), Json::u64(r.eta)),
        ("task_len".into(), Json::u64(r.task_len)),
        ("target".into(), Json::f64(r.target)),
        ("level".into(), Json::f64(r.level)),
        ("desired_now".into(), Json::u64(u64::from(r.desired_now))),
        ("planned_completion".into(), Json::u64(r.planned_completion)),
        ("impossible".into(), Json::Bool(r.impossible)),
        ("remaining_tasks".into(), Json::u64(r.remaining_tasks)),
    ])
}

fn plan_row_from_json(v: &Json) -> Result<PlanRow, WireError> {
    let desired = need_u64(v, "desired_now")?;
    Ok(PlanRow {
        job: need_u64(v, "job")?,
        label: need_str(v, "label")?.to_string(),
        eta: need_u64(v, "eta")?,
        task_len: need_u64(v, "task_len")?,
        target: need_f64(v, "target")?,
        level: need_f64(v, "level")?,
        desired_now: u32::try_from(desired)
            .map_err(|_| bad_field("desired_now", "must fit in u32"))?,
        planned_completion: need_u64(v, "planned_completion")?,
        impossible: need_bool(v, "impossible")?,
        remaining_tasks: need_u64(v, "remaining_tasks")?,
    })
}

impl Response {
    /// Encodes the response as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let fields = match self {
            Response::Submitted { job, decision, epoch, waited_us, defer_reason } => {
                let mut f = vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("kind".into(), Json::str("submitted")),
                    ("decision".into(), Json::str(decision.as_str())),
                    ("epoch".into(), Json::u64(*epoch)),
                    ("waited_us".into(), Json::u64(*waited_us)),
                ];
                if let Some(reason) = defer_reason {
                    f.push(("defer_reason".into(), Json::str(reason.as_str())));
                }
                if let Some(id) = job {
                    f.insert(2, ("job".into(), Json::u64(*id)));
                }
                f
            }
            Response::Ack => vec![
                ("ok".to_string(), Json::Bool(true)),
                ("kind".into(), Json::str("ack")),
            ],
            Response::PlanTable { now_slot, epoch, rows } => vec![
                ("ok".to_string(), Json::Bool(true)),
                ("kind".into(), Json::str("plan")),
                ("now_slot".into(), Json::u64(*now_slot)),
                ("epoch".into(), Json::u64(*epoch)),
                ("rows".into(), Json::Arr(rows.iter().map(plan_row_to_json).collect())),
            ],
            Response::Prediction { job, target, task_len, bound, planned_completion, impossible } => {
                vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("kind".into(), Json::str("prediction")),
                    ("job".into(), Json::u64(*job)),
                    ("target".into(), Json::f64(*target)),
                    ("task_len".into(), Json::u64(*task_len)),
                    ("bound".into(), Json::f64(*bound)),
                    ("planned_completion".into(), Json::u64(*planned_completion)),
                    ("impossible".into(), Json::Bool(*impossible)),
                ]
            }
            Response::Stats(s) => vec![
                ("ok".to_string(), Json::Bool(true)),
                ("kind".into(), Json::str("stats")),
                ("active_jobs".into(), Json::u64(s.active_jobs)),
                ("deferred_jobs".into(), Json::u64(s.deferred_jobs)),
                ("epochs".into(), Json::u64(s.epochs)),
                ("admitted".into(), Json::u64(s.admitted)),
                ("deferred".into(), Json::u64(s.deferred)),
                ("rejected".into(), Json::u64(s.rejected)),
                ("cancelled".into(), Json::u64(s.cancelled)),
                ("completed".into(), Json::u64(s.completed)),
                ("samples".into(), Json::u64(s.samples)),
                ("cache_hits".into(), Json::u64(s.cache_hits)),
                ("cache_misses".into(), Json::u64(s.cache_misses)),
                ("now_slot".into(), Json::u64(s.now_slot)),
            ],
            Response::CapacitySet { capacity } => vec![
                ("ok".to_string(), Json::Bool(true)),
                ("kind".into(), Json::str("capacity-set")),
                ("capacity".into(), Json::u64(u64::from(*capacity))),
            ],
            Response::ShuttingDown { snapshot_written } => vec![
                ("ok".to_string(), Json::Bool(true)),
                ("kind".into(), Json::str("shutting-down")),
                ("snapshot_written".into(), Json::Bool(*snapshot_written)),
            ],
            Response::Error(e) => vec![
                ("ok".to_string(), Json::Bool(false)),
                ("code".into(), Json::str(e.code.as_str())),
                ("message".into(), Json::str(e.message.clone())),
            ],
        };
        Json::Obj(fields).encode()
    }

    /// Decodes one response line (the client side of the codec).
    ///
    /// # Errors
    ///
    /// [`WireError`] when the line is not a well-formed response frame.
    pub fn decode(line: &str) -> Result<Response, WireError> {
        let obj = parse_frame(line)?;
        let ok = need_bool(&obj, "ok")?;
        if !ok {
            let code_str = need_str(&obj, "code")?;
            let code = ErrorCode::from_wire(code_str)
                .ok_or_else(|| bad_field("code", "unknown error code"))?;
            return Ok(Response::Error(WireError::new(
                code,
                need_str(&obj, "message")?.to_string(),
            )));
        }
        let kind = obj
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError::new(ErrorCode::BadOp, "missing \"kind\" field"))?;
        match kind {
            "submitted" => {
                let decision = Decision::from_wire(need_str(&obj, "decision")?)
                    .ok_or_else(|| bad_field("decision", "unknown decision"))?;
                let defer_reason = match obj.get("defer_reason") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_str()
                            .and_then(DeferReason::from_wire)
                            .ok_or_else(|| bad_field("defer_reason", "unknown defer reason"))?,
                    ),
                };
                Ok(Response::Submitted {
                    job: opt_u64(&obj, "job")?,
                    decision,
                    epoch: need_u64(&obj, "epoch")?,
                    waited_us: need_u64(&obj, "waited_us")?,
                    defer_reason,
                })
            }
            "ack" => Ok(Response::Ack),
            "plan" => {
                let rows_json = obj
                    .get("rows")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad_field("rows", "expected an array"))?;
                let rows: Result<Vec<PlanRow>, WireError> =
                    rows_json.iter().map(plan_row_from_json).collect();
                Ok(Response::PlanTable {
                    now_slot: need_u64(&obj, "now_slot")?,
                    epoch: need_u64(&obj, "epoch")?,
                    rows: rows?,
                })
            }
            "prediction" => Ok(Response::Prediction {
                job: need_u64(&obj, "job")?,
                target: need_f64(&obj, "target")?,
                task_len: need_u64(&obj, "task_len")?,
                bound: need_f64(&obj, "bound")?,
                planned_completion: need_u64(&obj, "planned_completion")?,
                impossible: need_bool(&obj, "impossible")?,
            }),
            "stats" => Ok(Response::Stats(StatsReport {
                active_jobs: need_u64(&obj, "active_jobs")?,
                deferred_jobs: need_u64(&obj, "deferred_jobs")?,
                epochs: need_u64(&obj, "epochs")?,
                admitted: need_u64(&obj, "admitted")?,
                deferred: need_u64(&obj, "deferred")?,
                rejected: need_u64(&obj, "rejected")?,
                cancelled: need_u64(&obj, "cancelled")?,
                completed: need_u64(&obj, "completed")?,
                samples: need_u64(&obj, "samples")?,
                cache_hits: need_u64(&obj, "cache_hits")?,
                cache_misses: need_u64(&obj, "cache_misses")?,
                now_slot: need_u64(&obj, "now_slot")?,
            })),
            "capacity-set" => {
                let capacity = need_u64(&obj, "capacity")?;
                Ok(Response::CapacitySet {
                    capacity: u32::try_from(capacity)
                        .map_err(|_| bad_field("capacity", "must fit in u32"))?,
                })
            }
            "shutting-down" => Ok(Response::ShuttingDown {
                snapshot_written: need_bool(&obj, "snapshot_written")?,
            }),
            other => {
                Err(WireError::new(ErrorCode::BadOp, format!("unknown kind \"{other}\"")))
            }
        }
    }

    /// Shorthand for an error response.
    pub fn error(code: ErrorCode, message: impl Into<String>) -> Response {
        Response::Error(WireError::new(code, message))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub() -> JobSubmission {
        JobSubmission {
            label: "terasort".into(),
            tasks: 40,
            runtime_hint: Some(55.5),
            utility: TimeUtility::sigmoid(700.0, 5.0, 0.02).expect("valid"),
            budget: Some(700),
            priority: 3,
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Submit(sub()),
            Request::Submit(JobSubmission {
                runtime_hint: None,
                budget: None,
                utility: TimeUtility::constant(2.0).expect("valid"),
                ..sub()
            }),
            Request::ReportSample { job: 7, runtime: 61 },
            Request::QueryPlan { job: None },
            Request::QueryPlan { job: Some(3) },
            Request::Predict { job: 9 },
            Request::Cancel { job: 0 },
            Request::Stats,
            Request::SetCapacity { capacity: 12 },
            Request::Shutdown { snapshot: false },
        ];
        for r in reqs {
            let line = r.encode();
            assert!(!line.contains('\n'), "{line}");
            let back = Request::decode(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(r, back, "{line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Submitted {
                job: Some(12),
                decision: Decision::Admit,
                epoch: 4,
                waited_us: 1800,
                defer_reason: None,
            },
            Response::Submitted {
                job: None,
                decision: Decision::Reject,
                epoch: 4,
                waited_us: 90,
                defer_reason: None,
            },
            Response::Submitted {
                job: Some(3),
                decision: Decision::Defer,
                epoch: 2,
                waited_us: 40,
                defer_reason: Some(DeferReason::AwaitingRestock),
            },
            Response::Submitted {
                job: Some(4),
                decision: Decision::Defer,
                epoch: 2,
                waited_us: 41,
                defer_reason: Some(DeferReason::Overcommit),
            },
            Response::Ack,
            Response::PlanTable {
                now_slot: 17,
                epoch: 6,
                rows: vec![PlanRow {
                    job: 12,
                    label: "grep".into(),
                    eta: 2400,
                    task_len: 60,
                    target: 512.25,
                    level: 4.75,
                    desired_now: 5,
                    planned_completion: 480,
                    impossible: false,
                    remaining_tasks: 31,
                }],
            },
            Response::Prediction {
                job: 12,
                target: 512.25,
                task_len: 60,
                bound: 572.25,
                planned_completion: 480,
                impossible: false,
            },
            Response::Stats(StatsReport {
                active_jobs: 3,
                deferred_jobs: 1,
                epochs: 9,
                admitted: 10,
                deferred: 2,
                rejected: 1,
                cancelled: 1,
                completed: 5,
                samples: 230,
                cache_hits: 40,
                cache_misses: 9,
                now_slot: 123,
            }),
            Response::CapacitySet { capacity: 9 },
            Response::ShuttingDown { snapshot_written: true },
            Response::error(ErrorCode::UnknownJob, "job 99 is not resident"),
        ];
        for r in resps {
            let line = r.encode();
            assert!(!line.contains('\n'), "{line}");
            let back = Response::decode(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(r, back, "{line}");
        }
    }

    #[test]
    fn version_is_enforced() {
        let line = Request::Stats.encode().replace("\"v\":1", "\"v\":2");
        let e = Request::decode(&line).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadVersion);
        let e = Request::decode(r#"{"op":"stats"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadVersion);
    }

    #[test]
    fn unknown_op_is_structured() {
        let e = Request::decode(r#"{"v":1,"op":"frobnicate"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadOp);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn missing_and_mistyped_fields_are_structured() {
        let e = Request::decode(r#"{"v":1,"op":"predict"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadField);
        let e = Request::decode(r#"{"v":1,"op":"predict","job":-3}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadField);
        let e = Request::decode(r#"{"v":1,"op":"predict","job":1.5}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadField);
        let e = Request::decode(
            r#"{"v":1,"op":"submit","label":"x","tasks":0,"utility":"constant:1","priority":1}"#,
        )
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::BadField);
        let e = Request::decode(
            r#"{"v":1,"op":"submit","label":"x","tasks":4,"utility":"warp:1","priority":1}"#,
        )
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::BadField);
        assert!(e.message.contains("utility"));
    }

    #[test]
    fn truncated_frames_are_bad_json() {
        let whole = Request::Submit(sub()).encode();
        for cut in [1, whole.len() / 2, whole.len() - 1] {
            let e = Request::decode(&whole[..cut]).unwrap_err();
            assert_eq!(e.code, ErrorCode::BadJson, "cut at {cut}");
        }
    }

    #[test]
    fn shutdown_snapshot_defaults_to_true() {
        let r = Request::decode(r#"{"v":1,"op":"shutdown"}"#).unwrap();
        assert_eq!(r, Request::Shutdown { snapshot: true });
    }

    #[test]
    fn set_capacity_is_validated() {
        let r = Request::decode(r#"{"v":1,"op":"set-capacity","capacity":7}"#).unwrap();
        assert_eq!(r, Request::SetCapacity { capacity: 7 });
        for bad in [
            r#"{"v":1,"op":"set-capacity"}"#,
            r#"{"v":1,"op":"set-capacity","capacity":0}"#,
            r#"{"v":1,"op":"set-capacity","capacity":5000000000}"#,
            r#"{"v":1,"op":"set-capacity","capacity":-3}"#,
        ] {
            let e = Request::decode(bad).unwrap_err();
            assert_eq!(e.code, ErrorCode::BadField, "{bad}");
        }
    }

    #[test]
    fn unknown_defer_reason_is_structured() {
        let line = r#"{"ok":true,"kind":"submitted","job":1,"decision":"defer","epoch":1,"waited_us":5,"defer_reason":"lunar-eclipse"}"#;
        let e = Response::decode(line).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadField);
        assert!(e.message.contains("defer_reason"));
    }

    #[test]
    fn insensitivity_is_derived_from_the_utility() {
        assert!(!sub().is_insensitive());
        let s = JobSubmission { utility: TimeUtility::constant(1.0).expect("valid"), ..sub() };
        assert!(s.is_insensitive());
    }
}

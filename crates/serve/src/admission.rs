//! Admission control: the Theorem-2 prefix-capacity test applied at the
//! door.
//!
//! The offline pipeline assumes the job set is given; a daemon gets to
//! choose. Admitting a job the cluster cannot carry does not merely hurt
//! that job — the onion peel lowers the *max-min* utility level, so one
//! overcommitting arrival dilutes every resident job's guarantee. The
//! controller therefore probes, before a submission enters the job table,
//! whether the resident reservations plus the candidate still satisfy the
//! paper's Theorem 2 feasibility condition
//! `Σ_{k: T_k ≤ d} η_k ≤ C · d` for every deadline `d`
//! (via [`rush_core::onion::prefix_capacity_feasible`]).
//!
//! Verdicts:
//!
//! * feasible → **admit**;
//! * infeasible, candidate completion-time *insensitive* → **defer**: a
//!   constant-utility job loses nothing by waiting, so it is parked and
//!   re-probed at every epoch;
//! * infeasible, candidate time-sensitive → **reject**: its deadline
//!   cannot be met, and admitting it anyway would only spread the damage.
//!
//! The candidate's robust demand `η` is estimated exactly the way the
//! planner will estimate it once admitted (same estimator class, same
//! cold-start prior, same WCDE robustification), so admission and planning
//! never disagree about a job's size.

use crate::protocol::{Decision, JobSubmission};
use crate::ServeError;
use rush_core::cluster::ClusterModel;
use rush_core::onion::prefix_capacity_feasible;
use rush_core::RushConfig;

/// Estimates a job's robust remaining demand `η` (container·slots) and mean
/// task runtime `R` (slots) from its runtime samples, delegating to the
/// shared planner kernel's [`rush_planner::estimate_eta`] — the same
/// estimator + WCDE path the planner runs, so admission and planning never
/// disagree about a job's size.
///
/// With no samples yet, the submission's runtime hint (if any) seeds a
/// single pseudo-sample; otherwise the configured cold prior carries the
/// estimate.
///
/// # Errors
///
/// [`ServeError::Planner`] when estimation or robustification fails (e.g.
/// no samples and no prior).
pub fn estimate_eta(
    config: &RushConfig,
    samples: &[u64],
    runtime_hint: Option<f64>,
    remaining_tasks: usize,
) -> Result<(u64, f64), ServeError> {
    Ok(rush_planner::estimate_eta(config, samples, runtime_hint, remaining_tasks)?)
}

/// The admission deadline of a job: its declared budget, else the planning
/// horizon (an insensitive job still occupies `η` container·slots *by* the
/// horizon, which is what lets the probe detect saturation).
pub fn admission_deadline(config: &RushConfig, budget: Option<u64>) -> f64 {
    match budget {
        Some(b) => (b as f64).min(config.horizon).max(1.0),
        None => config.horizon,
    }
}

/// Probes one candidate against the resident reservations and returns the
/// verdict.
///
/// `reservations` are the `(remaining deadline, η)` pairs of currently
/// admitted jobs (deadlines in slots from now); the candidate is appended
/// with its own estimated `η` and [`admission_deadline`].
pub fn probe(
    config: &RushConfig,
    capacity: u32,
    reservations: &[(f64, u64)],
    candidate: &JobSubmission,
    candidate_eta: u64,
) -> Decision {
    let mut all = reservations.to_vec();
    all.push((admission_deadline(config, candidate.budget), candidate_eta));
    if prefix_capacity_feasible(&all, capacity) {
        Decision::Admit
    } else if candidate.is_insensitive() {
        Decision::Defer
    } else {
        Decision::Reject
    }
}

/// Decides whether a time-sensitive candidate that [`probe`] would reject
/// at the *current* (revocation-depressed) capacity deserves a
/// revocation-aware deferral instead.
///
/// Returns `true` — meaning the caller should park the job with
/// [`crate::protocol::DeferReason::AwaitingRestock`] — exactly when the
/// cluster model can both explain and price the deficit:
///
/// 1. the model predicts the deficit heals in `reclaim` slots
///    ([`ClusterModel::predicted_reclaim_slots`] attributes it
///    least-reliable-first; deficits reaching reserved capacity return
///    `None` and the reject stands);
/// 2. the candidate could still wait that long: `reclaim` is strictly
///    inside its [`admission_deadline`]; and
/// 3. once capacity is restored the candidate would actually fit: the
///    Theorem-2 probe passes at the *provisioned* capacity with the
///    candidate's deadline shrunk by the reclaim horizon (waiting consumes
///    deadline, not demand).
///
/// The verdict is advisory by construction — a parked job is re-probed
/// every epoch at whatever capacity then holds, so a wrong prediction
/// costs waiting time, never a guarantee.
pub fn reclaim_defer(
    config: &RushConfig,
    model: &ClusterModel,
    current_capacity: u32,
    reservations: &[(f64, u64)],
    candidate: &JobSubmission,
    candidate_eta: u64,
) -> bool {
    let Some(reclaim) = model.predicted_reclaim_slots(current_capacity) else {
        return false;
    };
    let deadline = admission_deadline(config, candidate.budget);
    let reclaim_f = reclaim as f64;
    if reclaim_f >= deadline {
        return false;
    }
    let mut all = reservations.to_vec();
    all.push((deadline - reclaim_f, candidate_eta));
    prefix_capacity_feasible(&all, model.total_capacity())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_utility::TimeUtility;

    fn cfg() -> RushConfig {
        RushConfig::default()
    }

    fn sub(utility: TimeUtility, budget: Option<u64>) -> JobSubmission {
        JobSubmission {
            label: "t".into(),
            tasks: 10,
            runtime_hint: Some(50.0),
            utility,
            budget,
            priority: 1,
        }
    }

    #[test]
    fn eta_scales_with_remaining_tasks() {
        let c = cfg();
        let (eta5, r5) = estimate_eta(&c, &[50, 60, 55], None, 5).expect("estimate");
        let (eta20, r20) = estimate_eta(&c, &[50, 60, 55], None, 20).expect("estimate");
        assert!(eta20 > eta5, "eta20={eta20} eta5={eta5}");
        assert!(r5 > 0.0 && r20 > 0.0);
        // Robustification only ever inflates the nominal demand.
        assert!(eta5 as f64 >= 5.0 * 50.0 * 0.5, "eta5={eta5}");
    }

    #[test]
    fn hint_seeds_the_cold_start() {
        let c = cfg();
        let (with_small_hint, _) = estimate_eta(&c, &[], Some(10.0), 10).expect("estimate");
        let (with_big_hint, _) = estimate_eta(&c, &[], Some(1000.0), 10).expect("estimate");
        assert!(
            with_big_hint > with_small_hint,
            "{with_big_hint} vs {with_small_hint}"
        );
        // No hint: the cold prior still produces an estimate.
        let (cold, _) = estimate_eta(&c, &[], None, 10).expect("cold prior");
        assert!(cold > 0);
    }

    #[test]
    fn feasible_candidate_is_admitted() {
        let c = cfg();
        let util = TimeUtility::sigmoid(1000.0, 3.0, 0.01).expect("valid");
        // 16 containers × 1000 slots of room, tiny resident load.
        let d = probe(&c, 16, &[(500.0, 100)], &sub(util, Some(1000)), 200);
        assert_eq!(d, Decision::Admit);
    }

    #[test]
    fn infeasible_sensitive_candidate_is_rejected() {
        let c = cfg();
        let util = TimeUtility::sigmoid(10.0, 3.0, 1.0).expect("valid");
        // Demand 10_000 by slot 10 on a 4-container cluster: hopeless.
        let d = probe(&c, 4, &[], &sub(util, Some(10)), 10_000);
        assert_eq!(d, Decision::Reject);
    }

    #[test]
    fn infeasible_insensitive_candidate_is_deferred() {
        let c = cfg();
        let util = TimeUtility::constant(1.0).expect("valid");
        // The horizon-deadline reservation already saturates the cluster, so
        // the insensitive candidate must wait.
        let full = (c.horizon, (c.horizon as u64) * 4);
        let d = probe(&c, 4, &[full], &sub(util, None), 10_000);
        assert_eq!(d, Decision::Defer);
    }

    #[test]
    fn admission_deadline_prefers_budget_and_clamps() {
        let c = cfg();
        assert!((admission_deadline(&c, Some(700)) - 700.0).abs() < 1e-12);
        assert!((admission_deadline(&c, None) - c.horizon).abs() < 1e-12);
        assert!((admission_deadline(&c, Some(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reclaim_defer_upgrades_a_spot_outage_reject() {
        let c = cfg();
        let util = TimeUtility::sigmoid(500.0, 3.0, 1.0).expect("valid");
        let model = ClusterModel::tiered(8, 0, 8);
        let cand = sub(util, Some(500));
        // 8 of 16 containers are out (the whole spot pool, reclaim horizon
        // 60 slots). Demand 5000 by slot 500 fails at capacity 8
        // (8·500 = 4000) …
        assert_eq!(probe(&c, 8, &[], &cand, 5000), Decision::Reject);
        // … but fits at the provisioned 16 with 440 slots left
        // (16·440 = 7040): defer.
        assert!(reclaim_defer(&c, &model, 8, &[], &cand, 5000));
    }

    #[test]
    fn reclaim_defer_refuses_unpredictable_or_hopeless_deficits() {
        let c = cfg();
        let util = TimeUtility::sigmoid(500.0, 3.0, 1.0).expect("valid");
        let model = ClusterModel::tiered(8, 0, 8);
        let cand = sub(util, Some(500));

        // Deficit reaches reserved capacity: no reclaim prediction.
        assert!(!reclaim_defer(&c, &model, 4, &[], &cand, 3000));
        // No deficit at all: the reject was demand-side, not supply-side.
        assert!(!reclaim_defer(&c, &model, 16, &[], &cand, 100_000));
        // Infeasible even at provisioned capacity within the shrunk
        // deadline (16·440 = 7040): waiting cannot save it.
        assert!(!reclaim_defer(&c, &model, 8, &[], &cand, 7041));

        // Reclaim horizon at/over the deadline: too late to matter.
        let tight = sub(TimeUtility::sigmoid(40.0, 3.0, 1.0).expect("valid"), Some(40));
        assert!(!reclaim_defer(&c, &model, 8, &[], &tight, 10));
    }

    #[test]
    fn reclaim_defer_accounts_for_resident_reservations() {
        let c = cfg();
        let util = TimeUtility::sigmoid(500.0, 3.0, 1.0).expect("valid");
        let model = ClusterModel::tiered(8, 0, 8);
        let cand = sub(util, Some(500));
        // Alone it would fit after restock …
        assert!(reclaim_defer(&c, &model, 8, &[], &cand, 3000));
        // … but residents already hold most of the provisioned prefix.
        let resident = (440.0, 16u64 * 440 - 1000);
        assert!(!reclaim_defer(&c, &model, 8, &[resident], &cand, 3000));
    }
}

//! `rush-loadgen` — open-loop Poisson load generator for `rushd`.
//!
//! ```text
//! rush-loadgen --addr 127.0.0.1:4117 [--jobs 100] [--workers 8]
//!              [--connections 0] [--binary] [--frontend-label threads]
//!              [--mean-ms 10] [--seed 7] [--epoch-ms 25]
//!              [--out BENCH_serve_latency.json] [--append]
//!              [--quick] [--shutdown]
//! ```
//!
//! `--connections N` switches to the open-loop reactor engine: one thread
//! multiplexing `N` concurrent nonblocking connections. `--binary`
//! negotiates the length-prefixed `RUSH1` codec. `--append` merges the
//! run into an existing report (for benchmark sweeps).
//!
//! Exits non-zero when any frame draws a protocol error, so CI's
//! serve-smoke step fails loudly on wire regressions.

use rush_serve::loadgen::{run, LoadgenConfig};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: rush-loadgen --addr A [--jobs N] [--workers N] [--connections N] \
                     [--binary] [--frontend-label L] [--mean-ms F] [--seed N] [--epoch-ms T] \
                     [--out PATH] [--append] [--quick] [--shutdown]";

fn take(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next().cloned().ok_or_else(|| format!("flag {flag} needs a value"))
}

fn parse_flags(args: &[String]) -> Result<LoadgenConfig, String> {
    let mut cfg = LoadgenConfig {
        addr: "127.0.0.1:4117".into(),
        jobs: 100,
        workers: 8,
        connections: 0,
        binary: false,
        frontend: "threads".into(),
        mean_interarrival_ms: 10.0,
        seed: 7,
        epoch_ms: 25,
        report_samples: true,
        shutdown: false,
        append: false,
        out: Some(PathBuf::from("BENCH_serve_latency.json")),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => cfg.addr = take(&mut it, flag)?,
            "--jobs" => {
                cfg.jobs = take(&mut it, flag)?.parse().map_err(|e| format!("--jobs: {e}"))?;
            }
            "--workers" => {
                cfg.workers =
                    take(&mut it, flag)?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--mean-ms" => {
                cfg.mean_interarrival_ms =
                    take(&mut it, flag)?.parse().map_err(|e| format!("--mean-ms: {e}"))?;
            }
            "--seed" => {
                cfg.seed = take(&mut it, flag)?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--epoch-ms" => {
                cfg.epoch_ms =
                    take(&mut it, flag)?.parse().map_err(|e| format!("--epoch-ms: {e}"))?;
            }
            "--connections" => {
                cfg.connections =
                    take(&mut it, flag)?.parse().map_err(|e| format!("--connections: {e}"))?;
            }
            "--binary" => cfg.binary = true,
            "--frontend-label" => cfg.frontend = take(&mut it, flag)?,
            "--out" => cfg.out = Some(PathBuf::from(take(&mut it, flag)?)),
            "--append" => cfg.append = true,
            "--quick" => {
                let quick = LoadgenConfig::quick(cfg.addr.clone(), cfg.epoch_ms);
                cfg.jobs = quick.jobs;
                cfg.workers = quick.workers;
                cfg.mean_interarrival_ms = quick.mean_interarrival_ms;
            }
            "--shutdown" => cfg.shutdown = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_flags(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&cfg) {
        Ok(report) => {
            println!(
                "loadgen: {} submitted over {} conns ({}), {} admitted, {} deferred, \
                 {} rejected; p50 {} us, p99 {} us, p999 {} us; {:.0} sub/s; \
                 {:.1}% within epoch deadline; {} epochs",
                report.submitted,
                cfg.effective_connections(),
                cfg.codec(),
                report.admitted,
                report.deferred,
                report.rejected,
                report.client_latency_us.quantile(0.5),
                report.client_latency_us.quantile(0.99),
                report.client_latency_us.quantile(0.999),
                report.submissions_per_sec(),
                100.0 * report.within_deadline_frac(),
                report.epochs,
            );
            if report.protocol_errors > 0 {
                eprintln!("loadgen: {} protocol errors", report.protocol_errors);
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}

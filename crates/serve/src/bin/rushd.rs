//! `rushd` — the RUSH scheduling daemon.
//!
//! ```text
//! rushd [--addr 127.0.0.1:4117] [--capacity 16] [--shards 1]
//!       [--frontend threads|reactor] [--reactors 1]
//!       [--epoch-ms 25] [--batch 32] [--ms-per-slot 1000]
//!       [--snapshot PATH] [--theta 0.9] [--delta 0.7]
//! ```
//!
//! `--frontend reactor` serves connections on nonblocking epoll event
//! loops (`--reactors N` of them) instead of one thread per connection;
//! both frontends speak JSON and the negotiated binary codec.
//!
//! Prints `rushd listening on ADDR` once the socket is bound (CI's
//! serve-smoke step greps for it), then serves until a client sends the
//! `shutdown` op. When `--snapshot` is given, an existing snapshot is
//! restored on startup and a new one is written on graceful shutdown.

use rush_serve::server::{serve, ServeConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn take(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next().cloned().ok_or_else(|| format!("flag {flag} needs a value"))
}

fn parse_flags(args: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig { addr: "127.0.0.1:4117".into(), ..ServeConfig::default() };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => cfg.addr = take(&mut it, flag)?,
            "--capacity" => {
                cfg.capacity =
                    take(&mut it, flag)?.parse().map_err(|e| format!("--capacity: {e}"))?;
            }
            "--shards" => {
                cfg.shards =
                    take(&mut it, flag)?.parse().map_err(|e| format!("--shards: {e}"))?;
            }
            "--epoch-ms" => {
                cfg.epoch_ms =
                    take(&mut it, flag)?.parse().map_err(|e| format!("--epoch-ms: {e}"))?;
            }
            "--batch" => {
                cfg.epoch_max_batch =
                    take(&mut it, flag)?.parse().map_err(|e| format!("--batch: {e}"))?;
            }
            "--ms-per-slot" => {
                cfg.ms_per_slot =
                    take(&mut it, flag)?.parse().map_err(|e| format!("--ms-per-slot: {e}"))?;
            }
            "--frontend" => {
                cfg.frontend =
                    take(&mut it, flag)?.parse().map_err(|e| format!("--frontend: {e}"))?;
            }
            "--reactors" => {
                cfg.reactors =
                    take(&mut it, flag)?.parse().map_err(|e| format!("--reactors: {e}"))?;
            }
            "--snapshot" => cfg.snapshot_path = Some(PathBuf::from(take(&mut it, flag)?)),
            "--theta" => {
                cfg.rush.theta =
                    take(&mut it, flag)?.parse().map_err(|e| format!("--theta: {e}"))?;
            }
            "--delta" => {
                cfg.rush.delta =
                    take(&mut it, flag)?.parse().map_err(|e| format!("--delta: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(cfg)
}

const USAGE: &str = "usage: rushd [--addr A] [--capacity N] [--shards N] \
                     [--frontend threads|reactor] [--reactors N] [--epoch-ms T] [--batch N] \
                     [--ms-per-slot T] [--snapshot PATH] [--theta F] [--delta F]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_flags(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let handle = match serve(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("rushd: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("rushd listening on {}", handle.local_addr());
    match handle.join() {
        Ok(waits) => {
            println!(
                "rushd: served {} submissions (p50 wait {} us, p99 {} us); bye",
                waits.count(),
                waits.quantile(0.5),
                waits.quantile(0.99)
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rushd: {e}");
            ExitCode::FAILURE
        }
    }
}

//! The daemon's job table and epoch-batched planning.
//!
//! [`ServeState`] is deliberately *pure with respect to time*: every method
//! that can replan takes an explicit logical `now_slot`, and the plan is a
//! deterministic function of (config, capacity, job table, `now_slot`).
//! The server layer owns the wall clock and quantizes it to slots; tests
//! and the snapshot/restore path drive the state with explicit slots and
//! get bit-identical plans.
//!
//! **Epochs.** Submissions are not planned one at a time. The server
//! collects a batch (bounded by count and by wall-clock age) and hands it
//! to [`ServeState::submit_epoch`], which runs admission per candidate —
//! each admitted job's reservation immediately counts against the next
//! candidate in the same epoch — and then replans *once* via
//! [`compute_plan_cached`], so the WCDE/peel/mapping cost is amortized
//! across the whole batch. Parked (deferred) jobs are re-probed at the
//! start of every epoch, in submission order.

use crate::admission::{admission_deadline, estimate_eta, probe};
use crate::protocol::{Decision, ErrorCode, JobSubmission, PlanRow, StatsReport, WireError};
use crate::ServeError;
use rush_core::plan::{compute_plan_cached, Plan, PlanCache, PlanInput};
use rush_core::RushConfig;
use std::borrow::Cow;
use std::collections::BTreeMap;

/// One resident job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobState {
    /// The submission as received.
    pub submission: JobSubmission,
    /// Completed-task runtime samples (slots), in arrival order.
    pub samples: Vec<u64>,
    /// Tasks that have not reported a sample yet.
    pub remaining_tasks: u64,
    /// Logical slot at which the job was admitted (or first parked).
    pub arrived_slot: u64,
    /// Whether the job is parked by admission control (not planned).
    pub parked: bool,
}

/// Monotonic daemon counters (all start at zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Planning epochs closed.
    pub epochs: u64,
    /// Submissions admitted (including unparkings).
    pub admitted: u64,
    /// Submissions parked at least once.
    pub deferred: u64,
    /// Submissions rejected.
    pub rejected: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Jobs fully sampled (all tasks reported).
    pub completed: u64,
    /// Runtime samples ingested.
    pub samples: u64,
}

/// The daemon's entire mutable state (minus sockets and clocks).
#[derive(Debug, Clone)]
pub struct ServeState {
    config: RushConfig,
    capacity: u32,
    jobs: BTreeMap<u64, JobState>,
    next_id: u64,
    cache: PlanCache,
    plan: Plan,
    /// Job ids of `plan.entries`, parallel, ascending.
    plan_ids: Vec<u64>,
    /// Slot the current plan was computed at; `None` = stale.
    plan_slot: Option<u64>,
    counters: Counters,
}

impl ServeState {
    /// Creates an empty state.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for zero capacity, [`ServeError::Core`] for
    /// an invalid [`RushConfig`].
    pub fn new(config: RushConfig, capacity: u32) -> Result<Self, ServeError> {
        config.validate()?;
        if capacity == 0 {
            return Err(ServeError::Config("capacity must be >= 1".into()));
        }
        Ok(ServeState {
            config,
            capacity,
            jobs: BTreeMap::new(),
            next_id: 0,
            cache: PlanCache::new(),
            plan: Plan::default(),
            plan_ids: Vec::new(),
            plan_slot: None,
            counters: Counters::default(),
        })
    }

    /// Rebuilds a state from snapshot parts (see [`crate::snapshot`]).
    ///
    /// # Errors
    ///
    /// Same as [`ServeState::new`], plus [`ServeError::Snapshot`] when a
    /// job id is not below `next_id`.
    pub fn from_parts(
        config: RushConfig,
        capacity: u32,
        jobs: Vec<(u64, JobState)>,
        next_id: u64,
        counters: Counters,
    ) -> Result<Self, ServeError> {
        let mut state = ServeState::new(config, capacity)?;
        for (id, job) in jobs {
            if id >= next_id {
                return Err(ServeError::Snapshot(format!(
                    "job id {id} is not below next_id {next_id}"
                )));
            }
            if state.jobs.insert(id, job).is_some() {
                return Err(ServeError::Snapshot(format!("duplicate job id {id}")));
            }
        }
        state.next_id = next_id;
        state.counters = counters;
        Ok(state)
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &RushConfig {
        &self.config
    }

    /// Cluster capacity in containers.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Next job id to be assigned.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// The counters.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Iterates all resident jobs (planned and parked) in id order.
    pub fn jobs(&self) -> impl Iterator<Item = (u64, &JobState)> {
        self.jobs.iter().map(|(id, j)| (*id, j))
    }

    /// Replans if the cached plan is stale or was computed at a different
    /// slot.
    fn ensure_plan(&mut self, now_slot: u64) -> Result<(), ServeError> {
        if self.plan_slot == Some(now_slot) {
            return Ok(());
        }
        let ids: Vec<u64> =
            self.jobs.iter().filter(|(_, j)| !j.parked).map(|(id, _)| *id).collect();
        let inputs: Vec<PlanInput<'_>> = ids
            .iter()
            .map(|id| {
                let j = &self.jobs[id];
                PlanInput {
                    samples: Cow::Borrowed(j.samples.as_slice()),
                    remaining_tasks: j.remaining_tasks as usize,
                    running: 0,
                    failed_attempts: 0,
                    age: now_slot.saturating_sub(j.arrived_slot) as f64,
                    utility: j.submission.utility,
                }
            })
            .collect();
        self.plan = compute_plan_cached(&self.config, self.capacity, &inputs, &mut self.cache)?;
        self.plan_ids = ids;
        self.plan_slot = Some(now_slot);
        Ok(())
    }

    /// The `(remaining deadline, η)` reservations of the planned jobs, read
    /// off the current plan (call [`Self::ensure_plan`] first).
    fn reservations(&self, now_slot: u64) -> Vec<(f64, u64)> {
        self.plan_ids
            .iter()
            .zip(self.plan.entries.iter())
            .map(|(id, entry)| {
                let j = &self.jobs[id];
                let age = now_slot.saturating_sub(j.arrived_slot) as f64;
                let d = (admission_deadline(&self.config, j.submission.budget) - age)
                    .clamp(1.0, self.config.horizon);
                (d, entry.eta)
            })
            .collect()
    }

    /// Closes one planning epoch: re-probes parked jobs, admits / defers /
    /// rejects each new submission (in order, each admission's reservation
    /// visible to the next candidate), then replans **once**.
    ///
    /// Returns one `(decision, job id)` pair per submission, in order; the
    /// id is `None` exactly when the submission was rejected.
    ///
    /// # Errors
    ///
    /// [`ServeError::Core`] when the final replan fails; per-candidate
    /// estimation failures downgrade that candidate to a rejection rather
    /// than aborting the epoch.
    pub fn submit_epoch(
        &mut self,
        subs: Vec<JobSubmission>,
        now_slot: u64,
    ) -> Result<Vec<(Decision, Option<u64>)>, ServeError> {
        self.ensure_plan(now_slot)?;
        let mut reservations = self.reservations(now_slot);

        // Re-probe parked jobs first: deferred work gets the room freed
        // since the last epoch before new arrivals can claim it.
        let parked: Vec<u64> =
            self.jobs.iter().filter(|(_, j)| j.parked).map(|(id, _)| *id).collect();
        for id in parked {
            let (eta, sub) = {
                let j = &self.jobs[&id];
                let eta = match estimate_eta(
                    &self.config,
                    &j.samples,
                    j.submission.runtime_hint,
                    j.remaining_tasks as usize,
                ) {
                    Ok((eta, _)) => eta,
                    Err(_) => continue,
                };
                (eta, j.submission.clone())
            };
            if probe(&self.config, self.capacity, &reservations, &sub, eta) == Decision::Admit {
                if let Some(j) = self.jobs.get_mut(&id) {
                    j.parked = false;
                }
                self.counters.admitted += 1;
                reservations.push((admission_deadline(&self.config, sub.budget), eta));
            }
        }

        let mut verdicts = Vec::with_capacity(subs.len());
        for sub in subs {
            // New submissions carry no samples; admission sizes them from
            // the hint or the cold prior.
            let eta = estimate_eta(&self.config, &[], sub.runtime_hint, sub.tasks as usize)
                .ok()
                .map(|(eta, _)| eta);
            let decision = match eta {
                Some(eta) => probe(&self.config, self.capacity, &reservations, &sub, eta),
                // A submission the estimator cannot size cannot be probed;
                // refusing it is the conservative verdict.
                None => Decision::Reject,
            };
            let id = match decision {
                Decision::Admit | Decision::Defer => {
                    let id = self.next_id;
                    self.next_id += 1;
                    if decision == Decision::Admit {
                        self.counters.admitted += 1;
                        if let Some(eta) = eta {
                            reservations
                                .push((admission_deadline(&self.config, sub.budget), eta));
                        }
                    } else {
                        self.counters.deferred += 1;
                    }
                    self.jobs.insert(
                        id,
                        JobState {
                            remaining_tasks: sub.tasks,
                            samples: Vec::new(),
                            arrived_slot: now_slot,
                            parked: decision == Decision::Defer,
                            submission: sub,
                        },
                    );
                    Some(id)
                }
                Decision::Reject => {
                    self.counters.rejected += 1;
                    None
                }
            };
            verdicts.push((decision, id));
        }

        self.counters.epochs += 1;
        self.plan_slot = None;
        self.ensure_plan(now_slot)?;
        Ok(verdicts)
    }

    /// Ingests one completed-task runtime sample. Returns `true` when the
    /// job's last task reported (the job is then dropped from the table).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownJob`] for a non-resident id.
    pub fn report_sample(&mut self, job: u64, runtime: u64) -> Result<bool, WireError> {
        let j = self.jobs.get_mut(&job).ok_or_else(|| unknown_job(job))?;
        j.samples.push(runtime);
        j.remaining_tasks = j.remaining_tasks.saturating_sub(1);
        self.counters.samples += 1;
        self.plan_slot = None;
        if j.remaining_tasks == 0 {
            self.jobs.remove(&job);
            self.counters.completed += 1;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Removes a job (planned or parked).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownJob`] for a non-resident id.
    pub fn cancel(&mut self, job: u64) -> Result<(), WireError> {
        if self.jobs.remove(&job).is_none() {
            return Err(unknown_job(job));
        }
        self.counters.cancelled += 1;
        self.plan_slot = None;
        Ok(())
    }

    /// The current plan table (replanning if stale), optionally filtered to
    /// one job.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownJob`] / [`ErrorCode::Deferred`] for a filter id
    /// that is absent / parked; [`ServeError`]-shaped internal errors are
    /// reported as [`ErrorCode::Internal`].
    pub fn rows(
        &mut self,
        now_slot: u64,
        filter: Option<u64>,
    ) -> Result<Vec<PlanRow>, WireError> {
        if let Some(id) = filter {
            self.check_planned(id)?;
        }
        self.ensure_plan(now_slot).map_err(internal)?;
        Ok(self
            .plan_ids
            .iter()
            .zip(self.plan.entries.iter())
            .filter(|(id, _)| filter.is_none() || filter == Some(**id))
            .map(|(id, e)| {
                let j = &self.jobs[id];
                PlanRow {
                    job: *id,
                    label: j.submission.label.clone(),
                    eta: e.eta,
                    task_len: e.task_len,
                    target: e.target,
                    level: e.level,
                    desired_now: e.desired_now,
                    planned_completion: e.planned_completion,
                    impossible: e.impossible,
                    remaining_tasks: j.remaining_tasks,
                }
            })
            .collect())
    }

    /// The Theorem-3 robust completion prediction for one planned job:
    /// `(target T, task_len R, bound T+R, planned_completion, impossible)`.
    ///
    /// # Errors
    ///
    /// Same classes as [`Self::rows`].
    pub fn predict(
        &mut self,
        job: u64,
        now_slot: u64,
    ) -> Result<(f64, u64, f64, u64, bool), WireError> {
        self.check_planned(job)?;
        self.ensure_plan(now_slot).map_err(internal)?;
        let idx = self
            .plan_ids
            .iter()
            .position(|id| *id == job)
            .ok_or_else(|| unknown_job(job))?;
        let e = &self.plan.entries[idx];
        Ok((e.target, e.task_len, e.target + e.task_len as f64, e.planned_completion, e.impossible))
    }

    /// The counter snapshot. A stale plan is fine for counters, so this
    /// never forces a replan.
    pub fn stats(&mut self, now_slot: u64) -> StatsReport {
        let parked = self.jobs.values().filter(|j| j.parked).count() as u64;
        StatsReport {
            active_jobs: self.jobs.len() as u64 - parked,
            deferred_jobs: parked,
            epochs: self.counters.epochs,
            admitted: self.counters.admitted,
            deferred: self.counters.deferred,
            rejected: self.counters.rejected,
            cancelled: self.counters.cancelled,
            completed: self.counters.completed,
            samples: self.counters.samples,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            now_slot,
        }
    }

    fn check_planned(&self, job: u64) -> Result<(), WireError> {
        match self.jobs.get(&job) {
            None => Err(unknown_job(job)),
            Some(j) if j.parked => Err(WireError {
                code: ErrorCode::Deferred,
                message: format!("job {job} is deferred by admission control"),
            }),
            Some(_) => Ok(()),
        }
    }
}

fn unknown_job(job: u64) -> WireError {
    WireError { code: ErrorCode::UnknownJob, message: format!("job {job} is not resident") }
}

fn internal(e: ServeError) -> WireError {
    WireError { code: ErrorCode::Internal, message: e.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_utility::TimeUtility;

    fn sub(label: &str, tasks: u64, budget: u64) -> JobSubmission {
        JobSubmission {
            label: label.into(),
            tasks,
            runtime_hint: Some(50.0),
            utility: TimeUtility::sigmoid(budget as f64, 3.0, 10.0 / budget as f64)
                .expect("valid"),
            budget: Some(budget),
            priority: 1,
        }
    }

    fn insensitive(label: &str, tasks: u64) -> JobSubmission {
        JobSubmission {
            label: label.into(),
            tasks,
            runtime_hint: Some(50.0),
            utility: TimeUtility::constant(1.0).expect("valid"),
            budget: None,
            priority: 1,
        }
    }

    #[test]
    fn one_epoch_plans_a_batch_with_one_miss() {
        let mut s = ServeState::new(RushConfig::default(), 32).expect("state");
        let verdicts = s
            .submit_epoch(vec![sub("a", 10, 5000), sub("b", 20, 8000)], 0)
            .expect("epoch");
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts.iter().all(|(d, id)| *d == Decision::Admit && id.is_some()));
        assert_eq!(s.counters().epochs, 1);
        assert_eq!(s.counters().admitted, 2);
        // The epoch replanned exactly once: one per-job solve each.
        assert_eq!(s.stats(0).cache_misses, 2);
        let rows = s.rows(0, None).expect("rows");
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.eta > 0));
        // Re-reading the plan at the same slot hits the in-state plan, and
        // at a new slot goes through the cache.
        let before = s.stats(0).cache_misses;
        let _ = s.rows(0, None).expect("rows");
        assert_eq!(s.stats(0).cache_misses, before);
    }

    #[test]
    fn overcommit_rejects_sensitive_and_defers_insensitive() {
        let mut s = ServeState::new(RushConfig::default(), 2).expect("state");
        // 50-slot tasks × 400 tasks on 2 containers: ~10000 slots of work,
        // with a budget of 100 slots — hopeless for a sensitive job.
        let verdicts = s
            .submit_epoch(vec![sub("huge", 400, 100), insensitive("patient", 400)], 0)
            .expect("epoch");
        assert_eq!(verdicts[0].0, Decision::Reject);
        assert_eq!(verdicts[0].1, None);
        assert_eq!(s.counters().rejected, 1);
        // The insensitive twin is parked, not dropped. (Whether it is
        // parked or admitted depends on the horizon; with the default 1e6
        // horizon 10000 slots of work fit, so it is admitted.)
        assert!(verdicts[1].1.is_some());
    }

    #[test]
    fn deferred_job_is_admitted_when_room_frees_up() {
        let cfg = RushConfig { horizon: 1000.0, ..RushConfig::default() };
        let mut s = ServeState::new(cfg, 2).expect("state");
        // One bulk job (~20 × 50 = 1000 mean demand, more after WCDE
        // inflation) fits the 2 × 1000 container·slot horizon; two don't.
        let verdicts =
            s.submit_epoch(vec![insensitive("filler", 20)], 0).expect("epoch");
        assert_eq!(verdicts[0].0, Decision::Admit);
        let filler = verdicts[0].1.expect("id");
        // A second bulk job no longer fits and is deferred.
        let verdicts = s.submit_epoch(vec![insensitive("waiter", 20)], 1).expect("epoch");
        assert_eq!(verdicts[0].0, Decision::Defer);
        let waiter = verdicts[0].1.expect("id");
        assert!(s.rows(1, Some(waiter)).is_err(), "parked job has no plan row");
        // Cancel the filler; the next epoch unparks the waiter.
        s.cancel(filler).expect("cancel");
        let verdicts = s.submit_epoch(vec![], 2).expect("epoch");
        assert!(verdicts.is_empty());
        assert_eq!(s.stats(2).deferred_jobs, 0);
        assert_eq!(s.rows(2, Some(waiter)).expect("rows").len(), 1);
    }

    #[test]
    fn samples_shrink_the_job_and_complete_it() {
        let mut s = ServeState::new(RushConfig::default(), 8).expect("state");
        let verdicts = s.submit_epoch(vec![sub("j", 3, 5000)], 0).expect("epoch");
        let id = verdicts[0].1.expect("id");
        assert!(!s.report_sample(id, 48).expect("sample"));
        assert!(!s.report_sample(id, 52).expect("sample"));
        assert!(s.report_sample(id, 50).expect("sample"), "last task completes the job");
        assert_eq!(s.counters().completed, 1);
        assert_eq!(s.counters().samples, 3);
        assert!(matches!(
            s.report_sample(id, 1).unwrap_err().code,
            ErrorCode::UnknownJob
        ));
        assert!(s.rows(1, None).expect("rows").is_empty());
    }

    #[test]
    fn predict_returns_the_theorem3_bound() {
        let mut s = ServeState::new(RushConfig::default(), 8).expect("state");
        let id = s.submit_epoch(vec![sub("j", 10, 5000)], 0).expect("epoch")[0]
            .1
            .expect("id");
        let (target, task_len, bound, planned, impossible) =
            s.predict(id, 0).expect("predict");
        assert!(target > 0.0);
        assert!(task_len > 0);
        assert!((bound - (target + task_len as f64)).abs() < 1e-9);
        assert!(planned > 0);
        assert!(!impossible);
        assert!(matches!(s.predict(999, 0).unwrap_err().code, ErrorCode::UnknownJob));
    }

    #[test]
    fn restored_state_reproduces_the_plan_bit_identically() {
        let mut a = ServeState::new(RushConfig::default(), 16).expect("state");
        a.submit_epoch(vec![sub("x", 12, 4000), sub("y", 30, 9000)], 5).expect("epoch");
        let x = a.plan_ids[0];
        a.report_sample(x, 47).expect("sample");
        let rows_a = a.rows(9, None).expect("rows");

        // Clone through from_parts, as snapshot restore does.
        let jobs: Vec<(u64, JobState)> = a.jobs().map(|(id, j)| (id, j.clone())).collect();
        let mut b = ServeState::from_parts(
            *a.config(),
            a.capacity(),
            jobs,
            a.next_id(),
            a.counters(),
        )
        .expect("restore");
        let rows_b = b.rows(9, None).expect("rows");
        assert_eq!(rows_a, rows_b, "restored plan must be bit-identical");
    }

    #[test]
    fn from_parts_rejects_inconsistent_ids() {
        let jobs = vec![(
            7u64,
            JobState {
                submission: sub("j", 1, 100),
                samples: vec![],
                remaining_tasks: 1,
                arrived_slot: 0,
                parked: false,
            },
        )];
        let err = ServeState::from_parts(RushConfig::default(), 4, jobs, 5, Counters::default());
        assert!(matches!(err, Err(ServeError::Snapshot(_))));
    }
}

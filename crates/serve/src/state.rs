//! The daemon's protocol/epoch/admission layer over the shared planner
//! kernel.
//!
//! [`ServeState`] owns no planning state of its own anymore: the job
//! registry, sample history, plan cache and current plan live in one
//! [`rush_planner::PlannerCore`] (in own-samples cold-start mode, so plans
//! depend only on explicitly ingested state and snapshot/restore stays
//! bit-exact). What remains here is the daemon-specific rind: wire
//! submissions, admission verdicts, monotonic counters, and the
//! translation from kernel errors to wire errors.
//!
//! [`ServeState`] is deliberately *pure with respect to time*: every method
//! that can replan takes an explicit logical `now_slot`, and the plan is a
//! deterministic function of (config, capacity, job table, `now_slot`).
//! The server layer owns the wall clock and quantizes it to slots; tests
//! and the snapshot/restore path drive the state with explicit slots and
//! get bit-identical plans.
//!
//! **Epochs.** Submissions are not planned one at a time. The server
//! collects a batch (bounded by count and by wall-clock age) and hands it
//! to [`ServeState::submit_epoch`], which runs admission per candidate —
//! each admitted job's reservation immediately counts against the next
//! candidate in the same epoch — and then replans *once* via the kernel,
//! so the WCDE/peel/mapping cost is amortized across the whole batch.
//! Parked (deferred) jobs are re-probed at the start of every epoch, in
//! submission order.

use crate::admission::{admission_deadline, estimate_eta, probe, reclaim_defer};
use crate::protocol::{
    Decision, DeferReason, ErrorCode, JobSubmission, PlanRow, StatsReport, WireError,
};
use crate::ServeError;
use rush_core::cluster::ClusterModel;
use rush_core::RushConfig;
use rush_planner::{JobId, JobRecord, JobSpec, PlannerError, PlannerEvent, ShardedPlanner};
use std::collections::BTreeMap;

/// One resident job, as exchanged with the snapshot layer. Internally the
/// kernel's [`JobRecord`] is the source of truth; this type reassembles the
/// record with its wire submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobState {
    /// The submission as received.
    pub submission: JobSubmission,
    /// Completed-task runtime samples (slots), in arrival order.
    pub samples: Vec<u64>,
    /// Tasks that have not reported a sample yet.
    pub remaining_tasks: u64,
    /// Logical slot at which the job was admitted (or first parked).
    pub arrived_slot: u64,
    /// Whether the job is parked by admission control (not planned).
    pub parked: bool,
}

/// Monotonic daemon counters (all start at zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Planning epochs closed.
    pub epochs: u64,
    /// Submissions admitted (including unparkings).
    pub admitted: u64,
    /// Submissions parked at least once.
    pub deferred: u64,
    /// Submissions rejected.
    pub rejected: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Jobs fully sampled (all tasks reported).
    pub completed: u64,
    /// Runtime samples ingested.
    pub samples: u64,
}

/// One admission verdict from [`ServeState::submit_epoch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochVerdict {
    /// The admission decision.
    pub decision: Decision,
    /// The assigned job id; `None` exactly when the submission was
    /// rejected.
    pub job: Option<u64>,
    /// Why a deferral happened; `Some` exactly when `decision` is
    /// [`Decision::Defer`].
    pub defer_reason: Option<DeferReason>,
}

/// The daemon's entire mutable state (minus sockets and clocks): the
/// planner kernel plus the wire submissions and counters.
#[derive(Debug, Clone)]
pub struct ServeState {
    planner: ShardedPlanner,
    /// The original wire submission of every resident job (the kernel's
    /// registry carries the planning projection of it).
    subs: BTreeMap<u64, JobSubmission>,
    counters: Counters,
    /// The typed container supply, when the operator described one.
    /// Admission consults it to upgrade supply-side rejections into
    /// [`DeferReason::AwaitingRestock`] deferrals.
    model: Option<ClusterModel>,
}

impl ServeState {
    /// Creates an empty state with a single planner shard (bit-identical
    /// to the pre-sharding daemon).
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for zero capacity, [`ServeError::Planner`]
    /// for an invalid [`RushConfig`].
    pub fn new(config: RushConfig, capacity: u32) -> Result<Self, ServeError> {
        Self::with_shards(config, capacity, 1)
    }

    /// Creates an empty state whose planner is partitioned across
    /// `shards` kernels (see [`rush_planner::ShardedPlanner`]): jobs are
    /// routed by label hash, each shard plans a capacity slice, and an
    /// event replans only the shard it dirtied.
    ///
    /// # Errors
    ///
    /// As [`ServeState::new`], plus a config error when
    /// `capacity < shards`.
    pub fn with_shards(
        config: RushConfig,
        capacity: u32,
        shards: usize,
    ) -> Result<Self, ServeError> {
        Ok(ServeState {
            planner: ShardedPlanner::new(config, capacity, shards)?,
            subs: BTreeMap::new(),
            counters: Counters::default(),
            model: None,
        })
    }

    /// Attaches a typed cluster model, turning on revocation-aware
    /// admission: a time-sensitive candidate that fails the Theorem-2
    /// probe at the current capacity is parked (instead of rejected) when
    /// the model predicts the deficit heals inside the candidate's
    /// deadline (see [`crate::admission::reclaim_defer`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when the model fails
    /// [`ClusterModel::validate`] or provisions fewer containers than the
    /// state's current capacity (observed capacity can sag below the
    /// provisioned total during an outage, never exceed it).
    pub fn with_cluster_model(mut self, model: ClusterModel) -> Result<Self, ServeError> {
        model.validate().map_err(|e| ServeError::Config(format!("cluster model: {e}")))?;
        if self.capacity() > model.total_capacity() {
            return Err(ServeError::Config(format!(
                "cluster model provisions {} containers but the daemon serves {}",
                model.total_capacity(),
                self.capacity()
            )));
        }
        self.model = Some(model);
        Ok(self)
    }

    /// The attached cluster model, if any.
    pub fn cluster_model(&self) -> Option<&ClusterModel> {
        self.model.as_ref()
    }

    /// Rebuilds a state from snapshot parts (see [`crate::snapshot`]).
    ///
    /// # Errors
    ///
    /// Same as [`ServeState::new`], plus [`ServeError::Snapshot`] when a
    /// job id is duplicated or not below `next_id`.
    pub fn from_parts(
        config: RushConfig,
        capacity: u32,
        jobs: Vec<(u64, JobState)>,
        next_id: u64,
        counters: Counters,
    ) -> Result<Self, ServeError> {
        let mut subs = BTreeMap::new();
        let records: Vec<(JobId, JobRecord)> = jobs
            .into_iter()
            .map(|(id, j)| {
                let record = JobRecord {
                    label: j.submission.label.clone(),
                    utility: j.submission.utility,
                    remaining_tasks: j.remaining_tasks,
                    arrived_slot: j.arrived_slot,
                    runtime_hint: j.submission.runtime_hint,
                    parked: j.parked,
                    samples: j.samples,
                    failed_attempts: 0,
                };
                subs.insert(id, j.submission);
                (JobId(id), record)
            })
            .collect();
        // Snapshots restore into a single shard: the format is
        // shard-agnostic and a multi-shard daemon snapshots per shard.
        let planner = ShardedPlanner::from_parts(config, capacity, 1, records, next_id)?;
        Ok(ServeState { planner, subs, counters, model: None })
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &RushConfig {
        self.planner.config()
    }

    /// Cluster capacity in containers.
    pub fn capacity(&self) -> u32 {
        self.planner.capacity()
    }

    /// Next job id to be assigned.
    pub fn next_id(&self) -> u64 {
        self.planner.next_id()
    }

    /// Re-sizes the cluster through the planner's capacity-event path
    /// (the same [`PlannerEvent::CapacityChange`] the simulator injects),
    /// so the delta-peel divergence machinery — not an out-of-band reset —
    /// absorbs the change.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadField`] when the kernel refuses the capacity
    /// (e.g. zero, or fewer containers than planner shards); other kernel
    /// failures surface as [`ErrorCode::Internal`].
    pub fn set_capacity(&mut self, capacity: u32) -> Result<(), WireError> {
        self.planner.apply(PlannerEvent::CapacityChange { capacity }).map_err(|e| match e {
            PlannerError::Config(msg) => WireError {
                code: ErrorCode::BadField,
                message: format!("capacity: {msg}"),
            },
            other => internal(ServeError::from(other)),
        })?;
        Ok(())
    }

    /// The counters.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// The planner (plan, deltas, cache counters) — read-only.
    pub fn planner(&self) -> &ShardedPlanner {
        &self.planner
    }

    /// Iterates all resident jobs (planned and parked) in id order,
    /// reassembling each kernel record with its wire submission.
    pub fn jobs(&self) -> impl Iterator<Item = (u64, JobState)> + '_ {
        self.planner.jobs().filter_map(|(id, record)| {
            // Every resident job has a submission; a missing one would be
            // an internal bookkeeping bug, so skip it rather than panic
            // the daemon mid-snapshot.
            let submission = self.subs.get(&id.0)?.clone();
            Some((
                id.0,
                JobState {
                    submission,
                    samples: record.samples.clone(),
                    remaining_tasks: record.remaining_tasks,
                    arrived_slot: record.arrived_slot,
                    parked: record.parked,
                },
            ))
        })
    }

    /// The `(remaining deadline, η)` reservations of the planned jobs, read
    /// off the kernel's current plan (replan first).
    fn reservations(&self, now_slot: u64) -> Vec<(f64, u64)> {
        let config = self.planner.config();
        self.planner
            .planned()
            .filter_map(|(id, entry)| {
                let record = self.planner.job(id)?;
                let sub = self.subs.get(&id.0)?;
                let age = now_slot.saturating_sub(record.arrived_slot) as f64;
                let d = (admission_deadline(config, sub.budget) - age)
                    .clamp(1.0, config.horizon);
                Some((d, entry.eta))
            })
            .collect()
    }

    /// Closes one planning epoch: re-probes parked jobs, admits / defers /
    /// rejects each new submission (in order, each admission's reservation
    /// visible to the next candidate), then replans **once**.
    ///
    /// Returns one [`EpochVerdict`] per submission, in order; the job id
    /// is `None` exactly when the submission was rejected.
    ///
    /// With a cluster model attached ([`Self::with_cluster_model`]), a
    /// time-sensitive candidate the probe rejects at the current
    /// (revocation-depressed) capacity is parked with
    /// [`DeferReason::AwaitingRestock`] when the model predicts the
    /// deficit heals inside its deadline; ordinary insensitive deferrals
    /// carry [`DeferReason::Overcommit`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Planner`] when the final replan fails; per-candidate
    /// estimation failures downgrade that candidate to a rejection rather
    /// than aborting the epoch.
    pub fn submit_epoch(
        &mut self,
        subs: Vec<JobSubmission>,
        now_slot: u64,
    ) -> Result<Vec<EpochVerdict>, ServeError> {
        self.planner.plan_at(now_slot)?;
        let mut reservations = self.reservations(now_slot);

        // Re-probe parked jobs first: deferred work gets the room freed
        // since the last epoch before new arrivals can claim it.
        let parked: Vec<JobId> = self
            .planner
            .jobs()
            .filter(|(_, j)| j.parked)
            .map(|(id, _)| id)
            .collect();
        for id in parked {
            let (eta, sub) = {
                let Some(record) = self.planner.job(id) else { continue };
                let Some(sub) = self.subs.get(&id.0) else { continue };
                let eta = match estimate_eta(
                    self.planner.config(),
                    &record.samples,
                    sub.runtime_hint,
                    record.remaining_tasks as usize,
                ) {
                    Ok((eta, _)) => eta,
                    Err(_) => continue,
                };
                (eta, sub.clone())
            };
            let verdict =
                probe(self.planner.config(), self.capacity(), &reservations, &sub, eta);
            if verdict == Decision::Admit {
                let _ = self.planner.set_parked(id, false);
                self.counters.admitted += 1;
                reservations.push((admission_deadline(self.planner.config(), sub.budget), eta));
            }
        }

        let mut verdicts = Vec::with_capacity(subs.len());
        for sub in subs {
            // New submissions carry no samples; admission sizes them from
            // the hint or the cold prior.
            let eta =
                estimate_eta(self.planner.config(), &[], sub.runtime_hint, sub.tasks as usize)
                    .ok()
                    .map(|(eta, _)| eta);
            let decision = match eta {
                Some(eta) => {
                    probe(self.planner.config(), self.capacity(), &reservations, &sub, eta)
                }
                // A submission the estimator cannot size cannot be probed;
                // refusing it is the conservative verdict.
                None => Decision::Reject,
            };
            let (decision, defer_reason) = match (decision, eta, &self.model) {
                (Decision::Reject, Some(eta), Some(model))
                    if reclaim_defer(
                        self.planner.config(),
                        model,
                        self.planner.capacity(),
                        &reservations,
                        &sub,
                        eta,
                    ) =>
                {
                    (Decision::Defer, Some(DeferReason::AwaitingRestock))
                }
                (Decision::Defer, ..) => (Decision::Defer, Some(DeferReason::Overcommit)),
                (d, ..) => (d, None),
            };
            let id = match decision {
                Decision::Admit | Decision::Defer => {
                    if decision == Decision::Admit {
                        self.counters.admitted += 1;
                        if let Some(eta) = eta {
                            reservations.push((
                                admission_deadline(self.planner.config(), sub.budget),
                                eta,
                            ));
                        }
                    } else {
                        self.counters.deferred += 1;
                    }
                    let id = self.planner.admit(JobSpec {
                        label: sub.label.clone(),
                        utility: sub.utility,
                        tasks: sub.tasks,
                        arrived_slot: now_slot,
                        runtime_hint: sub.runtime_hint,
                        parked: decision == Decision::Defer,
                    });
                    self.subs.insert(id.0, sub);
                    Some(id.0)
                }
                Decision::Reject => {
                    self.counters.rejected += 1;
                    None
                }
            };
            verdicts.push(EpochVerdict { decision, job: id, defer_reason });
        }

        self.counters.epochs += 1;
        self.planner.invalidate();
        self.planner.plan_at(now_slot)?;
        Ok(verdicts)
    }

    /// Ingests one completed-task runtime sample. Returns `true` when the
    /// job's last task reported (the job is then dropped from the table).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownJob`] for a non-resident id.
    pub fn report_sample(&mut self, job: u64, runtime: u64) -> Result<bool, WireError> {
        let outcome = self.planner.ingest_sample(JobId(job), runtime).map_err(|e| match e {
            PlannerError::UnknownJob(id) => unknown_job(id),
            other => internal(ServeError::from(other)),
        })?;
        self.counters.samples += 1;
        if outcome.completed {
            self.subs.remove(&job);
            self.counters.completed += 1;
        }
        Ok(outcome.completed)
    }

    /// Removes a job (planned or parked).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownJob`] for a non-resident id.
    pub fn cancel(&mut self, job: u64) -> Result<(), WireError> {
        if !self.planner.cancel(JobId(job)) {
            return Err(unknown_job(job));
        }
        self.subs.remove(&job);
        self.counters.cancelled += 1;
        Ok(())
    }

    /// The current plan table (replanning if stale), optionally filtered to
    /// one job.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownJob`] / [`ErrorCode::Deferred`] for a filter id
    /// that is absent / parked; [`ServeError`]-shaped internal errors are
    /// reported as [`ErrorCode::Internal`].
    pub fn rows(
        &mut self,
        now_slot: u64,
        filter: Option<u64>,
    ) -> Result<Vec<PlanRow>, WireError> {
        if let Some(id) = filter {
            self.check_planned(id)?;
        }
        self.planner.plan_at(now_slot).map_err(|e| internal(ServeError::from(e)))?;
        Ok(self
            .planner
            .planned()
            .filter(|(id, _)| filter.is_none() || filter == Some(id.0))
            .filter_map(|(id, e)| {
                let record = self.planner.job(id)?;
                let sub = self.subs.get(&id.0)?;
                Some(PlanRow {
                    job: id.0,
                    label: sub.label.clone(),
                    eta: e.eta,
                    task_len: e.task_len,
                    target: e.target,
                    level: e.level,
                    desired_now: e.desired_now,
                    planned_completion: e.planned_completion,
                    impossible: e.impossible,
                    remaining_tasks: record.remaining_tasks,
                })
            })
            .collect())
    }

    /// The Theorem-3 robust completion prediction for one planned job:
    /// `(target T, task_len R, bound T+R, planned_completion, impossible)`.
    ///
    /// # Errors
    ///
    /// Same classes as [`Self::rows`].
    pub fn predict(
        &mut self,
        job: u64,
        now_slot: u64,
    ) -> Result<(f64, u64, f64, u64, bool), WireError> {
        self.check_planned(job)?;
        self.planner.plan_at(now_slot).map_err(|e| internal(ServeError::from(e)))?;
        let e = self.planner.entry(JobId(job)).ok_or_else(|| unknown_job(job))?;
        Ok((e.target, e.task_len, e.target + e.task_len as f64, e.planned_completion, e.impossible))
    }

    /// The counter snapshot. A stale plan is fine for counters, so this
    /// never forces a replan.
    pub fn stats(&mut self, now_slot: u64) -> StatsReport {
        let parked = self.planner.parked_count() as u64;
        StatsReport {
            active_jobs: self.planner.job_count() as u64 - parked,
            deferred_jobs: parked,
            epochs: self.counters.epochs,
            admitted: self.counters.admitted,
            deferred: self.counters.deferred,
            rejected: self.counters.rejected,
            cancelled: self.counters.cancelled,
            completed: self.counters.completed,
            samples: self.counters.samples,
            cache_hits: self.planner.cache_hits(),
            cache_misses: self.planner.cache_misses(),
            now_slot,
        }
    }

    fn check_planned(&self, job: u64) -> Result<(), WireError> {
        match self.planner.job(JobId(job)) {
            None => Err(unknown_job(job)),
            Some(j) if j.parked => Err(WireError {
                code: ErrorCode::Deferred,
                message: format!("job {job} is deferred by admission control"),
            }),
            Some(_) => Ok(()),
        }
    }
}

fn unknown_job(job: u64) -> WireError {
    WireError { code: ErrorCode::UnknownJob, message: format!("job {job} is not resident") }
}

fn internal(e: ServeError) -> WireError {
    WireError { code: ErrorCode::Internal, message: e.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_utility::TimeUtility;

    fn sub(label: &str, tasks: u64, budget: u64) -> JobSubmission {
        JobSubmission {
            label: label.into(),
            tasks,
            runtime_hint: Some(50.0),
            utility: TimeUtility::sigmoid(budget as f64, 3.0, 10.0 / budget as f64)
                .expect("valid"),
            budget: Some(budget),
            priority: 1,
        }
    }

    fn insensitive(label: &str, tasks: u64) -> JobSubmission {
        JobSubmission {
            label: label.into(),
            tasks,
            runtime_hint: Some(50.0),
            utility: TimeUtility::constant(1.0).expect("valid"),
            budget: None,
            priority: 1,
        }
    }

    #[test]
    fn one_epoch_plans_a_batch_with_one_miss() {
        let mut s = ServeState::new(RushConfig::default(), 32).expect("state");
        let verdicts = s
            .submit_epoch(vec![sub("a", 10, 5000), sub("b", 20, 8000)], 0)
            .expect("epoch");
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts
            .iter()
            .all(|v| v.decision == Decision::Admit && v.job.is_some() && v.defer_reason.is_none()));
        assert_eq!(s.counters().epochs, 1);
        assert_eq!(s.counters().admitted, 2);
        // The epoch replanned exactly once: one per-job solve each.
        assert_eq!(s.stats(0).cache_misses, 2);
        let rows = s.rows(0, None).expect("rows");
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.eta > 0));
        // Re-reading the plan at the same slot hits the in-state plan, and
        // at a new slot goes through the cache.
        let before = s.stats(0).cache_misses;
        let _ = s.rows(0, None).expect("rows");
        assert_eq!(s.stats(0).cache_misses, before);
    }

    #[test]
    fn overcommit_rejects_sensitive_and_defers_insensitive() {
        let mut s = ServeState::new(RushConfig::default(), 2).expect("state");
        // 50-slot tasks × 400 tasks on 2 containers: ~10000 slots of work,
        // with a budget of 100 slots — hopeless for a sensitive job.
        let verdicts = s
            .submit_epoch(vec![sub("huge", 400, 100), insensitive("patient", 400)], 0)
            .expect("epoch");
        assert_eq!(verdicts[0].decision, Decision::Reject);
        assert_eq!(verdicts[0].job, None);
        assert_eq!(verdicts[0].defer_reason, None);
        assert_eq!(s.counters().rejected, 1);
        // The insensitive twin is parked, not dropped. (Whether it is
        // parked or admitted depends on the horizon; with the default 1e6
        // horizon 10000 slots of work fit, so it is admitted.)
        assert!(verdicts[1].job.is_some());
    }

    #[test]
    fn deferred_job_is_admitted_when_room_frees_up() {
        let cfg = RushConfig { horizon: 1000.0, ..RushConfig::default() };
        let mut s = ServeState::new(cfg, 2).expect("state");
        // One bulk job (~20 × 50 = 1000 mean demand, more after WCDE
        // inflation) fits the 2 × 1000 container·slot horizon; two don't.
        let verdicts =
            s.submit_epoch(vec![insensitive("filler", 20)], 0).expect("epoch");
        assert_eq!(verdicts[0].decision, Decision::Admit);
        let filler = verdicts[0].job.expect("id");
        // A second bulk job no longer fits and is deferred (a plain
        // demand-side overcommit: no cluster model is attached).
        let verdicts = s.submit_epoch(vec![insensitive("waiter", 20)], 1).expect("epoch");
        assert_eq!(verdicts[0].decision, Decision::Defer);
        assert_eq!(verdicts[0].defer_reason, Some(DeferReason::Overcommit));
        let waiter = verdicts[0].job.expect("id");
        assert!(s.rows(1, Some(waiter)).is_err(), "parked job has no plan row");
        // Cancel the filler; the next epoch unparks the waiter.
        s.cancel(filler).expect("cancel");
        let verdicts = s.submit_epoch(vec![], 2).expect("epoch");
        assert!(verdicts.is_empty());
        assert_eq!(s.stats(2).deferred_jobs, 0);
        assert_eq!(s.rows(2, Some(waiter)).expect("rows").len(), 1);
    }

    #[test]
    fn samples_shrink_the_job_and_complete_it() {
        let mut s = ServeState::new(RushConfig::default(), 8).expect("state");
        let verdicts = s.submit_epoch(vec![sub("j", 3, 5000)], 0).expect("epoch");
        let id = verdicts[0].job.expect("id");
        assert!(!s.report_sample(id, 48).expect("sample"));
        assert!(!s.report_sample(id, 52).expect("sample"));
        assert!(s.report_sample(id, 50).expect("sample"), "last task completes the job");
        assert_eq!(s.counters().completed, 1);
        assert_eq!(s.counters().samples, 3);
        assert!(matches!(
            s.report_sample(id, 1).unwrap_err().code,
            ErrorCode::UnknownJob
        ));
        assert!(s.rows(1, None).expect("rows").is_empty());
    }

    #[test]
    fn predict_returns_the_theorem3_bound() {
        let mut s = ServeState::new(RushConfig::default(), 8).expect("state");
        let id = s.submit_epoch(vec![sub("j", 10, 5000)], 0).expect("epoch")[0]
            .job
            .expect("id");
        let (target, task_len, bound, planned, impossible) =
            s.predict(id, 0).expect("predict");
        assert!(target > 0.0);
        assert!(task_len > 0);
        assert!((bound - (target + task_len as f64)).abs() < 1e-9);
        assert!(planned > 0);
        assert!(!impossible);
        assert!(matches!(s.predict(999, 0).unwrap_err().code, ErrorCode::UnknownJob));
    }

    #[test]
    fn restored_state_reproduces_the_plan_bit_identically() {
        let mut a = ServeState::new(RushConfig::default(), 16).expect("state");
        a.submit_epoch(vec![sub("x", 12, 4000), sub("y", 30, 9000)], 5).expect("epoch");
        let x = a.planner().planned().next().expect("planned job").0 .0;
        a.report_sample(x, 47).expect("sample");
        let rows_a = a.rows(9, None).expect("rows");

        // Clone through from_parts, as snapshot restore does.
        let jobs: Vec<(u64, JobState)> = a.jobs().collect();
        let mut b = ServeState::from_parts(
            *a.config(),
            a.capacity(),
            jobs,
            a.next_id(),
            a.counters(),
        )
        .expect("restore");
        let rows_b = b.rows(9, None).expect("rows");
        assert_eq!(rows_a, rows_b, "restored plan must be bit-identical");
    }

    #[test]
    fn from_parts_rejects_inconsistent_ids() {
        let jobs = vec![(
            7u64,
            JobState {
                submission: sub("j", 1, 100),
                samples: vec![],
                remaining_tasks: 1,
                arrived_slot: 0,
                parked: false,
            },
        )];
        let err = ServeState::from_parts(RushConfig::default(), 4, jobs, 5, Counters::default());
        assert!(matches!(err, Err(ServeError::Snapshot(_))));
    }

    #[test]
    fn set_capacity_flows_through_the_event_path() {
        let mut s = ServeState::new(RushConfig::default(), 8).expect("state");
        let id = s.submit_epoch(vec![sub("j", 10, 5000)], 0).expect("epoch")[0]
            .job
            .expect("id");
        s.set_capacity(3).expect("shrink");
        assert_eq!(s.capacity(), 3);
        assert_eq!(s.rows(1, None).expect("rows").len(), 1);
        s.set_capacity(12).expect("grow");
        assert_eq!(s.capacity(), 12);
        let (_, _, _, planned, _) = s.predict(id, 2).expect("predict");
        assert!(planned > 0);
        // The kernel refuses a zero-container cluster, as a BadField.
        let err = s.set_capacity(0).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadField);
        assert_eq!(s.capacity(), 12, "failed resize must not change capacity");
    }

    /// A budget that makes a `tasks`-task, hint-50 job infeasible at the
    /// depressed capacity 8 but feasible at the provisioned 16 even after
    /// the 60-slot spot reclaim horizon: `8·b < η ≤ 16·(b − 60)` holds for
    /// `b = η/8 − 1` whenever `η ≥ 976`.
    fn outage_budget(s: &ServeState, tasks: u64) -> u64 {
        let (eta, _) = crate::admission::estimate_eta(s.config(), &[], Some(50.0), tasks as usize)
            .expect("estimate");
        assert!(eta >= 976, "test premise needs a big job, eta={eta}");
        eta / 8 - 1
    }

    #[test]
    fn spot_outage_defers_then_restock_admits() {
        use rush_core::cluster::ClusterModel;
        let mut s = ServeState::new(RushConfig::default(), 16)
            .expect("state")
            .with_cluster_model(ClusterModel::tiered(8, 0, 8))
            .expect("valid model");
        // The spot pool is revoked: 16 → 8 containers.
        s.set_capacity(8).expect("revoke");
        let budget = outage_budget(&s, 400);
        // A time-sensitive job that fails Theorem 2 at the depressed 8 but
        // fits the provisioned 16 after the 60-slot spot reclaim horizon
        // is parked as awaiting-restock instead of rejected.
        let verdicts = s.submit_epoch(vec![sub("spiky", 400, budget)], 0).expect("epoch");
        assert_eq!(verdicts[0].decision, Decision::Defer);
        assert_eq!(verdicts[0].defer_reason, Some(DeferReason::AwaitingRestock));
        let job = verdicts[0].job.expect("parked job keeps its id");
        assert_eq!(s.counters().deferred, 1);
        assert!(s.rows(0, Some(job)).is_err(), "parked job has no plan row");
        // The market restocks; the next epoch's re-probe admits the job.
        s.set_capacity(16).expect("restock");
        let verdicts = s.submit_epoch(vec![], 1).expect("epoch");
        assert!(verdicts.is_empty());
        assert_eq!(s.stats(1).deferred_jobs, 0);
        assert_eq!(s.rows(1, Some(job)).expect("rows").len(), 1);
    }

    #[test]
    fn without_a_model_the_same_outage_rejects() {
        let mut s = ServeState::new(RushConfig::default(), 16).expect("state");
        s.set_capacity(8).expect("revoke");
        let budget = outage_budget(&s, 400);
        let verdicts = s.submit_epoch(vec![sub("spiky", 400, budget)], 0).expect("epoch");
        assert_eq!(verdicts[0].decision, Decision::Reject);
        assert_eq!(verdicts[0].defer_reason, None);
    }

    #[test]
    fn cluster_model_attachment_is_validated() {
        use rush_core::cluster::ClusterModel;
        let s = ServeState::new(RushConfig::default(), 16).expect("state");
        // Model provisions fewer containers than the daemon serves.
        let err = s.with_cluster_model(ClusterModel::tiered(4, 0, 4));
        assert!(matches!(err, Err(ServeError::Config(_))));
        // Malformed model (no classes).
        let s = ServeState::new(RushConfig::default(), 16).expect("state");
        let err = s.with_cluster_model(ClusterModel::default());
        assert!(matches!(err, Err(ServeError::Config(_))));
        // A well-formed model attaches and is readable back.
        let s = ServeState::new(RushConfig::default(), 16)
            .expect("state")
            .with_cluster_model(ClusterModel::tiered(8, 4, 4))
            .expect("valid model");
        assert_eq!(s.cluster_model().expect("model").total_capacity(), 16);
    }

    #[test]
    fn cancel_of_unknown_job_keeps_the_plan_fresh() {
        // An unknown-job cancel must not invalidate the kernel's plan:
        // cache hit/miss statistics would silently drift otherwise.
        let mut s = ServeState::new(RushConfig::default(), 8).expect("state");
        s.submit_epoch(vec![sub("j", 4, 5000)], 0).expect("epoch");
        let misses = s.stats(0).cache_misses;
        assert!(matches!(s.cancel(777).unwrap_err().code, ErrorCode::UnknownJob));
        let _ = s.rows(0, None).expect("rows");
        assert_eq!(s.stats(0).cache_misses, misses, "no replan after a no-op cancel");
    }
}

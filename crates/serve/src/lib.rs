//! Online serving layer for the RUSH scheduler: the `rushd` daemon and its
//! wire protocol.
//!
//! Everything below PR 3 ran *offline* — workloads were generated, simulated
//! and scored in one process. This crate turns the same planning pipeline
//! into a long-running service:
//!
//! * [`json`] — a hand-rolled strict JSON codec (the workspace vendors no
//!   serde, and a daemon must reject malformed frames with located errors,
//!   not panics);
//! * [`protocol`] — the versioned newline-delimited request/response frames
//!   (`submit`, `report-sample`, `query-plan`, `predict`, `cancel`,
//!   `stats`, `shutdown`);
//! * [`binary`] — the version-negotiated, length-prefixed binary codec
//!   carrying the same `Request`/`Response` values (`RUSH1` magic + varint
//!   framing); a frontend sniffs binary vs. JSON from the first byte;
//! * [`state`] — protocol/epoch/admission bookkeeping over the shared
//!   planner kernel ([`rush_planner::PlannerCore`]): many submissions
//!   arriving close together are planned by **one** kernel replan;
//! * [`admission`] — the Theorem-2 prefix-capacity test applied *before* a
//!   job enters the table, so an overcommitted cluster defers or rejects
//!   instead of thrashing every resident deadline;
//! * [`snapshot`] — durable state: a graceful shutdown writes the job table
//!   to disk and a restarted daemon reproduces the same plan (bit-identical
//!   `η` and targets) for in-flight jobs;
//! * [`server`] / [`client`] — the TCP daemon (connection frontends
//!   feeding per-shard planner threads over channels) and a blocking
//!   client;
//! * [`reactor_frontend`] — the nonblocking epoll frontend: N event-loop
//!   threads multiplexing thousands of connections with bounded in-flight
//!   frames, write-buffer caps and slow-reader eviction;
//! * [`loadgen`] — an open-loop Poisson load generator that measures
//!   submit→planned latency and writes `BENCH_serve_latency.json`.
//!
//! Time is a **logical slot clock**: `now_slot = base + elapsed_ms /
//! ms_per_slot`, integer-quantized, so plans depend only on (state,
//! `now_slot`) and snapshot/restore is exact.
//!
//! # Example
//!
//! See `examples/server_quickstart.rs` at the workspace root, or the
//! end-to-end tests in `tests/server_e2e.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod binary;
pub mod client;
pub mod json;
pub mod loadgen;
pub mod protocol;
pub mod reactor_frontend;
pub mod server;
pub mod snapshot;
pub mod state;

pub use client::Client;
pub use protocol::{Decision, ErrorCode, Request, Response, PROTOCOL_VERSION};
pub use server::{serve, Frontend, ServeConfig, ServerHandle};
pub use state::ServeState;

use std::fmt;

/// Top-level error type of the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// Planning, estimation or admission sizing failed inside the shared
    /// planner kernel (see [`rush_planner::PlannerError`]).
    Planner(rush_planner::PlannerError),
    /// Socket or file I/O failed.
    Io(std::io::Error),
    /// A peer sent a frame we could not decode, or we received one we
    /// could not interpret.
    Wire(protocol::WireError),
    /// A snapshot file was missing fields or internally inconsistent.
    Snapshot(String),
    /// The serve configuration is invalid.
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Planner(e) => write!(f, "planner: {e}"),
            ServeError::Io(e) => write!(f, "io: {e}"),
            ServeError::Wire(e) => write!(f, "wire: {e}"),
            ServeError::Snapshot(msg) => write!(f, "snapshot: {msg}"),
            ServeError::Config(msg) => write!(f, "config: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<rush_planner::PlannerError> for ServeError {
    fn from(e: rush_planner::PlannerError) -> Self {
        // Config and snapshot problems keep their serve-level identity (the
        // daemon surfaces them differently); everything else is a planner
        // failure.
        match e {
            rush_planner::PlannerError::Config(msg) => ServeError::Config(msg),
            rush_planner::PlannerError::Snapshot(msg) => ServeError::Snapshot(msg),
            other => ServeError::Planner(other),
        }
    }
}

impl From<rush_core::CoreError> for ServeError {
    fn from(e: rush_core::CoreError) -> Self {
        ServeError::Planner(rush_planner::PlannerError::from(e))
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<protocol::WireError> for ServeError {
    fn from(e: protocol::WireError) -> Self {
        ServeError::Wire(e)
    }
}

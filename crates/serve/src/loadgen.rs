//! `rush-loadgen`: an open-loop Poisson load generator for `rushd`.
//!
//! The generator draws a job mix from [`rush_workload`] (the paper's PUMA
//! templates, priorities, sensitivity classes and budgets), rescales the
//! workload's Poisson arrival slots to wall-clock milliseconds, and drives
//! the daemon **open-loop**: submissions fire at their scheduled times
//! regardless of how fast the daemon answers, which is what exposes epoch
//! batching under bursts.
//!
//! Two client engines share the schedule and the metrics:
//!
//! * **worker mode** (`connections == 0`) — a handful of blocking threads,
//!   each owning one connection; good for smoke tests and CI;
//! * **open-loop reactor mode** (`connections > 0`) — a single thread
//!   multiplexing thousands of nonblocking connections on a
//!   [`rush_reactor::Poller`], round-robining submissions across them.
//!   This is the engine that measures how many *concurrent connections* a
//!   frontend sustains, not just how many requests per second.
//!
//! Both engines speak either codec (`binary: true` negotiates the
//! length-prefixed `RUSH1` protocol). Latency is recorded per submission
//! (client-observed submit→response and daemon-reported epoch wait) into
//! [`rush_metrics::Histogram`]s; the report carries p50/p99/p999 and the
//! sustained submissions/sec of the run.
//!
//! A submission counts as *planned within its epoch deadline* when the
//! daemon-reported wait is at most `2 × epoch_ms` (the worst legal wait is
//! one full epoch window; the factor 2 absorbs scheduling jitter on loaded
//! CI machines). The run fails loudly if any frame draws a protocol error.
//!
//! The report is one *run* in `BENCH_serve_latency.json`, a document with
//! a `runs` array keyed by `(frontend, codec, connections)` so a benchmark
//! sweep (`--append`) accumulates the thread-frontend baseline and the
//! reactor scaling runs side by side.

use crate::client::Client;
use crate::json::Json;
use crate::protocol::{Decision, JobSubmission};
use crate::ServeError;
use rush_metrics::Histogram;
use rush_sim::cluster::ClusterSpec;
use rush_workload::{generate, Experiment, WorkloadConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address, e.g. `127.0.0.1:4117`.
    pub addr: String,
    /// Number of jobs to submit.
    pub jobs: usize,
    /// Blocking worker threads (worker mode only).
    pub workers: usize,
    /// Concurrent nonblocking connections for the open-loop reactor
    /// engine; `0` selects the blocking worker mode.
    pub connections: usize,
    /// Negotiate the length-prefixed binary codec instead of JSON.
    pub binary: bool,
    /// Frontend label recorded in the report (`threads` / `reactor`); the
    /// generator cannot observe which frontend the daemon runs, so the
    /// caller says.
    pub frontend: String,
    /// Mean interarrival time in wall-clock milliseconds.
    pub mean_interarrival_ms: f64,
    /// Workload seed.
    pub seed: u64,
    /// The daemon's epoch window (for the within-deadline criterion).
    pub epoch_ms: u64,
    /// Report one runtime sample per admitted job after the submission
    /// phase (exercises `report-sample` and shrinks plans).
    pub report_samples: bool,
    /// Send `shutdown` (with snapshot) after the run.
    pub shutdown: bool,
    /// Merge this run into an existing report instead of overwriting it
    /// (runs with the same `(frontend, codec, connections)` are replaced).
    pub append: bool,
    /// Where to write the JSON report (`None` = don't write).
    pub out: Option<PathBuf>,
}

impl LoadgenConfig {
    /// The `--quick` preset used by CI's serve-smoke step.
    pub fn quick(addr: String, epoch_ms: u64) -> LoadgenConfig {
        LoadgenConfig {
            addr,
            jobs: 24,
            workers: 4,
            connections: 0,
            binary: false,
            frontend: "threads".into(),
            mean_interarrival_ms: 4.0,
            seed: 7,
            epoch_ms,
            report_samples: true,
            shutdown: false,
            append: false,
            out: Some(PathBuf::from("BENCH_serve_latency.json")),
        }
    }

    /// The number of concurrent connections this run actually holds open.
    pub fn effective_connections(&self) -> usize {
        if self.connections > 0 {
            self.connections
        } else {
            self.workers.max(1)
        }
    }

    /// The codec label recorded in the report.
    pub fn codec(&self) -> &'static str {
        if self.binary {
            "binary"
        } else {
            "json"
        }
    }
}

/// Aggregated results of one load-generator run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Jobs submitted.
    pub submitted: u64,
    /// Admission verdict counts.
    pub admitted: u64,
    /// Jobs deferred.
    pub deferred: u64,
    /// Jobs rejected.
    pub rejected: u64,
    /// Frames that drew a transport or protocol error.
    pub protocol_errors: u64,
    /// Submissions planned within `2 × epoch_ms`.
    pub within_deadline: u64,
    /// Client-observed submit→response latency (µs).
    pub client_latency_us: Histogram,
    /// Daemon-reported submit→planned epoch wait (µs).
    pub epoch_wait_us: Histogram,
    /// Epochs the daemon closed during the run.
    pub epochs: u64,
    /// Plan-cache hits reported by the daemon.
    pub cache_hits: u64,
    /// Plan-cache misses reported by the daemon.
    pub cache_misses: u64,
    /// Wall-clock duration of the submission phase (first submission sent
    /// to last response drained), in µs.
    pub elapsed_us: u64,
}

impl LoadgenReport {
    /// Fraction of submissions planned within the epoch deadline.
    pub fn within_deadline_frac(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.within_deadline as f64 / self.submitted as f64
        }
    }

    /// Sustained submissions per second over the submission phase.
    pub fn submissions_per_sec(&self) -> f64 {
        if self.elapsed_us == 0 {
            0.0
        } else {
            self.submitted as f64 / (self.elapsed_us as f64 / 1e6)
        }
    }
}

struct WorkerOutcome {
    client_latency_us: Histogram,
    epoch_wait_us: Histogram,
    admitted_ids: Vec<(u64, u64)>,
    deferred: u64,
    rejected: u64,
    protocol_errors: u64,
    within_deadline: u64,
    /// Submission-phase wall time, microseconds (`0` = the caller should
    /// measure; the open-loop engine sets it to exclude the connect phase).
    drive_us: u64,
}

impl WorkerOutcome {
    fn new() -> WorkerOutcome {
        WorkerOutcome {
            client_latency_us: Histogram::new(),
            epoch_wait_us: Histogram::new(),
            admitted_ids: Vec::new(),
            deferred: 0,
            rejected: 0,
            protocol_errors: 0,
            within_deadline: 0,
            drive_us: 0,
        }
    }

    fn merge(&mut self, o: WorkerOutcome) {
        self.client_latency_us.merge(&o.client_latency_us);
        self.epoch_wait_us.merge(&o.epoch_wait_us);
        self.admitted_ids.extend(o.admitted_ids);
        self.deferred += o.deferred;
        self.rejected += o.rejected;
        self.protocol_errors += o.protocol_errors;
        self.within_deadline += o.within_deadline;
        self.drive_us = self.drive_us.max(o.drive_us);
    }

    /// Records one `Submitted` response for the job at `plan[i]`.
    fn record_submitted(
        &mut self,
        sub: &JobSubmission,
        decision: Decision,
        id: Option<u64>,
        waited_us: u64,
        latency_us: u64,
        deadline_us: u64,
    ) {
        self.client_latency_us.record(latency_us);
        self.epoch_wait_us.record(waited_us);
        if waited_us <= deadline_us {
            self.within_deadline += 1;
        }
        match decision {
            Decision::Admit => {
                if let Some(id) = id {
                    let runtime = sub.runtime_hint.unwrap_or(50.0).round() as u64;
                    self.admitted_ids.push((id, runtime.max(1)));
                }
            }
            Decision::Defer => self.deferred += 1,
            Decision::Reject => self.rejected += 1,
        }
    }
}

/// Builds the submission schedule: `(offset_ms, submission)` pairs in
/// arrival order, drawn from the paper's workload generator and rescaled
/// from slots to wall-clock milliseconds.
///
/// # Errors
///
/// [`ServeError::Config`] when the workload cannot be generated.
pub fn schedule(
    jobs: usize,
    mean_interarrival_ms: f64,
    seed: u64,
) -> Result<Vec<(u64, JobSubmission)>, ServeError> {
    let cluster = ClusterSpec::paper_testbed(8)
        .map_err(|e| ServeError::Config(format!("cluster spec: {e}")))?;
    let cfg = WorkloadConfig { jobs, seed, ..WorkloadConfig::default() };
    let exp = Experiment::new(cluster);
    let specs =
        generate(&cfg, &exp).map_err(|e| ServeError::Config(format!("workload: {e}")))?;
    let scale = mean_interarrival_ms / cfg.mean_interarrival;
    Ok(specs
        .into_iter()
        .map(|spec| {
            let tasks = spec.tasks().len() as u64;
            let hint = if tasks == 0 {
                None
            } else {
                Some((spec.total_base_runtime() / tasks as f64).max(1.0))
            };
            let offset_ms = (spec.arrival() as f64 * scale).round() as u64;
            let sub = JobSubmission {
                label: spec.label().to_string(),
                tasks: tasks.max(1),
                runtime_hint: hint,
                utility: *spec.utility(),
                budget: spec.budget(),
                priority: spec.priority().max(1),
            };
            (offset_ms, sub)
        })
        .collect())
}

fn run_worker(
    addr: &str,
    binary: bool,
    plan: &[(u64, JobSubmission)],
    next: &AtomicUsize,
    start: Instant,
    deadline_us: u64,
) -> WorkerOutcome {
    let mut out = WorkerOutcome::new();
    let connected =
        if binary { Client::connect_binary(addr) } else { Client::connect(addr) };
    let mut client = match connected {
        Ok(c) => c,
        Err(_) => {
            // Count every submission this worker would have sent.
            while next.fetch_add(1, Ordering::SeqCst) < plan.len() {
                out.protocol_errors += 1;
            }
            return out;
        }
    };
    loop {
        let i = next.fetch_add(1, Ordering::SeqCst);
        if i >= plan.len() {
            break;
        }
        let (offset_ms, sub) = &plan[i];
        let due = start + Duration::from_millis(*offset_ms);
        let now = Instant::now();
        if due > now {
            thread::sleep(due - now);
        }
        let sent = Instant::now();
        match client.submit(sub.clone()) {
            Ok((decision, id, _epoch, waited_us)) => {
                let latency_us = sent.elapsed().as_micros() as u64;
                out.record_submitted(sub, decision, id, waited_us, latency_us, deadline_us);
            }
            Err(_) => out.protocol_errors += 1,
        }
    }
    out
}

/// The blocking worker-thread engine (`connections == 0`).
fn run_workers(
    cfg: &LoadgenConfig,
    plan: &Arc<Vec<(u64, JobSubmission)>>,
    deadline_us: u64,
    start: Instant,
) -> WorkerOutcome {
    let next = Arc::new(AtomicUsize::new(0));
    let workers: Vec<thread::JoinHandle<WorkerOutcome>> = (0..cfg.workers.max(1))
        .map(|_| {
            let plan = Arc::clone(plan);
            let next = Arc::clone(&next);
            let addr = cfg.addr.clone();
            let binary = cfg.binary;
            thread::spawn(move || run_worker(&addr, binary, &plan, &next, start, deadline_us))
        })
        .collect();
    let mut merged = WorkerOutcome::new();
    for w in workers {
        match w.join() {
            Ok(o) => merged.merge(o),
            Err(_) => merged.protocol_errors += 1,
        }
    }
    merged
}

/// The nonblocking open-loop engine: thousands of concurrent connections
/// multiplexed on one `rush_reactor::Poller`, submissions round-robined
/// across them at their scheduled times.
#[cfg(unix)]
mod open_loop {
    use super::{LoadgenConfig, WorkerOutcome};
    use crate::binary::{self, Scan};
    use crate::protocol::{JobSubmission, Request, Response};
    use crate::ServeError;
    use rush_reactor::{Interest, Poller, ReadBuf, ReadOutcome, WriteBuf, WriteOutcome};
    use std::collections::VecDeque;
    use std::net::TcpStream;
    use std::os::unix::io::AsRawFd;
    use std::time::{Duration, Instant};

    /// Poll timeout while idle between arrivals or waiting for responses.
    const IDLE_POLL: Duration = Duration::from_millis(100);
    /// Grace period after the last scheduled arrival before the engine
    /// declares the remaining in-flight submissions lost.
    const DRAIN_GRACE: Duration = Duration::from_secs(60);

    struct Conn {
        stream: TcpStream,
        rbuf: ReadBuf,
        wbuf: WriteBuf,
        /// Waiting for the server's binary hello.
        hello_pending: bool,
        /// In-flight submissions: `(plan index, sent at)`, answered in
        /// FIFO order (the daemon guarantees per-connection ordering).
        pending: VecDeque<(usize, Instant)>,
        interest: Interest,
        dead: bool,
    }

    struct Engine<'a> {
        cfg: &'a LoadgenConfig,
        plan: &'a [(u64, JobSubmission)],
        deadline_us: u64,
        poller: Poller,
        conns: Vec<Conn>,
        out: WorkerOutcome,
        /// Responses accounted for (answers, or submissions written off
        /// against dead connections).
        settled: usize,
    }

    /// Runs the schedule; returns the merged outcome.
    ///
    /// The Poisson clock is re-anchored to the moment the whole fleet is
    /// connected: connecting thousands of sockets takes real time (the
    /// daemon accepts them one listener backlog at a time), and counting
    /// it against the schedule would fire every submission that came due
    /// during setup as one burst — measuring the connect storm, not the
    /// steady state.
    pub(super) fn run(
        cfg: &LoadgenConfig,
        plan: &[(u64, JobSubmission)],
        deadline_us: u64,
    ) -> Result<WorkerOutcome, ServeError> {
        let n = cfg.connections.max(1);
        let poller = Poller::with_capacity(n)?;
        let mut conns = Vec::with_capacity(n);
        for token in 0..n {
            let stream = TcpStream::connect(&cfg.addr)?;
            stream.set_nodelay(true)?;
            let mut wbuf = WriteBuf::new();
            if cfg.binary {
                wbuf.push(&binary::hello(binary::BINARY_VERSION));
            }
            stream.set_nonblocking(true)?;
            let interest = if wbuf.is_empty() { Interest::READ } else { Interest::BOTH };
            poller.register(stream.as_raw_fd(), token as u64, interest)?;
            conns.push(Conn {
                stream,
                rbuf: ReadBuf::new(),
                wbuf,
                hello_pending: cfg.binary,
                pending: VecDeque::new(),
                interest,
                dead: false,
            });
        }
        let mut engine = Engine {
            cfg,
            plan,
            deadline_us,
            poller,
            conns,
            out: WorkerOutcome::new(),
            settled: 0,
        };
        let t0 = Instant::now();
        engine.drive(t0);
        engine.out.drive_us = t0.elapsed().as_micros() as u64;
        Ok(engine.out)
    }

    impl Engine<'_> {
        fn drive(&mut self, start: Instant) {
            let last_offset = self.plan.last().map_or(0, |(ms, _)| *ms);
            let hard_deadline = start + Duration::from_millis(last_offset) + DRAIN_GRACE;
            let mut next_idx = 0usize;
            while self.settled < self.plan.len() {
                // Fire every submission that is due, open-loop.
                let now = Instant::now();
                while next_idx < self.plan.len() {
                    let due = start + Duration::from_millis(self.plan[next_idx].0);
                    if due > now {
                        break;
                    }
                    self.launch(next_idx % self.conns.len(), next_idx);
                    next_idx += 1;
                }
                if self.settled >= self.plan.len() {
                    break;
                }
                if Instant::now() >= hard_deadline {
                    // Whatever is still unanswered is lost: the run keeps
                    // its counters honest instead of hanging forever.
                    let unsettled = self.plan.len().saturating_sub(self.settled);
                    self.out.protocol_errors += unsettled as u64;
                    break;
                }
                let timeout = if next_idx < self.plan.len() {
                    let due = start + Duration::from_millis(self.plan[next_idx].0);
                    due.saturating_duration_since(Instant::now()).min(IDLE_POLL)
                } else {
                    IDLE_POLL
                };
                let events: Vec<rush_reactor::Event> = match self.poller.wait(Some(timeout)) {
                    Ok(evs) => evs.to_vec(),
                    Err(_) => break,
                };
                for ev in events {
                    let token = ev.token as usize;
                    if token >= self.conns.len() {
                        continue;
                    }
                    if ev.writable {
                        self.pump(token);
                    }
                    if ev.readable || ev.closed {
                        self.drain_input(token);
                    }
                }
            }
        }

        /// Frames `plan[i]` onto connection `token` and starts its clock.
        /// (Named `launch`, not `submit`, so the deep lint's name-based
        /// call graph cannot confuse it with the blocking
        /// [`crate::client::Client::submit`].)
        fn launch(&mut self, token: usize, i: usize) {
            let Some((_, sub)) = self.plan.get(i) else { return };
            let Some(conn) = self.conns.get_mut(token) else { return };
            if conn.dead {
                self.out.protocol_errors += 1;
                self.settled += 1;
                return;
            }
            let req = Request::Submit(sub.clone());
            let bytes = if self.cfg.binary {
                binary::frame_request(&req)
            } else {
                (req.encode() + "\n").into_bytes()
            };
            conn.wbuf.push(&bytes);
            conn.pending.push_back((i, Instant::now()));
            self.pump(token);
        }

        /// Flushes a connection's write buffer and refreshes its epoll
        /// interest set.
        fn pump(&mut self, token: usize) {
            let Some(conn) = self.conns.get_mut(token) else { return };
            if conn.dead {
                return;
            }
            if !conn.wbuf.is_empty() {
                match conn.wbuf.flush_to(&mut conn.stream) {
                    Ok(WriteOutcome::Flushed | WriteOutcome::Partial) => {}
                    Err(_) => {
                        self.kill(token);
                        return;
                    }
                }
            }
            let want = Interest {
                readable: true,
                writable: !conn.wbuf.is_empty(),
            };
            if want != conn.interest {
                conn.interest = want;
                if self.poller.reregister(conn.stream.as_raw_fd(), token as u64, want).is_err() {
                    self.kill(token);
                }
            }
        }

        /// Reads everything available on a connection and settles the
        /// responses it completes.
        fn drain_input(&mut self, token: usize) {
            loop {
                let Some(conn) = self.conns.get_mut(token) else { return };
                if conn.dead {
                    return;
                }
                let outcome = conn.rbuf.fill(&mut conn.stream);
                let closed = match outcome {
                    Ok(ReadOutcome::Read(_)) => false,
                    Ok(ReadOutcome::WouldBlock) => {
                        self.parse(token);
                        return;
                    }
                    Ok(ReadOutcome::Closed) | Err(_) => true,
                };
                self.parse(token);
                if closed {
                    self.kill(token);
                    return;
                }
            }
        }

        /// Decodes every complete frame currently buffered on `token`.
        fn parse(&mut self, token: usize) {
            loop {
                let Some(conn) = self.conns.get_mut(token) else { return };
                if conn.dead {
                    return;
                }
                if conn.hello_pending {
                    match binary::scan_hello(conn.rbuf.data()) {
                        Ok(Scan::Done { item, consumed }) => {
                            conn.rbuf.consume(consumed);
                            if item == 0 {
                                self.kill(token);
                                return;
                            }
                            conn.hello_pending = false;
                        }
                        Ok(Scan::Incomplete) => return,
                        Err(_) => {
                            self.kill(token);
                            return;
                        }
                    }
                    continue;
                }
                let decoded = if self.cfg.binary {
                    match binary::scan_frame(conn.rbuf.data()) {
                        Ok(Scan::Done { item, consumed }) => {
                            let payload = conn.rbuf.data().get(item).unwrap_or(&[]);
                            let resp = binary::decode_response(payload);
                            conn.rbuf.consume(consumed);
                            resp.ok()
                        }
                        Ok(Scan::Incomplete) => return,
                        Err(_) => {
                            self.kill(token);
                            return;
                        }
                    }
                } else {
                    let data = conn.rbuf.data();
                    let Some(pos) = data.iter().position(|&b| b == b'\n') else { return };
                    let resp = std::str::from_utf8(&data[..pos])
                        .ok()
                        .and_then(|line| Response::decode(line.trim_end()).ok());
                    conn.rbuf.consume(pos + 1);
                    resp
                };
                let front = self.conns.get_mut(token).and_then(|c| c.pending.pop_front());
                let Some((i, sent)) = front else {
                    // A frame with nothing in flight: protocol confusion.
                    self.kill(token);
                    return;
                };
                self.settled += 1;
                let latency_us = sent.elapsed().as_micros() as u64;
                match decoded {
                    Some(Response::Submitted { job, decision, waited_us, .. }) => {
                        if let Some((_, sub)) = self.plan.get(i) {
                            self.out.record_submitted(
                                sub,
                                decision,
                                job,
                                waited_us,
                                latency_us,
                                self.deadline_us,
                            );
                        }
                    }
                    _ => self.out.protocol_errors += 1,
                }
            }
        }

        /// Tears a connection down and writes off its in-flight
        /// submissions.
        fn kill(&mut self, token: usize) {
            let Some(conn) = self.conns.get_mut(token) else { return };
            if conn.dead {
                return;
            }
            conn.dead = true;
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            let lost = conn.pending.len();
            conn.pending.clear();
            self.out.protocol_errors += lost as u64;
            self.settled += lost;
        }
    }
}

/// Runs the load generator against a live daemon.
///
/// # Errors
///
/// [`ServeError::Config`] when the workload cannot be generated (or the
/// open-loop engine is requested on a platform without epoll),
/// [`ServeError::Io`] when the report cannot be written or the final
/// stats/shutdown calls fail.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, ServeError> {
    let plan = Arc::new(schedule(cfg.jobs, cfg.mean_interarrival_ms, cfg.seed)?);
    let deadline_us = 2 * cfg.epoch_ms * 1000;
    let start = Instant::now();

    let merged = if cfg.connections > 0 {
        #[cfg(unix)]
        {
            open_loop::run(cfg, &plan, deadline_us)?
        }
        #[cfg(not(unix))]
        {
            return Err(ServeError::Config(
                "the open-loop engine needs epoll; use --connections 0".into(),
            ));
        }
    } else {
        run_workers(cfg, &plan, deadline_us, start)
    };
    // Open-loop runs report the submission phase alone; the sequential
    // connect of thousands of sockets is setup, not offered load.
    let elapsed_us = if merged.drive_us > 0 {
        merged.drive_us
    } else {
        start.elapsed().as_micros() as u64
    };

    let mut tail = if cfg.binary {
        Client::connect_binary(&cfg.addr)?
    } else {
        Client::connect(&cfg.addr)?
    };
    let mut protocol_errors = merged.protocol_errors;
    if cfg.report_samples {
        for &(id, runtime) in &merged.admitted_ids {
            // The job may already have completed or been cancelled; only
            // transport failures count against the run.
            if tail.call(&crate::protocol::Request::ReportSample { job: id, runtime }).is_err() {
                protocol_errors += 1;
            }
        }
    }
    let stats = tail.stats()?;
    if cfg.shutdown {
        tail.shutdown(true)?;
    }

    let report = LoadgenReport {
        submitted: plan.len() as u64,
        admitted: merged.admitted_ids.len() as u64,
        deferred: merged.deferred,
        rejected: merged.rejected,
        protocol_errors,
        within_deadline: merged.within_deadline,
        client_latency_us: merged.client_latency_us,
        epoch_wait_us: merged.epoch_wait_us,
        epochs: stats.epochs,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        elapsed_us,
    };
    if let Some(path) = &cfg.out {
        write_report(cfg, &report, path)?;
    }
    Ok(report)
}

fn hist_json(h: &Histogram) -> Json {
    Json::Obj(vec![
        ("p50_us".to_string(), Json::u64(h.quantile(0.5))),
        ("p99_us".into(), Json::u64(h.quantile(0.99))),
        ("p999_us".into(), Json::u64(h.quantile(0.999))),
        ("mean_us".into(), Json::f64(h.mean())),
        ("max_us".into(), Json::u64(h.max())),
        ("count".into(), Json::u64(h.count())),
    ])
}

/// Renders one run entry of the report document.
fn run_entry(cfg: &LoadgenConfig, r: &LoadgenReport) -> Json {
    Json::Obj(vec![
        ("frontend".to_string(), Json::str(cfg.frontend.clone())),
        ("codec".into(), Json::str(cfg.codec())),
        ("connections".into(), Json::u64(cfg.effective_connections() as u64)),
        ("jobs".into(), Json::u64(cfg.jobs as u64)),
        ("workers".into(), Json::u64(cfg.workers as u64)),
        ("mean_interarrival_ms".into(), Json::f64(cfg.mean_interarrival_ms)),
        ("epoch_ms".into(), Json::u64(cfg.epoch_ms)),
        ("submitted".into(), Json::u64(r.submitted)),
        ("admitted".into(), Json::u64(r.admitted)),
        ("deferred".into(), Json::u64(r.deferred)),
        ("rejected".into(), Json::u64(r.rejected)),
        ("protocol_errors".into(), Json::u64(r.protocol_errors)),
        ("within_deadline".into(), Json::u64(r.within_deadline)),
        ("within_deadline_frac".into(), Json::f64(r.within_deadline_frac())),
        ("submissions_per_sec".into(), Json::f64(r.submissions_per_sec())),
        ("elapsed_us".into(), Json::u64(r.elapsed_us)),
        ("client_latency".into(), hist_json(&r.client_latency_us)),
        ("epoch_wait".into(), hist_json(&r.epoch_wait_us)),
        ("epochs".into(), Json::u64(r.epochs)),
        ("cache_hits".into(), Json::u64(r.cache_hits)),
        ("cache_misses".into(), Json::u64(r.cache_misses)),
    ])
}

/// The `(frontend, codec, connections)` identity of a run entry.
fn run_key(entry: &Json) -> (String, String, u64) {
    (
        entry.get("frontend").and_then(Json::as_str).unwrap_or("").to_string(),
        entry.get("codec").and_then(Json::as_str).unwrap_or("").to_string(),
        entry.get("connections").and_then(Json::as_u64).unwrap_or(0),
    )
}

/// Renders the benchmark report document holding exactly this run.
pub fn report_json(cfg: &LoadgenConfig, r: &LoadgenReport) -> String {
    Json::Obj(vec![
        ("bench".to_string(), Json::str("serve_latency")),
        ("runs".into(), Json::Arr(vec![run_entry(cfg, r)])),
    ])
    .encode()
}

/// Writes (or, with `append`, merges) the run into the report file. Runs
/// are keyed by `(frontend, codec, connections)`: re-running a sweep step
/// replaces its old entry instead of duplicating it.
///
/// # Errors
///
/// [`ServeError::Io`] when the file cannot be written.
pub fn write_report(
    cfg: &LoadgenConfig,
    r: &LoadgenReport,
    path: &Path,
) -> Result<(), ServeError> {
    let entry = run_entry(cfg, r);
    let mut runs: Vec<Json> = Vec::new();
    if cfg.append {
        // A missing, stale or foreign file simply starts a fresh sweep.
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(doc) = crate::json::parse(&text) {
                if doc.get("bench").and_then(Json::as_str) == Some("serve_latency") {
                    if let Some(existing) = doc.get("runs").and_then(Json::as_arr) {
                        runs.extend(existing.iter().cloned());
                    }
                }
            }
        }
    }
    runs.retain(|old| run_key(old) != run_key(&entry));
    runs.push(entry);
    let doc = Json::Obj(vec![
        ("bench".to_string(), Json::str("serve_latency")),
        ("runs".into(), Json::Arr(runs)),
    ]);
    std::fs::write(path, doc.encode() + "\n")?;
    Ok(())
}

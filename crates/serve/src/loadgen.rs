//! `rush-loadgen`: an open-loop Poisson load generator for `rushd`.
//!
//! The generator draws a job mix from [`rush_workload`] (the paper's PUMA
//! templates, priorities, sensitivity classes and budgets), rescales the
//! workload's Poisson arrival slots to wall-clock milliseconds, and drives
//! the daemon **open-loop**: submissions fire at their scheduled times
//! regardless of how fast the daemon answers, which is what exposes epoch
//! batching under bursts. Each worker thread owns one connection and one
//! pair of [`rush_metrics::Histogram`]s (client-observed submit latency
//! and daemon-reported epoch wait); histograms merge lock-free at the end.
//!
//! A submission counts as *planned within its epoch deadline* when the
//! daemon-reported wait is at most `2 × epoch_ms` (the worst legal wait is
//! one full epoch window; the factor 2 absorbs scheduling jitter on loaded
//! CI machines). The run fails loudly if any frame draws a protocol error.
//!
//! The report is written as `BENCH_serve_latency.json`.

use crate::client::Client;
use crate::json::Json;
use crate::protocol::{Decision, JobSubmission};
use crate::ServeError;
use rush_metrics::Histogram;
use rush_sim::cluster::ClusterSpec;
use rush_workload::{generate, Experiment, WorkloadConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address, e.g. `127.0.0.1:4117`.
    pub addr: String,
    /// Number of jobs to submit.
    pub jobs: usize,
    /// Concurrent connections.
    pub workers: usize,
    /// Mean interarrival time in wall-clock milliseconds.
    pub mean_interarrival_ms: f64,
    /// Workload seed.
    pub seed: u64,
    /// The daemon's epoch window (for the within-deadline criterion).
    pub epoch_ms: u64,
    /// Report one runtime sample per admitted job after the submission
    /// phase (exercises `report-sample` and shrinks plans).
    pub report_samples: bool,
    /// Send `shutdown` (with snapshot) after the run.
    pub shutdown: bool,
    /// Where to write the JSON report (`None` = don't write).
    pub out: Option<PathBuf>,
}

impl LoadgenConfig {
    /// The `--quick` preset used by CI's serve-smoke step.
    pub fn quick(addr: String, epoch_ms: u64) -> LoadgenConfig {
        LoadgenConfig {
            addr,
            jobs: 24,
            workers: 4,
            mean_interarrival_ms: 4.0,
            seed: 7,
            epoch_ms,
            report_samples: true,
            shutdown: false,
            out: Some(PathBuf::from("BENCH_serve_latency.json")),
        }
    }
}

/// Aggregated results of one load-generator run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Jobs submitted.
    pub submitted: u64,
    /// Admission verdict counts.
    pub admitted: u64,
    /// Jobs deferred.
    pub deferred: u64,
    /// Jobs rejected.
    pub rejected: u64,
    /// Frames that drew a transport or protocol error.
    pub protocol_errors: u64,
    /// Submissions planned within `2 × epoch_ms`.
    pub within_deadline: u64,
    /// Client-observed submit→response latency (µs).
    pub client_latency_us: Histogram,
    /// Daemon-reported submit→planned epoch wait (µs).
    pub epoch_wait_us: Histogram,
    /// Epochs the daemon closed during the run.
    pub epochs: u64,
    /// Plan-cache hits reported by the daemon.
    pub cache_hits: u64,
    /// Plan-cache misses reported by the daemon.
    pub cache_misses: u64,
}

impl LoadgenReport {
    /// Fraction of submissions planned within the epoch deadline.
    pub fn within_deadline_frac(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.within_deadline as f64 / self.submitted as f64
        }
    }
}

struct WorkerOutcome {
    client_latency_us: Histogram,
    epoch_wait_us: Histogram,
    admitted_ids: Vec<(u64, u64)>,
    deferred: u64,
    rejected: u64,
    protocol_errors: u64,
    within_deadline: u64,
}

/// Builds the submission schedule: `(offset_ms, submission)` pairs in
/// arrival order, drawn from the paper's workload generator and rescaled
/// from slots to wall-clock milliseconds.
///
/// # Errors
///
/// [`ServeError::Config`] when the workload cannot be generated.
pub fn schedule(
    jobs: usize,
    mean_interarrival_ms: f64,
    seed: u64,
) -> Result<Vec<(u64, JobSubmission)>, ServeError> {
    let cluster = ClusterSpec::paper_testbed(8)
        .map_err(|e| ServeError::Config(format!("cluster spec: {e}")))?;
    let cfg = WorkloadConfig { jobs, seed, ..WorkloadConfig::default() };
    let exp = Experiment::new(cluster);
    let specs =
        generate(&cfg, &exp).map_err(|e| ServeError::Config(format!("workload: {e}")))?;
    let scale = mean_interarrival_ms / cfg.mean_interarrival;
    Ok(specs
        .into_iter()
        .map(|spec| {
            let tasks = spec.tasks().len() as u64;
            let hint = if tasks == 0 {
                None
            } else {
                Some((spec.total_base_runtime() / tasks as f64).max(1.0))
            };
            let offset_ms = (spec.arrival() as f64 * scale).round() as u64;
            let sub = JobSubmission {
                label: spec.label().to_string(),
                tasks: tasks.max(1),
                runtime_hint: hint,
                utility: *spec.utility(),
                budget: spec.budget(),
                priority: spec.priority().max(1),
            };
            (offset_ms, sub)
        })
        .collect())
}

fn run_worker(
    addr: &str,
    plan: &[(u64, JobSubmission)],
    next: &AtomicUsize,
    start: Instant,
    deadline_us: u64,
) -> WorkerOutcome {
    let mut out = WorkerOutcome {
        client_latency_us: Histogram::new(),
        epoch_wait_us: Histogram::new(),
        admitted_ids: Vec::new(),
        deferred: 0,
        rejected: 0,
        protocol_errors: 0,
        within_deadline: 0,
    };
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            // Count every submission this worker would have sent.
            while next.fetch_add(1, Ordering::SeqCst) < plan.len() {
                out.protocol_errors += 1;
            }
            return out;
        }
    };
    loop {
        let i = next.fetch_add(1, Ordering::SeqCst);
        if i >= plan.len() {
            break;
        }
        let (offset_ms, sub) = &plan[i];
        let due = start + Duration::from_millis(*offset_ms);
        let now = Instant::now();
        if due > now {
            thread::sleep(due - now);
        }
        let sent = Instant::now();
        match client.submit(sub.clone()) {
            Ok((decision, id, _epoch, waited_us)) => {
                out.client_latency_us.record(sent.elapsed().as_micros() as u64);
                out.epoch_wait_us.record(waited_us);
                if waited_us <= deadline_us {
                    out.within_deadline += 1;
                }
                match decision {
                    Decision::Admit => {
                        if let Some(id) = id {
                            let runtime = sub.runtime_hint.unwrap_or(50.0).round() as u64;
                            out.admitted_ids.push((id, runtime.max(1)));
                        }
                    }
                    Decision::Defer => out.deferred += 1,
                    Decision::Reject => out.rejected += 1,
                }
            }
            Err(_) => out.protocol_errors += 1,
        }
    }
    out
}

/// Runs the load generator against a live daemon.
///
/// # Errors
///
/// [`ServeError::Config`] when the workload cannot be generated,
/// [`ServeError::Io`] when the report cannot be written or the final
/// stats/shutdown calls fail.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, ServeError> {
    let plan = Arc::new(schedule(cfg.jobs, cfg.mean_interarrival_ms, cfg.seed)?);
    let next = Arc::new(AtomicUsize::new(0));
    let deadline_us = 2 * cfg.epoch_ms * 1000;
    let start = Instant::now();

    let workers: Vec<thread::JoinHandle<WorkerOutcome>> = (0..cfg.workers.max(1))
        .map(|_| {
            let plan = Arc::clone(&plan);
            let next = Arc::clone(&next);
            let addr = cfg.addr.clone();
            thread::spawn(move || run_worker(&addr, &plan, &next, start, deadline_us))
        })
        .collect();

    let mut client_latency_us = Histogram::new();
    let mut epoch_wait_us = Histogram::new();
    let mut admitted_ids = Vec::new();
    let (mut deferred, mut rejected, mut protocol_errors, mut within_deadline) = (0, 0, 0, 0);
    for w in workers {
        let Ok(o) = w.join() else {
            protocol_errors += 1;
            continue;
        };
        client_latency_us.merge(&o.client_latency_us);
        epoch_wait_us.merge(&o.epoch_wait_us);
        admitted_ids.extend(o.admitted_ids);
        deferred += o.deferred;
        rejected += o.rejected;
        protocol_errors += o.protocol_errors;
        within_deadline += o.within_deadline;
    }

    let mut tail = Client::connect(&cfg.addr)?;
    if cfg.report_samples {
        for &(id, runtime) in &admitted_ids {
            // The job may already have completed or been cancelled; only
            // transport failures count against the run.
            if tail.call(&crate::protocol::Request::ReportSample { job: id, runtime }).is_err() {
                protocol_errors += 1;
            }
        }
    }
    let stats = tail.stats()?;
    if cfg.shutdown {
        tail.shutdown(true)?;
    }

    let report = LoadgenReport {
        submitted: plan.len() as u64,
        admitted: admitted_ids.len() as u64,
        deferred,
        rejected,
        protocol_errors,
        within_deadline,
        client_latency_us,
        epoch_wait_us,
        epochs: stats.epochs,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
    };
    if let Some(path) = &cfg.out {
        std::fs::write(path, report_json(cfg, &report) + "\n")?;
    }
    Ok(report)
}

fn hist_json(h: &Histogram) -> Json {
    Json::Obj(vec![
        ("p50_us".to_string(), Json::u64(h.quantile(0.5))),
        ("p99_us".into(), Json::u64(h.quantile(0.99))),
        ("mean_us".into(), Json::f64(h.mean())),
        ("max_us".into(), Json::u64(h.max())),
        ("count".into(), Json::u64(h.count())),
    ])
}

/// Renders the benchmark report document.
pub fn report_json(cfg: &LoadgenConfig, r: &LoadgenReport) -> String {
    Json::Obj(vec![
        ("bench".to_string(), Json::str("serve_latency")),
        ("jobs".into(), Json::u64(cfg.jobs as u64)),
        ("workers".into(), Json::u64(cfg.workers as u64)),
        ("mean_interarrival_ms".into(), Json::f64(cfg.mean_interarrival_ms)),
        ("epoch_ms".into(), Json::u64(cfg.epoch_ms)),
        ("submitted".into(), Json::u64(r.submitted)),
        ("admitted".into(), Json::u64(r.admitted)),
        ("deferred".into(), Json::u64(r.deferred)),
        ("rejected".into(), Json::u64(r.rejected)),
        ("protocol_errors".into(), Json::u64(r.protocol_errors)),
        ("within_deadline".into(), Json::u64(r.within_deadline)),
        ("within_deadline_frac".into(), Json::f64(r.within_deadline_frac())),
        ("client_latency".into(), hist_json(&r.client_latency_us)),
        ("epoch_wait".into(), hist_json(&r.epoch_wait_us)),
        ("epochs".into(), Json::u64(r.epochs)),
        ("cache_hits".into(), Json::u64(r.cache_hits)),
        ("cache_misses".into(), Json::u64(r.cache_misses)),
    ])
    .encode()
}

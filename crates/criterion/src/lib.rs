//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no cargo registry, so the workspace vendors the
//! slice of the criterion 0.5 API its benches use: `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! Measurement model: per benchmark, a short calibration run sizes an
//! iteration batch to roughly [`TARGET_BATCH_NANOS`], then `sample_size`
//! batches are timed and the median ns/iteration is reported on stdout as
//! `group/id: <median> ns/iter (±spread)`. There are no plots, no saved
//! baselines and no statistical tests — the numbers are honest wall-clock
//! medians, suitable for the coarse before/after comparisons this repo
//! records.
//!
//! Passing `--quick` (or setting `CRITERION_QUICK=1`) shrinks calibration
//! and sample counts so CI smoke runs stay fast.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Target wall-clock duration of one timed batch.
pub const TARGET_BATCH_NANOS: u64 = 25_000_000;

/// Top-level benchmark driver.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("CRITERION_QUICK").is_some_and(|v| v != "0");
        Self { quick }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let quick = self.quick;
        run_one(&id.into(), 10, quick, |b| f(b));
    }
}

/// A named set of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, self.criterion.quick, |b| f(b));
    }

    /// Benchmarks `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, self.criterion.quick, |b| f(b, input));
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this only exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self { label: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    batch: u64,
    samples: Vec<Duration>,
    sample_size: usize,
    quick: bool,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate the batch size so one batch lasts ~TARGET_BATCH_NANOS.
        let budget =
            if self.quick { TARGET_BATCH_NANOS / 10 } else { TARGET_BATCH_NANOS };
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = t0.elapsed().as_nanos() as u64;
            if elapsed >= budget / 2 || batch >= 1 << 20 {
                self.batch = batch;
                break;
            }
            let grow = if elapsed == 0 { 16 } else { (budget / elapsed.max(1)).clamp(2, 16) };
            batch = batch.saturating_mul(grow);
        }
        let samples = if self.quick { 3 } else { self.sample_size };
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..self.batch {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }

    /// Median ns per iteration over the recorded batches.
    fn median_ns(&self) -> f64 {
        if self.samples.is_empty() || self.batch == 0 {
            return f64::NAN;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.batch as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        per_iter[per_iter.len() / 2]
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, quick: bool, mut f: F) {
    let mut b = Bencher { batch: 0, samples: Vec::new(), sample_size, quick };
    f(&mut b);
    let med = b.median_ns();
    let mut line = String::new();
    let _ = write!(line, "{label:<40} {:>14}/iter", format_ns(med));
    if let (Some(min), Some(max)) = (
        b.samples.iter().min().copied(),
        b.samples.iter().max().copied(),
    ) {
        if b.batch > 0 {
            let lo = min.as_nanos() as f64 / b.batch as f64;
            let hi = max.as_nanos() as f64 / b.batch as f64;
            let _ = write!(line, "   [{} .. {}]", format_ns(lo), format_ns(hi));
        }
    }
    println!("{line}");
}

/// Bundles benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { batch: 0, samples: Vec::new(), sample_size: 3, quick: true };
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.batch >= 1);
        assert_eq!(b.samples.len(), 3);
        assert!(b.median_ns().is_finite());
    }

    #[test]
    fn id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter(128).label, "128");
        assert_eq!(BenchmarkId::from("plain").label, "plain");
    }
}
